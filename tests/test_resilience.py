"""Unit tests for the resilience package: policy, breaker, chaos, manager."""

import pytest

from repro.common.errors import CircuitOpenError, ConnectionFailedError
from repro.net.network import Network
from repro.net.simclock import SimClock
from repro.obs.metrics import MetricsRegistry
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerConfig,
    ChaosEvent,
    ChaosSchedule,
    CircuitBreaker,
    ResilienceConfig,
    ResilienceManager,
    RetryPolicy,
)


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(backoff_base_ms=10.0, backoff_multiplier=2.0)
        assert policy.backoff_ms(1) == 10.0
        assert policy.backoff_ms(2) == 20.0
        assert policy.backoff_ms(3) == 40.0

    def test_backoff_is_capped(self):
        policy = RetryPolicy(
            backoff_base_ms=10.0, backoff_multiplier=10.0, backoff_cap_ms=500.0
        )
        assert policy.backoff_ms(5) == 500.0

    def test_backoff_rejects_zero_failures(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_ms(0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_base_ms": -1.0},
            {"backoff_multiplier": 0.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_breaker_config_validation(self):
        with pytest.raises(ValueError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerConfig(cooldown_ms=-1.0)


class TestCircuitBreaker:
    def make(self, threshold=3, cooldown=1_000.0):
        clock = SimClock()
        breaker = CircuitBreaker(
            "db:x",
            BreakerConfig(failure_threshold=threshold, cooldown_ms=cooldown),
            clock,
        )
        return clock, breaker

    def test_trips_after_consecutive_failures(self):
        _clock, breaker = self.make(threshold=3)
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.record_failure() is True  # this call tripped it
        assert breaker.state == OPEN
        assert breaker.opens == 1

    def test_success_resets_the_streak(self):
        _clock, breaker = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        assert breaker.record_failure() is False
        assert breaker.state == CLOSED

    def test_open_refuses_and_counts_fast_fails(self):
        _clock, breaker = self.make(threshold=1)
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.allow() is False
        assert breaker.allow() is False
        assert breaker.fast_fails == 2

    def test_cooldown_goes_half_open_and_probe_heals(self):
        clock, breaker = self.make(threshold=1, cooldown=1_000.0)
        breaker.record_failure()
        clock.advance_ms(1_000.0)
        assert breaker.allow() is True  # the half-open probe
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.retry_after_ms() is None

    def test_failed_probe_reopens_with_fresh_cooldown(self):
        clock, breaker = self.make(threshold=1, cooldown=1_000.0)
        breaker.record_failure()
        clock.advance_ms(1_000.0)
        assert breaker.allow() is True
        assert breaker.record_failure() is True  # probe failed: re-trip
        assert breaker.state == OPEN
        assert breaker.opens == 2
        assert breaker.retry_after_ms() == pytest.approx(1_000.0)

    def test_half_open_admits_only_the_probe_quota(self):
        clock, breaker = self.make(threshold=1, cooldown=100.0)
        breaker.record_failure()
        clock.advance_ms(100.0)
        assert breaker.allow() is True
        assert breaker.allow() is False  # second caller must wait

    def test_retry_after_counts_down(self):
        clock, breaker = self.make(threshold=1, cooldown=1_000.0)
        breaker.record_failure()
        clock.advance_ms(400.0)
        assert breaker.retry_after_ms() == pytest.approx(600.0)

    def test_clockless_breaker_never_refuses(self):
        breaker = CircuitBreaker("db:x", BreakerConfig(failure_threshold=1))
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.allow() is True  # no clock, no cooldown: stay open
        assert breaker.fast_fails == 0

    def test_as_row_shape(self):
        _clock, breaker = self.make(threshold=1)
        breaker.record_failure()
        key, state, streak, opens, fast_fails, opened_at = breaker.as_row()
        assert (key, state, streak, opens) == ("db:x", OPEN, 1, 1)
        assert fast_fails == 0 and opened_at == 0.0


class TestChaosSchedule:
    def test_events_kept_sorted_regardless_of_insertion(self):
        schedule = (
            ChaosSchedule().fail_host(500, "b").fail_host(100, "a")
        )
        assert [e.at_ms for e in schedule.events] == [100.0, 500.0]
        assert schedule.hosts_killed() == {"a", "b"}
        assert len(schedule) == 2

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            ChaosEvent(0.0, "explode_host", ("a",))

    def test_arity_checked(self):
        with pytest.raises(ValueError):
            ChaosEvent(0.0, "fail_link", ("only-one",))

    def test_tick_applies_only_due_events(self):
        clock = SimClock()
        network = Network()
        network.add_host("a")
        network.add_host("b")
        driver = (
            ChaosSchedule()
            .fail_host(100, "a")
            .fail_host(200, "b")
            .driver(network, clock)
        )
        assert driver.tick() == []
        clock.advance_ms(100)
        fired = driver.tick()
        assert [e.args for e in fired] == [("a",)]
        assert not network.is_reachable("a", "b")
        assert network.is_reachable("b", "b")
        assert not driver.exhausted

    def test_tick_is_idempotent_per_event(self):
        clock = SimClock()
        network = Network()
        network.add_host("a")
        driver = ChaosSchedule().fail_host(0, "a").driver(network, clock)
        assert len(driver.tick()) == 1
        assert driver.tick() == []
        assert driver.exhausted

    def test_finish_applies_the_rest(self):
        clock = SimClock()
        network = Network()
        network.add_host("a")
        driver = (
            ChaosSchedule()
            .fail_host(1_000, "a")
            .restore_host(2_000, "a")
            .driver(network, clock)
        )
        assert len(driver.finish()) == 2
        assert driver.exhausted
        assert network.is_reachable("a", "a")


class FlakyBackend:
    """Fails the first ``n`` calls, then succeeds forever."""

    def __init__(self, n):
        self.remaining = n
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise ConnectionFailedError("transient")
        return "rows"


class TestResilienceManager:
    def make(self, **kwargs):
        clock = SimClock()
        manager = ResilienceManager(
            clock=clock, metrics=MetricsRegistry(),
            config=ResilienceConfig(**kwargs),
        )
        return clock, manager

    def test_retry_recovers_a_transient_failure(self):
        clock, manager = self.make(retry=RetryPolicy(max_attempts=3))
        backend = FlakyBackend(2)
        assert manager.call("db:x", backend) == "rows"
        assert backend.calls == 3
        assert manager.stats()["retries"] == 2

    def test_backoff_is_charged_to_the_clock(self):
        clock, manager = self.make(
            retry=RetryPolicy(max_attempts=2, backoff_base_ms=40.0)
        )
        t0 = clock.now_ms
        manager.call("db:x", FlakyBackend(1))
        assert clock.now_ms - t0 == pytest.approx(40.0)

    def test_attempts_are_bounded(self):
        _clock, manager = self.make(retry=RetryPolicy(max_attempts=2))
        backend = FlakyBackend(99)
        with pytest.raises(ConnectionFailedError):
            manager.call("db:x", backend)
        assert backend.calls == 2

    def test_breaker_opens_and_fast_fails(self):
        _clock, manager = self.make(
            retry=RetryPolicy(max_attempts=1, backoff_base_ms=0.0),
            breaker=BreakerConfig(failure_threshold=2, cooldown_ms=5_000.0),
        )
        backend = FlakyBackend(99)
        for _ in range(2):
            with pytest.raises(ConnectionFailedError):
                manager.call("db:x", backend)
        calls_before = backend.calls
        with pytest.raises(CircuitOpenError) as info:
            manager.call("db:x", backend)
        assert backend.calls == calls_before  # never reached the backend
        assert info.value.retry_after_ms == pytest.approx(5_000.0)
        assert manager.metrics.counter("resilience.fast_fails").value == 1
        assert manager.metrics.counter("resilience.breaker_opens").value == 1

    def test_circuit_open_error_is_a_connection_failure(self):
        # failover code catches ConnectionFailedError; a fast-fail must
        # look exactly like a dead backend to it
        assert issubclass(CircuitOpenError, ConnectionFailedError)

    def test_breaker_heals_through_half_open_probe(self):
        clock, manager = self.make(
            retry=RetryPolicy(max_attempts=1),
            breaker=BreakerConfig(failure_threshold=1, cooldown_ms=1_000.0),
        )
        with pytest.raises(ConnectionFailedError):
            manager.call("db:x", FlakyBackend(1))
        clock.advance_ms(1_000.0)
        assert manager.call("db:x", FlakyBackend(0)) == "rows"
        assert manager.breaker("db:x").state == CLOSED

    def test_deadline_budget_stops_backoff(self):
        clock, manager = self.make(
            retry=RetryPolicy(
                max_attempts=5, backoff_base_ms=400.0, deadline_ms=300.0
            )
        )
        manager.start_deadline()
        backend = FlakyBackend(99)
        t0 = clock.now_ms
        with pytest.raises(ConnectionFailedError):
            manager.call("db:x", backend)
        assert backend.calls == 1  # no time left to back off and retry
        assert clock.now_ms == t0
        assert (
            manager.metrics.counter("resilience.deadline_exhausted").value == 1
        )

    def test_non_retryable_errors_pass_straight_through(self):
        _clock, manager = self.make(retry=RetryPolicy(max_attempts=5))

        def backend():
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            manager.call("db:x", backend)

    def test_breaker_rows_sorted_by_key(self):
        _clock, manager = self.make()
        manager.breaker("peer:b")
        manager.breaker("db:a")
        assert [row[0] for row in manager.breaker_rows()] == ["db:a", "peer:b"]

"""Coverage for helper surfaces: federation topology, merge utilities,
auth-less servers, result helpers and statement edge paths."""

import pytest

from repro.clarens import ClarensClient, ClarensServer
from repro.core import GridFederation
from repro.engine import Database
from repro.net import Network, SimClock
from repro.unity.merge import result_vector


class TestFederationHelpers:
    @pytest.fixture
    def fed(self):
        federation = GridFederation()
        federation.create_server("alpha", "hostA")
        federation.create_server("beta", "hostB")
        return federation

    def test_server_lookup_by_name(self, fed):
        assert fed.server("alpha").name == "alpha"

    def test_servers_sorted(self, fed):
        assert [s.name for s in fed.servers()] == ["alpha", "beta"]

    def test_add_host_idempotent(self, fed):
        fed.add_host("hostA")
        fed.add_host("hostA")
        assert fed.network.has_host("hostA")

    def test_client_cached_per_host_and_user(self, fed):
        a = fed.client("laptop")
        b = fed.client("laptop")
        c = fed.client("laptop", user="other", password="x")
        assert a is b and a is not c

    def test_attach_builds_vendor_url(self, fed):
        db = Database("mart_x", "sqlite")
        db.execute("CREATE TABLE t (a INTEGER)")
        url = fed.attach_database(fed.server("alpha"), db, db_host="hostA")
        assert url == "jdbc:sqlite:/hostA/mart_x.db"

    def test_service_url_resolution(self, fed):
        handle = fed.server("alpha")
        resolved = fed._resolve_server(handle.service.service_url)
        assert resolved is handle.server
        assert fed._resolve_server("clarens://ghost/none") is None


class TestAuthlessServer:
    def test_require_auth_false_allows_anonymous_dispatch(self):
        net = Network()
        net.add_host("h")
        clock = SimClock()
        server = ClarensServer("open", "h", net, clock, require_auth=False)

        from repro.clarens import ClarensService

        class Echo(ClarensService):
            service_name = "echo"
            exposed = ("hi",)

            def hi(self):
                return "anonymous ok"

        server.register_service(Echo())
        assert server.dispatch(None, "echo.hi", []) == "anonymous ok"


class TestResultHelpers:
    def test_result_vector_is_lists(self):
        from repro.engine.database import ExecResult

        result = ExecResult(columns=["a"], types=[], rows=[(1,), (2,)])
        assert result_vector(result) == [[1], [2]]

    def test_exec_result_to_dicts(self):
        db = Database("x", "mysql")
        db.execute("CREATE TABLE t (a INT, b VARCHAR(4))")
        db.execute("INSERT INTO t VALUES (1, 'x')")
        result = db.execute("SELECT * FROM t")
        assert result.to_dicts() == [{"a": 1, "b": "x"}]

    def test_query_answer_column_index(self):
        from repro.core import QueryAnswer

        answer = QueryAnswer(
            columns=["A", "b"], types=[], rows=[], distributed=False,
            databases=(), servers_accessed=1, tables_accessed=1,
        )
        assert answer.column_index("a") == 0
        with pytest.raises(KeyError):
            answer.column_index("zzz")

    def test_cursor_close_clears_result(self):
        from repro.driver import Directory, connect
        from repro.dialects import get_dialect

        directory = Directory()
        db = Database("m", "mysql")
        db.execute("CREATE TABLE t (a INT)")
        url = get_dialect("mysql").make_url("h", None, "m")
        directory.register(url, db)
        cursor = connect(url, directory=directory).cursor()
        cursor.execute("SELECT * FROM t")
        cursor.close()
        assert cursor.description is None


class TestStatementEdgePaths:
    def test_semicolon_terminated_statement(self):
        db = Database("x", "mysql")
        db.execute("CREATE TABLE t (a INT);")
        db.execute("INSERT INTO t VALUES (1);")
        assert db.execute("SELECT COUNT(*) FROM t;").rows == [(1,)]

    def test_comments_inside_statements(self):
        db = Database("x", "mysql")
        db.execute("CREATE TABLE t (a INT) -- trailing comment")
        db.execute("INSERT INTO t VALUES (1) /* block */")
        assert db.execute("SELECT /* hint */ a FROM t").rows == [(1,)]

    def test_quoted_identifiers_execute(self):
        db = Database("x", "mssql")
        db.execute('CREATE TABLE [weird name] ("col one" INT)')
        db.execute('INSERT INTO [weird name] ("col one") VALUES (7)')
        assert db.execute('SELECT "col one" FROM [weird name]').rows == [(7,)]

    def test_empty_table_aggregates_via_view(self):
        db = Database("x", "mysql")
        db.execute("CREATE TABLE t (a INT)")
        db.execute("CREATE VIEW v AS SELECT COUNT(*) AS n FROM t")
        assert db.execute("SELECT n FROM v").rows == [(0,)]

    def test_network_counters_accumulate(self):
        net = Network()
        net.add_host("a")
        net.add_host("b")
        clock = SimClock()
        net.transfer("a", "b", 100, clock)
        net.transfer("b", "a", 50, clock)
        assert net.bytes_moved == 150
        assert net.messages == 2

    def test_clarens_client_disconnect_unknown_server_noop(self):
        net = Network()
        net.add_host("h")
        clock = SimClock()
        server = ClarensServer("s", "h", net, clock)
        client = ClarensClient("h", net, clock)
        client.disconnect(server)  # never connected: must not raise

"""Unit tests for the POOL-RAL layer and its two-method wrapper."""

import pytest

from repro.common import UnsupportedVendorError
from repro.common.errors import DriverError
from repro.dialects import get_dialect
from repro.driver import Directory
from repro.engine import Database
from repro.net import SimClock, costs
from repro.poolral import PoolRAL, PoolRALWrapper


@pytest.fixture
def world():
    directory = Directory()
    clock = SimClock()
    for vendor, name in (("mysql", "m1"), ("mssql", "s1"), ("sqlite", "l1")):
        db = Database(name, vendor)
        db.execute("CREATE TABLE t (a INT, b VARCHAR(10))")
        db.execute("INSERT INTO t VALUES (1,'x'),(2,'y')")
        url = get_dialect(vendor).make_url("h", None, name)
        directory.register(url, db, host_name="h")
    ral = PoolRAL(directory, clock)
    return directory, clock, ral


def url_for(vendor, name):
    return get_dialect(vendor).make_url("h", None, name)


class TestVendorMatrix:
    def test_supported_vendors(self, world):
        _, _, ral = world
        assert ral.supports_url(url_for("mysql", "m1"))
        assert ral.supports_url(url_for("sqlite", "l1"))
        assert not ral.supports_url(url_for("mssql", "s1"))

    def test_initialize_unsupported_raises(self, world):
        _, _, ral = world
        with pytest.raises(UnsupportedVendorError):
            ral.initialize(url_for("mssql", "s1"))


class TestHandleCache:
    def test_initialize_once(self, world):
        _, clock, ral = world
        url = url_for("mysql", "m1")
        h1 = ral.initialize(url)
        t = clock.now_ms
        h2 = ral.initialize(url)
        assert h1 is h2
        assert clock.now_ms == t  # cached: free

    def test_first_initialize_pays_connect(self, world):
        _, clock, ral = world
        ral.initialize(url_for("mysql", "m1"))
        cost = get_dialect("mysql").cost
        assert clock.now_ms >= costs.POOL_INIT_HANDLE_MS + cost.connect_ms + cost.auth_ms

    def test_execute_reuses_handle_without_connect(self, world):
        _, clock, ral = world
        url = url_for("mysql", "m1")
        ral.initialize(url)
        t = clock.now_ms
        cursor = ral.execute_sql(url, "SELECT a FROM t ORDER BY a")
        assert cursor.fetchall() == [(1,), (2,)]
        spent = clock.now_ms - t
        # far cheaper than a fresh JDBC connect
        assert spent < get_dialect("mysql").cost.connect_ms

    def test_execute_auto_initializes(self, world):
        _, _, ral = world
        cursor = ral.execute_sql(url_for("sqlite", "l1"), "SELECT COUNT(*) FROM t")
        assert cursor.fetchall() == [(2,)]
        assert ral.handle_count() == 1

    def test_release(self, world):
        _, _, ral = world
        url = url_for("mysql", "m1")
        ral.initialize(url)
        ral.release(url)
        assert not ral.has_handle(url)

    def test_query_counter(self, world):
        _, _, ral = world
        url = url_for("mysql", "m1")
        handle = ral.initialize(url)
        ral.execute_sql(url, "SELECT a FROM t")
        ral.execute_sql(url, "SELECT b FROM t")
        assert handle.queries_executed == 2


class TestWrapperFacade:
    def test_method1_then_method2(self, world):
        _, _, ral = world
        wrapper = PoolRALWrapper(ral)
        url = url_for("mysql", "m1")
        assert wrapper.initialize_handler(url, "grid", "grid") is True
        result = wrapper.execute(url, ["a", "b"], ["t"], "a > 1")
        assert result == [[2, "y"]]

    def test_execute_without_init_raises(self, world):
        _, _, ral = world
        wrapper = PoolRALWrapper(ral)
        with pytest.raises(DriverError):
            wrapper.execute(url_for("mysql", "m1"), ["a"], ["t"], "")

    def test_empty_fields_rejected(self, world):
        _, _, ral = world
        wrapper = PoolRALWrapper(ral)
        wrapper.initialize_handler(url_for("mysql", "m1"))
        with pytest.raises(DriverError):
            wrapper.execute(url_for("mysql", "m1"), [], ["t"], "")

    def test_no_where_clause(self, world):
        _, _, ral = world
        wrapper = PoolRALWrapper(ral)
        url = url_for("sqlite", "l1")
        wrapper.initialize_handler(url)
        assert len(wrapper.execute(url, ["a"], ["t"])) == 2

    def test_returns_2d_lists(self, world):
        _, _, ral = world
        wrapper = PoolRALWrapper(ral)
        url = url_for("mysql", "m1")
        wrapper.initialize_handler(url)
        result = wrapper.execute(url, ["a"], ["t"], "")
        assert all(isinstance(row, list) for row in result)

"""Tests for Clarens method-level access control."""

import pytest

from repro.common import AuthenticationError
from repro.core import GridFederation
from repro.dialects import get_dialect
from repro.engine import Database
from repro.metadata import generate_lower_xspec


@pytest.fixture
def fed():
    federation = GridFederation()
    server = federation.create_server("jc1", "pc1")
    db = Database("mart", "mysql")
    db.execute("CREATE TABLE T (A INT PRIMARY KEY)")
    db.execute("INSERT INTO T VALUES (1)")
    federation.attach_database(server, db, logical_names={"T": "t"})
    server.server.add_account("reader", "readerpw", groups=("users",))
    server.server.add_account("operator", "oppw", groups=("users", "admin"))
    return federation, server


def plugin_args(federation):
    new_db = Database("extra", "sqlite")
    new_db.execute("CREATE TABLE x (k INTEGER PRIMARY KEY)")
    url = get_dialect("sqlite").make_url("pc1", None, "extra")
    federation.directory.register(url, new_db, host_name="pc1")
    return generate_lower_xspec(new_db).to_xml(), url, "sqlite"


class TestACL:
    def test_reader_can_query(self, fed):
        federation, server = fed
        client = federation.client("laptop", user="reader", password="readerpw")
        outcome = federation.query(client, server, "SELECT a FROM t")
        assert outcome.answer.rows == [(1,)]

    def test_reader_cannot_plugin(self, fed):
        federation, server = fed
        client = federation.client("laptop", user="reader", password="readerpw")
        with pytest.raises(AuthenticationError):
            client.call(server.server, "dataaccess.plugin", *plugin_args(federation))

    def test_admin_can_plugin(self, fed):
        federation, server = fed
        client = federation.client("laptop2", user="operator", password="oppw")
        added = client.call(server.server, "dataaccess.plugin", *plugin_args(federation))
        assert added == ["x"]

    def test_grid_default_is_admin(self, fed):
        federation, server = fed
        client = federation.client("laptop3")
        added = client.call(server.server, "dataaccess.plugin", *plugin_args(federation))
        assert added == ["x"]

    def test_unrestricted_methods_open_to_all_users(self, fed):
        federation, server = fed
        client = federation.client("laptop", user="reader", password="readerpw")
        assert client.call(server.server, "dataaccess.ping") == "pong"

    def test_custom_acl_on_query(self, fed):
        federation, server = fed
        server.server.set_acl("dataaccess.query", ("analysts",))
        client = federation.client("laptop", user="reader", password="readerpw")
        with pytest.raises(AuthenticationError):
            federation.query(client, server, "SELECT a FROM t")
        server.server.add_account("ana", "anapw", groups=("users", "analysts"))
        ok = federation.client("laptop4", user="ana", password="anapw")
        assert federation.query(ok, server, "SELECT a FROM t").answer.rows == [(1,)]

    def test_client_identity_defaults(self, fed):
        federation, server = fed
        client = federation.client("laptop", user="reader", password="readerpw")
        session = client.connect(server.server)
        assert session.user == "reader"

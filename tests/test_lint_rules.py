"""Unit tests for the static analyzer: one positive + one negative per code."""

import pytest

from repro.common import PreflightError, SQLTypeError
from repro.engine import Database
from repro.lint import (
    RULES,
    CatalogSchema,
    DictionarySchema,
    Diagnostic,
    LintConfig,
    Severity,
    Span,
    lint_sql,
    sqlcheck,
)
from repro.unity import UnityDriver


def make_db() -> Database:
    db = Database("lintdb", "generic")
    db.execute(
        "CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR(8), c DOUBLE, f BOOLEAN)"
    )
    db.execute("CREATE TABLE u (a INT PRIMARY KEY, d DOUBLE)")
    db.execute("INSERT INTO t VALUES (1, 'x', 2.5, TRUE)")
    db.execute("INSERT INTO u VALUES (1, 9.5)")
    return db


@pytest.fixture
def schema():
    return CatalogSchema(make_db())


def codes(sql, schema, config=None):
    return lint_sql(sql, schema, config).codes()


class TestSeverityAndDiagnostic:
    def test_from_name(self):
        assert Severity.from_name("error") is Severity.ERROR
        assert Severity.from_name(" Warning ") is Severity.WARNING
        with pytest.raises(ValueError):
            Severity.from_name("fatal")

    def test_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO

    def test_str_and_dict(self):
        d = Diagnostic("RPR102", Severity.ERROR, "unknown column 'zz'",
                       Span("zz", 7, 9))
        assert str(d) == "RPR102 error: unknown column 'zz' ['zz' at offset 7]"
        wire = d.as_dict()
        assert wire["code"] == "RPR102"
        assert wire["severity"] == "error"
        assert wire["span"] == {"fragment": "zz", "start": 7, "end": 9}

    def test_report_properties(self, schema):
        report = lint_sql("SELECT zz FROM t WHERE 1", schema)
        assert not report.ok
        assert len(report.errors) == 1
        assert len(report.warnings) == 1
        assert len(report) == 2
        assert all(isinstance(line, str) for line in report.format_lines())


class TestLintConfig:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            LintConfig(disabled={"RPR999"})
        with pytest.raises(ValueError):
            LintConfig(severities={"NOPE": Severity.ERROR})

    def test_disable(self, schema):
        config = LintConfig(disabled={"RPR102"})
        assert codes("SELECT zz FROM t", schema, config) == set()

    def test_severity_override(self, schema):
        config = LintConfig(severities={"RPR202": Severity.ERROR})
        report = lint_sql("SELECT a FROM t WHERE 1", schema, config)
        assert report.codes() == {"RPR202"}
        assert not report.ok  # promoted to error

    def test_every_code_documented(self):
        for code, rule in RULES.items():
            assert code == rule.code
            assert rule.description
            assert rule.slug


class TestEngineRules:
    def test_rpr001_syntax(self, schema):
        report = lint_sql("SELECT FROM WHERE", schema)
        assert report.codes() == {"RPR001"}
        assert not report.ok

    def test_rpr101_unknown_table(self, schema):
        assert codes("SELECT a FROM missing", schema) == {"RPR101"}
        assert codes("SELECT a FROM t", schema) == set()

    def test_rpr102_unknown_column(self, schema):
        assert codes("SELECT zz FROM t", schema) == {"RPR102"}
        assert codes("SELECT t.zz FROM t", schema) == {"RPR102"}
        assert codes("SELECT t.a FROM t", schema) == set()

    def test_rpr102_suppressed_by_unknown_table(self, schema):
        # RPR101 is canonical; don't cascade column errors off a bad table.
        assert codes("SELECT zz FROM missing", schema) == {"RPR101"}

    def test_rpr103_ambiguous(self, schema):
        sql = "SELECT a FROM t JOIN u ON t.a = u.a"
        assert codes(sql, schema) == {"RPR103"}
        assert codes("SELECT t.a FROM t JOIN u ON t.a = u.a", schema) == set()

    def test_rpr104_unknown_function(self, schema):
        assert codes("SELECT NOSUCH(a) FROM t", schema) == {"RPR104"}
        assert codes("SELECT ABS(a) FROM t", schema) == set()

    def test_rpr105_arity(self, schema):
        report = lint_sql("SELECT LENGTH(b, b) FROM t", schema)
        assert "RPR105" in report.codes()
        assert codes("SELECT LENGTH(b) FROM t", schema) == set()

    def test_rpr106_duplicate_binding(self, schema):
        report = lint_sql("SELECT t.a FROM t, t", schema)
        assert "RPR106" in report.codes()
        # engine tolerates it (last table wins), so only a warning here
        assert all(d.severity == Severity.WARNING for d in report
                   if d.code == "RPR106")
        assert codes("SELECT x.a FROM t x, t y", schema) == set()

    def test_rpr201_arith_mismatch(self, schema):
        assert codes("SELECT a + b FROM t", schema) == {"RPR201"}
        assert codes("SELECT a + c FROM t", schema) == set()

    def test_rpr201_comparison_mismatch(self, schema):
        assert codes("SELECT a FROM t WHERE a > 'x'", schema) == {"RPR201"}
        assert codes("SELECT a FROM t WHERE b > 'x'", schema) == set()

    def test_rpr201_concat_is_fine(self, schema):
        # || stringifies both sides at runtime, like the engine
        assert codes("SELECT a || b FROM t", schema) == set()

    def test_rpr202_non_boolean_where(self, schema):
        report = lint_sql("SELECT a FROM t WHERE 1", schema)
        assert report.codes() == {"RPR202"}
        assert report.ok  # warning only: the engine tolerates truthiness
        assert codes("SELECT a FROM t WHERE a > 0", schema) == set()

    def test_rpr301_bare_column_with_aggregate(self, schema):
        assert codes("SELECT a, COUNT(*) FROM t", schema) == {"RPR301"}
        assert codes("SELECT a, COUNT(*) FROM t GROUP BY a", schema) == set()

    def test_rpr301_aggregate_in_where(self, schema):
        assert codes("SELECT a FROM t WHERE SUM(a) > 1", schema) == {"RPR301"}
        assert codes("SELECT a FROM t GROUP BY a HAVING SUM(c) > 1",
                     schema) == set()

    def test_rpr301_nested_aggregate(self, schema):
        assert codes("SELECT SUM(COUNT(*)) FROM t", schema) == {"RPR301"}

    def test_rpr201_numeric_aggregate_over_text(self, schema):
        assert codes("SELECT SUM(b) FROM t", schema) == {"RPR201"}
        assert codes("SELECT MIN(b) FROM t", schema) == set()

    def test_subqueries_analyzed_recursively(self, schema):
        assert codes("SELECT a FROM t WHERE a IN (SELECT zz FROM u)",
                     schema) == {"RPR102"}
        assert codes("SELECT a FROM t WHERE a IN (SELECT a FROM u)",
                     schema) == set()


class TestFederatedRules:
    @pytest.fixture
    def fed_schema(self, two_db_federation):
        _, dictionary, *_ = two_db_federation
        return DictionarySchema(dictionary)

    def test_context(self, fed_schema):
        assert fed_schema.context == "federated"

    def test_rpr302_subquery(self, fed_schema):
        sql = "SELECT energy FROM events WHERE run_id IN (SELECT run_id FROM runs)"
        assert codes(sql, fed_schema) == {"RPR302"}

    def test_rpr401_vendor_incompat(self, fed_schema):
        # runs lives on mssql, whose simulated dialect lacks TRIM
        sql = (
            "SELECT e.energy FROM events e INNER JOIN runs r "
            "ON e.run_id = r.run_id WHERE TRIM(r.detector) = 'cms'"
        )
        report = lint_sql(sql, fed_schema)
        assert "RPR401" in report.codes()
        ok_sql = (
            "SELECT e.energy FROM events e INNER JOIN runs r "
            "ON e.run_id = r.run_id WHERE UPPER(r.detector) = 'CMS'"
        )
        assert "RPR401" not in lint_sql(ok_sql, fed_schema).codes()

    def test_rpr501_whole_table_ship(self, fed_schema):
        sql = (
            "SELECT e.energy FROM events e INNER JOIN runs r "
            "ON e.run_id = r.run_id"
        )
        report = lint_sql(sql, fed_schema)
        assert "RPR501" in report.codes()
        assert report.ok  # warnings don't fail pre-flight

    def test_rpr106_escalates_federated(self, fed_schema):
        report = lint_sql("SELECT events.energy FROM events, events", fed_schema)
        assert "RPR106" in report.codes()
        assert not report.ok  # duplicate bindings break decomposition

    def test_clean_federated_join(self, fed_schema):
        sql = (
            "SELECT e.energy FROM events e INNER JOIN runs r "
            "ON e.run_id = r.run_id WHERE r.good = 1 AND e.energy > 2"
        )
        assert lint_sql(sql, fed_schema).errors == []


class TestDriverPreflight:
    def test_rejects_before_decompose(self, two_db_federation):
        directory, dictionary, *_ = two_db_federation
        driver = UnityDriver(dictionary, directory, preflight=True)
        with pytest.raises(PreflightError) as exc:
            driver.execute("SELECT no_such_column FROM events")
        assert any(d.code == "RPR102" for d in exc.value.diagnostics)

    def test_clean_query_unaffected(self, two_db_federation):
        directory, dictionary, *_ = two_db_federation
        strict = UnityDriver(dictionary, directory, preflight=True)
        loose = UnityDriver(dictionary, directory)
        sql = "SELECT event_id FROM events WHERE energy > 5"
        assert strict.execute(sql).rows == loose.execute(sql).rows


class TestExecutorTypecheck:
    def test_mixed_arith_raises_on_empty_table(self):
        db = Database("e", "generic")
        db.execute("CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR(4))")
        # previously returned an empty result silently; now a typed error
        with pytest.raises(SQLTypeError):
            db.execute("SELECT a + b FROM t")

    def test_mixed_comparison_raises_on_empty_table(self):
        db = Database("e", "generic")
        db.execute("CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR(4))")
        with pytest.raises(SQLTypeError):
            db.execute("SELECT a FROM t WHERE a > 'x'")

    def test_valid_queries_still_run(self):
        db = make_db()
        assert db.execute("SELECT a + c FROM t").rows == [(3.5,)]
        assert db.execute("SELECT a || b FROM t").rows == [("1x",)]


class TestExplainIntegration:
    def test_explain_carries_lint_lines(self):
        db = make_db()
        lines = db.explain("SELECT a FROM t WHERE 1")
        assert any(line.startswith("lint: RPR202") for line in lines)

    def test_clean_explain_has_no_lint_lines(self):
        db = make_db()
        lines = db.explain("SELECT a FROM t WHERE a > 0")
        assert not any(line.startswith("lint:") for line in lines)


class TestSqlcheckFacade:
    def test_accepts_database(self):
        db = make_db()
        assert sqlcheck("SELECT a FROM t", db).ok
        assert not sqlcheck("SELECT zz FROM t", db).ok

    def test_accepts_dictionary(self, two_db_federation):
        _, dictionary, *_ = two_db_federation
        assert sqlcheck("SELECT energy FROM events", dictionary).ok

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            sqlcheck("SELECT 1", object())

"""Metric archiver: snapshots, rollups, windows, conservation."""

import pytest

from repro.net.simclock import SimClock
from repro.obs.archive import (
    RAW_RESOLUTION_MS,
    Bucket,
    MetricsArchiver,
    SeriesArchive,
)
from repro.obs.metrics import MetricsRegistry


def make_archiver(interval_ms=100.0, **kwargs):
    clock = SimClock()
    registry = MetricsRegistry()
    archiver = MetricsArchiver(registry, clock, interval_ms=interval_ms, **kwargs)
    return clock, registry, archiver


class TestSeriesArchive:
    def test_rollup_buckets_align_to_resolution(self):
        series = SeriesArchive("m", "counter", resolutions=(1_000.0,))
        for t in (100.0, 900.0, 1_100.0):
            series.record(Bucket(t_ms=t, samples=1.0, total=1.0))
        rolled = series.buckets(1_000.0)
        assert [b.t_ms for b in rolled] == [0.0, 1_000.0]
        assert rolled[0].samples == 2.0
        assert rolled[1].samples == 1.0

    def test_totals_identical_at_every_resolution(self):
        series = SeriesArchive("m", "histogram")
        for i in range(50):
            series.record(
                Bucket(
                    t_ms=i * 137.0, samples=2.0, total=i * 1.5,
                    vmin=float(i), vmax=float(i + 1), bad=i % 2,
                )
            )
        raw = series.totals(RAW_RESOLUTION_MS)
        for res in series.resolutions:
            t = series.totals(res)
            assert t.samples == raw.samples, res
            assert t.total == pytest.approx(raw.total), res
            assert t.bad == raw.bad, res

    def test_eviction_folds_into_remainder(self):
        series = SeriesArchive("m", "counter", raw_cap=10, rollup_cap=4)
        for i in range(100):
            series.record(Bucket(t_ms=i * 500.0, samples=1.0, total=1.0))
        assert len(series.buckets(RAW_RESOLUTION_MS)) == 10
        raw = series.totals(RAW_RESOLUTION_MS)
        assert raw.samples == 100.0
        assert raw.total == 100.0
        for res in series.resolutions:
            assert series.totals(res).total == pytest.approx(100.0), res

    def test_window_selects_recent_buckets(self):
        series = SeriesArchive("m", "gauge")
        for t in (0.0, 1_000.0, 2_000.0, 3_000.0):
            series.record(Bucket(t_ms=t, samples=1.0, total=t))
        window = series.window(1_500.0, now_ms=3_000.0)
        assert window.samples == 2.0
        assert window.total == pytest.approx(5_000.0)

    def test_window_percentile_none_when_empty(self):
        series = SeriesArchive("m", "histogram")
        assert series.window_percentile(99, 1_000.0, now_ms=0.0) is None
        # buckets exist but hold no samples -> still no data
        series.record(Bucket(t_ms=0.0, samples=0.0, total=0.0))
        assert series.window_percentile(99, 1_000.0, now_ms=0.0) is None

    def test_window_percentile_clamped_to_min_max(self):
        series = SeriesArchive("m", "histogram")
        series.record(
            Bucket(t_ms=0.0, samples=4.0, total=40.0, vmin=1.0, vmax=25.0)
        )
        p = series.window_percentile(99, 1_000.0, now_ms=100.0)
        assert 1.0 <= p <= 25.0

    def test_window_percentile_rejects_bad_p(self):
        series = SeriesArchive("m", "histogram")
        with pytest.raises(ValueError):
            series.window_percentile(0, 1_000.0, now_ms=0.0)
        with pytest.raises(ValueError):
            series.window_percentile(101, 1_000.0, now_ms=0.0)


class TestMetricsArchiver:
    def test_counter_deltas_conserve_the_cumulative_total(self):
        clock, registry, archiver = make_archiver()
        c = registry.counter("queries")
        for n in (3, 0, 7, 2):
            c.inc(n)
            archiver.snapshot()
            clock.advance_ms(250.0)
        series = archiver.series_for("queries")
        assert series.totals().total == pytest.approx(12.0)
        assert series.buckets()[-1].last == pytest.approx(12.0)

    def test_histogram_snapshot_sees_only_fresh_values(self):
        clock, registry, archiver = make_archiver()
        h = registry.histogram("query_ms")
        h.observe(10.0)
        h.observe(30.0)
        archiver.snapshot()
        clock.advance_ms(200.0)
        h.observe(100.0)
        archiver.snapshot()
        buckets = archiver.series_for("query_ms").buckets()
        assert [b.samples for b in buckets] == [2.0, 1.0]
        assert buckets[1].vmin == buckets[1].vmax == 100.0

    def test_threshold_marks_bad_observations(self):
        clock, registry, archiver = make_archiver()
        archiver.watch_threshold("query_ms", 50.0)
        h = registry.histogram("query_ms")
        for v in (10.0, 60.0, 70.0):
            h.observe(v)
        archiver.snapshot()
        assert archiver.series_for("query_ms").totals().bad == 2.0

    def test_maybe_snapshot_respects_cadence(self):
        clock, registry, archiver = make_archiver(interval_ms=100.0)
        registry.counter("queries").inc()
        assert archiver.maybe_snapshot() is True
        assert archiver.maybe_snapshot() is False  # same instant
        clock.advance_ms(50.0)
        assert archiver.maybe_snapshot() is False  # under the interval
        clock.advance_ms(50.0)
        assert archiver.maybe_snapshot() is True
        assert archiver.snapshots == 2

    def test_snapshot_idempotent_within_one_instant(self):
        clock, registry, archiver = make_archiver()
        registry.counter("queries").inc()
        archiver.snapshot()
        archiver.snapshot()
        assert archiver.snapshots == 1
        assert len(archiver.series_for("queries").buckets()) == 1

    def test_history_rows_cover_every_series_and_level(self):
        clock, registry, archiver = make_archiver()
        registry.counter("queries").inc()
        registry.gauge("pool").set(4.0)
        registry.histogram("query_ms").observe(10.0)
        archiver.snapshot()
        rows = archiver.history_rows()
        names = {r[1] for r in rows}
        assert names == {"queries", "pool", "query_ms"}
        resolutions = {r[3] for r in rows}
        assert resolutions == {0.0, 1_000.0, 10_000.0}
        for row in rows:
            assert len(row) == 11

    def test_window_helper_none_for_unknown_series(self):
        _, _, archiver = make_archiver()
        assert archiver.window("nope", 1_000.0) is None

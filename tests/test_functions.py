"""Tests for the extended scalar-function and aggregate library."""

import math

import numpy as np
import pytest

from repro.common import SQLTypeError
from repro.engine import Database


@pytest.fixture
def db():
    d = Database("fn", "generic")
    d.execute("CREATE TABLE t (id INT PRIMARY KEY, x DOUBLE, s VARCHAR(20))")
    d.execute(
        "INSERT INTO t VALUES (1, 4.0, '  pad  '),(2, -2.25, 'Hello'),"
        "(3, 9.0, 'a,b,c'),(4, NULL, NULL)"
    )
    return d


def one(db, expr, where="id = 1"):
    return db.execute(f"SELECT {expr} FROM t WHERE {where}").rows[0][0]


class TestMathFunctions:
    def test_sqrt(self, db):
        assert one(db, "SQRT(x)") == 2.0

    def test_power(self, db):
        assert one(db, "POWER(x, 2)") == 16.0

    def test_floor_ceil(self, db):
        assert one(db, "FLOOR(x)", "id = 2") == -3
        assert one(db, "CEIL(x)", "id = 2") == -2

    def test_exp_ln_inverse(self, db):
        assert one(db, "LN(EXP(x))") == pytest.approx(4.0)

    def test_ln_of_nonpositive_is_null(self, db):
        assert one(db, "LN(x)", "id = 2") is None

    def test_log10(self, db):
        assert one(db, "LOG10(x)", "id = 3") == pytest.approx(math.log10(9.0))

    def test_mod(self, db):
        assert one(db, "MOD(x, 3)", "id = 3") == 0.0
        assert one(db, "MOD(x, 0)", "id = 3") is None

    def test_sign(self, db):
        assert one(db, "SIGN(x)", "id = 2") == -1
        assert one(db, "SIGN(x)", "id = 1") == 1

    def test_null_propagates(self, db):
        for fn in ("SQRT", "FLOOR", "CEIL", "EXP", "SIGN"):
            assert one(db, f"{fn}(x)", "id = 4") is None


class TestStringFunctions:
    def test_trim_variants(self, db):
        assert one(db, "TRIM(s)") == "pad"
        assert one(db, "LTRIM(s)") == "pad  "
        assert one(db, "RTRIM(s)") == "  pad"

    def test_replace(self, db):
        assert one(db, "REPLACE(s, ',', ';')", "id = 3") == "a;b;c"

    def test_instr(self, db):
        assert one(db, "INSTR(s, 'll')", "id = 2") == 3
        assert one(db, "INSTR(s, 'zz')", "id = 2") == 0

    def test_concat(self, db):
        assert one(db, "CONCAT(s, '!', id)", "id = 2") == "Hello!2"

    def test_concat_null_is_null(self, db):
        assert one(db, "CONCAT(s, 'x')", "id = 4") is None

    def test_nullif(self, db):
        assert one(db, "NULLIF(id, 1)") is None
        assert one(db, "NULLIF(id, 99)") == 1

    def test_nullif_arity_checked(self, db):
        with pytest.raises(SQLTypeError):
            db.execute("SELECT NULLIF(id) FROM t")


class TestStatAggregates:
    def test_stddev_population(self, db):
        values = [4.0, -2.25, 9.0]
        expected = float(np.std(values))
        assert db.execute("SELECT STDDEV(x) FROM t").rows[0][0] == pytest.approx(expected)

    def test_variance_population(self, db):
        values = [4.0, -2.25, 9.0]
        expected = float(np.var(values))
        assert db.execute("SELECT VARIANCE(x) FROM t").rows[0][0] == pytest.approx(expected)

    def test_stddev_ignores_nulls(self, db):
        # row 4 has NULL x and must not contribute
        assert db.execute("SELECT COUNT(x), STDDEV(x) FROM t").rows[0][0] == 3

    def test_stddev_empty_group_is_null(self, db):
        assert db.execute("SELECT STDDEV(x) FROM t WHERE id > 90").rows == [(None,)]

    def test_stddev_per_group(self, db):
        db.execute("INSERT INTO t VALUES (5, 4.0, 'g'), (6, 6.0, 'g')")
        r = db.execute(
            "SELECT s, STDDEV(x) FROM t WHERE s = 'g' GROUP BY s"
        )
        assert r.rows[0][1] == pytest.approx(1.0)

    def test_stddev_in_having(self, db):
        r = db.execute(
            "SELECT COUNT(*) FROM t WHERE x IS NOT NULL HAVING STDDEV(x) > 0"
        )
        assert r.rows == [(3,)]

    def test_variance_of_single_value_is_zero(self, db):
        assert db.execute("SELECT VARIANCE(x) FROM t WHERE id = 1").rows == [(0.0,)]

"""Metrics registry: instruments, percentiles, stats() as a thin view."""

import pytest

from repro.clarens.codec import decode_payload, encode_payload
from repro.core import GridFederation
from repro.engine import Database
from repro.obs.metrics import Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        reg.counter("queries").inc()
        reg.counter("queries").inc(2)
        assert reg.counter("queries").value == 3
        with pytest.raises(ValueError):
            reg.counter("queries").inc(-1)

    def test_gauge_sets(self):
        reg = MetricsRegistry()
        reg.gauge("pool_size").set(7)
        reg.gauge("pool_size").set(4)
        assert reg.gauge("pool_size").value == 4.0

    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")


class TestHistogramPercentiles:
    def test_nearest_rank_on_known_distribution(self):
        h = Histogram("ms")
        for v in range(1, 101):  # 1..100
            h.observe(v)
        assert h.p50 == 50
        assert h.p95 == 95
        assert h.p99 == 99
        assert h.percentile(100) == 100
        assert h.min == 1 and h.max == 100
        assert h.mean == pytest.approx(50.5)

    def test_single_observation(self):
        h = Histogram("ms")
        h.observe(42.0)
        assert h.p50 == h.p95 == h.p99 == 42.0

    def test_empty_histogram_is_zero(self):
        h = Histogram("ms")
        assert h.p99 == 0.0
        assert h.stats()["count"] == 0.0

    def test_empty_histogram_explicit_semantics(self):
        """Regression: 'no data' must be distinguishable from 'p99=0'."""
        h = Histogram("ms")
        assert h.empty is True
        assert h.percentile(99, default=None) is None
        assert h.percentile(99) == 0.0  # display default, unchanged
        h.observe(5.0)
        assert h.empty is False
        assert h.percentile(99, default=None) == 5.0

    def test_invalid_percentile_raises(self):
        h = Histogram("ms")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_invalid_percentile_raises_even_when_empty(self):
        """The range check wins over the empty-histogram default."""
        h = Histogram("ms")
        with pytest.raises(ValueError):
            h.percentile(0)
        with pytest.raises(ValueError):
            h.percentile(101, default=None)


class TestWireSafety:
    def test_snapshot_survives_the_codec(self):
        reg = MetricsRegistry()
        reg.counter("queries").inc(3)
        reg.gauge("pool").set(2)
        reg.histogram("query_ms").observe(12.5)
        method, decoded = decode_payload(
            encode_payload("dataaccess.metrics", reg.as_dict())
        )
        assert decoded["counters"]["queries"] == 3.0
        assert decoded["gauges"]["pool"] == 2.0
        assert decoded["histograms"]["query_ms"]["p50"] == 12.5

    def test_registry_is_callable(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        assert reg() == reg.as_dict()


class TestStatsView:
    """The ad-hoc stats() counters are now views over the registry."""

    @pytest.fixture
    def federation(self):
        fed = GridFederation()
        server = fed.create_server("jc1", "pc1")
        db = Database("mart", "mysql")
        db.execute("CREATE TABLE EVT (EVENT_ID INT PRIMARY KEY)")
        db.execute("INSERT INTO EVT VALUES (1)")
        fed.attach_database(server, db, logical_names={"EVT": "events"})
        return fed, server

    def test_queries_served_tracks_registry(self, federation):
        fed, server = federation
        service = server.service
        service.execute("SELECT COUNT(*) FROM events")
        service.execute("SELECT COUNT(*) FROM events")
        assert service.queries_served == 2
        assert service.metrics.counter("queries").value == 2
        assert service.stats()["queries_served"] == 2

    def test_failed_query_not_counted_as_served(self, federation):
        fed, server = federation
        service = server.service
        with pytest.raises(Exception):
            service.execute("SELECT COUNT(*) FROM nope", no_forward=True)
        assert service.queries_served == 0

    def test_remote_fetches_counted(self):
        """PR fix: remote fetches used to be invisible in stats()."""
        fed = GridFederation()
        a = fed.create_server("jc-a", "pc-a")
        b = fed.create_server("jc-b", "pc-b")
        db = Database("mart", "mysql")
        db.execute("CREATE TABLE EVT (EVENT_ID INT PRIMARY KEY)")
        db.execute("INSERT INTO EVT VALUES (1)")
        fed.attach_database(b, db, logical_names={"EVT": "events"})
        answer = a.service.execute("SELECT COUNT(*) FROM events")
        assert answer.rows == [(1,)]
        stats = a.service.stats()
        assert stats["remote_fetches"] == 1
        assert stats["routes"]["remote"] == 1

    def test_route_counts_is_registry_view(self, federation):
        fed, server = federation
        server.service.execute("SELECT COUNT(*) FROM events")
        router = server.service.router
        assert router.route_counts["pool"] == 1
        assert (
            router.route_counts["pool"]
            == server.service.metrics.counter("subqueries.pool").value
        )

    def test_stats_remain_wire_safe(self, federation):
        fed, server = federation
        server.service.execute("SELECT COUNT(*) FROM events")
        client = fed.client("laptop")
        stats = client.call(server.server, "dataaccess.stats")
        assert stats["queries_served"] == 1
        assert stats["failovers"] == 0
        assert stats["rows_returned"] == 1


class TestPipelineInstruments:
    def test_etl_counters_and_spans(self):
        from repro.net import Network, SimClock
        from repro.obs.trace import Tracer
        from repro.warehouse.etl import ETLJob, ETLPipeline

        clock = SimClock()
        net = Network()
        net.add_host("src_host")
        net.add_host("wh_host")
        source = Database("src", "mysql")
        source.execute("CREATE TABLE T (A INT PRIMARY KEY, B DOUBLE)")
        for i in range(6):
            source.execute(f"INSERT INTO T VALUES ({i}, {i * 0.5})")
        target = Database("wh", "mysql")
        target.execute("CREATE TABLE T2 (A INT PRIMARY KEY, B DOUBLE)")
        metrics = MetricsRegistry()
        tracer = Tracer(clock, "etl")
        pipeline = ETLPipeline(
            net, clock, target, "wh_host", tracer=tracer, metrics=metrics
        )
        report = pipeline.run(
            ETLJob(source=source, source_host="src_host",
                   query="SELECT a, b FROM t", target_table="T2")
        )
        assert report.rows == 6
        assert metrics.counter("etl.rows_staged").value == 6
        assert metrics.counter("etl.rows_loaded").value == 6
        assert metrics.counter("etl.bytes_staged").value == report.staged_bytes
        stages = [s.stage for s in tracer.spans]
        assert stages == ["etl_extract", "etl_load"]
        extract, load = tracer.spans
        assert extract.duration_ms == pytest.approx(report.extraction_ms)
        assert extract.attrs["rows"] == 6

    def test_poolral_wrapper_counters_and_span(self):
        from repro.driver import Directory
        from repro.net import SimClock
        from repro.obs.trace import Tracer
        from repro.poolral.ral import PoolRAL
        from repro.poolral.wrapper import PoolRALWrapper

        clock = SimClock()
        directory = Directory()
        db = Database("mart", "mysql")
        db.execute("CREATE TABLE T (A INT PRIMARY KEY)")
        db.execute("INSERT INTO T VALUES (1)")
        db.execute("INSERT INTO T VALUES (2)")
        url = "jdbc:mysql://pc1:3306/mart"
        directory.register(url, db, host_name="pc1")
        metrics = MetricsRegistry()
        tracer = Tracer(clock, "jni")
        wrapper = PoolRALWrapper(
            PoolRAL(directory, clock), tracer=tracer, metrics=metrics
        )
        wrapper.initialize_handler(url)
        rows = wrapper.execute(url, ["A"], ["T"])
        assert rows == [[1], [2]]
        assert metrics.counter("poolral.handles_initialized").value == 1
        assert metrics.counter("poolral.executes").value == 1
        assert metrics.counter("poolral.rows").value == 2
        span = tracer.spans[0]
        assert span.stage == "poolral_execute"
        assert span.attrs["rows"] == 2

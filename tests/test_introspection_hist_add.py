"""Tests for Clarens introspection and histogram merging."""

import numpy as np
import pytest

from repro.analysis import Histogram1D
from repro.common import ClarensFault, DeterministicRNG, ReproError
from repro.core import GridFederation
from repro.engine import Database


@pytest.fixture
def fed():
    federation = GridFederation()
    server = federation.create_server("jc1", "pc1")
    db = Database("m", "mysql")
    db.execute("CREATE TABLE T (A INT PRIMARY KEY)")
    federation.attach_database(server, db)
    client = federation.client("laptop")
    return federation, server, client


class TestIntrospection:
    def test_list_methods(self, fed):
        _, server, client = fed
        methods = client.call(server.server, "system.listMethods")
        assert "dataaccess.query" in methods
        assert "dataaccess.plugin" in methods
        assert "system.listMethods" in methods
        assert methods == sorted(methods)

    def test_method_help_returns_docstring(self, fed):
        _, server, client = fed
        text = client.call(server.server, "system.methodHelp", "dataaccess.query")
        assert "run a query" in text.lower()

    def test_method_help_unknown_faults(self, fed):
        _, server, client = fed
        with pytest.raises(ClarensFault):
            client.call(server.server, "system.methodHelp", "dataaccess.nope")

    def test_introspection_requires_session(self, fed):
        from repro.common import AuthenticationError

        _, server, _ = fed
        with pytest.raises(AuthenticationError):
            server.server.dispatch(None, "system.listMethods", [])


class TestHistogramAddition:
    def make(self, seed, n):
        h = Histogram1D(20, -3.0, 3.0)
        h.fill(DeterministicRNG(seed).normal(0, 1, n))
        return h

    def test_counts_add(self):
        a, b = self.make("a", 500), self.make("b", 300)
        merged = a + b
        assert merged.entries == 800
        assert np.array_equal(merged.counts, a.counts + b.counts)

    def test_moments_add_exactly(self):
        a, b = self.make("a", 500), self.make("b", 300)
        va = DeterministicRNG("a").normal(0, 1, 500)
        vb = DeterministicRNG("b").normal(0, 1, 300)
        merged = a + b
        assert merged.mean == pytest.approx(float(np.concatenate([va, vb]).mean()))

    def test_flows_add(self):
        a = Histogram1D(2, 0, 1)
        a.fill([-5.0, 5.0])
        b = Histogram1D(2, 0, 1)
        b.fill([-1.0])
        merged = a + b
        assert merged.underflow == 2 and merged.overflow == 1

    def test_incompatible_binning_rejected(self):
        a = Histogram1D(10, 0, 1)
        b = Histogram1D(20, 0, 1)
        with pytest.raises(ReproError):
            a + b

    def test_add_non_histogram_not_implemented(self):
        with pytest.raises(TypeError):
            Histogram1D(2, 0, 1) + 3

    def test_use_case_two_marts_one_histogram(self, fed):
        """The grid use: same cut on two marts, merged client-side."""
        federation, server, client = fed
        db2 = Database("m2", "sqlite")
        db2.execute("CREATE TABLE vals (v REAL)")
        for i in range(10):
            db2.execute(f"INSERT INTO vals VALUES ({i / 10})")
        federation.attach_database(server, db2)
        db3 = Database("m3", "mysql")
        db3.execute("CREATE TABLE vals2 (v DOUBLE)")
        for i in range(5):
            db3.execute(f"INSERT INTO vals2 VALUES ({i / 5})")
        federation.attach_database(server, db3)

        from repro.analysis import JASPlugin

        jas = JASPlugin(federation, client, server)
        h1 = jas.histogram_query("SELECT v FROM vals", "v", nbins=10, low=0.0, high=1.0)
        h2 = jas.histogram_query("SELECT v FROM vals2", "v", nbins=10, low=0.0, high=1.0)
        merged = h1 + h2
        assert merged.entries == 15

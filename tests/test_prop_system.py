"""Property-based tests (hypothesis) for system-level invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import Histogram1D
from repro.clarens import decode_payload, encode_payload
from repro.common import DeterministicRNG, SQLType
from repro.dialects import get_dialect
from repro.driver import Directory
from repro.engine import Column, Database
from repro.metadata import DataDictionary, LowerXSpec, generate_lower_xspec
from repro.net import SimClock
from repro.unity import UnityDriver

# -- Clarens codec ---------------------------------------------------------------------

wire_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**50), max_value=2**50),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=40),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(min_size=1, max_size=8), children, max_size=4),
    ),
    max_leaves=20,
)


class TestCodecProperties:
    @given(wire_values)
    @settings(max_examples=150)
    def test_round_trip(self, value):
        method, decoded = decode_payload(encode_payload("svc.m", value))
        assert method == "svc.m"
        assert decoded == value


# -- virtual clock ----------------------------------------------------------------------


class TestClockProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=8))
    def test_run_parallel_is_max(self, durations):
        clock = SimClock()
        clock.advance_ms(5)
        clock.run_parallel([lambda d=d: clock.advance_ms(d) for d in durations])
        assert clock.now_ms == pytest.approx(5 + max(durations))

    @given(st.lists(st.floats(min_value=0, max_value=1e5), max_size=10))
    def test_advance_monotone(self, steps):
        clock = SimClock()
        last = 0.0
        for s in steps:
            clock.advance_ms(s)
            assert clock.now_ms >= last
            last = clock.now_ms


# -- deterministic RNG ---------------------------------------------------------------------


class TestRNGProperties:
    @given(st.text(min_size=1, max_size=12), st.integers(0, 2**31))
    def test_same_name_same_stream(self, name, seed):
        a = DeterministicRNG(name, seed).normal(0, 1, 8)
        b = DeterministicRNG(name, seed).normal(0, 1, 8)
        assert np.array_equal(a, b)

    @given(st.text(min_size=1, max_size=12))
    def test_fork_is_stable_and_distinct(self, child):
        root = DeterministicRNG("root")
        a = root.fork(child).normal(0, 1, 8)
        b = DeterministicRNG("root").fork(child).normal(0, 1, 8)
        assert np.array_equal(a, b)
        if child != "other":
            c = DeterministicRNG("root").fork("other").normal(0, 1, 8)
            assert not np.array_equal(a, c)


# -- histogram mass conservation ----------------------------------------------------------------


class TestHistogramProperties:
    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            max_size=200,
        ),
        st.integers(min_value=1, max_value=50),
    )
    def test_mass_conserved(self, values, nbins):
        h = Histogram1D(nbins, -100.0, 100.0)
        h.fill(values)
        assert h.in_range + h.underflow + h.overflow == len(values)

    @given(
        st.lists(
            st.floats(min_value=-50, max_value=50, allow_nan=False),
            min_size=1,
            max_size=100,
        )
    )
    def test_mean_matches_numpy(self, values):
        h = Histogram1D(10, -100.0, 100.0)
        h.fill(values)
        assert h.mean == pytest.approx(float(np.mean(values)), rel=1e-9, abs=1e-9)


# -- XSpec round trip over generated schemas -------------------------------------------------------

from repro.sql.lexer import KEYWORDS

_colnames = st.from_regex(r"[A-Z][A-Z0-9_]{0,6}", fullmatch=True).filter(
    lambda s: s not in KEYWORDS
)
_coltypes = st.sampled_from(
    ["INTEGER", "BIGINT", "DOUBLE", "VARCHAR(20)", "BOOLEAN", "TIMESTAMP"]
)


@st.composite
def _schemas(draw):
    n_tables = draw(st.integers(1, 3))
    tables = {}
    names = draw(
        st.lists(_colnames, min_size=n_tables, max_size=n_tables, unique_by=str.lower)
    )
    for tname in names:
        cols = draw(
            st.lists(_colnames, min_size=1, max_size=4, unique_by=str.lower)
        )
        types = draw(st.lists(_coltypes, min_size=len(cols), max_size=len(cols)))
        tables[tname] = list(zip(cols, types))
    return tables


class TestXSpecProperties:
    @given(_schemas())
    @settings(max_examples=50, suppress_health_check=[HealthCheck.too_slow])
    def test_generate_serialize_parse_fixed_point(self, schema):
        db = Database("propdb", "mysql")
        for tname, cols in schema.items():
            ddl = ", ".join(f"{c} {t}" for c, t in cols)
            db.execute(f"CREATE TABLE {tname} ({ddl})")
        spec = generate_lower_xspec(db)
        once = spec.to_xml()
        assert LowerXSpec.from_xml(once).to_xml() == once

    @given(_schemas())
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    def test_fingerprint_stable_across_regeneration(self, schema):
        db = Database("propdb", "oracle")
        for tname, cols in schema.items():
            ddl = ", ".join(f"{c} {t}" for c, t in cols)
            db.execute(f"CREATE TABLE {tname} ({ddl})")
        assert (
            generate_lower_xspec(db).fingerprint()
            == generate_lower_xspec(db).fingerprint()
        )


# -- federated execution equals single-engine execution ------------------------------------------------


@st.composite
def _federated_case(draw):
    n_events = draw(st.integers(0, 25))
    n_runs = draw(st.integers(1, 5))
    events = [
        (
            i,
            draw(st.integers(0, n_runs)),  # may reference a missing run
            draw(st.floats(min_value=-100, max_value=100, allow_nan=False)),
        )
        for i in range(n_events)
    ]
    runs = [
        (r, draw(st.sampled_from(["cms", "atlas", "lhcb", "alice"])))
        for r in range(n_runs)
    ]
    threshold = draw(st.integers(-100, 100))
    join_kind = draw(st.sampled_from(["JOIN", "LEFT JOIN"]))
    # optional extra ON conjunct: exercises the left/right pushdown rules
    on_extra = draw(
        st.sampled_from(
            [
                "",
                " AND r.detector <> 'alice'",  # right-side-only predicate
                " AND e.energy > 0",  # left-side-only predicate
                " AND r.detector <> 'alice' AND e.energy > 0",
            ]
        )
    )
    pushdown = draw(st.booleans())
    return events, runs, threshold, join_kind, on_extra, pushdown


class TestFederatedEquivalence:
    @given(_federated_case())
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_federated_equals_reference(self, case):
        events, runs, threshold, join_kind, on_extra, pushdown = case
        # reference: everything in one engine
        ref = Database("ref", "generic")
        ref.execute("CREATE TABLE events (event_id INT, run_id INT, energy DOUBLE)")
        ref.execute("CREATE TABLE runs (run_id INT, detector VARCHAR(10))")
        for row in events:
            ref.execute(f"INSERT INTO events VALUES ({row[0]}, {row[1]}, {row[2]!r})")
        for row in runs:
            ref.execute(f"INSERT INTO runs VALUES ({row[0]}, '{row[1]}')")

        # federation: same rows split across two vendors
        directory = Directory()
        dictionary = DataDictionary()
        edb = Database("edb", "mysql")
        edb.execute("CREATE TABLE EVT (EVENT_ID INT, RUN_ID INT, ENERGY DOUBLE)")
        for row in events:
            edb.execute(f"INSERT INTO EVT VALUES ({row[0]}, {row[1]}, {row[2]!r})")
        eurl = get_dialect("mysql").make_url("h1", None, "edb")
        directory.register(eurl, edb, host_name="h1")
        dictionary.add_database(
            generate_lower_xspec(edb, logical_names={"EVT": "events"}), eurl
        )
        rdb = Database("rdb", "mssql")
        rdb.execute("CREATE TABLE RUNS (RUN_ID INT, DETECTOR NVARCHAR(10))")
        for row in runs:
            rdb.execute(f"INSERT INTO RUNS VALUES ({row[0]}, '{row[1]}')")
        rurl = get_dialect("mssql").make_url("h2", None, "rdb")
        directory.register(rurl, rdb, host_name="h2")
        dictionary.add_database(generate_lower_xspec(rdb), rurl)

        sql = (
            f"SELECT e.event_id, r.detector FROM events e {join_kind} runs r "
            f"ON e.run_id = r.run_id{on_extra} WHERE e.energy > {threshold} "
            f"ORDER BY e.event_id"
        )
        driver = UnityDriver(dictionary, directory, pushdown=pushdown)
        federated = driver.execute(sql)
        reference = ref.execute(sql)
        assert sorted(map(tuple, federated.rows)) == sorted(map(tuple, reference.rows))

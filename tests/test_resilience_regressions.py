"""Regression tests for the failover-path bug sweep.

One class per fixed bug:

1. ``_run_with_failover`` swallowed *every* exception around remote
   discovery (``except (FederationError, Exception)``) — a programming
   error in the RLS client came back as a bogus connection failure.
2. A clock-less service crashed on multi-branch plans
   (``None.run_parallel``).
3. The client session cache keyed only on the user, so a reconnect
   with a wrong password silently rode the old authenticated session;
   and a server restart left clients holding dead session ids.
4. ``ReplicaSelector.score`` trusted the driver directory alone — a
   registered database on a partitioned host was still "available".
5. The partition-timeout path in ``Network.transfer`` charged the
   clock and raised, but nothing counted the event anywhere.
"""

import pytest

from repro.clarens.server import ClarensServer
from repro.common import ConnectionFailedError
from repro.common.errors import AuthenticationError
from repro.core import GridFederation
from repro.core.replicas import ReplicaSelector
from repro.core.service import DataAccessService
from repro.driver.directory import Directory
from repro.engine import Database
from repro.dialects import get_dialect
from repro.net import costs
from repro.net.network import WAN, Network
from repro.net.simclock import SimClock


def make_events_db(name, vendor="mysql", n=10):
    db = Database(name, vendor)
    db.execute("CREATE TABLE EVT (EVENT_ID INT PRIMARY KEY, ENERGY DOUBLE)")
    for i in range(n):
        db.execute(f"INSERT INTO EVT VALUES ({i}, {i * 1.0})")
    return db


@pytest.fixture
def replicated():
    """'events' on two database hosts behind one server."""
    fed = GridFederation()
    server = fed.create_server("jc1", "pc1")
    fed.attach_database(
        server, make_events_db("near_mart"),
        db_host="pcnear", logical_names={"EVT": "events"},
    )
    fed.attach_database(
        server, make_events_db("far_mart", vendor="sqlite"),
        db_host="faraway.cern.ch", logical_names={"EVT": "events"},
    )
    fed.network.set_link("pc1", "faraway.cern.ch", WAN)
    return fed, server


class TestDiscoveryExceptionNarrowed:
    def test_programming_error_in_discovery_propagates(self):
        """Bug 1: a RuntimeError in the RLS path must not be swallowed."""
        fed = GridFederation()
        server = fed.create_server("jc1", "pc1")
        fed.attach_database(
            server, make_events_db("only_mart"), logical_names={"EVT": "events"}
        )
        fed.directory.unregister(server.service.dictionary.url_for("only_mart"))

        def broken_lookup(logical_table):
            raise RuntimeError("bug in the RLS client")

        server.service.rls.lookup = broken_lookup
        with pytest.raises(RuntimeError, match="bug in the RLS client"):
            server.service.execute("SELECT COUNT(*) FROM events")

    def test_exhausted_failover_chains_the_primary_error(self, replicated):
        """The terminal error names its cause instead of hiding it."""
        fed, server = replicated
        for name in ("near_mart", "far_mart"):
            fed.directory.unregister(server.service.dictionary.url_for(name))
        with pytest.raises(ConnectionFailedError) as info:
            server.service.execute("SELECT COUNT(*) FROM events")
        assert isinstance(info.value.__cause__, ConnectionFailedError)
        assert info.value.__cause__ is not info.value


class TestClocklessService:
    def make_clockless_service(self):
        network = Network()
        for host in ("pc1", "dbh"):
            network.add_host(host)
        server = ClarensServer("jc1", "pc1", network, None)
        directory = Directory()
        service = DataAccessService(server, directory, force_jdbc=True)
        # non-pool vendors: POOL-RAL handle initialization charges the
        # clock, and a clock-less service must stay on the JDBC path
        for db in (
            make_events_db("mart_a", vendor="mssql"),
            make_runs_db("mart_b", vendor="mssql"),
        ):
            url = get_dialect(db.vendor).make_url("dbh", None, db.name)
            directory.register(url, db, user="grid", password="grid", host_name="dbh")
            service.register_database(url)
        return service

    def test_multi_branch_plan_without_a_clock(self):
        """Bug 2: two local backends used to hit ``None.run_parallel``."""
        service = self.make_clockless_service()
        answer = service.execute(
            "SELECT COUNT(*) FROM evt e JOIN runs r ON e.event_id = r.run_id"
        )
        assert answer.rows == [(3,)]
        assert answer.distributed


def make_runs_db(name, vendor="sqlite"):
    db = Database(name, vendor)
    db.execute("CREATE TABLE RUNS (RUN_ID INT PRIMARY KEY)")
    for i in range(3):
        db.execute(f"INSERT INTO RUNS VALUES ({i})")
    return db


class TestSessionCacheCredentials:
    @pytest.fixture
    def fed_server_client(self):
        fed = GridFederation()
        server = fed.create_server("jc1", "pc1")
        fed.attach_database(
            server, make_events_db("mart"), logical_names={"EVT": "events"}
        )
        client = fed.client("laptop", user="grid", password="grid")
        return fed, server, client

    def test_wrong_password_cannot_ride_a_cached_session(self, fed_server_client):
        """Bug 3a: same user + wrong password returned the old session."""
        _fed, server, client = fed_server_client
        client.connect(server.server)
        with pytest.raises(AuthenticationError):
            client.connect(server.server, password="stolen-guess")

    def test_server_restart_reauthenticates_transparently(self, fed_server_client):
        """Bug 3b: a dead session id is dropped and the call replayed."""
        _fed, server, client = fed_server_client
        assert client.call(server.server, "dataaccess.ping") == "pong"
        server.server._sessions.clear()  # the server restarts
        assert client.call(server.server, "dataaccess.ping") == "pong"

    def test_live_session_acl_fault_still_raises(self, fed_server_client):
        """The re-auth retry must not eat genuine authorization faults."""
        fed, server, client = fed_server_client
        server.server.add_account("alice", "pw", groups=("users",))
        alice = fed.client("desk", user="alice", password="pw")
        with pytest.raises(AuthenticationError, match="not permitted"):
            # plugin is admin-only; alice's session is alive, so the
            # fault is a real ACL denial, not a stale session
            alice.call(server.server, "dataaccess.plugin", "<x/>", "u", "d")
        assert "jc1" in alice._sessions  # the live session survives


class TestReplicaSelectorReachability:
    def test_partitioned_host_is_not_available(self, replicated):
        """Bug 4: directory registration is not liveness."""
        fed, server = replicated
        selector = ReplicaSelector(fed.network, fed.directory, "pc1")
        assert (
            selector.choose(server.service.dictionary, "events").database_name
            == "near_mart"
        )
        fed.network.fail_host("pcnear")
        choice = selector.choose(server.service.dictionary, "events")
        assert choice.database_name == "far_mart"

    def test_selection_routes_around_dead_host_without_timeout(self):
        fed = GridFederation()
        server = fed.create_server("jc1", "pc1", replica_selection=True)
        fed.attach_database(
            server, make_events_db("near_mart"),
            db_host="pcnear", logical_names={"EVT": "events"},
        )
        fed.attach_database(
            server, make_events_db("far_mart", vendor="sqlite"),
            db_host="faraway.cern.ch", logical_names={"EVT": "events"},
        )
        fed.network.set_link("pc1", "faraway.cern.ch", WAN)
        fed.network.fail_host("pcnear")
        t0 = fed.clock.now_ms
        answer = server.service.execute("SELECT COUNT(*) FROM events")
        assert answer.rows == [(10,)]
        assert fed.clock.now_ms - t0 < costs.PARTITION_TIMEOUT_MS

    def test_all_replicas_dead_leaves_table_unpinned(self, replicated):
        """Planning must not raise; failover/partial handles dead subs."""
        fed, server = replicated
        fed.network.fail_host("pcnear")
        fed.network.fail_host("faraway.cern.ch")
        selector = ReplicaSelector(fed.network, fed.directory, "pc1")
        assert selector.preferences(server.service.dictionary, ["events"]) == {}


class TestPartitionTimeoutAccounting:
    def test_failed_transfer_is_counted_and_observed(self, replicated):
        """Bug 5: the timeout path now feeds counters and observers."""
        fed, server = replicated
        seen = []
        fed.network.add_failure_observer(
            lambda src, dst, nbytes, ms: seen.append((src, dst, nbytes, ms))
        )
        fed.network.fail_host("pcnear")
        fed.network.fail_host("faraway.cern.ch")
        with pytest.raises(ConnectionFailedError):
            server.service.execute("SELECT COUNT(*) FROM events")
        assert fed.network.partition_timeouts >= 1
        assert seen and seen[0][3] == costs.PARTITION_TIMEOUT_MS
        assert (
            server.service.metrics.counter("net.partition_timeouts").value
            == fed.network.partition_timeouts
        )

    def test_observer_can_be_removed(self):
        network = Network()
        network.add_host("a")
        network.add_host("b")
        seen = []

        def observer(*args):
            seen.append(args)

        network.add_failure_observer(observer)
        network.remove_failure_observer(observer)
        network.fail_host("b")
        with pytest.raises(ConnectionFailedError):
            network.transfer("a", "b", 100, SimClock())
        assert seen == []
        assert network.partition_timeouts == 1

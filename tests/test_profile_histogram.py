"""Tests for the profile histogram and its JAS-plugin integration."""

import math

import numpy as np
import pytest

from repro.analysis import Profile1D
from repro.common import DeterministicRNG, ReproError


class TestProfile1D:
    def test_bin_means(self):
        p = Profile1D(2, 0.0, 2.0)
        p.fill([0.5, 0.5, 1.5], [10.0, 20.0, 7.0])
        assert p.bin_mean(0) == pytest.approx(15.0)
        assert p.bin_mean(1) == pytest.approx(7.0)

    def test_empty_bin_is_nan(self):
        p = Profile1D(2, 0.0, 2.0)
        p.fill([0.5], [1.0])
        assert math.isnan(p.bin_mean(1))

    def test_bin_error_matches_standard_error(self):
        p = Profile1D(1, 0.0, 1.0)
        ys = [1.0, 2.0, 3.0, 4.0]
        p.fill([0.5] * 4, ys)
        expected = np.std(ys) / math.sqrt(len(ys))
        assert p.bin_error(0) == pytest.approx(expected)

    def test_error_needs_two_entries(self):
        p = Profile1D(1, 0.0, 1.0)
        p.fill([0.5], [1.0])
        assert math.isnan(p.bin_error(0))

    def test_out_of_range_counted(self):
        p = Profile1D(2, 0.0, 2.0)
        p.fill([5.0, 0.5], [1.0, 1.0])
        assert p.out_of_range == 1
        assert p.entries == 2

    def test_nan_y_skipped(self):
        p = Profile1D(1, 0.0, 1.0)
        p.fill([0.5, 0.5], [float("nan"), 3.0])
        assert p.counts[0] == 1
        assert p.bin_mean(0) == 3.0

    def test_mismatched_fill_raises(self):
        p = Profile1D(1, 0.0, 1.0)
        with pytest.raises(ReproError):
            p.fill([1.0, 2.0], [1.0])

    def test_means_array(self):
        p = Profile1D(3, 0.0, 3.0)
        p.fill([0.5, 1.5], [2.0, 4.0])
        means = p.means()
        assert means[0] == 2.0 and means[1] == 4.0 and math.isnan(means[2])

    def test_render(self):
        p = Profile1D(3, 0.0, 3.0, title="calib")
        p.fill([0.5, 1.5, 1.6], [1.0, 2.0, 3.0])
        text = p.render()
        assert "calib" in text
        assert "(empty)" in text

    def test_render_all_empty(self):
        assert "entries=0" in Profile1D(2, 0, 1).render()

    def test_bad_construction(self):
        with pytest.raises(ReproError):
            Profile1D(0, 0, 1)
        with pytest.raises(ReproError):
            Profile1D(3, 2, 2)

    def test_statistics_match_numpy_per_bin(self):
        rng = DeterministicRNG("prof")
        xs = rng.uniform(0, 10, 2000)
        ys = 2.0 * xs + rng.normal(0, 1, 2000)
        p = Profile1D(10, 0.0, 10.0)
        p.fill(xs, ys)
        for i in range(10):
            mask = (xs >= i) & (xs < i + 1)
            assert p.bin_mean(i) == pytest.approx(float(ys[mask].mean()), rel=1e-9)


class TestProfileViaJAS:
    def test_profile_query_over_grid(self):
        from repro.analysis import JASPlugin
        from repro.core import GridFederation
        from repro.engine import Database

        fed = GridFederation()
        server = fed.create_server("jc1", "pc1")
        db = Database("m", "mysql")
        db.execute("CREATE TABLE cal (channel INT PRIMARY KEY, gain DOUBLE)")
        for ch in range(32):
            db.execute(f"INSERT INTO cal VALUES ({ch}, {1.0 + ch * 0.01})")
        fed.attach_database(server, db)
        client = fed.client("laptop")
        jas = JASPlugin(fed, client, server)
        profile = jas.profile_query(
            "SELECT channel, gain FROM cal", "channel", "gain", nbins=8
        )
        assert profile.entries == 32
        # gains rise with channel: bin means must be increasing
        means = [profile.bin_mean(i) for i in range(8)]
        assert all(b > a for a, b in zip(means, means[1:]))

"""Property: any query the engine executes is lint-clean at ERROR level.

The analyzer's severity calibration promises that ERROR diagnostics only
fire where the engine (or planner) would itself reject the query. We
fuzz random well- and ill-typed queries against a live catalog; whenever
execution succeeds, linting the same SQL must produce zero errors.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import ReproError
from repro.engine import Database
from repro.lint import CatalogSchema, lint_sql


def make_db() -> Database:
    db = Database("prop", "generic")
    db.execute(
        "CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR(8), c DOUBLE, f BOOLEAN)"
    )
    for i in range(5):
        tag = ("hot", "cold", "warm")[i % 3]
        flag = "TRUE" if i % 2 else "FALSE"
        db.execute(f"INSERT INTO t VALUES ({i}, '{tag}', {i * 1.5}, {flag})")
    return db


DB = make_db()
SCHEMA = CatalogSchema(DB)

NUMERIC_ATOMS = st.sampled_from(["a", "c", "0", "2", "3.5"])
TEXT_ATOMS = st.sampled_from(["b", "'hot'", "'cold'", "'zz'"])


def numeric_exprs():
    return st.recursive(
        NUMERIC_ATOMS,
        lambda children: st.one_of(
            st.tuples(children, st.sampled_from(["+", "-", "*"]), children).map(
                lambda t: f"({t[0]} {t[1]} {t[2]})"
            ),
            children.map(lambda e: f"ABS({e})"),
            children.map(lambda e: f"ROUND({e}, 1)"),
            children.map(lambda e: f"-{e}"),
        ),
        max_leaves=4,
    )


def text_exprs():
    return st.recursive(
        TEXT_ATOMS,
        lambda children: st.one_of(
            st.tuples(children, children).map(lambda t: f"({t[0]} || {t[1]})"),
            children.map(lambda e: f"UPPER({e})"),
            children.map(lambda e: f"TRIM({e})"),
        ),
        max_leaves=3,
    )


def predicates():
    comparison = st.one_of(
        st.tuples(
            numeric_exprs(), st.sampled_from(["=", "<>", "<", ">", "<=", ">="]),
            numeric_exprs(),
        ).map(lambda t: f"{t[0]} {t[1]} {t[2]}"),
        st.tuples(
            text_exprs(), st.sampled_from(["=", "<>", "<", ">"]), text_exprs()
        ).map(lambda t: f"{t[0]} {t[1]} {t[2]}"),
        st.tuples(numeric_exprs(), NUMERIC_ATOMS, NUMERIC_ATOMS).map(
            lambda t: f"{t[0]} BETWEEN {t[1]} AND {t[2]}"
        ),
        st.tuples(TEXT_ATOMS, TEXT_ATOMS).map(
            lambda t: f"{t[0]} IN ({t[1]}, 'other')"
        ),
        text_exprs().map(lambda e: f"{e} LIKE '%o%'"),
        st.just("f"),
        st.just("b IS NOT NULL"),
    )
    return st.recursive(
        comparison,
        lambda children: st.one_of(
            st.tuples(children, st.sampled_from(["AND", "OR"]), children).map(
                lambda t: f"({t[0]} {t[1]} {t[2]})"
            ),
            children.map(lambda p: f"NOT ({p})"),
        ),
        max_leaves=3,
    )


# Mixed pool: some of these are deliberately ill-typed (text compared to a
# number, SUM over a varchar) — the engine rejects those, and the property
# only constrains queries that execute.
def any_exprs():
    return st.one_of(numeric_exprs(), text_exprs())


@st.composite
def select_statements(draw):
    shape = draw(st.sampled_from(["plain", "agg", "mixed"]))
    if shape == "agg":
        agg = draw(st.sampled_from(["COUNT(*)", "SUM", "AVG", "MIN", "MAX"]))
        arg = draw(any_exprs())
        item = agg if agg == "COUNT(*)" else f"{agg}({arg})"
        group = draw(st.sampled_from(["", " GROUP BY b", " GROUP BY a"]))
        head = f"SELECT {item} FROM t{group}"
    else:
        n_items = draw(st.integers(min_value=1, max_value=3))
        pool = any_exprs() if shape == "mixed" else numeric_exprs()
        items = ", ".join(draw(pool) for _ in range(n_items))
        head = f"SELECT {items} FROM t"
    if draw(st.booleans()):
        head += f" WHERE {draw(predicates())}"
    if draw(st.booleans()):
        head += f" ORDER BY {draw(st.sampled_from(['a', 'c', 'a DESC']))}"
    return head


@settings(max_examples=200, deadline=None)
@given(select_statements())
def test_executable_queries_are_lint_clean(sql):
    try:
        DB.execute(sql)
    except ReproError:
        return  # engine rejected it; lint may say anything
    report = lint_sql(sql, SCHEMA)
    assert report.errors == [], (
        f"{sql!r} executed fine but lint flagged: {report.format_lines()}"
    )


CORPUS = [
    "SELECT a, b, c FROM t",
    "SELECT * FROM t WHERE a > 1 AND b = 'hot'",
    "SELECT a + c AS s FROM t ORDER BY s",
    "SELECT COUNT(*), SUM(c) FROM t",
    "SELECT b, AVG(c) FROM t GROUP BY b HAVING AVG(c) > 0",
    "SELECT UPPER(b) || '-' || b FROM t",
    "SELECT a FROM t WHERE c BETWEEN 0 AND 10",
    "SELECT a FROM t WHERE b IN ('hot', 'cold')",
    "SELECT a FROM t WHERE a IN (SELECT a FROM t WHERE f)",
    "SELECT MIN(b), MAX(b) FROM t",
    "SELECT CASE WHEN a > 2 THEN 'big' ELSE 'small' END FROM t",
    "SELECT COALESCE(b, 'none') FROM t",
    "SELECT x.a, y.c FROM t x INNER JOIN t y ON x.a = y.a WHERE x.f",
    "SELECT a FROM t WHERE NOT (a > 3) ORDER BY a DESC LIMIT 2",
    "SELECT ROUND(c, 1), ABS(a - 2) FROM t",
]


def test_corpus_executes_and_is_clean():
    for sql in CORPUS:
        DB.execute(sql)  # must not raise
        report = lint_sql(sql, SCHEMA)
        assert report.errors == [], (sql, report.format_lines())

"""Tests for the implemented §6 future-work extensions:
replica selection by network proximity, replica failover, and semantic
schema matching.
"""

import pytest

from repro.common import ConnectionFailedError
from repro.core import GridFederation
from repro.core.replicas import ReplicaSelector
from repro.engine import Database
from repro.metadata import LowerXSpec, generate_lower_xspec
from repro.metadata.semantic import (
    column_similarity,
    find_matches,
    jaccard,
    suggest_logical_names,
    table_similarity,
    tokenize_name,
)
from repro.net.network import WAN


def make_events_db(name, vendor="mysql", n=10):
    db = Database(name, vendor)
    db.execute("CREATE TABLE EVT (EVENT_ID INT PRIMARY KEY, ENERGY DOUBLE)")
    for i in range(n):
        db.execute(f"INSERT INTO EVT VALUES ({i}, {i * 1.0})")
    return db


@pytest.fixture
def replicated_fed():
    """One logical table hosted on a near mart and a far (WAN) mart."""
    fed = GridFederation()
    server = fed.create_server("jc1", "pc1", replica_selection=True)
    near = make_events_db("near_mart")
    far = make_events_db("far_mart")
    fed.attach_database(server, near, db_host="pc1", logical_names={"EVT": "events"})
    fed.attach_database(
        server, far, db_host="faraway.cern.ch", logical_names={"EVT": "events"}
    )
    fed.network.set_link("pc1", "faraway.cern.ch", WAN)
    return fed, server


class TestReplicaSelection:
    def test_both_replicas_registered(self, replicated_fed):
        fed, server = replicated_fed
        assert len(server.service.dictionary.locations("events")) == 2

    def test_selector_ranks_by_link_cost(self, replicated_fed):
        fed, server = replicated_fed
        selector = ReplicaSelector(fed.network, fed.directory, "pc1")
        ranked = selector.rank(server.service.dictionary, "events")
        assert ranked[0].location.database_name == "near_mart"
        assert ranked[0].cost_ms < ranked[1].cost_ms

    def test_service_queries_the_near_replica(self, replicated_fed):
        fed, server = replicated_fed
        # dictionary happens to list near first; force the far one first
        # by rebuilding the dictionary in reverse registration order
        service = server.service
        specs = {
            name: service.dictionary.spec_for(name)
            for name in service.dictionary.databases()
        }
        urls = {name: service.dictionary.url_for(name) for name in specs}
        for name in ("far_mart", "near_mart"):
            service.dictionary.remove_database(name)
        for name in ("far_mart", "near_mart"):
            service.dictionary.add_database(specs[name], urls[name])
        answer = service.execute("SELECT COUNT(*) FROM events")
        # trace the routed sub-query back through the router's directory
        assert answer.rows == [(10,)]
        # with the selector on, the plan must have pinned near_mart even
        # though far_mart is listed first
        plan_pref = service.replica_selector.preferences(
            service.dictionary, ["events"]
        )
        assert plan_pref == {"events": "near_mart"}

    def test_without_selector_first_listed_wins(self):
        fed = GridFederation()
        server = fed.create_server("jc1", "pc1")  # replica_selection off
        assert server.service.replica_selector is None

    def test_failover_skips_dead_replica(self, replicated_fed):
        fed, server = replicated_fed
        selector = ReplicaSelector(fed.network, fed.directory, "pc1")
        near_url = server.service.dictionary.url_for("near_mart")
        fed.directory.unregister(near_url)  # kill the near database process
        choice = selector.choose(server.service.dictionary, "events")
        assert choice.database_name == "far_mart"

    def test_all_replicas_dead_raises(self, replicated_fed):
        fed, server = replicated_fed
        for name in ("near_mart", "far_mart"):
            fed.directory.unregister(server.service.dictionary.url_for(name))
        selector = ReplicaSelector(fed.network, fed.directory, "pc1")
        with pytest.raises(ConnectionFailedError):
            selector.choose(server.service.dictionary, "events")

    def test_preferences_only_for_replicated_tables(self, replicated_fed):
        fed, server = replicated_fed
        single = Database("single_mart", "sqlite")
        single.execute("CREATE TABLE runs (run_id INTEGER PRIMARY KEY)")
        fed.attach_database(server, single, db_host="pc1")
        prefs = server.service.replica_selector.preferences(
            server.service.dictionary, ["events", "runs"]
        )
        assert "events" in prefs and "runs" not in prefs


class TestTokenizer:
    def test_underscore_split(self):
        assert tokenize_name("EVENT_ID") == frozenset({"event", "id"})

    def test_camel_case_split(self):
        assert tokenize_name("runNumber") == frozenset({"run", "number"})

    def test_synonyms_normalize(self):
        assert tokenize_name("EVT_KEY") == frozenset({"event", "id"})
        assert tokenize_name("DET") == frozenset({"detector"})

    def test_plural_singularized(self):
        assert tokenize_name("runs") == frozenset({"run"})

    def test_noise_tokens_dropped(self):
        assert tokenize_name("RUN_INFO") == frozenset({"run"})

    def test_jaccard_bounds(self):
        a = frozenset({"x", "y"})
        assert jaccard(a, a) == 1.0
        assert jaccard(a, frozenset()) == 0.0


class TestSchemaMatching:
    def spec(self, name, vendor, ddl_map):
        db = Database(name, vendor)
        for table, ddl in ddl_map.items():
            db.execute(f"CREATE TABLE {table} ({ddl})")
        return generate_lower_xspec(db)

    def test_same_entity_different_vendors_matches(self):
        a = self.spec(
            "mysql_mart",
            "mysql",
            {"EVT": "EVENT_ID INT PRIMARY KEY, RUN_ID INT, ENERGY DOUBLE"},
        )
        b = self.spec(
            "oracle_mart",
            "oracle",
            {"EVENT_NTUPLE": "EVT_KEY NUMBER(10,0), RUN_NUM NUMBER(10,0), ENE FLOAT"},
        )
        matches = find_matches(a, b)
        assert matches
        best = matches[0]
        assert {best.table_a, best.table_b} == {"EVT", "EVENT_NTUPLE"}
        matched_cols = {(c.column_a, c.column_b) for c in best.columns}
        assert ("EVENT_ID", "EVT_KEY") in matched_cols
        assert ("ENERGY", "ENE") in matched_cols

    def test_unrelated_tables_do_not_match(self):
        a = self.spec("m1", "mysql", {"CALIB": "CHANNEL INT, GAIN DOUBLE"})
        b = self.spec("m2", "mssql", {"USERS": "LOGIN NVARCHAR(20), ACTIVE INT"})
        assert find_matches(a, b) == []

    def test_type_families_gate_column_matches(self):
        a = self.spec("m1", "mysql", {"T": "VALUE DOUBLE"})
        b = self.spec("m2", "mysql", {"T": "VALUE VARCHAR(10)"})
        ca = a.tables[0].columns[0]
        cb = b.tables[0].columns[0]
        assert column_similarity(ca, cb) == 0.0

    def test_table_similarity_symmetric(self):
        a = self.spec("m1", "mysql", {"RUNS": "RUN_ID INT, DETECTOR VARCHAR(10)"})
        b = self.spec("m2", "oracle", {"RUN_INFO": "RUN_NUM NUMBER(10,0), DET VARCHAR2(10)"})
        sab, _ = table_similarity(a.tables[0], b.tables[0])
        sba, _ = table_similarity(b.tables[0], a.tables[0])
        assert sab == pytest.approx(sba)
        assert sab > 0.45

    def test_suggest_logical_names_clusters(self):
        specs = [
            self.spec("s1", "mysql", {"EVT": "EVENT_ID INT, ENERGY DOUBLE"}),
            self.spec("s2", "oracle", {"EVENTS": "EVT_KEY NUMBER(10,0), ENE FLOAT"}),
            self.spec("s3", "mssql", {"EVENT_DATA": "EVENT_ID INT, ENERGY FLOAT"}),
        ]
        suggestions = suggest_logical_names(specs)
        assert len(suggestions) == 1
        members = suggestions[0].members
        assert len(members) == 3
        assert "event" in suggestions[0].logical_name

    def test_suggestion_feeds_dictionary(self):
        """The end-to-end use: matched tables share one logical name."""
        from repro.metadata import DataDictionary

        db1 = Database("s1", "mysql")
        db1.execute("CREATE TABLE EVT (EVENT_ID INT, ENERGY DOUBLE)")
        db2 = Database("s2", "oracle")
        db2.execute("CREATE TABLE EVENTS (EVT_KEY NUMBER(10,0), ENE FLOAT)")
        spec1, spec2 = generate_lower_xspec(db1), generate_lower_xspec(db2)
        suggestion = suggest_logical_names([spec1, spec2])[0]
        name_map_1 = {t: suggestion.logical_name for d, t in suggestion.members if d == "s1"}
        name_map_2 = {t: suggestion.logical_name for d, t in suggestion.members if d == "s2"}
        d = DataDictionary()
        d.add_database(generate_lower_xspec(db1, name_map_1), "jdbc:mysql://h:3306/s1")
        d.add_database(generate_lower_xspec(db2, name_map_2), "jdbc:oracle:thin:@h:1521/s2")
        assert len(d.locations(suggestion.logical_name)) == 2

"""Hypothesis chaos property: queries are never silently wrong.

Random fail/restore schedules run against a resilient federation with a
replicated table. The §4.8 resilience contract, as a single invariant:
every query either

* succeeds with exactly the ground-truth rows,
* returns ``partial=True`` with non-empty failure provenance, or
* raises ``ConnectionFailedError``;

it never returns unflagged wrong or short answers. Exercised both with
``allow_partial`` on (outcomes 1–2) and off (outcomes 1 and 3).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.common import ConnectionFailedError
from repro.core import GridFederation
from repro.engine import Database
from repro.resilience import BreakerConfig, ChaosSchedule, ResilienceConfig

SQL = "SELECT event_id, energy FROM events ORDER BY event_id"
DB_HOSTS = ("pc2", "pc3")


def make_events_db(name, vendor="mysql", n=7):
    db = Database(name, vendor)
    db.execute("CREATE TABLE EVT (EVENT_ID INT PRIMARY KEY, ENERGY DOUBLE)")
    for i in range(n):
        db.execute(f"INSERT INTO EVT VALUES ({i}, {i * 1.0})")
    return db


def build_federation():
    fed = GridFederation()
    config = ResilienceConfig(breaker=BreakerConfig(cooldown_ms=2_000.0))
    server = fed.create_server("jc1", "pc1", resilience=config)
    fed.attach_database(
        server, make_events_db("primary_mart"),
        db_host="pc2", logical_names={"EVT": "events"},
    )
    fed.attach_database(
        server, make_events_db("replica_mart", vendor="sqlite"),
        db_host="pc3", logical_names={"EVT": "events"},
    )
    return fed, server


#: one chaos step: which host, kill or heal, and how long to idle after
chaos_steps = st.lists(
    st.tuples(
        st.sampled_from(DB_HOSTS),
        st.booleans(),  # True = fail, False = restore
        st.floats(min_value=0.0, max_value=5_000.0),
    ),
    min_size=1,
    max_size=8,
)


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(steps=chaos_steps, allow_partial=st.booleans())
def test_chaos_never_silently_wrong(steps, allow_partial):
    fed, server = build_federation()
    truth = server.service.execute(SQL).rows
    assert truth  # the invariant below is vacuous on an empty table

    schedule = ChaosSchedule()
    at = fed.clock.now_ms
    for host, kill, idle_ms in steps:
        at += idle_ms
        if kill:
            schedule.fail_host(at, host)
        else:
            schedule.restore_host(at, host)
    driver = schedule.driver(fed.network, fed.clock)

    while True:
        driver.tick()
        try:
            answer = server.service.execute(SQL, allow_partial=allow_partial)
        except ConnectionFailedError:
            # outcome 3: an honest refusal (includes breaker fast-fails)
            assert not allow_partial or _planning_failed(fed)
        else:
            if answer.partial:
                # outcome 2: flagged degradation with provenance
                assert allow_partial
                assert answer.failures
                assert all(f.error and f.logical_table for f in answer.failures)
            else:
                # outcome 1: the full, correct answer — never short
                assert answer.rows == truth
        if driver.exhausted:
            break
        fed.clock.advance_ms(250.0)


def _planning_failed(fed) -> bool:
    """allow_partial still raises when no sub-query ever ran.

    Degradation is per sub-query; a connection failure *before* the
    fetch stage (e.g. the RLS host itself partitioned) is outcome 3
    even for a partial-tolerant caller. With only database hosts dying
    in this schedule, that cannot happen — so reaching here with
    ``allow_partial`` on is a real violation.
    """
    return False


def test_partial_rows_never_mislabelled():
    """A partial answer's surviving rows are a subset of the truth."""
    fed, server = build_federation()
    truth = server.service.execute(SQL).rows
    fed.network.fail_host("pc2")
    fed.network.fail_host("pc3")
    answer = server.service.execute(SQL, allow_partial=True)
    assert answer.partial and answer.failures
    assert set(answer.rows) <= set(truth)


def test_partial_off_is_the_default():
    fed, server = build_federation()
    fed.network.fail_host("pc2")
    fed.network.fail_host("pc3")
    with pytest.raises(ConnectionFailedError):
        server.service.execute(SQL)

"""Unit tests for the SQL lexer."""

import pytest

from repro.common import SQLSyntaxError
from repro.sql import Token, TokenType, tokenize


def kinds(sql):
    return [(t.type, t.value) for t in tokenize(sql)[:-1]]  # drop EOF


class TestBasicTokens:
    def test_keywords_uppercase(self):
        assert kinds("select from")[0] == (TokenType.KEYWORD, "SELECT")
        assert kinds("select from")[1] == (TokenType.KEYWORD, "FROM")

    def test_identifiers_preserve_case(self):
        assert kinds("MyTable")[0] == (TokenType.IDENT, "MyTable")

    def test_integer_and_float_numbers(self):
        assert kinds("42")[0] == (TokenType.NUMBER, "42")
        assert kinds("3.14")[0] == (TokenType.NUMBER, "3.14")

    def test_exponent_number(self):
        assert kinds("1e5")[0] == (TokenType.NUMBER, "1e5")
        assert kinds("2.5E-3")[0] == (TokenType.NUMBER, "2.5E-3")

    def test_leading_dot_number(self):
        assert kinds(".5")[0] == (TokenType.NUMBER, ".5")

    def test_string_literal(self):
        assert kinds("'hello'")[0] == (TokenType.STRING, "hello")

    def test_string_with_escaped_quote(self):
        assert kinds("'o''brien'")[0] == (TokenType.STRING, "o'brien")

    def test_param_placeholder(self):
        assert kinds("?")[0] == (TokenType.PARAM, "?")

    def test_eof_token_present(self):
        assert tokenize("x")[-1].type is TokenType.EOF


class TestQuotedIdentifiers:
    def test_double_quoted(self):
        assert kinds('"Weird Name"')[0] == (TokenType.IDENT, "Weird Name")

    def test_backtick_quoted(self):
        assert kinds("`col`")[0] == (TokenType.IDENT, "col")

    def test_bracket_quoted(self):
        assert kinds("[col]")[0] == (TokenType.IDENT, "col")

    def test_quoted_keyword_stays_identifier(self):
        assert kinds('"select"')[0] == (TokenType.IDENT, "select")


class TestOperators:
    def test_two_char_operators(self):
        for op in ("<>", "!=", "<=", ">=", "||"):
            assert kinds(f"a {op} b")[1] == (TokenType.OPERATOR, op)

    def test_single_char_operators(self):
        for op in ("=", "<", ">", "+", "-", "*", "/", "%"):
            assert kinds(f"a {op} b")[1] == (TokenType.OPERATOR, op)

    def test_maximal_munch_lt_gt(self):
        # '<>' must not lex as '<' then '>'
        toks = kinds("a<>b")
        assert toks[1] == (TokenType.OPERATOR, "<>")


class TestComments:
    def test_line_comment_skipped(self):
        toks = kinds("SELECT -- comment here\n 1")
        assert [t[1] for t in toks] == ["SELECT", "1"]

    def test_block_comment_skipped(self):
        toks = kinds("SELECT /* anything */ 1")
        assert [t[1] for t in toks] == ["SELECT", "1"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT /* oops")


class TestLexErrors:
    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError) as exc:
            tokenize("SELECT 'abc")
        assert exc.value.position == 7

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(SQLSyntaxError):
            tokenize('SELECT "abc')

    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT ^")

    def test_position_recorded(self):
        toks = tokenize("SELECT x")
        assert toks[0].position == 0
        assert toks[1].position == 7


def test_token_matches_helper():
    tok = Token(TokenType.KEYWORD, "SELECT", 0)
    assert tok.matches(TokenType.KEYWORD)
    assert tok.matches(TokenType.KEYWORD, "SELECT")
    assert not tok.matches(TokenType.KEYWORD, "FROM")
    assert not tok.matches(TokenType.IDENT)

"""Tests for the query workload generator."""

import pytest

from repro.common import DeterministicRNG
from repro.hep.queries import KINDS, QueryWorkload, WorkloadConfig
from repro.sql import parse_select


@pytest.fixture
def workload():
    return QueryWorkload(DeterministicRNG("wl"))


class TestGeneration:
    def test_every_kind_produces_valid_sql(self, workload):
        for kind, specs in workload.by_kind(3).items():
            for spec in specs:
                assert spec.kind == kind
                parse_select(spec.sql)  # must parse

    def test_mix_respects_requested_kinds(self, workload):
        specs = workload.generate(50, mix={"point": 1.0})
        assert all(s.kind == "point" for s in specs)

    def test_deterministic_given_same_stream(self):
        a = QueryWorkload(DeterministicRNG("same")).generate(20)
        b = QueryWorkload(DeterministicRNG("same")).generate(20)
        assert [s.sql for s in a] == [s.sql for s in b]

    def test_mixed_workload_covers_kinds(self, workload):
        specs = workload.generate(200)
        kinds = {s.kind for s in specs}
        assert {"point", "range", "aggregate", "join"} <= kinds

    def test_config_controls_tables(self):
        config = WorkloadConfig(ntuple_table="events", runmeta_table="runs")
        wl = QueryWorkload(DeterministicRNG("c"), config)
        spec = wl.local_join()
        assert "events" in spec.sql and "runs" in spec.sql

    def test_range_bounds_within_table(self, workload):
        for _ in range(20):
            spec = workload.range_scan()
            select = parse_select(spec.sql)
            low = select.where.low.value
            high = select.where.high.value
            assert 1 <= low < high <= 3500

    def test_kinds_constant_is_complete(self, workload):
        assert set(workload.by_kind(1)) == set(KINDS)


class TestWorkloadExecution:
    def test_workload_runs_on_paper_testbed(self):
        from repro.hep.testbed import build_paper_testbed

        tb = build_paper_testbed(ntuple_rows=500, total_tables=40, total_rows=3000)
        wl = QueryWorkload(
            DeterministicRNG("exec"),
            WorkloadConfig(max_event_id=500, max_run_id=150),
        )
        for spec in wl.generate(12):
            answer = tb.server1.service.execute(spec.sql)
            assert answer.columns  # ran and produced a shaped result

"""Invalidation correctness: a cached federation never serves stale rows.

The property test drives a cached and an uncached federation through
the same sequence of operations — queries, schema changes (detected by
the §4.9 tracker), ETL data refreshes (epoch bumps) — and asserts the
cached answers stay byte-identical to the uncached ones after every
step. A separate class pins the opt-in contract: with ``cache=False``
(the default) no cache object is ever allocated.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.clarens.client import ClarensClient
from repro.core.federation import GridFederation
from repro.engine.database import Database
from repro.metadata.dictionary import DataDictionary
from repro.net.network import Network
from repro.net.simclock import SimClock
from repro.unity.driver import UnityDriver
from repro.warehouse.etl import ETLJob, ETLPipeline

Q_LOCAL = "SELECT id, val FROM facts WHERE id <= 500 ORDER BY id"
Q_DISTRIBUTED = (
    "SELECT f.id, d.label FROM facts f JOIN dims d ON f.dim_id = d.k "
    "WHERE f.id <= 500 ORDER BY f.id"
)
QUERIES = (Q_LOCAL, Q_DISTRIBUTED)


class World:
    """One federation (cached or not) plus its ETL refresh machinery."""

    def __init__(self, cache: bool):
        self.fed = GridFederation()
        self.a = self.fed.create_server("srv-a", "a.cern.ch", cache=cache)
        self.b = self.fed.create_server("srv-b", "b.cern.ch", cache=cache)

        self.facts = Database("facts_db", "mysql")
        self.facts.execute(
            "CREATE TABLE FACTS (ID INT PRIMARY KEY, DIM_ID INT, VAL DOUBLE)"
        )
        dims = Database("dims_db", "mssql")
        dims.execute(
            "CREATE TABLE DIMS (K INT PRIMARY KEY, LABEL NVARCHAR(16))"
        )
        for k, label in enumerate(("alpha", "beta", "gamma")):
            dims.execute(f"INSERT INTO DIMS VALUES ({k}, '{label}')")
        self.fed.attach_database(self.a, self.facts, logical_names={"FACTS": "facts"})
        self.fed.attach_database(self.b, dims, logical_names={"DIMS": "dims"})

        # an unfederated operational source feeding facts via ETL
        self.source = Database("ops_src", "oracle")
        self.source.execute(
            "CREATE TABLE SRC (ID INT PRIMARY KEY, DIM_ID INT, VAL DOUBLE)"
        )
        self.fed.add_host("ops.cern.ch", tier=1)
        self.pipeline = ETLPipeline(
            self.fed.network,
            self.fed.clock,
            self.facts,
            "a.cern.ch",
            epochs=self.fed.epochs,  # None in the uncached world
        )
        self.next_id = 0
        self.next_col = 0
        self.seed_rows(5)

    def seed_rows(self, n: int) -> None:
        for _ in range(n):
            i = self.next_id
            self.source.execute(
                f"INSERT INTO SRC VALUES ({i}, {i % 3}, {i * 1.25})"
            )
            self.next_id += 1

    def etl_refresh(self, n_rows: int) -> None:
        """New source rows streamed into the federated facts database."""
        self.seed_rows(n_rows)
        job = ETLJob(
            source=self.source,
            source_host="ops.cern.ch",
            query="SELECT id, dim_id, val FROM src",
            target_table="FACTS",
            target_columns=["ID", "DIM_ID", "VAL"],
        )
        self.pipeline.run_incremental(job, "id", direct=True)

    def schema_change(self) -> None:
        """DDL on the live facts database, noticed by the §4.9 tracker."""
        self.facts.execute(f"ALTER TABLE FACTS ADD COLUMN EXTRA_{self.next_col} INT")
        self.next_col += 1
        self.a.service.tracker.poll()

    def run_queries(self):
        return [self.a.service.execute(sql).rows for sql in QUERIES]


operations = st.lists(
    st.sampled_from(["query", "etl_small", "etl_big", "schema"]),
    max_size=6,
)


class TestInvalidationProperty:
    @given(operations)
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_cached_rows_always_match_uncached(self, ops):
        cached = World(cache=True)
        plain = World(cache=False)
        for op in ops:
            for world in (cached, plain):
                if op == "etl_small":
                    world.etl_refresh(2)
                elif op == "etl_big":
                    world.etl_refresh(7)
                elif op == "schema":
                    world.schema_change()
            got = cached.run_queries()
            expected = plain.run_queries()
            assert got == expected, op
            # warm repeat in the cached world stays self-consistent
            assert cached.run_queries() == expected

    def test_schema_change_invalidates_only_the_changed_database(self):
        world = World(cache=True)
        world.run_queries()
        world.run_queries()  # warm both levels
        epochs_before = world.fed.epochs.as_dict()["epochs"]
        world.schema_change()
        epochs_after = world.fed.epochs.as_dict()["epochs"]
        assert epochs_after.get("facts_db", 0) == epochs_before.get("facts_db", 0) + 1
        assert epochs_after.get("dims_db", 0) == epochs_before.get("dims_db", 0)
        # the facts entries were flushed from server A's sub cache...
        a_tags = {e.tag for e in world.a.service.cache.sub._entries.values()}
        assert "facts_db" not in a_tags
        # ...while server B's dims entries survive (only the changed
        # database's entries are invalidated)
        b_tags = {e.tag for e in world.b.service.cache.sub._entries.values()}
        assert "dims_db" in b_tags


class TestCacheOffAllocatesNothing:
    def test_service_and_federation_hold_no_cache_objects(self):
        fed = GridFederation()
        handle = fed.create_server("srv", "host.cern.ch")
        service = handle.service
        assert service.cache is None
        assert service._peer_client.answer_cache is None
        assert service.tracker.epochs is None
        assert fed.epochs is None

    def test_unity_driver_default_has_no_cache(self):
        driver = UnityDriver(DataDictionary(), None, clock=SimClock())
        assert driver.cache is None

    def test_clarens_client_default_has_no_answer_cache(self):
        client = ClarensClient("c.cern.ch", Network(), SimClock())
        assert client.answer_cache is None

    def test_etl_pipeline_default_has_no_epochs(self):
        net = Network()
        net.add_host("h", 1)
        pipeline = ETLPipeline(net, SimClock(), Database("t", "mysql"), "h")
        assert pipeline.epochs is None

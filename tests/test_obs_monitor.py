"""R-GMA-style monitor tables: telemetry answered with federated SQL."""

import pytest

from repro.core import GridFederation
from repro.engine import Database
from repro.lint import DictionarySchema, lint_sql
from repro.obs.monitor import (
    MONITOR_TABLES,
    TIMESTAMP_COLUMN,
    TIMESTAMP_TYPE,
)


def make_events_db(name="mart", n=5):
    db = Database(name, "mysql")
    db.execute("CREATE TABLE EVT (EVENT_ID INT PRIMARY KEY, ENERGY DOUBLE)")
    for i in range(n):
        db.execute(f"INSERT INTO EVT VALUES ({i}, {i * 2.0})")
    return db


@pytest.fixture
def observed():
    fed = GridFederation()
    server = fed.create_server("jc1", "pc1", observe=True)
    fed.attach_database(server, make_events_db(), logical_names={"EVT": "events"})
    return fed, server


class TestSelfQuerying:
    def test_monitor_spans_through_the_federation(self, observed):
        fed, server = observed
        server.service.execute("SELECT COUNT(*) FROM events")
        finished = len(server.service.tracer.spans)
        answer = server.service.execute("SELECT COUNT(*) FROM monitor_spans")
        assert answer.rows[0][0] >= finished

    def test_span_rows_query_by_stage(self, observed):
        fed, server = observed
        server.service.execute("SELECT COUNT(*) FROM events")
        answer = server.service.execute(
            "SELECT COUNT(*) FROM monitor_spans WHERE stage = 'subquery'"
        )
        assert answer.rows[0][0] == 1
        answer = server.service.execute(
            "SELECT COUNT(*) FROM monitor_spans WHERE duration_ms < 0"
        )
        assert answer.rows[0][0] == 0

    def test_monitor_metrics_rows(self, observed):
        fed, server = observed
        server.service.execute("SELECT COUNT(*) FROM events")
        answer = server.service.execute(
            "SELECT value FROM monitor_metrics "
            "WHERE metric = 'queries' AND kind = 'counter'"
        )
        assert answer.rows == [(1.0,)]

    def test_monitor_queries_status(self, observed):
        fed, server = observed
        server.service.execute("SELECT COUNT(*) FROM events")
        answer = server.service.execute(
            "SELECT status, distributed FROM monitor_queries"
        )
        assert ("ok", 0) in answer.rows

    def test_failed_query_lands_in_monitor_queries(self, observed):
        fed, server = observed
        with pytest.raises(Exception):
            server.service.execute("SELECT COUNT(*) FROM nope", no_forward=True)
        answer = server.service.execute(
            "SELECT COUNT(*) FROM monitor_queries WHERE status <> 'ok'"
        )
        assert answer.rows[0][0] == 1


class TestRemoteMonitorAccess:
    def test_peer_queries_anothers_monitor_tables(self):
        """A non-observing peer reaches an observer's telemetry via RLS."""
        fed = GridFederation()
        observer = fed.create_server("jc-obs", "pc1", observe=True)
        plain = fed.create_server("jc-plain", "pc2")
        fed.attach_database(
            observer, make_events_db(), logical_names={"EVT": "events"}
        )
        observer.service.execute("SELECT COUNT(*) FROM events")
        finished = len(observer.service.tracer.spans)
        answer = plain.service.execute("SELECT COUNT(*) FROM monitor_spans")
        assert answer.distributed is False
        assert answer.routes == ["remote"]
        assert answer.rows[0][0] >= finished

    def test_monitor_tables_published_to_rls(self):
        fed = GridFederation()
        fed.create_server("jc-obs", "pc1", observe=True)
        for table in MONITOR_TABLES:
            assert fed.rls_server.lookup(table)


class TestMonitorSchema:
    def test_monitor_queries_lint_clean(self, observed):
        """The monitor DDL plays by the same rules as any federated table."""
        fed, server = observed
        schema = DictionarySchema(server.service.dictionary)
        for sql in (
            "SELECT stage, AVG(duration_ms) FROM monitor_spans GROUP BY stage",
            "SELECT metric, value FROM monitor_metrics WHERE stat = 'p95'",
            "SELECT sql_text, duration_ms FROM monitor_queries "
            "WHERE duration_ms > 10.0",
        ):
            report = lint_sql(sql, schema)
            assert report.ok, f"{sql!r}: {[str(d) for d in report]}"

    def test_all_three_tables_registered(self, observed):
        fed, server = observed
        for table in MONITOR_TABLES:
            assert server.service.dictionary.has_table(table)

    def test_refresh_guard_prevents_recursion(self, observed):
        fed, server = observed
        monitor = server.service.monitor
        # a refresh while refreshing must not re-enter (or deadlock)
        monitor.refresh()
        assert monitor._refreshing is False

    def test_every_monitor_table_has_the_unified_timestamp(self, observed):
        """Schema unification: one simclock ts column, same name+type
        in every monitor table, so history joins line up."""
        fed, server = observed
        monitor = server.service.monitor
        for name in MONITOR_TABLES:
            columns = monitor.catalog.get_table(name).columns
            ts = [c for c in columns if c.name == TIMESTAMP_COLUMN]
            assert len(ts) == 1, name
            assert ts[0].type.kind.value == TIMESTAMP_TYPE, name

    def test_timestamp_column_queryable_on_every_table(self, observed):
        fed, server = observed
        server.service.execute("SELECT COUNT(*) FROM events")
        for name in MONITOR_TABLES:
            answer = server.service.execute(
                f"SELECT COUNT(*) FROM {name} WHERE {TIMESTAMP_COLUMN} >= 0"
            )
            assert answer.rows[0][0] >= 0, name

    def test_span_and_query_rows_stamp_their_finish_instant(self, observed):
        fed, server = observed
        server.service.execute("SELECT COUNT(*) FROM events")
        answer = server.service.execute(
            "SELECT COUNT(*) FROM monitor_spans WHERE ts_ms <> end_ms"
        )
        assert answer.rows[0][0] == 0
        record = server.service.tracer.queries[0]
        answer = server.service.execute(
            "SELECT ts_ms, duration_ms FROM monitor_queries"
        )
        assert answer.rows[0][0] == pytest.approx(record.end_ms)


class TestObserveOffAllocatesNothing:
    """observe=False: no obs objects exist, answers bit-for-bit equal."""

    def run_query(self, observe):
        fed = GridFederation()
        server = fed.create_server("jc1", "pc1", observe=observe)
        fed.attach_database(
            server, make_events_db(), logical_names={"EVT": "events"}
        )
        answer = server.service.execute(
            "SELECT event_id, energy FROM events ORDER BY event_id"
        )
        return server.service, answer

    def test_no_instrumentation_objects_when_off(self):
        service, answer = self.run_query(observe=False)
        assert service.tracer is None
        assert service.monitor is None
        assert service.profiler is None
        assert service.archiver is None
        assert service.slo is None
        assert answer.profile is None

    def test_rows_bit_for_bit_identical_either_way(self):
        _, off = self.run_query(observe=False)
        _, on = self.run_query(observe=True)
        assert off.rows == on.rows
        assert off.columns == on.columns
        assert off.types == on.types
        assert on.profile is not None

"""Scenario test: a multi-week data-taking campaign, end to end.

Simulates the operational life of the paper's system rather than a
single call: nightly incremental ETL as new runs arrive, conditions
drifting with intervals of validity, mart re-materialization, schema
evolution mid-campaign, a database failure with replica failover, and
analysis queries through the web-service interface throughout. Every
step asserts global invariants (row conservation, value agreement,
monotonic virtual time).
"""

import pytest

from repro.common import DeterministicRNG
from repro.core import GridFederation
from repro.engine import Database
from repro.hep import (
    ConditionsDB,
    create_source_schema,
    etl_jobs_for_source,
    generate_ntuple,
    populate_source,
)
from repro.marts import materialize_view
from repro.warehouse import Warehouse

NVAR = 4
EVENTS_PER_RUN = 25


@pytest.fixture(scope="module")
def campaign():
    rng = DeterministicRNG("campaign")
    fed = GridFederation()
    fed.add_host("tier1.cern.ch", 1)

    source = Database("tier1_source", "oracle")
    create_source_schema(source)
    next_event = populate_source(
        source, rng.fork("night0"),
        {1: generate_ntuple(rng.fork("nt1"), EVENTS_PER_RUN, NVAR)},
    )
    warehouse = Warehouse(fed.network, fed.clock, nvar=NVAR)
    job = etl_jobs_for_source(source, "tier1.cern.ch", NVAR)[0]
    conditions = ConditionsDB(Database("conditions", "oracle"))
    conditions.store("hv_setting", 1500.0, valid_from=1)
    return rng, fed, source, warehouse, job, conditions, next_event


def take_run(source, rng, run_id, first_event_id):
    populate_source(
        source,
        rng.fork(f"night{run_id}"),
        {run_id: generate_ntuple(rng.fork(f"nt{run_id}"), EVENTS_PER_RUN, NVAR)},
        first_event_id=first_event_id,
        n_calibrations=0,
    )
    return first_event_id + EVENTS_PER_RUN


class TestCampaign:
    def test_full_campaign(self, campaign):
        rng, fed, source, warehouse, job, conditions, next_event = campaign
        clock = fed.clock
        pipeline = warehouse.pipeline

        # --- night 0: first full load + verification -----------------------
        report = pipeline.run_incremental(job, "e.event_id")
        assert report.rows == EVENTS_PER_RUN
        assert pipeline.verify(job).ok

        # --- nights 1..3: new runs, incremental loads, drifting conditions --
        for night in (2, 3, 4):
            next_event = take_run(source, rng, night, next_event + 50)
            t0 = clock.now_ms
            delta = pipeline.run_incremental(job, "e.event_id")
            assert delta.rows == EVENTS_PER_RUN
            assert clock.now_ms > t0
            conditions.store("hv_setting", 1500.0 - night, valid_from=night)
        assert warehouse.row_count("event_fact") == 4 * EVENTS_PER_RUN
        assert pipeline.verify(job).ok

        # conditions history: IOV lookups see the right drift
        assert conditions.lookup("hv_setting", 1).value == 1500.0
        assert conditions.lookup("hv_setting", 3).value == 1497.0

        # --- materialize marts, serve them on two servers -------------------
        s1 = fed.create_server("jc1", "pc1.caltech.edu")
        s2 = fed.create_server("jc2", "pc2.caltech.edu")
        mart1 = Database("mart1", "mysql")
        mart2 = Database("mart2", "sqlite")
        fed.add_host("pc1.caltech.edu")
        fed.add_host("pc2.caltech.edu")
        materialize_view(warehouse, "v_event_wide", mart1, "pc1.caltech.edu")
        materialize_view(warehouse, "v_event_wide", mart2, "pc2.caltech.edu")
        fed.attach_database(s1, mart1, db_host="pc1.caltech.edu")
        # the second mart is a *replica*: same logical table on server 2
        fed.attach_database(s2, mart2, db_host="pc2.caltech.edu")

        client = fed.client("laptop.cern.ch")
        outcome = fed.query(
            client, s1, "SELECT COUNT(*) FROM v_event_wide"
        )
        assert outcome.answer.rows == [(4 * EVENTS_PER_RUN,)]

        # --- mid-campaign schema evolution -----------------------------------
        mart1.execute("CREATE TABLE quality_flags (run_id INT PRIMARY KEY, ok INT)")
        mart1.execute("INSERT INTO quality_flags VALUES (1,1),(2,1),(3,0),(4,1)")
        assert s1.service.tracker.poll() == ["mart1"]
        joined = fed.query(
            client,
            s1,
            "SELECT COUNT(*) FROM v_event_wide w JOIN quality_flags q "
            "ON w.run_id = q.run_id WHERE q.ok = 1",
        )
        assert joined.answer.rows == [(3 * EVENTS_PER_RUN,)]

        # --- database failure: queries fail over to the replica ---------------
        url1 = s1.service.dictionary.url_for("mart1")
        fed.directory.unregister(url1)
        survived = s1.service.execute("SELECT COUNT(*) FROM v_event_wide")
        assert survived.rows == [(4 * EVENTS_PER_RUN,)]

        # --- cross-check: replica agrees with the warehouse --------------------
        wh_sum = warehouse.db.execute("SELECT SUM(var_0) FROM event_fact").rows[0][0]
        mart_sum = mart2.execute("SELECT SUM(var_0) FROM v_event_wide").rows[0][0]
        assert mart_sum == pytest.approx(wh_sum)

    def test_virtual_time_reflects_campaign_scale(self, campaign):
        """Four nights of ETL + serving accumulate seconds of simulated
        time, deterministically."""
        _, fed, *_ = campaign
        assert fed.clock.now_ms > 1000

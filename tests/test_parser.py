"""Unit tests for the SQL parser."""

import pytest

from repro.common import SQLSyntaxError, TypeKind
from repro.sql import ast, parse_expression, parse_select, parse_statement


class TestSelectBasics:
    def test_simple_select(self):
        stmt = parse_select("SELECT a, b FROM t")
        assert [i.expr.column for i in stmt.items] == ["a", "b"]
        assert stmt.from_[0].name == "t"

    def test_select_star(self):
        stmt = parse_select("SELECT * FROM t")
        assert isinstance(stmt.items[0].expr, ast.Star)

    def test_qualified_star(self):
        stmt = parse_select("SELECT t.* FROM t")
        assert stmt.items[0].expr == ast.Star(table="t")

    def test_alias_with_as(self):
        stmt = parse_select("SELECT a AS x FROM t")
        assert stmt.items[0].alias == "x"

    def test_alias_without_as(self):
        stmt = parse_select("SELECT a x FROM t")
        assert stmt.items[0].alias == "x"

    def test_table_alias(self):
        stmt = parse_select("SELECT e.a FROM employees e")
        assert stmt.from_[0].alias == "e"
        assert stmt.from_[0].binding == "e"

    def test_distinct(self):
        assert parse_select("SELECT DISTINCT a FROM t").distinct

    def test_where(self):
        stmt = parse_select("SELECT a FROM t WHERE a > 5")
        assert isinstance(stmt.where, ast.BinaryOp)
        assert stmt.where.op == ">"

    def test_group_by_having(self):
        stmt = parse_select(
            "SELECT dept, COUNT(*) FROM t GROUP BY dept HAVING COUNT(*) > 2"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_order_by_directions(self):
        stmt = parse_select("SELECT a FROM t ORDER BY a DESC, b ASC, c")
        assert [o.ascending for o in stmt.order_by] == [False, True, True]

    def test_limit_offset(self):
        stmt = parse_select("SELECT a FROM t LIMIT 10 OFFSET 5")
        assert stmt.limit == 10
        assert stmt.offset == 5

    def test_mssql_top_normalized_to_limit(self):
        stmt = parse_select("SELECT TOP 7 a FROM t")
        assert stmt.limit == 7

    def test_multiple_from_tables(self):
        stmt = parse_select("SELECT * FROM a, b, c")
        assert [t.name for t in stmt.from_] == ["a", "b", "c"]

    def test_scalar_select_without_from(self):
        stmt = parse_select("SELECT 1 + 1")
        assert stmt.from_ == ()


class TestJoins:
    def test_inner_join(self):
        stmt = parse_select("SELECT * FROM a JOIN b ON a.id = b.id")
        assert stmt.joins[0].kind == "INNER"

    def test_explicit_inner_join(self):
        stmt = parse_select("SELECT * FROM a INNER JOIN b ON a.id = b.id")
        assert stmt.joins[0].kind == "INNER"

    def test_left_join(self):
        stmt = parse_select("SELECT * FROM a LEFT JOIN b ON a.id = b.id")
        assert stmt.joins[0].kind == "LEFT"

    def test_left_outer_join(self):
        stmt = parse_select("SELECT * FROM a LEFT OUTER JOIN b ON a.id = b.id")
        assert stmt.joins[0].kind == "LEFT"

    def test_cross_join_has_no_on(self):
        stmt = parse_select("SELECT * FROM a CROSS JOIN b")
        assert stmt.joins[0].kind == "CROSS"
        assert stmt.joins[0].on is None

    def test_chained_joins(self):
        stmt = parse_select(
            "SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y"
        )
        assert len(stmt.joins) == 2

    def test_referenced_tables_includes_joins(self):
        stmt = parse_select("SELECT * FROM a JOIN b ON a.x = b.x")
        assert [t.name for t in stmt.referenced_tables()] == ["a", "b"]


class TestExpressions:
    def test_precedence_and_over_or(self):
        expr = parse_expression("a OR b AND c")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "OR"
        assert isinstance(expr.right, ast.BinaryOp) and expr.right.op == "AND"

    def test_precedence_mul_over_add(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parens_override(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"

    def test_not_in(self):
        expr = parse_expression("x NOT IN (1, 2)")
        assert isinstance(expr, ast.InList) and expr.negated

    def test_between(self):
        expr = parse_expression("x BETWEEN 1 AND 10")
        assert isinstance(expr, ast.Between)

    def test_not_between(self):
        expr = parse_expression("x NOT BETWEEN 1 AND 10")
        assert expr.negated

    def test_like(self):
        expr = parse_expression("name LIKE 'a%'")
        assert isinstance(expr, ast.Like)

    def test_is_null_and_is_not_null(self):
        assert not parse_expression("x IS NULL").negated
        assert parse_expression("x IS NOT NULL").negated

    def test_case_when(self):
        expr = parse_expression("CASE WHEN x > 0 THEN 'pos' ELSE 'neg' END")
        assert isinstance(expr, ast.Case)
        assert expr.else_ is not None

    def test_cast(self):
        expr = parse_expression("CAST(x AS BIGINT)")
        assert isinstance(expr, ast.Cast)
        assert expr.target.kind is TypeKind.BIGINT

    def test_count_star(self):
        expr = parse_expression("COUNT(*)")
        assert isinstance(expr.args[0], ast.Star)

    def test_count_distinct(self):
        expr = parse_expression("COUNT(DISTINCT x)")
        assert expr.distinct

    def test_unary_minus_folds_literal(self):
        assert parse_expression("-5") == ast.Literal(-5)

    def test_boolean_literals(self):
        assert parse_expression("TRUE") == ast.Literal(True)
        assert parse_expression("NULL") == ast.Literal(None)

    def test_params_numbered_in_order(self):
        stmt = parse_select("SELECT a FROM t WHERE x = ? AND y = ?")
        params = [
            n for n in ast.walk(stmt.where) if isinstance(n, ast.Param)
        ]
        assert [p.index for p in params] == [0, 1]

    def test_concat_operator(self):
        expr = parse_expression("a || b")
        assert expr.op == "||"

    def test_scalar_function(self):
        expr = parse_expression("UPPER(name)")
        assert isinstance(expr, ast.FunctionCall)
        assert expr.name == "UPPER"


class TestDDL:
    def test_create_table_columns(self):
        stmt = parse_statement(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR(40) NOT NULL, "
            "score DOUBLE DEFAULT 0.0)"
        )
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.columns[0].primary_key
        assert stmt.columns[1].not_null
        assert stmt.columns[2].has_default and stmt.columns[2].default == 0.0

    def test_create_table_if_not_exists(self):
        stmt = parse_statement("CREATE TABLE IF NOT EXISTS t (x INT)")
        assert stmt.if_not_exists

    def test_table_level_primary_key(self):
        stmt = parse_statement("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))")
        assert stmt.columns[0].primary_key and stmt.columns[1].primary_key

    def test_vendor_type_spellings(self):
        stmt = parse_statement(
            "CREATE TABLE t (a NUMBER(10,0), b VARCHAR2(30), c DATETIME, "
            "d NVARCHAR(20), e CLOB, f DOUBLE PRECISION)"
        )
        kinds = [c.type.kind for c in stmt.columns]
        assert kinds == [
            TypeKind.DECIMAL,
            TypeKind.VARCHAR,
            TypeKind.TIMESTAMP,
            TypeKind.VARCHAR,
            TypeKind.TEXT,
            TypeKind.DOUBLE,
        ]

    def test_create_view(self):
        stmt = parse_statement("CREATE VIEW v AS SELECT a FROM t")
        assert isinstance(stmt, ast.CreateView)

    def test_create_index(self):
        stmt = parse_statement("CREATE UNIQUE INDEX i ON t (a, b)")
        assert stmt.unique and stmt.columns == ("a", "b")

    def test_drop_table_if_exists(self):
        stmt = parse_statement("DROP TABLE IF EXISTS t")
        assert stmt.if_exists

    def test_alter_add_column(self):
        stmt = parse_statement("ALTER TABLE t ADD COLUMN c INT")
        assert stmt.action == "ADD" and stmt.column.name == "c"

    def test_alter_drop_column(self):
        stmt = parse_statement("ALTER TABLE t DROP COLUMN c")
        assert stmt.action == "DROP"

    def test_alter_rename(self):
        stmt = parse_statement("ALTER TABLE t RENAME TO u")
        assert stmt.new_name == "u"


class TestDML:
    def test_insert_values(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(stmt, ast.Insert)
        assert len(stmt.rows) == 2

    def test_insert_select(self):
        stmt = parse_statement("INSERT INTO t SELECT * FROM s")
        assert stmt.select is not None

    def test_update(self):
        stmt = parse_statement("UPDATE t SET a = 1, b = b + 1 WHERE c = 2")
        assert len(stmt.assignments) == 2

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a = 1")
        assert stmt.where is not None


class TestParseErrors:
    def test_trailing_garbage(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("SELECT a FROM t extra garbage here")

    def test_missing_from_table(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("SELECT a FROM")

    def test_bad_statement_start(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("EXPLODE TABLE t")

    def test_parse_select_rejects_insert(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("INSERT INTO t VALUES (1)")

    def test_case_without_when(self):
        with pytest.raises(SQLSyntaxError):
            parse_expression("CASE END")

    def test_limit_requires_integer(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("SELECT a FROM t LIMIT 2.5")


class TestUnparseRoundTrip:
    CASES = [
        "SELECT a, b FROM t",
        "SELECT DISTINCT a FROM t WHERE (a > 5)",
        "SELECT t.a AS x FROM t AS s",
        "SELECT * FROM a INNER JOIN b ON (a.id = b.id)",
        "SELECT * FROM a LEFT JOIN b ON (a.id = b.id) WHERE (b.id IS NULL)",
        "SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept HAVING (COUNT(*) > 1) "
        "ORDER BY n DESC LIMIT 3",
        "SELECT (a + (b * 2)) FROM t",
        "SELECT a FROM t WHERE (x IN (1, 2, 3))",
        "SELECT a FROM t WHERE (x NOT BETWEEN 1 AND 2)",
        "SELECT a FROM t WHERE (name LIKE 'a%')",
        "INSERT INTO t (a) VALUES (1)",
        "UPDATE t SET a = 2 WHERE (b = 3)",
        "DELETE FROM t WHERE (a IS NOT NULL)",
        "CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR(20) NOT NULL)",
        "DROP TABLE IF EXISTS t",
    ]

    @pytest.mark.parametrize("sql", CASES)
    def test_parse_unparse_fixed_point(self, sql):
        first = parse_statement(sql)
        text = first.unparse()
        second = parse_statement(text)
        assert second.unparse() == text

"""Unit tests for the Clarens web-service layer and the RLS."""

import pytest

from repro.clarens import (
    ClarensClient,
    ClarensServer,
    ClarensService,
    decode_payload,
    encode_payload,
    payload_bytes,
)
from repro.common import AuthenticationError, ClarensFault, RLSLookupError
from repro.net import Network, SimClock, costs
from repro.rls import RLSClient, RLSServer


class EchoService(ClarensService):
    service_name = "echo"
    exposed = ("say", "rows", "boom")

    def say(self, text):
        return f"echo: {text}"

    def rows(self, n):
        return [[i, f"row{i}"] for i in range(n)]

    def boom(self):
        raise ClarensFault("echo.boom", "deliberate failure")

    def hidden(self):  # not in exposed
        return "secret"


@pytest.fixture
def world():
    net = Network()
    clock = SimClock()
    net.add_host("serverhost")
    net.add_host("clienthost")
    server = ClarensServer("jc1", "serverhost", net, clock)
    server.register_service(EchoService())
    client = ClarensClient("clienthost", net, clock)
    return net, clock, server, client


class TestCodec:
    CASES = [
        None,
        True,
        False,
        42,
        -1,
        3.5,
        "hello",
        "with <xml> & 'quotes'",
        [1, 2, 3],
        [[1, "a"], [2, None]],
        {"columns": ["a"], "rows": [[1]]},
        [],
    ]

    @pytest.mark.parametrize("value", CASES)
    def test_round_trip(self, value):
        text = encode_payload("m.n", value)
        method, decoded = decode_payload(text)
        assert method == "m.n"
        assert decoded == value

    def test_tuples_decode_as_lists(self):
        _, decoded = decode_payload(encode_payload("m", [(1, 2)]))
        assert decoded == [[1, 2]]

    def test_payload_bytes_grows_with_rows(self):
        small = payload_bytes("m", [[1]] * 10)
        big = payload_bytes("m", [[1]] * 100)
        assert big > small * 5

    def test_unencodable_value_raises(self):
        with pytest.raises(ClarensFault):
            encode_payload("m", object())

    def test_malformed_text_raises(self):
        with pytest.raises(ClarensFault):
            decode_payload("<oops")
        with pytest.raises(ClarensFault):
            decode_payload("<methodCall><methodName>m</methodName></methodCall>")


class TestServer:
    def test_dispatch_requires_session(self, world):
        _, _, server, _ = world
        with pytest.raises(AuthenticationError):
            server.dispatch(None, "echo.say", ["hi"])

    def test_authenticate_rejects_bad_credentials(self, world):
        _, _, server, _ = world
        with pytest.raises(AuthenticationError):
            server.authenticate("grid", "wrong")

    def test_dispatch_unknown_service(self, world):
        _, _, server, _ = world
        session = server.authenticate("grid", "grid")
        with pytest.raises(ClarensFault):
            server.dispatch(session, "nosuch.m", [])

    def test_dispatch_unknown_method(self, world):
        _, _, server, _ = world
        session = server.authenticate("grid", "grid")
        with pytest.raises(ClarensFault):
            server.dispatch(session, "echo.nope", [])

    def test_hidden_methods_not_exposed(self, world):
        _, _, server, _ = world
        session = server.authenticate("grid", "grid")
        with pytest.raises(ClarensFault):
            server.dispatch(session, "echo.hidden", [])

    def test_method_without_dot_rejected(self, world):
        _, _, server, _ = world
        session = server.authenticate("grid", "grid")
        with pytest.raises(ClarensFault):
            server.dispatch(session, "justaname", [])

    def test_closed_session_rejected(self, world):
        _, _, server, _ = world
        session = server.authenticate("grid", "grid")
        server.close_session(session)
        with pytest.raises(AuthenticationError):
            server.dispatch(session, "echo.say", ["x"])

    def test_method_stats_recorded(self, world):
        _, _, server, client = world
        client.call(server, "echo.rows", 5)
        stats = server.method_stats["echo.rows"]
        assert stats.calls == 1
        assert stats.rows_returned == 5


class TestClient:
    def test_call_round_trip(self, world):
        _, _, server, client = world
        assert client.call(server, "echo.say", "hi") == "echo: hi"

    def test_session_cached(self, world):
        _, clock, server, client = world
        client.call(server, "echo.say", "a")
        t = clock.now_ms
        client.call(server, "echo.say", "b")
        # second call pays no session establishment
        assert clock.now_ms - t < costs.CLARENS_SESSION_MS + 10

    def test_disconnect_forces_new_session(self, world):
        _, _, server, client = world
        s1 = client.connect(server)
        client.disconnect(server)
        s2 = client.connect(server)
        assert s1.session_id != s2.session_id

    def test_call_advances_clock(self, world):
        _, clock, server, client = world
        before = clock.now_ms
        client.call(server, "echo.rows", 50)
        assert clock.now_ms > before

    def test_larger_results_cost_more_time(self, world):
        _, clock, server, client = world
        client.connect(server)
        t0 = clock.now_ms
        client.call(server, "echo.rows", 10)
        small = clock.now_ms - t0
        t1 = clock.now_ms
        client.call(server, "echo.rows", 1000)
        large = clock.now_ms - t1
        assert large > small * 3

    def test_traffic_counters(self, world):
        net, _, server, client = world
        client.call(server, "echo.rows", 3)
        assert client.calls_made == 1
        assert client.bytes_sent > 0
        assert client.bytes_received > client.bytes_sent
        assert net.messages >= 4  # auth both ways + request + response


class TestRLS:
    @pytest.fixture
    def rls_world(self):
        net = Network()
        clock = SimClock()
        net.add_host("rls.cern.ch")
        net.add_host("jc1")
        server = RLSServer("rls.cern.ch", clock)
        client = RLSClient("jc1", net, clock, server)
        return clock, server, client

    def test_publish_and_lookup(self, rls_world):
        _, server, client = rls_world
        client.publish("events", "clarens://jc1/s1")
        assert client.lookup("events") == ["clarens://jc1/s1"]

    def test_lookup_missing_raises(self, rls_world):
        _, _, client = rls_world
        with pytest.raises(RLSLookupError):
            client.lookup("ghost")

    def test_replicas_accumulate_in_order(self, rls_world):
        _, server, client = rls_world
        client.publish("events", "clarens://a/s")
        client.publish("events", "clarens://b/s")
        client.publish("events", "clarens://a/s")  # duplicate ignored
        assert client.lookup("events") == ["clarens://a/s", "clarens://b/s"]

    def test_publish_many_single_round_trip(self, rls_world):
        clock, server, client = rls_world
        client.publish_many(["t1", "t2", "t3"], "clarens://a/s")
        assert server.known_tables() == ["t1", "t2", "t3"]

    def test_unpublish(self, rls_world):
        _, server, client = rls_world
        client.publish("events", "clarens://a/s")
        server.unpublish("events", "clarens://a/s")
        with pytest.raises(RLSLookupError):
            client.lookup("events")

    def test_unpublish_server_removes_everywhere(self, rls_world):
        _, server, client = rls_world
        client.publish_many(["t1", "t2"], "clarens://a/s")
        client.publish("t1", "clarens://b/s")
        server.unpublish_server("clarens://a/s")
        assert server.known_tables() == ["t1"]
        assert server.lookup("t1") == ["clarens://b/s"]

    def test_lookup_charges_time(self, rls_world):
        clock, server, client = rls_world
        client.publish("events", "clarens://a/s")
        before = clock.now_ms
        client.lookup("events")
        assert clock.now_ms - before >= costs.RLS_LOOKUP_MS

"""Smoke tests: every example script must run cleanly end to end."""

import importlib
import sys
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLE_NAMES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


@pytest.fixture(autouse=True)
def _examples_on_path():
    sys.path.insert(0, str(EXAMPLES_DIR))
    yield
    sys.path.remove(str(EXAMPLES_DIR))


@pytest.mark.parametrize("name", EXAMPLE_NAMES)
def test_example_runs(name, capsys):
    module = importlib.import_module(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} produced no output"


def test_expected_examples_present():
    assert {
        "quickstart",
        "hep_analysis",
        "grid_federation",
        "schema_evolution",
        "schema_matching",
        "operations",
    } <= set(EXAMPLE_NAMES)

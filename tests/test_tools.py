"""Tests for the benchreport aggregation tool."""

import pathlib

import pytest

from repro.tools.benchreport import collect, main, render_markdown


@pytest.fixture
def results_dir(tmp_path):
    d = tmp_path / "results"
    d.mkdir()
    (d / "fig4_etl_warehouse.txt").write_text(
        "Figure 4 — X\n============\nrow1\nrow2\n"
    )
    (d / "zzz_custom.txt").write_text("Custom\n======\npayload\n")
    (d / "table1_query_response.txt").write_text(
        "Table 1 — Y\n===========\ndata\n"
    )
    return d


class TestCollect:
    def test_preferred_order_first(self, results_dir):
        names = [n for n, _ in collect(results_dir)]
        assert names == ["table1_query_response", "fig4_etl_warehouse", "zzz_custom"]

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect(tmp_path / "nope")


class TestRender:
    def test_sections_become_headings(self, results_dir):
        text = render_markdown(collect(results_dir))
        assert "## Table 1 — Y" in text
        assert "## Figure 4 — X" in text
        assert "payload" in text

    def test_code_blocks_balanced(self, results_dir):
        text = render_markdown(collect(results_dir))
        assert text.count("```") % 2 == 0


class TestMain:
    def test_writes_output_file(self, results_dir, tmp_path, capsys):
        out = tmp_path / "R.md"
        assert main([str(results_dir), "-o", str(out)]) == 0
        assert out.exists()
        assert "3 experiments" in capsys.readouterr().out

    def test_stdout_mode(self, results_dir, capsys):
        assert main([str(results_dir)]) == 0
        assert "# Benchmark results" in capsys.readouterr().out

    def test_empty_dir_errors(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main([str(empty)]) == 1

    def test_real_results_if_present(self):
        real = pathlib.Path("benchmarks/results")
        if not real.is_dir() or not list(real.glob("*.txt")):
            pytest.skip("benchmarks not yet run")
        sections = collect(real)
        assert any(n == "table1_query_response" for n, _ in sections)


class TestTopologyReport:
    def test_describes_full_deployment(self):
        from repro.core import GridFederation
        from repro.engine import Database
        from repro.net.network import WAN
        from repro.tools.topology import describe_federation

        fed = GridFederation()
        s1 = fed.create_server("jc1", "pc1", jdbc_pooling=True)
        s2 = fed.create_server("jc2", "pc2", replica_selection=True)
        db = Database("mart1", "mysql")
        db.execute("CREATE TABLE T (A INT)")
        fed.attach_database(s1, db, logical_names={"T": "events"})
        mart2 = Database("mart2", "mssql")
        mart2.execute("CREATE TABLE R (B INT)")
        fed.attach_database(s2, mart2, db_host="pc2b")
        fed.network.set_link("pc1", "pc2", WAN)

        text = describe_federation(fed)
        assert "jc1 @ pc1 (pooled-jdbc" in text
        assert "replica policy: proximity" in text
        assert "mart1 [mysql/POOL-RAL/local]" in text
        assert "mart2 [mssql/JDBC/local]" in text
        assert "events: clarens://pc1/jc1" in text
        assert "pc1 <-> pc2: 10 Mbps, 45 ms" in text
        assert "virtual time" in text

    def test_marks_failed_hosts(self):
        from repro.core import GridFederation
        from repro.tools.topology import describe_federation

        fed = GridFederation()
        fed.create_server("jc1", "pc1")
        fed.network.fail_host("pc1")
        assert "[DOWN]" in describe_federation(fed)

    def test_long_table_list_truncated(self):
        from repro.core import GridFederation
        from repro.engine import Database
        from repro.tools.topology import describe_federation

        fed = GridFederation()
        s1 = fed.create_server("jc1", "pc1")
        db = Database("many", "mysql")
        for i in range(9):
            db.execute(f"CREATE TABLE T{i} (A INT)")
        fed.attach_database(s1, db)
        assert "+3" in describe_federation(fed)


class TestValidateTool:
    def test_all_checks_pass(self, capsys):
        from repro.tools.validate import main as validate_main

        assert validate_main([]) == 0
        out = capsys.readouterr().out
        assert "all 7 checks passed" in out

    def test_check_registry_populated(self):
        from repro.tools.validate import CHECKS

        names = [n for n, _ in CHECKS]
        assert len(names) == len(set(names)) == 7

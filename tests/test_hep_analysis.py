"""Unit tests for the HEP substrate and the analysis tooling."""

import math

import numpy as np
import pytest

from repro.common import DeterministicRNG, ReproError
from repro.analysis import Histogram1D, Histogram2D
from repro.engine import Database
from repro.hep import (
    create_source_schema,
    generate_ntuple,
    populate_source,
    standard_variables,
)


class TestNtupleGeneration:
    def test_shape(self):
        nt = generate_ntuple(DeterministicRNG("t"), 100, 8)
        assert nt.n_events == 100
        assert nt.nvar == 8
        assert nt.data.shape == (100, 8)

    def test_variable_names(self):
        assert standard_variables(4) == ["E", "PX", "PY", "PZ"]
        names = standard_variables(10)
        assert names[8:] == ["V8", "V9"]

    def test_deterministic(self):
        a = generate_ntuple(DeterministicRNG("same"), 50, 6)
        b = generate_ntuple(DeterministicRNG("same"), 50, 6)
        assert np.array_equal(a.data, b.data)

    def test_different_streams_differ(self):
        a = generate_ntuple(DeterministicRNG("one"), 50, 6)
        b = generate_ntuple(DeterministicRNG("two"), 50, 6)
        assert not np.array_equal(a.data, b.data)

    def test_energy_positive(self):
        nt = generate_ntuple(DeterministicRNG("e"), 500, 8)
        assert (nt.column("E") >= 0).all()

    def test_eta_in_range(self):
        nt = generate_ntuple(DeterministicRNG("eta"), 500, 8)
        eta = nt.column("ETA")
        assert eta.min() >= -2.5 and eta.max() < 2.5

    def test_pt_consistent_with_px_py(self):
        nt = generate_ntuple(DeterministicRNG("pt"), 200, 8)
        pt = nt.column("PT")
        expected = np.hypot(nt.column("PX"), nt.column("PY"))
        assert np.allclose(pt, expected)

    def test_rows_are_python_floats(self):
        nt = generate_ntuple(DeterministicRNG("r"), 5, 3)
        row = nt.rows()[0]
        assert all(isinstance(v, float) for v in row)


class TestSourceSchema:
    @pytest.fixture
    def populated(self):
        db = Database("src", "mysql")
        create_source_schema(db)
        rng = DeterministicRNG("pop")
        ntuples = {
            1: generate_ntuple(rng.fork("1"), 10, 4),
            2: generate_ntuple(rng.fork("2"), 20, 4),
        }
        next_id = populate_source(db, rng, ntuples)
        return db, next_id

    def test_events_loaded(self, populated):
        db, _ = populated
        assert db.execute("SELECT COUNT(*) FROM events").rows == [(30,)]

    def test_eav_values_complete(self, populated):
        db, _ = populated
        assert db.execute("SELECT COUNT(*) FROM event_values").rows == [(120,)]

    def test_event_ids_continuous(self, populated):
        db, next_id = populated
        assert next_id == 31
        ids = db.execute("SELECT MIN(event_id), MAX(event_id) FROM events").rows[0]
        assert ids == (1, 30)

    def test_runs_have_detectors(self, populated):
        db, _ = populated
        for (det,) in db.execute("SELECT DISTINCT detector FROM runs").rows:
            assert det in ("TRACKER", "ECAL", "HCAL", "MUON")

    def test_variables_dictionary(self, populated):
        db, _ = populated
        rows = db.execute(
            "SELECT name FROM variables WHERE ntuple_id = 1 ORDER BY var_index"
        ).rows
        assert [r[0] for r in rows] == ["E", "PX", "PY", "PZ"]

    def test_offset_prevents_collisions(self):
        db = Database("src2", "mysql")
        create_source_schema(db)
        rng = DeterministicRNG("o")
        n1 = populate_source(db, rng, {1: generate_ntuple(rng.fork("a"), 5, 2)})
        populate_source(
            db,
            rng,
            {2: generate_ntuple(rng.fork("b"), 5, 2)},
            first_event_id=n1 + 16,  # past the first batch's calibration ids
        )
        assert db.execute("SELECT COUNT(*) FROM events").rows == [(10,)]


class TestHistogram1D:
    def test_fill_and_counts(self):
        h = Histogram1D(4, 0.0, 4.0)
        h.fill([0.5, 1.5, 1.6, 3.9])
        assert list(h.counts) == [1, 2, 0, 1]

    def test_under_overflow(self):
        h = Histogram1D(2, 0.0, 2.0)
        h.fill([-1.0, 0.5, 5.0])
        assert h.underflow == 1
        assert h.overflow == 1
        assert h.in_range == 1
        assert h.entries == 3

    def test_mean_std_from_values_not_bins(self):
        h = Histogram1D(2, 0.0, 10.0)
        h.fill([2.0, 4.0, 6.0])
        assert h.mean == pytest.approx(4.0)
        assert h.std == pytest.approx(math.sqrt(8.0 / 3.0))

    def test_nan_values_skipped(self):
        h = Histogram1D(2, 0.0, 2.0)
        h.fill([float("nan"), 1.0])
        assert h.entries == 1

    def test_scalar_fill(self):
        h = Histogram1D(2, 0.0, 2.0)
        h.fill(1.0)
        assert h.in_range == 1

    def test_bin_index_edges(self):
        h = Histogram1D(10, 0.0, 1.0)
        assert h.bin_index(-0.01) == -1
        assert h.bin_index(0.0) == 0
        assert h.bin_index(0.9999) == 9
        assert h.bin_index(1.0) == 10  # overflow

    def test_mass_conservation(self):
        h = Histogram1D(16, -3.0, 3.0)
        values = DeterministicRNG("m").normal(0, 1, 10_000)
        h.fill(values)
        assert h.in_range + h.underflow + h.overflow == 10_000

    def test_render_contains_stats(self):
        h = Histogram1D(4, 0.0, 4.0, title="demo")
        h.fill([1.0, 2.0])
        text = h.render()
        assert "demo" in text and "entries=2" in text

    def test_bad_construction(self):
        with pytest.raises(ReproError):
            Histogram1D(0, 0, 1)
        with pytest.raises(ReproError):
            Histogram1D(4, 1, 1)

    def test_empty_histogram_stats(self):
        h = Histogram1D(4, 0, 1)
        assert math.isnan(h.mean)
        assert h.entries == 0
        h.render()  # must not crash


class TestHistogram2D:
    def test_fill_counts(self):
        h = Histogram2D(2, 0, 2, 2, 0, 2)
        h.fill([0.5, 1.5], [0.5, 1.5])
        assert h.counts[0, 0] == 1 and h.counts[1, 1] == 1

    def test_out_of_range_tracked(self):
        h = Histogram2D(2, 0, 2, 2, 0, 2)
        h.fill([5.0], [0.5])
        assert h.out_of_range == 1

    def test_mismatched_lengths_raise(self):
        h = Histogram2D(2, 0, 2, 2, 0, 2)
        with pytest.raises(ReproError):
            h.fill([1.0, 2.0], [1.0])

    def test_render_shape(self):
        h = Histogram2D(10, 0, 1, 4, 0, 1, title="t")
        h.fill([0.5], [0.5])
        lines = h.render().splitlines()
        assert len(lines) == 5  # title + 4 rows
        assert all(len(line) == 10 for line in lines[1:])

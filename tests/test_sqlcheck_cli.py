"""Tests for the ``python -m repro.tools.sqlcheck`` CLI entry point."""

import pytest

from repro.common import SQLType
from repro.metadata import LowerXSpec
from repro.metadata.xspec import XSpecColumn, XSpecTable
from repro.tools.sqlcheck import main, split_statements


def _col(name, sql_type):
    return XSpecColumn(
        name=name.upper(), logical_name=name,
        vendor_type=str(sql_type), logical_type=sql_type,
    )


@pytest.fixture
def xspec_file(tmp_path):
    spec = LowerXSpec(
        database_name="mart1",
        vendor="sqlite",
        tables=(
            XSpecTable(
                name="EVENTS", logical_name="events",
                columns=(
                    _col("run", SQLType.integer()),
                    _col("edep", SQLType.double()),
                    _col("tag", SQLType.varchar(16)),
                ),
                row_count=100,
            ),
        ),
    )
    path = tmp_path / "mart1.xspec.xml"
    path.write_text(spec.to_xml(), encoding="utf-8")
    return str(path)


class TestSplitStatements:
    def test_basic(self):
        assert split_statements("SELECT 1; SELECT 2") == ["SELECT 1", "SELECT 2"]

    def test_semicolon_inside_string(self):
        assert split_statements("SELECT 'a;b' FROM t") == ["SELECT 'a;b' FROM t"]

    def test_escaped_quote(self):
        assert split_statements("SELECT 'it''s;ok' FROM t; SELECT 1") == [
            "SELECT 'it''s;ok' FROM t",
            "SELECT 1",
        ]

    def test_trailing_and_empty(self):
        assert split_statements(" ;; SELECT 1 ; ") == ["SELECT 1"]


class TestExitCodes:
    def test_clean_query_exits_zero(self, xspec_file, capsys):
        code = main(["--xspec", xspec_file, "--sql",
                     "SELECT run, SUM(edep) FROM events GROUP BY run"])
        assert code == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_unknown_column_exits_one(self, xspec_file, capsys):
        code = main(["--xspec", xspec_file, "--sql",
                     "SELECT no_col FROM events"])
        assert code == 1
        assert "RPR102" in capsys.readouterr().out

    def test_vendor_incompatible_function_exits_one(self, xspec_file, capsys):
        # the simulated sqlite dialect has no SQRT
        code = main(["--xspec", xspec_file, "--sql",
                     "SELECT SQRT(edep) FROM events"])
        assert code == 1
        assert "RPR401" in capsys.readouterr().out

    def test_warnings_alone_exit_zero(self, xspec_file, capsys):
        code = main(["--xspec", xspec_file, "--sql",
                     "SELECT edep FROM events WHERE 1"])
        assert code == 0
        assert "RPR202" in capsys.readouterr().out

    def test_sql_file_operand(self, xspec_file, tmp_path, capsys):
        sql_path = tmp_path / "queries.sql"
        sql_path.write_text(
            "SELECT run FROM events;\nSELECT bogus FROM events;\n",
            encoding="utf-8",
        )
        code = main(["--xspec", xspec_file, str(sql_path)])
        assert code == 1
        out = capsys.readouterr().out
        assert "queries.sql" in out and "RPR102" in out

    def test_missing_xspec_file_exits_two(self, tmp_path, capsys):
        code = main(["--xspec", str(tmp_path / "nope.xml"), "--sql", "SELECT 1"])
        assert code == 2


class TestFlags:
    def test_disable(self, xspec_file):
        assert main(["--xspec", xspec_file, "--disable", "RPR401",
                     "--sql", "SELECT SQRT(edep) FROM events"]) == 0

    def test_severity_promotion(self, xspec_file):
        assert main(["--xspec", xspec_file, "--severity", "RPR202=error",
                     "--sql", "SELECT edep FROM events WHERE 1"]) == 1

    def test_severity_demotion(self, xspec_file):
        assert main(["--xspec", xspec_file, "--severity", "RPR401=warning",
                     "--sql", "SELECT SQRT(edep) FROM events"]) == 0

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RPR001", "RPR101", "RPR201", "RPR501"):
            assert code in out

    def test_self_test_passes(self, capsys):
        assert main(["--self-test"]) == 0
        assert "all 8 cases passed" in capsys.readouterr().out

"""Hypothesis properties: archiver rollups conserve, percentiles stay honest.

Random interleavings of metric activity, clock advances and snapshots
drive a :class:`MetricsArchiver`; after any such history:

* **conservation** — every series reports identical sample/sum/bad
  totals at every rollup resolution, eviction remainders included;
* **bounded estimation** — a window percentile, when it exists, never
  leaves the [min, max] actually observed in that window's buckets.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.simclock import SimClock
from repro.obs.archive import RAW_RESOLUTION_MS, MetricsArchiver
from repro.obs.metrics import MetricsRegistry

# one operation of the random schedule
ops = st.one_of(
    st.tuples(st.just("count"), st.integers(min_value=0, max_value=20)),
    st.tuples(st.just("observe"), st.floats(0.0, 5_000.0)),
    st.tuples(st.just("gauge"), st.floats(-100.0, 100.0)),
    st.tuples(st.just("advance"), st.floats(1.0, 3_000.0)),
    st.tuples(st.just("snapshot"), st.just(0)),
)


def run_schedule(schedule, raw_cap=8, rollup_cap=4):
    """Drive an archiver (tiny rings, so eviction happens) and return it."""
    clock = SimClock()
    registry = MetricsRegistry()
    archiver = MetricsArchiver(
        registry, clock, interval_ms=50.0,
        raw_cap=raw_cap, rollup_cap=rollup_cap,
    )
    archiver.watch_threshold("query_ms", 1_000.0)
    expected = {"queries": 0.0, "query_ms": 0.0}
    observed = 0
    for op, arg in schedule:
        if op == "count":
            registry.counter("queries").inc(arg)
            expected["queries"] += arg
        elif op == "observe":
            registry.histogram("query_ms").observe(arg)
            expected["query_ms"] += arg
            observed += 1
        elif op == "gauge":
            registry.gauge("pool").set(arg)
        elif op == "advance":
            clock.advance_ms(arg)
        else:
            archiver.snapshot()
    archiver.snapshot()  # flush whatever is left
    return archiver, expected, observed


class TestArchiveProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(ops, min_size=1, max_size=60))
    def test_totals_conserved_at_every_resolution(self, schedule):
        archiver, expected, observed = run_schedule(schedule)
        for name, series in archiver.series.items():
            raw = series.totals(RAW_RESOLUTION_MS)
            for res in series.resolutions:
                t = series.totals(res)
                assert t.samples == pytest.approx(raw.samples), (name, res)
                assert t.total == pytest.approx(raw.total), (name, res)
                assert t.bad == pytest.approx(raw.bad), (name, res)
        # and the archive as a whole never lost a counted event
        queries = archiver.series_for("queries")
        if queries is not None:
            assert queries.totals().total == pytest.approx(expected["queries"])
        hist = archiver.series_for("query_ms")
        if hist is not None:
            assert hist.totals().total == pytest.approx(expected["query_ms"])
            assert hist.totals().samples == pytest.approx(observed)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(ops, min_size=1, max_size=60),
        st.floats(min_value=0.5, max_value=100.0),
        st.floats(min_value=100.0, max_value=60_000.0),
    )
    def test_window_percentile_inside_window_min_max(
        self, schedule, p, window_ms
    ):
        archiver, _, _ = run_schedule(schedule)
        now = archiver.now_ms
        for series in archiver.series.values():
            for res in series.resolutions:
                estimate = series.window_percentile(p, window_ms, now, res)
                in_window = [
                    b for b in series.buckets(res)
                    if b.t_ms >= now - window_ms and b.samples > 0
                ]
                if not in_window:
                    assert estimate is None
                    continue
                lo = min(
                    b.vmin for b in in_window if b.vmin is not None
                )
                hi = max(
                    b.vmax for b in in_window if b.vmax is not None
                )
                assert lo - 1e-9 <= estimate <= hi + 1e-9

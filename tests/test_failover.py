"""Failure-injection tests: dead databases, dead servers, replica failover."""

import pytest

from repro.common import ConnectionFailedError
from repro.common.errors import FederationError
from repro.core import GridFederation
from repro.engine import Database


def make_events_db(name, n=10, vendor="mysql"):
    db = Database(name, vendor)
    db.execute("CREATE TABLE EVT (EVENT_ID INT PRIMARY KEY, ENERGY DOUBLE)")
    for i in range(n):
        db.execute(f"INSERT INTO EVT VALUES ({i}, {i * 1.0})")
    return db


@pytest.fixture
def replicated():
    """'events' hosted on two databases behind one server."""
    fed = GridFederation()
    server = fed.create_server("jc1", "pc1")
    primary = make_events_db("primary_mart")
    # the replica uses a different vendor, exercising re-planning
    replica = make_events_db("replica_mart", vendor="sqlite")
    fed.attach_database(server, primary, logical_names={"EVT": "events"})
    fed.attach_database(server, replica, db_host="pc2", logical_names={"EVT": "events"})
    return fed, server


class TestSubQueryFailover:
    def test_query_survives_primary_death(self, replicated):
        fed, server = replicated
        url = server.service.dictionary.url_for("primary_mart")
        fed.directory.unregister(url)  # the database process dies
        answer = server.service.execute("SELECT COUNT(*) FROM events")
        assert answer.rows == [(10,)]

    def test_failover_works_inside_a_join(self, replicated):
        fed, server = replicated
        runs = Database("runs_mart", "mssql")
        runs.execute("CREATE TABLE RUNS (RUN_ID INT PRIMARY KEY)")
        runs.execute("INSERT INTO RUNS VALUES (0)")
        fed.attach_database(server, runs)
        url = server.service.dictionary.url_for("primary_mart")
        fed.directory.unregister(url)
        answer = server.service.execute(
            "SELECT COUNT(*) FROM events e JOIN runs r ON e.event_id = r.run_id"
        )
        assert answer.rows == [(1,)]

    def test_all_replicas_dead_raises(self, replicated):
        fed, server = replicated
        for name in ("primary_mart", "replica_mart"):
            fed.directory.unregister(server.service.dictionary.url_for(name))
        with pytest.raises(ConnectionFailedError):
            server.service.execute("SELECT COUNT(*) FROM events")

    def test_no_replica_means_original_error(self):
        fed = GridFederation()
        server = fed.create_server("jc1", "pc1")
        only = make_events_db("only_mart")
        fed.attach_database(server, only, logical_names={"EVT": "events"})
        fed.directory.unregister(server.service.dictionary.url_for("only_mart"))
        with pytest.raises(ConnectionFailedError):
            server.service.execute("SELECT COUNT(*) FROM events")

    def test_failover_answers_match_primary(self, replicated):
        fed, server = replicated
        before = server.service.execute("SELECT event_id FROM events ORDER BY event_id")
        fed.directory.unregister(server.service.dictionary.url_for("primary_mart"))
        after = server.service.execute("SELECT event_id FROM events ORDER BY event_id")
        assert after.rows == before.rows


class TestRemoteDiscoveryFailover:
    def test_stale_rls_entry_skipped(self):
        """The RLS lists a dead server first; discovery moves on."""
        fed = GridFederation()
        s1 = fed.create_server("jc1", "pc1")
        s2 = fed.create_server("jc2", "pc2")
        db = make_events_db("mart_b")
        fed.attach_database(s2, db, logical_names={"EVT": "events"})
        # poison the RLS with a dead server URL listed FIRST
        fed.rls_server._mappings["events"].insert(0, "clarens://ghost/jcX")
        answer = s1.service.execute("SELECT COUNT(*) FROM events")
        assert answer.rows == [(10,)]

    def test_every_rls_entry_dead_raises(self):
        fed = GridFederation()
        s1 = fed.create_server("jc1", "pc1")
        fed.rls_server._mappings["events"] = ["clarens://ghost/jcX"]
        with pytest.raises(FederationError):
            s1.service.execute("SELECT COUNT(*) FROM events")

    def test_remote_server_vanishes_after_discovery(self):
        """A cached remote location whose server dies raises cleanly."""
        fed = GridFederation()
        s1 = fed.create_server("jc1", "pc1")
        s2 = fed.create_server("jc2", "pc2")
        db = make_events_db("mart_b")
        fed.attach_database(s2, db, logical_names={"EVT": "events"})
        assert s1.service.execute("SELECT COUNT(*) FROM events").rows == [(10,)]
        # the remote database process dies; forwarded queries now fail
        fed.directory.unregister(s2.service.dictionary.url_for("mart_b"))
        with pytest.raises(ConnectionFailedError):
            s1.service.execute("SELECT COUNT(*) FROM events")


class TestAuthFailures:
    def test_wrong_service_credentials_rejected(self):
        fed = GridFederation()
        s1 = fed.create_server("jc1", "pc1")
        client = fed.client("laptop")
        from repro.common import AuthenticationError

        with pytest.raises(AuthenticationError):
            client.connect(s1.server, user="intruder", password="nope")

    def test_database_credentials_checked_on_jdbc_path(self):
        fed = GridFederation()
        s1 = fed.create_server("jc1", "pc1")
        db = Database("locked", "mssql")
        db.execute("CREATE TABLE T (A INT)")
        from repro.dialects import get_dialect

        url = get_dialect("mssql").make_url("pc1", None, "locked")
        fed.directory.register(url, db, user="dba", password="secret", host_name="pc1")
        # service registers with default grid/grid credentials -> POOL init
        # is skipped (mssql unsupported) and JDBC connect later fails auth
        from repro.common import AuthenticationError

        s1.service.register_database(url)
        with pytest.raises(AuthenticationError):
            s1.service.execute("SELECT a FROM t")


class TestCrossServerFailover:
    def test_failover_to_replica_on_another_server(self):
        """The dead database's only replica lives behind a different
        JClarens server: failover goes through the RLS + forwarding."""
        fed = GridFederation()
        s1 = fed.create_server("jc1", "pc1")
        s2 = fed.create_server("jc2", "pc2")
        local = make_events_db("local_mart")
        remote = make_events_db("remote_mart", vendor="sqlite")
        fed.attach_database(s1, local, logical_names={"EVT": "events"})
        fed.attach_database(s2, remote, db_host="pc2", logical_names={"EVT": "events"})
        # the local copy dies
        fed.directory.unregister(s1.service.dictionary.url_for("local_mart"))
        answer = s1.service.execute("SELECT COUNT(*) FROM events")
        assert answer.rows == [(10,)]
        assert fed.rls_server.lookups >= 1

    def test_failover_preserves_filtered_results(self):
        fed = GridFederation()
        s1 = fed.create_server("jc1", "pc1")
        s2 = fed.create_server("jc2", "pc2")
        local = make_events_db("local_mart")
        remote = make_events_db("remote_mart", vendor="sqlite")
        fed.attach_database(s1, local, logical_names={"EVT": "events"})
        fed.attach_database(s2, remote, db_host="pc2", logical_names={"EVT": "events"})
        expected = s1.service.execute(
            "SELECT event_id FROM events WHERE energy > 4 ORDER BY event_id"
        ).rows
        fed.directory.unregister(s1.service.dictionary.url_for("local_mart"))
        survived = s1.service.execute(
            "SELECT event_id FROM events WHERE energy > 4 ORDER BY event_id"
        ).rows
        assert survived == expected

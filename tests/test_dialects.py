"""Unit tests for vendor dialect personalities."""

import pytest

from repro.common import SQLType, TypeKind, UnsupportedVendorError
from repro.common.errors import ConnectionFailedError
from repro.dialects import available_vendors, get_dialect
from repro.engine import Column, Database
from repro.sql import parse_select


@pytest.fixture(params=["oracle", "mysql", "mssql", "sqlite"])
def dialect(request):
    return get_dialect(request.param)


class TestRegistry:
    def test_builtin_vendors_present(self):
        vendors = available_vendors()
        for name in ("oracle", "mysql", "mssql", "sqlite", "generic"):
            assert name in vendors

    def test_lookup_case_insensitive(self):
        assert get_dialect("Oracle").name == "oracle"

    def test_unknown_vendor_raises(self):
        with pytest.raises(UnsupportedVendorError):
            get_dialect("db2")


class TestTypeMapping:
    def test_every_kind_has_a_spelling(self, dialect):
        for kind in TypeKind:
            text = dialect.format_type(SQLType(kind, length=10, precision=10, scale=2))
            assert text

    def test_oracle_number_types(self):
        oracle = get_dialect("oracle")
        assert oracle.format_type(SQLType.integer()) == "NUMBER(10,0)"
        assert oracle.format_type(SQLType.varchar(30)) == "VARCHAR2(30)"
        assert oracle.format_type(SQLType.text()) == "CLOB"

    def test_mysql_types(self):
        mysql = get_dialect("mysql")
        assert mysql.format_type(SQLType.integer()) == "INT"
        assert mysql.format_type(SQLType.timestamp()) == "DATETIME"

    def test_sqlite_flattens_to_affinities(self):
        sqlite = get_dialect("sqlite")
        assert sqlite.format_type(SQLType.varchar(10)) == "TEXT"
        assert sqlite.format_type(SQLType.double()) == "REAL"

    def test_mssql_nvarchar(self):
        assert get_dialect("mssql").format_type(SQLType.varchar(20)) == "NVARCHAR(20)"


class TestDDLRoundTrip:
    def test_vendor_ddl_reparses_in_engine(self, dialect):
        """Every vendor's CREATE TABLE must be accepted by the engine."""
        columns = [
            Column("id", SQLType.integer(), primary_key=True, not_null=True),
            Column("name", SQLType.varchar(32), not_null=True),
            Column("score", SQLType.double()),
            Column("flag", SQLType.boolean()),
            Column("blob_col", SQLType(TypeKind.BLOB)),
        ]
        ddl = dialect.render_create_table("things", columns)
        db = Database("x", dialect.name)
        db.execute(ddl)
        table = db.catalog.get_table("things")
        assert table.column_names[0] == "id"
        assert [c.primary_key for c in table.columns][0] is True

    def test_default_value_preserved(self, dialect):
        columns = [Column("a", SQLType.integer(), default=7, has_default=True)]
        ddl = dialect.render_create_table("t", columns)
        db = Database("x", dialect.name)
        db.execute(ddl)
        db.execute("INSERT INTO t (a) VALUES (1)")
        assert db.catalog.get_table("t").columns[0].has_default


class TestInsertRendering:
    def test_multirow_vendors_emit_one_statement(self):
        mysql = get_dialect("mysql")
        stmts = mysql.render_insert("t", ["a"], [(1,), (2,), (3,)])
        assert len(stmts) == 1
        assert "VALUES (1), (2), (3)" in stmts[0]

    def test_oracle_emits_per_row_statements(self):
        oracle = get_dialect("oracle")
        stmts = oracle.render_insert("t", ["a"], [(1,), (2,)])
        assert len(stmts) == 2

    def test_mssql_emits_per_row_statements(self):
        assert len(get_dialect("mssql").render_insert("t", ["a"], [(1,), (2,)])) == 2

    def test_rendered_insert_executes(self, dialect):
        db = Database("x", dialect.name)
        db.execute("CREATE TABLE t (a INT, b VARCHAR(10))")
        for stmt in dialect.render_insert("t", ["a", "b"], [(1, "x"), (2, "o'k")]):
            db.execute(stmt)
        assert db.execute("SELECT COUNT(*) FROM t").rows == [(2,)]
        assert db.execute("SELECT b FROM t WHERE a = 2").rows == [("o'k",)]


class TestLimitRendering:
    SELECT = "SELECT a FROM t ORDER BY a LIMIT 5"

    def test_mysql_keeps_limit(self):
        text = get_dialect("mysql").render_select(parse_select(self.SELECT))
        assert "LIMIT 5" in text

    def test_mssql_uses_top(self):
        text = get_dialect("mssql").render_select(parse_select(self.SELECT))
        assert text.startswith("SELECT TOP 5")
        assert "LIMIT" not in text

    def test_mssql_top_with_distinct(self):
        text = get_dialect("mssql").render_select(
            parse_select("SELECT DISTINCT a FROM t LIMIT 3")
        )
        assert text.startswith("SELECT DISTINCT TOP 3")

    def test_oracle_strips_limit_for_client_side(self):
        oracle = get_dialect("oracle")
        text = oracle.render_select(parse_select(self.SELECT))
        assert "LIMIT" not in text
        assert oracle.limit_applied_client_side

    def test_rendered_top_reparses(self):
        text = get_dialect("mssql").render_select(parse_select(self.SELECT))
        assert parse_select(text).limit == 5


class TestConnectionURLs:
    def test_url_round_trip(self, dialect):
        url = dialect.make_url("host.example.org", None, "mydb")
        parsed = dialect.parse_url(url)
        assert parsed.vendor == dialect.name
        assert parsed.database == "mydb"
        assert parsed.host in url

    def test_oracle_thin_format(self):
        url = get_dialect("oracle").make_url("db.cern.ch", 1521, "lhc")
        assert url == "jdbc:oracle:thin:@db.cern.ch:1521/lhc"

    def test_mssql_semicolon_format(self):
        url = get_dialect("mssql").make_url("win2k", None, "mart")
        assert url == "jdbc:sqlserver://win2k:1433;databaseName=mart"

    def test_sqlite_file_format(self):
        url = get_dialect("sqlite").make_url("laptop", None, "local")
        assert url == "jdbc:sqlite:/laptop/local.db"

    def test_wrong_scheme_rejected(self):
        with pytest.raises(ConnectionFailedError):
            get_dialect("mysql").parse_url("jdbc:oracle:thin:@h:1521/x")

    def test_bad_port_rejected(self):
        with pytest.raises(ConnectionFailedError):
            get_dialect("mysql").parse_url("jdbc:mysql://h:notaport/db")

    def test_missing_database_rejected(self):
        with pytest.raises(ConnectionFailedError):
            get_dialect("mysql").parse_url("jdbc:mysql://hostonly")


class TestPoolSupportMatrix:
    def test_paper_support_matrix(self):
        assert get_dialect("oracle").pool_supported
        assert get_dialect("mysql").pool_supported
        assert get_dialect("sqlite").pool_supported
        assert not get_dialect("mssql").pool_supported


class TestQuoting:
    def test_quote_styles(self):
        assert get_dialect("mysql").quote_ident("x") == "`x`"
        assert get_dialect("mssql").quote_ident("x") == "[x]"
        assert get_dialect("oracle").quote_ident("x") == '"x"'

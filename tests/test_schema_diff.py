"""Tests for XSpec schema diffing and the tracker's change log."""

import pytest

from repro.engine import Database
from repro.metadata import SchemaTracker, generate_lower_xspec
from repro.metadata.diff import diff_specs


def spec_of(ddl_map, name="d", vendor="mysql"):
    db = Database(name, vendor)
    for table, ddl in ddl_map.items():
        db.execute(f"CREATE TABLE {table} ({ddl})")
    return generate_lower_xspec(db)


class TestDiffSpecs:
    def test_identical_specs_empty_diff(self):
        a = spec_of({"T": "A INT, B DOUBLE"})
        b = spec_of({"T": "A INT, B DOUBLE"})
        diff = diff_specs(a, b)
        assert diff.empty
        assert diff.summary() == "no structural change"

    def test_added_and_removed_tables(self):
        old = spec_of({"KEEP": "A INT", "GONE": "A INT"})
        new = spec_of({"KEEP": "A INT", "FRESH": "A INT"})
        diff = diff_specs(old, new)
        assert diff.added_tables == ["FRESH"]
        assert diff.removed_tables == ["GONE"]

    def test_column_addition_and_removal(self):
        old = spec_of({"T": "A INT, OLDCOL INT"})
        new = spec_of({"T": "A INT, NEWCOL DOUBLE"})
        diff = diff_specs(old, new)
        td = diff.table_diffs[0]
        assert td.added_columns == ["NEWCOL"]
        assert td.removed_columns == ["OLDCOL"]

    def test_type_change_detected(self):
        old = spec_of({"T": "A INT"})
        new = spec_of({"T": "A DOUBLE"})
        change = diff_specs(old, new).table_diffs[0].changed_columns[0]
        assert change.column == "A"
        assert "INT" in change.before and "DOUBLE" in change.after

    def test_nullability_change_detected(self):
        old = spec_of({"T": "A INT"})
        new = spec_of({"T": "A INT NOT NULL"})
        changes = diff_specs(old, new).table_diffs[0].changed_columns
        assert changes and "NOT NULL" in changes[0].after

    def test_summary_readable(self):
        old = spec_of({"T": "A INT"})
        new = spec_of({"T": "A INT, B INT", "EXTRA": "X INT"})
        summary = diff_specs(old, new).summary()
        assert "EXTRA" in summary and "+B" in summary


class TestTrackerChangeLog:
    def test_poll_records_structural_delta(self):
        db = Database("d", "mysql")
        db.execute("CREATE TABLE T (A INT)")
        tracker = SchemaTracker()
        tracker.watch(db)
        db.execute("ALTER TABLE T ADD COLUMN B DOUBLE")
        tracker.poll()
        assert len(tracker.change_log) == 1
        assert tracker.change_log[0].table_diffs[0].added_columns == ["B"]

    def test_multiple_changes_accumulate(self):
        db = Database("d", "mysql")
        db.execute("CREATE TABLE T (A INT)")
        tracker = SchemaTracker()
        tracker.watch(db)
        db.execute("CREATE TABLE U (X INT)")
        tracker.poll()
        db.execute("DROP TABLE U")
        tracker.poll()
        assert [d.summary() for d in tracker.change_log] == [
            "+1 table(s): U",
            "-1 table(s): U",
        ]

"""Unit tests for the virtual clock and network fabric."""

import pytest

from repro.common import ReproError
from repro.net import Network, SimClock, costs
from repro.net.network import LAN, LOOPBACK, WAN, Link


class TestSimClock:
    def test_advance(self):
        clock = SimClock()
        clock.advance_ms(5)
        clock.advance_s(1)
        assert clock.now_ms == pytest.approx(1005.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance_ms(-1)

    def test_branch_starts_at_parent_now(self):
        clock = SimClock()
        clock.advance_ms(10)
        branch = clock.branch()
        assert branch.now_ms == 10

    def test_join_max_takes_latest(self):
        clock = SimClock()
        a, b = clock.branch(), clock.branch()
        a.advance_ms(30)
        b.advance_ms(50)
        duration = clock.join_max(a, b)
        assert duration == 50
        assert clock.now_ms == 50

    def test_join_rejects_past_branch(self):
        clock = SimClock()
        branch = clock.branch()
        clock.advance_ms(100)
        with pytest.raises(ValueError):
            clock.join_max(branch)

    def test_rewind_only_backwards(self):
        clock = SimClock()
        clock.advance_ms(10)
        clock.rewind_to(5)
        assert clock.now_ms == 5
        with pytest.raises(ValueError):
            clock.rewind_to(50)

    def test_run_parallel_charges_max(self):
        clock = SimClock()
        clock.advance_ms(7)
        durations = [30.0, 80.0, 10.0]

        def branch(d):
            return lambda: clock.advance_ms(d)

        longest = clock.run_parallel([branch(d) for d in durations])
        assert longest == 80.0
        assert clock.now_ms == pytest.approx(87.0)

    def test_marks_recorded(self):
        clock = SimClock()
        clock.advance_ms(3)
        clock.mark("after-setup")
        assert clock.marks == [("after-setup", 3.0)]


class TestLink:
    def test_transfer_time_formula(self):
        link = Link(bandwidth_mbps=100.0, latency_ms=0.2)
        # 1250 bytes = 10^4 bits -> 0.1 ms at 100 Mbps, plus latency
        assert link.transfer_ms(1250) == pytest.approx(0.3)

    def test_profiles_ordered(self):
        nbytes = 100_000
        assert LOOPBACK.transfer_ms(nbytes) < LAN.transfer_ms(nbytes) < WAN.transfer_ms(nbytes)


class TestNetwork:
    def test_transfer_charges_clock(self):
        net = Network()
        net.add_host("a")
        net.add_host("b")
        clock = SimClock()
        ms = net.transfer("a", "b", 1250, clock)
        assert clock.now_ms == pytest.approx(ms)
        assert net.bytes_moved == 1250
        assert net.messages == 1

    def test_same_host_uses_loopback(self):
        net = Network()
        net.add_host("a")
        clock = SimClock()
        ms = net.transfer("a", "a", 1250, clock)
        assert ms < LAN.transfer_ms(1250)

    def test_link_override(self):
        net = Network()
        net.add_host("a")
        net.add_host("b")
        net.set_link("a", "b", WAN)
        clock = SimClock()
        ms = net.transfer("a", "b", 1250, clock)
        assert ms == pytest.approx(WAN.transfer_ms(1250))
        # symmetric
        assert net.link_between("b", "a") is WAN

    def test_unknown_host_rejected(self):
        net = Network()
        net.add_host("a")
        with pytest.raises(ReproError):
            net.transfer("a", "ghost", 10, SimClock())

    def test_tiers_recorded(self):
        net = Network()
        net.add_host("cern", tier=0)
        assert net.host("cern").tier == 0


def test_transfer_ms_helper_linear_in_bytes():
    t1 = costs.transfer_ms(1000, 100.0, 0.0)
    t2 = costs.transfer_ms(2000, 100.0, 0.0)
    assert t2 == pytest.approx(2 * t1)

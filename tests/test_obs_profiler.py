"""Query profiler: span trees folded into per-operator cost models.

The load-bearing invariant throughout: operator **self-times sum
exactly to the traced query latency**, including under parallel
sibling spans (the simclock forks per backend and joins at the max, so
siblings legitimately overlap) and imported remote spans.
"""

import pytest

from repro.core import GridFederation
from repro.engine import Database
from repro.net.simclock import SimClock
from repro.obs.profiler import QueryProfiler, _self_times
from repro.obs.trace import Tracer


def make_events_db(name, n=10, vendor="mysql"):
    db = Database(name, vendor)
    db.execute("CREATE TABLE EVT (EVENT_ID INT PRIMARY KEY, ENERGY DOUBLE)")
    for i in range(n):
        db.execute(f"INSERT INTO EVT VALUES ({i}, {i * 1.0})")
    return db


def trace_simple(clock, tracer):
    """query(20ms) -> decompose(5ms) + subquery(12ms) + 3ms idle."""
    with tracer.span("query") as root:
        with tracer.span("decompose"):
            clock.advance_ms(5)
        with tracer.span("subquery"):
            clock.advance_ms(12)
        clock.advance_ms(3)
    return root


class TestSelfTimeSweep:
    def test_sequential_children(self):
        clock = SimClock()
        tracer = Tracer(clock, "jc1")
        root = trace_simple(clock, tracer)
        spans = tracer.spans_for(root.trace_id)
        self_ms = _self_times(root, spans)
        by_stage = {
            s.stage: self_ms[s.span_id] for s in spans
        }
        assert by_stage["decompose"] == pytest.approx(5.0)
        assert by_stage["subquery"] == pytest.approx(12.0)
        # the root keeps only the uncovered 3 ms
        assert by_stage["query"] == pytest.approx(3.0)
        assert sum(self_ms.values()) == pytest.approx(root.duration_ms)

    def test_parallel_siblings_split_equally(self):
        """Two fully-overlapping siblings share the overlapped interval."""
        clock = SimClock()
        tracer = Tracer(clock, "jc1")
        with tracer.span("query") as root:
            def branch():
                with tracer.span("subquery"):
                    clock.advance_ms(10)
            clock.run_parallel([branch, branch])
        spans = tracer.spans_for(root.trace_id)
        self_ms = _self_times(root, spans)
        total = sum(self_ms.values())
        assert total == pytest.approx(root.duration_ms)
        sub_shares = [
            self_ms[s.span_id] for s in spans if s.stage == "subquery"
        ]
        assert sub_shares == pytest.approx([5.0, 5.0])

    def test_spans_clamped_into_root_interval(self):
        """A stray span outside the root window contributes nothing."""
        clock = SimClock()
        tracer = Tracer(clock, "jc1")
        stray = None
        with tracer.span("query") as root:
            clock.advance_ms(4)
            # a remote span (imported later) claiming to predate the root
            stray = tracer.record("transfer", -50.0, -40.0)
        spans = tracer.spans_for(root.trace_id)
        self_ms = _self_times(root, spans)
        assert self_ms[stray.span_id] == 0.0
        assert sum(self_ms.values()) == pytest.approx(root.duration_ms)


class TestQueryProfiler:
    def profile_one(self, total_advance=20):
        clock = SimClock()
        tracer = Tracer(clock, "jc1")
        profiler = QueryProfiler(clock)
        root = trace_simple(clock, tracer)
        return profiler.record(
            root, tracer.spans_for(root.trace_id), shape="SELECT 1"
        ), profiler

    def test_profile_conserves_total(self):
        profile, _ = self.profile_one()
        assert profile.total_ms == pytest.approx(20.0)
        assert profile.self_total_ms == pytest.approx(profile.total_ms)

    def test_operator_rows(self):
        profile, _ = self.profile_one()
        sub = profile.operator("subquery")
        assert sub.calls == 1
        assert sub.self_ms == pytest.approx(12.0)
        assert sub.cum_ms == pytest.approx(12.0)
        root = profile.operator("query")
        assert root.cum_ms == pytest.approx(20.0)
        assert root.self_ms == pytest.approx(3.0)

    def test_folded_lines_flamegraph_shape(self):
        profile, _ = self.profile_one()
        lines = profile.folded_lines()
        assert "query;decompose 5.000" in lines
        assert "query;subquery 12.000" in lines
        # folded self-times also sum to the total
        total = sum(float(line.rsplit(" ", 1)[1]) for line in lines)
        assert total == pytest.approx(profile.total_ms)

    def test_top_n_retention_keeps_slowest(self):
        clock = SimClock()
        tracer = Tracer(clock, "jc1")
        profiler = QueryProfiler(clock, top_n=3)
        durations = [5, 50, 10, 40, 20, 30]
        for ms in durations:
            with tracer.span("query") as root:
                clock.advance_ms(ms)
            profiler.record(
                root, tracer.spans_for(root.trace_id), shape=f"Q{ms}"
            )
        assert profiler.profiled == len(durations)
        assert [p.total_ms for p in profiler.slowest] == [50, 40, 30]
        # the most recent profile stays addressable even when not top-N
        assert profiler.get(root.trace_id) is not None
        assert profiler.get().shape == "Q30"

    def test_shape_aggregation(self):
        clock = SimClock()
        tracer = Tracer(clock, "jc1")
        profiler = QueryProfiler(clock)
        for _ in range(3):
            root = trace_simple(clock, tracer)
            profiler.record(
                root, tracer.spans_for(root.trace_id), shape="SELECT 1"
            )
        stats = profiler.shape_stats()
        assert len(stats) == 1
        assert stats[0].count == 3
        assert stats[0].mean_ms == pytest.approx(20.0)
        assert stats[0].self_by_stage["subquery"] == pytest.approx(36.0)

    def test_profile_rows_shape(self):
        _, profiler = self.profile_one()
        rows = profiler.profile_rows()
        assert rows, "expected monitor_profile rows"
        for row in rows:
            assert len(row) == 10
            # self <= cum <= total for every operator of this trace
            assert row[7] <= row[8] + 1e-9
            assert row[8] <= row[9] + 1e-9


class TestProfilerThroughService:
    @pytest.fixture
    def observed(self):
        fed = GridFederation()
        server = fed.create_server("jc1", "pc1", observe=True)
        fed.attach_database(
            server, make_events_db("mart"), logical_names={"EVT": "events"}
        )
        return fed, server

    def test_answer_carries_profile(self, observed):
        fed, server = observed
        answer = server.service.execute("SELECT COUNT(*) FROM events")
        profile = answer.profile
        assert profile is not None
        assert profile.total_ms > 0
        assert profile.self_total_ms == pytest.approx(profile.total_ms)

    def test_wire_method_matches_traced_latency(self, observed):
        """dataaccess.profile self/cum totals match the traced query."""
        fed, server = observed
        server.service.execute("SELECT COUNT(*) FROM events")
        wire = server.service.profile()
        assert wire["self_total_ms"] == pytest.approx(wire["total_ms"])
        record = server.service.tracer.queries[-1]
        assert wire["total_ms"] == pytest.approx(record.duration_ms)
        assert wire["trace_id"] == record.trace_id

    def test_distributed_profile_conserves_under_parallelism(self):
        """Two backends on two servers: overlapping spans, exact total."""
        fed = GridFederation()
        s1 = fed.create_server("jc1", "pc1", observe=True)
        s2 = fed.create_server("jc2", "pc2", observe=True)
        fed.attach_database(
            s1, make_events_db("mart_a"), logical_names={"EVT": "events_a"}
        )
        fed.attach_database(
            s2, make_events_db("mart_b"), logical_names={"EVT": "events_b"}
        )
        answer = s1.service.execute(
            "SELECT a.event_id, b.energy FROM events_a a "
            "JOIN events_b b ON a.event_id = b.event_id"
        )
        assert answer.servers_accessed == 2
        profile = answer.profile
        assert profile.self_total_ms == pytest.approx(profile.total_ms)
        servers = {op.server for op in profile.operators}
        assert {"jc1", "jc2"} <= servers

    def test_unobserved_answer_has_no_profile(self):
        fed = GridFederation()
        server = fed.create_server("jc1", "pc1")
        fed.attach_database(
            server, make_events_db("mart"), logical_names={"EVT": "events"}
        )
        answer = server.service.execute("SELECT COUNT(*) FROM events")
        assert answer.profile is None
        assert server.service.profile() == {}

"""Smoke tests for the ``python -m repro.demo`` entry point."""

from repro.demo import DEFAULT_QUERIES, build_demo_federation, main, run_query


class TestDemo:
    def test_build_demo_federation(self):
        fed, server, client = build_demo_federation()
        assert fed.rls_server.known_tables() == ["calibration", "events", "runs"]
        assert server.service.tables() == ["events", "runs"]

    def test_default_tour_runs(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "simulated ms" in out
        assert "plan: federated" in out
        assert "remote" in out  # the calibration query crosses servers

    def test_custom_query_argument(self, capsys):
        assert main(["SELECT COUNT(*) AS n FROM events"]) == 0
        out = capsys.readouterr().out
        assert "40" in out

    def test_every_default_query_is_valid(self):
        fed, server, client = build_demo_federation()
        for sql in DEFAULT_QUERIES:
            run_query(fed, server, client, sql)

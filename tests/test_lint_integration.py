"""Integration: pre-flight analysis inside the federated service.

The point of static checking in the paper's architecture is to reject a
bad query *before* any sub-query ships over the WAN — so the key
assertion here is on the network counters, not just the exception.
"""

import pytest

from repro.common import PreflightError
from repro.core import GridFederation
from repro.engine import Database


def make_marts():
    mysql = Database("mart1", "mysql")
    mysql.execute(
        "CREATE TABLE EVT (EVENT_ID INT PRIMARY KEY, RUN_ID INT, ENERGY DOUBLE)"
    )
    for i in range(6):
        mysql.execute(f"INSERT INTO EVT VALUES ({i}, {i % 2}, {i * 2.0})")

    mssql = Database("mart2", "mssql")
    mssql.execute(
        "CREATE TABLE RUN_INFO (RUN_ID INT PRIMARY KEY, DETECTOR NVARCHAR(16))"
    )
    for i, det in enumerate(["cms", "atlas"]):
        mssql.execute(f"INSERT INTO RUN_INFO VALUES ({i}, '{det}')")
    return mysql, mssql


def one_server_federation(preflight: bool):
    """Both marts (two vendors) attached to a single JClarens server."""
    fed = GridFederation()
    s1 = fed.create_server("jc1", "pc1", preflight=preflight)
    mysql, mssql = make_marts()
    fed.attach_database(s1, mysql, logical_names={"EVT": "events"})
    fed.attach_database(s1, mssql, logical_names={"RUN_INFO": "runs"})
    return fed, s1


def two_server_federation(preflight: bool):
    """One mart per server; `runs` is remote from jc1's point of view."""
    fed = GridFederation()
    s1 = fed.create_server("jc1", "pc1", preflight=preflight)
    s2 = fed.create_server("jc2", "pc2", preflight=preflight)
    mysql, mssql = make_marts()
    fed.attach_database(s1, mysql, logical_names={"EVT": "events"})
    fed.attach_database(s2, mssql, logical_names={"RUN_INFO": "runs"})
    return fed, s1, s2


BAD_QUERIES = [
    # unknown column in a federated join
    "SELECT e.no_such FROM events e INNER JOIN runs r ON e.run_id = r.run_id",
    # numeric aggregate over a text column
    "SELECT SUM(r.detector) FROM events e INNER JOIN runs r ON e.run_id = r.run_id",
    # comparing a number with a string literal
    "SELECT e.energy FROM events e WHERE e.run_id > 'x'",
]

GOOD_JOIN = (
    "SELECT e.event_id, r.detector FROM events e "
    "INNER JOIN runs r ON e.run_id = r.run_id WHERE r.detector = 'cms'"
)


class TestServicePreflight:
    def test_bad_query_rejected_with_zero_network_traffic(self):
        fed, s1 = one_server_federation(preflight=True)
        for sql in BAD_QUERIES:
            before_msgs = fed.network.messages
            before_bytes = fed.network.bytes_moved
            with pytest.raises(PreflightError):
                s1.service.execute(sql)
            assert fed.network.messages == before_msgs, sql
            assert fed.network.bytes_moved == before_bytes, sql

    def test_remote_table_rejected_after_discovery_before_data(self):
        # with `runs` on a peer, RLS discovery runs first (it must, to
        # learn the schema) but the query is still refused before any
        # sub-query result rows move
        fed, s1, _ = two_server_federation(preflight=True)
        with pytest.raises(PreflightError) as exc:
            s1.service.execute(BAD_QUERIES[0])
        assert any(d.code == "RPR102" for d in exc.value.diagnostics)

    def test_good_query_executes_with_preflight_on(self):
        fed, s1 = one_server_federation(preflight=True)
        before = fed.network.messages
        answer = s1.service.execute(GOOD_JOIN)
        assert answer.rows  # run 0 events paired with cms
        assert answer.distributed
        assert fed.network.messages >= before  # and nothing was blocked

    def test_preflight_matches_no_preflight_on_good_queries(self):
        sql = (
            "SELECT COUNT(*) FROM events e "
            "INNER JOIN runs r ON e.run_id = r.run_id"
        )
        _, strict = one_server_federation(preflight=True)
        _, loose = one_server_federation(preflight=False)
        assert strict.service.execute(sql).rows == loose.service.execute(sql).rows

    def test_cross_server_good_query_still_works(self):
        fed, s1, _ = two_server_federation(preflight=True)
        answer = s1.service.execute(GOOD_JOIN)
        assert answer.rows
        assert answer.servers_accessed == 2


class TestLintWireMethod:
    def test_lint_exposed_over_clarens(self):
        fed, s1 = one_server_federation(preflight=False)
        client = fed.client("laptop")
        diags = client.call(
            s1.server, "dataaccess.lint", "SELECT e.nope FROM events e"
        )
        assert any(d["code"] == "RPR102" for d in diags)
        assert all(
            set(d) == {"code", "severity", "message", "span"} for d in diags
        )

    def test_lint_clean_query_returns_empty(self):
        fed, s1 = one_server_federation(preflight=False)
        client = fed.client("laptop")
        diags = client.call(
            s1.server, "dataaccess.lint",
            "SELECT e.energy FROM events e WHERE e.run_id = 1",
        )
        assert diags == []

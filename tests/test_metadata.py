"""Unit tests for XSpec documents, the data dictionary and the tracker."""

import pytest

from repro.common import TableNotRegisteredError, TypeKind
from repro.common.errors import XSpecError
from repro.dialects import get_dialect
from repro.engine import Database
from repro.metadata import (
    DataDictionary,
    LowerXSpec,
    SchemaTracker,
    UpperXSpec,
    UpperXSpecEntry,
    generate_lower_xspec,
)


@pytest.fixture
def source_db():
    db = Database("tier2_mysql", "mysql")
    db.execute(
        "CREATE TABLE EVT (EVENT_ID INT PRIMARY KEY, RUN_ID INT NOT NULL, E DOUBLE)"
    )
    db.execute("CREATE TABLE RUNS (RUN_ID INT PRIMARY KEY, DET VARCHAR(16))")
    db.execute("INSERT INTO RUNS VALUES (1, 'cms')")
    db.execute("INSERT INTO EVT VALUES (1, 1, 3.5)")
    return db


class TestGenerator:
    def test_tables_and_columns_captured(self, source_db):
        spec = generate_lower_xspec(source_db)
        assert spec.database_name == "tier2_mysql"
        assert spec.vendor == "mysql"
        table = spec.table_by_logical("evt")
        assert [c.name for c in table.columns] == ["EVENT_ID", "RUN_ID", "E"]
        assert table.columns[0].primary_key
        assert table.columns[1].not_null

    def test_logical_name_overrides(self, source_db):
        spec = generate_lower_xspec(source_db, logical_names={"EVT": "events"})
        assert spec.table_by_logical("events").name == "EVT"
        assert spec.table_by_logical("evt") is None

    def test_vendor_type_names_used(self, source_db):
        spec = generate_lower_xspec(source_db)
        col = spec.table_by_logical("evt").columns[2]
        assert col.vendor_type == "DOUBLE"
        assert col.logical_type.kind is TypeKind.DOUBLE

    def test_row_counts_recorded(self, source_db):
        spec = generate_lower_xspec(source_db)
        assert spec.table_by_logical("evt").row_count == 1

    def test_views_included_by_default(self, source_db):
        source_db.execute("CREATE VIEW hot AS SELECT event_id FROM EVT WHERE e > 1")
        spec = generate_lower_xspec(source_db)
        assert spec.table_by_logical("hot") is not None
        spec2 = generate_lower_xspec(source_db, include_views=False)
        assert spec2.table_by_logical("hot") is None

    def test_fk_relationship_detected_by_convention(self, source_db):
        spec = generate_lower_xspec(source_db)
        rels = [(r.table, r.column, r.ref_table) for r in spec.relationships]
        assert ("EVT", "RUN_ID", "RUNS") in rels


class TestXSpecXML:
    def test_round_trip(self, source_db):
        spec = generate_lower_xspec(source_db, logical_names={"EVT": "events"})
        text = spec.to_xml()
        back = LowerXSpec.from_xml(text)
        assert back == spec

    def test_canonical_output_is_stable(self, source_db):
        spec = generate_lower_xspec(source_db)
        assert spec.to_xml() == generate_lower_xspec(source_db).to_xml()

    def test_fingerprint_ignores_row_counts(self, source_db):
        before = generate_lower_xspec(source_db).fingerprint()
        source_db.execute("INSERT INTO EVT VALUES (2, 1, 9.1)")
        after = generate_lower_xspec(source_db).fingerprint()
        assert before == after

    def test_fingerprint_sees_schema_change(self, source_db):
        before = generate_lower_xspec(source_db).fingerprint()
        source_db.execute("ALTER TABLE EVT ADD COLUMN px DOUBLE")
        after = generate_lower_xspec(source_db).fingerprint()
        assert before != after

    def test_malformed_xml_raises(self):
        with pytest.raises(XSpecError):
            LowerXSpec.from_xml("<xspec database='x' vendor='y'><bogus/></xspec>")
        with pytest.raises(XSpecError):
            LowerXSpec.from_xml("not xml at all")
        with pytest.raises(XSpecError):
            LowerXSpec.from_xml("<wrongroot/>")

    def test_table_without_columns_rejected(self):
        with pytest.raises(XSpecError):
            LowerXSpec.from_xml(
                "<xspec database='d' vendor='mysql'><table name='t' logical='t'/></xspec>"
            )

    def test_single_table_spec_slice(self, source_db):
        spec = generate_lower_xspec(source_db)
        one = spec.single_table_spec("evt")
        assert len(one.tables) == 1
        with pytest.raises(XSpecError):
            spec.single_table_spec("zzz")


class TestUpperXSpec:
    def make(self):
        return UpperXSpec(
            (
                UpperXSpecEntry("mart1", "jdbc:mysql://h:3306/m1", "mysql", "m1.xspec"),
                UpperXSpecEntry("mart2", "jdbc:sqlite:/h/m2.db", "sqlite", "m2.xspec"),
            )
        )

    def test_round_trip(self):
        upper = self.make()
        assert UpperXSpec.from_xml(upper.to_xml()) == UpperXSpec(
            tuple(sorted(upper.entries, key=lambda e: e.name))
        )

    def test_entry_lookup(self):
        assert self.make().entry("MART1").driver == "mysql"
        assert self.make().entry("nope") is None

    def test_with_entry_replaces(self):
        upper = self.make().with_entry(
            UpperXSpecEntry("mart1", "jdbc:mysql://h2:3306/m1", "mysql", "m1.xspec")
        )
        assert len(upper.entries) == 2
        assert upper.entry("mart1").url == "jdbc:mysql://h2:3306/m1"

    def test_without_entry(self):
        assert self.make().without_entry("mart2").database_names() == ["mart1"]

    def test_missing_attribute_rejected(self):
        with pytest.raises(XSpecError):
            UpperXSpec.from_xml("<upperxspec><database name='x'/></upperxspec>")


class TestDataDictionary:
    @pytest.fixture
    def dictionary(self, source_db):
        spec = generate_lower_xspec(source_db, logical_names={"EVT": "events"})
        d = DataDictionary()
        d.add_database(spec, "jdbc:mysql://h:3306/tier2_mysql")
        return d

    def test_locate_by_logical_name(self, dictionary):
        loc = dictionary.locate("events")
        assert loc.physical_name == "EVT"
        assert loc.vendor == "mysql"

    def test_physical_column_mapping(self, dictionary):
        loc = dictionary.locate("events")
        assert loc.physical_column("event_id") == "EVENT_ID"
        with pytest.raises(XSpecError):
            loc.physical_column("ghost")

    def test_unregistered_table_raises(self, dictionary):
        with pytest.raises(TableNotRegisteredError):
            dictionary.locate("nothing")

    def test_replicas_accumulate(self, dictionary, source_db):
        spec2 = generate_lower_xspec(source_db, logical_names={"EVT": "events"})
        spec2 = LowerXSpec(
            database_name="replica",
            vendor=spec2.vendor,
            tables=spec2.tables,
            relationships=spec2.relationships,
        )
        dictionary.add_database(spec2, "jdbc:mysql://h2:3306/replica")
        assert len(dictionary.locations("events")) == 2

    def test_remove_database(self, dictionary):
        dictionary.remove_database("tier2_mysql")
        assert not dictionary.has_table("events")
        assert dictionary.databases() == []

    def test_build_from_upper(self, source_db):
        spec = generate_lower_xspec(source_db)
        upper = UpperXSpec(
            (
                UpperXSpecEntry(
                    "tier2_mysql", "jdbc:mysql://h:3306/t2", "mysql", "t2.xspec"
                ),
            )
        )
        d = DataDictionary.build(upper, {"t2.xspec": spec})
        assert d.has_table("evt")

    def test_build_missing_lower_raises(self):
        upper = UpperXSpec(
            (UpperXSpecEntry("x", "jdbc:mysql://h:3306/x", "mysql", "x.xspec"),)
        )
        with pytest.raises(XSpecError):
            DataDictionary.build(upper, {})


class TestSchemaTracker:
    def test_no_change_no_notification(self, source_db):
        tracker = SchemaTracker()
        tracker.watch(source_db)
        events = []
        tracker.subscribe(lambda name, spec: events.append(name))
        assert tracker.poll() == []
        assert events == []

    def test_data_growth_is_not_a_schema_change(self, source_db):
        tracker = SchemaTracker()
        tracker.watch(source_db)
        source_db.execute("INSERT INTO EVT VALUES (5, 1, 2.2)")
        assert tracker.poll() == []

    def test_add_column_detected(self, source_db):
        tracker = SchemaTracker()
        tracker.watch(source_db)
        events = []
        tracker.subscribe(lambda name, spec: events.append((name, spec)))
        source_db.execute("ALTER TABLE EVT ADD COLUMN eta DOUBLE")
        assert tracker.poll() == ["tier2_mysql"]
        assert events[0][0] == "tier2_mysql"
        new_spec = events[0][1]
        assert new_spec.table_by_logical("evt").column_by_logical("eta") is not None

    def test_new_table_detected(self, source_db):
        tracker = SchemaTracker()
        tracker.watch(source_db)
        source_db.execute("CREATE TABLE extra (x INT)")
        assert tracker.poll() == ["tier2_mysql"]

    def test_change_reported_once(self, source_db):
        tracker = SchemaTracker()
        tracker.watch(source_db)
        source_db.execute("CREATE TABLE extra (x INT)")
        assert tracker.poll() == ["tier2_mysql"]
        assert tracker.poll() == []
        assert tracker.changes_detected == 1

    def test_logical_names_survive_refresh(self, source_db):
        tracker = SchemaTracker()
        tracker.watch(source_db, logical_names={"EVT": "events"})
        source_db.execute("CREATE TABLE extra (x INT)")
        tracker.poll()
        assert tracker.current_spec("tier2_mysql").table_by_logical("events") is not None

    def test_unwatch(self, source_db):
        tracker = SchemaTracker()
        tracker.watch(source_db)
        tracker.unwatch("tier2_mysql")
        assert tracker.watched() == []

"""Tests for incremental (watermark) ETL loads."""

import pytest

from repro.common import DeterministicRNG
from repro.common.errors import ETLError
from repro.engine import Database
from repro.hep import (
    EAV_EXTRACT_SQL,
    create_source_schema,
    etl_jobs_for_source,
    generate_ntuple,
    populate_source,
)
from repro.net import Network, SimClock
from repro.warehouse import Warehouse

NVAR = 4


@pytest.fixture
def world():
    net = Network()
    clock = SimClock()
    net.add_host("tier1", 1)
    rng = DeterministicRNG("inc")
    source = Database("src", "oracle")
    create_source_schema(source)
    populate_source(source, rng, {1: generate_ntuple(rng.fork("a"), 20, NVAR)})
    wh = Warehouse(net, clock, nvar=NVAR)
    job = etl_jobs_for_source(source, "tier1", NVAR)[0]
    return source, wh, job, rng


def add_run(source, rng, run_id, n_events, first_event_id):
    populate_source(
        source,
        rng.fork(f"run{run_id}"),
        {run_id: generate_ntuple(rng.fork(f"nt{run_id}"), n_events, NVAR)},
        first_event_id=first_event_id,
        n_calibrations=0,
    )


class TestIncrementalETL:
    def test_first_incremental_is_a_full_load(self, world):
        _, wh, job, _ = world
        report = wh.pipeline.run_incremental(job, "e.event_id")
        assert report.rows == 20
        assert wh.pipeline.watermarks["event_fact"] == 20

    def test_second_run_ships_only_new_rows(self, world):
        source, wh, job, rng = world
        wh.pipeline.run_incremental(job, "e.event_id")
        add_run(source, rng, run_id=2, n_events=7, first_event_id=100)
        report = wh.pipeline.run_incremental(job, "e.event_id")
        assert report.rows == 7
        assert wh.row_count("event_fact") == 27
        assert wh.pipeline.watermarks["event_fact"] == 106

    def test_no_new_rows_ships_nothing(self, world):
        _, wh, job, _ = world
        wh.pipeline.run_incremental(job, "e.event_id")
        report = wh.pipeline.run_incremental(job, "e.event_id")
        assert report.rows == 0
        assert wh.row_count("event_fact") == 20

    def test_incremental_avoids_duplicate_pk(self, world):
        """Full reload would explode on PK; incremental never re-ships."""
        source, wh, job, rng = world
        wh.pipeline.run_incremental(job, "e.event_id")
        add_run(source, rng, 2, 5, 200)
        wh.pipeline.run_incremental(job, "e.event_id")  # no IntegrityError
        assert wh.row_count("event_fact") == 25

    def test_incremental_cheaper_than_full(self, world):
        source, wh, job, rng = world
        wh.pipeline.run_incremental(job, "e.event_id")
        add_run(source, rng, 2, 2, 300)
        clock = wh.clock
        t0 = clock.now_ms
        wh.pipeline.run_incremental(job, "e.event_id")
        delta_cost = clock.now_ms - t0
        # a full reload of 22 events into a fresh warehouse for comparison
        wh2 = Warehouse(wh.network, clock, name="wh2", nvar=NVAR)
        t1 = clock.now_ms
        wh2.pipeline.run(job)
        full_cost = clock.now_ms - t1
        assert delta_cost < full_cost / 3

    def test_direct_incremental(self, world):
        source, wh, job, rng = world
        wh.pipeline.run_incremental(job, "e.event_id", direct=True)
        assert wh.row_count("event_fact") == 20

    def test_bad_watermark_output_raises(self, world):
        _, wh, job, _ = world
        with pytest.raises(ETLError):
            wh.pipeline.run_incremental(job, "e.event_id", watermark_output="ghost")

    def test_values_identical_to_full_load(self, world):
        source, wh, job, rng = world
        wh.pipeline.run_incremental(job, "e.event_id")
        add_run(source, rng, 2, 4, 400)
        wh.pipeline.run_incremental(job, "e.event_id")
        # a from-scratch full load into a second warehouse must agree
        wh_full = Warehouse(wh.network, wh.clock, name="whf", nvar=NVAR)
        wh_full.pipeline.run(job)
        a = wh.db.execute(
            "SELECT event_id, var_0 FROM event_fact ORDER BY event_id"
        ).rows
        b = wh_full.db.execute(
            "SELECT event_id, var_0 FROM event_fact ORDER BY event_id"
        ).rows
        assert a == b

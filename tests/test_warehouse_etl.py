"""Unit tests for the warehouse, ETL pipeline and mart materialization."""

import pytest

from repro.common import DeterministicRNG
from repro.common.errors import ETLError
from repro.engine import Database
from repro.hep import (
    build_tier_sources,
    etl_jobs_for_source,
    events_for_target_kb,
    pivot_eav,
)
from repro.marts import MartSet, materialize_view
from repro.net import Network, SimClock
from repro.warehouse import ETLJob, StagingFile, Warehouse
from repro.warehouse.schema import var_columns


@pytest.fixture
def world():
    net = Network()
    clock = SimClock()
    net.add_host("tier1", 1)
    net.add_host("tier2", 2)
    rng = DeterministicRNG("etl-test")
    t1, t2 = build_tier_sources(rng, n_runs=4, events_per_run=25, nvar=6)
    wh = Warehouse(net, clock, nvar=6)
    return net, clock, t1, t2, wh


def load_all(wh, t1, t2):
    for job in etl_jobs_for_source(t1, "tier1", 6) + etl_jobs_for_source(t2, "tier2", 6):
        wh.load(job)


class TestStagingFile:
    def test_write_read_round_trip(self):
        clock = SimClock()
        staging = StagingFile(clock)
        staging.write(["a", "b"], [(1, "x"), (2, "y")])
        columns, rows = staging.read_all()
        assert columns == ["a", "b"]
        assert rows == [(1, "x"), (2, "y")]

    def test_disk_time_charged(self):
        clock = SimClock()
        staging = StagingFile(clock)
        staging.write(["a"], [(i,) for i in range(1000)])
        assert clock.now_ms > 0

    def test_mixed_shapes_rejected(self):
        staging = StagingFile(SimClock())
        staging.write(["a"], [(1,)])
        with pytest.raises(ETLError):
            staging.write(["b"], [(2,)])


class TestPivot:
    def test_pivot_shapes_wide_rows(self):
        transform = pivot_eav(3)
        columns = ["event_id", "run_id", "detector", "var_index", "value"]
        rows = [
            (1, 7, "ECAL", 0, 0.5),
            (1, 7, "ECAL", 1, 1.5),
            (1, 7, "ECAL", 2, 2.5),
            (2, 7, "ECAL", 0, 9.0),
        ]
        out_cols, out_rows = transform(columns, rows)
        assert out_cols == ["event_id", "run_id", "detector"] + var_columns(3)
        assert out_rows[0] == (1, 7, "ECAL", 0.5, 1.5, 2.5)
        assert out_rows[1] == (2, 7, "ECAL", 9.0, None, None)  # missing -> NULL

    def test_pivot_ignores_out_of_range_indices(self):
        transform = pivot_eav(2)
        _, out = transform(
            ["event_id", "run_id", "detector", "var_index", "value"],
            [(1, 1, "X", 5, 3.3)],
        )
        assert out == [(1, 1, "X", None, None)]

    def test_pivot_validates_columns(self):
        with pytest.raises(ETLError):
            pivot_eav(2)(["wrong"], [])


class TestETLPipeline:
    def test_row_conservation(self, world):
        _, _, t1, t2, wh = world
        load_all(wh, t1, t2)
        source_events = (
            t1.execute("SELECT COUNT(*) FROM events").rows[0][0]
            + t2.execute("SELECT COUNT(*) FROM events").rows[0][0]
        )
        assert wh.row_count("event_fact") == source_events == 100

    def test_values_survive_pivot(self, world):
        _, _, t1, _, wh = world
        wh.load(etl_jobs_for_source(t1, "tier1", 6)[0])
        # pick one event and check its var_0 equals the source EAV value
        eav = t1.execute(
            "SELECT ev.value FROM event_values ev "
            "JOIN variables v ON ev.variable_id = v.variable_id "
            "WHERE ev.event_id = 1 AND v.var_index = 0"
        ).rows[0][0]
        wide = wh.db.execute(
            "SELECT var_0 FROM event_fact WHERE event_id = 1"
        ).rows[0][0]
        assert wide == pytest.approx(eav)

    def test_extraction_and_loading_timed_separately(self, world):
        _, _, t1, _, wh = world
        report = wh.load(etl_jobs_for_source(t1, "tier1", 6)[0])
        assert report.extraction_ms > 0
        assert report.loading_ms > 0
        assert report.staged_bytes > 0

    def test_loading_dominates_extraction_for_large_jobs(self, world):
        # the paper's Figure 4: the upper (loading) line sits above the
        # lower (extraction) line
        _, _, t1, _, wh = world
        report = wh.load(etl_jobs_for_source(t1, "tier1", 6)[0])
        assert report.loading_ms > report.extraction_ms

    def test_direct_mode_skips_staging_and_is_faster(self, world):
        net, clock, t1, t2, wh = world
        staged = wh.load(etl_jobs_for_source(t1, "tier1", 6)[0])
        direct = wh.load(etl_jobs_for_source(t2, "tier2", 6)[0], direct=True)
        staged_total = staged.extraction_ms + staged.loading_ms
        direct_total = direct.extraction_ms + direct.loading_ms
        assert direct_total < staged_total

    def test_reports_accumulate(self, world):
        _, _, t1, _, wh = world
        for job in etl_jobs_for_source(t1, "tier1", 6):
            wh.load(job)
        assert len(wh.pipeline.reports) == 4

    def test_larger_transfers_take_longer(self, world):
        net, clock, *_ = world
        rng = DeterministicRNG("size-scale")
        small_t1, _ = build_tier_sources(rng.fork("s"), n_runs=2, events_per_run=10, nvar=6)
        big_t1, _ = build_tier_sources(rng.fork("b"), n_runs=2, events_per_run=100, nvar=6)
        wh_small = Warehouse(net, clock, name="wh_s", nvar=6)
        wh_big = Warehouse(net, clock, name="wh_b", nvar=6)
        r_small = wh_small.load(etl_jobs_for_source(small_t1, "tier1", 6)[0])
        r_big = wh_big.load(etl_jobs_for_source(big_t1, "tier1", 6)[0])
        assert r_big.staged_bytes > r_small.staged_bytes
        assert r_big.loading_ms > r_small.loading_ms
        assert r_big.extraction_ms > r_small.extraction_ms


class TestWarehouseViews:
    def test_run_summary_aggregates(self, world):
        _, _, t1, t2, wh = world
        load_all(wh, t1, t2)
        rows = wh.db.execute("SELECT run_id, n_events FROM v_run_summary ORDER BY run_id").rows
        assert [r[1] for r in rows] == [25, 25, 25, 25]

    def test_event_wide_view_columns(self, world):
        _, _, t1, t2, wh = world
        load_all(wh, t1, t2)
        result = wh.db.execute("SELECT * FROM v_event_wide LIMIT 1")
        assert result.columns[:3] == ["event_id", "run_id", "detector"]


class TestMaterialization:
    @pytest.fixture
    def loaded(self, world):
        net, clock, t1, t2, wh = world
        load_all(wh, t1, t2)
        return net, clock, wh

    @pytest.mark.parametrize("vendor", ["mysql", "mssql", "oracle", "sqlite"])
    def test_materialize_into_each_vendor(self, loaded, vendor):
        net, clock, wh = loaded
        mart = Database(f"mart_{vendor}", vendor)
        net.add_host("marthost")
        report = materialize_view(wh, "v_run_summary", mart, "marthost")
        assert report.rows == 4
        assert mart.execute("SELECT COUNT(*) FROM v_run_summary").rows == [(4,)]

    def test_materialized_values_match_view(self, loaded):
        net, clock, wh = loaded
        mart = Database("m", "sqlite")
        net.add_host("marthost")
        materialize_view(wh, "v_run_summary", mart, "marthost")
        src = wh.db.execute("SELECT run_id, mean_var0 FROM v_run_summary ORDER BY run_id").rows
        dst = mart.execute("SELECT run_id, mean_var0 FROM v_run_summary ORDER BY run_id").rows
        for (sid, smean), (did, dmean) in zip(src, dst):
            assert sid == did and dmean == pytest.approx(smean)

    def test_missing_view_rejected(self, loaded):
        net, clock, wh = loaded
        with pytest.raises(ETLError):
            materialize_view(wh, "v_ghost", Database("m", "mysql"), "tier1")

    def test_rematerialize_replaces(self, loaded):
        net, clock, wh = loaded
        mart = Database("m", "mysql")
        net.add_host("marthost")
        materialize_view(wh, "v_run_summary", mart, "marthost")
        materialize_view(wh, "v_run_summary", mart, "marthost")
        assert mart.execute("SELECT COUNT(*) FROM v_run_summary").rows == [(4,)]

    def test_martset_replicates_views_to_all_marts(self, loaded):
        net, clock, wh = loaded
        ms = MartSet(wh)
        ms.add_mart(Database("m1", "mysql"), "hostA")
        ms.add_mart(Database("m2", "sqlite"), "hostB")
        reports = ms.replicate(["v_run_summary", "v_calibration"])
        assert len(reports) == 4
        for db, _host in ms.marts:
            assert db.catalog.has_table("v_run_summary")
            assert db.catalog.has_table("v_calibration")

    def test_mart_loading_slower_per_byte_than_warehouse(self, world):
        """Figure 5 vs Figure 4: materialization pays autocommit per row."""
        net, clock, t1, t2, wh = world
        load_all(wh, t1, t2)
        wh_report = wh.pipeline.reports[0]  # t1's event_fact job
        mart = Database("m", "mssql")
        net.add_host("marthost")
        mart_report = materialize_view(wh, "v_event_wide", mart, "marthost")
        wh_ms_per_byte = wh_report.loading_ms / wh_report.staged_bytes
        mart_ms_per_byte = mart_report.loading_ms / mart_report.staged_bytes
        assert mart_ms_per_byte > wh_ms_per_byte


def test_events_for_target_kb_monotone():
    small = events_for_target_kb(5, 8)
    large = events_for_target_kb(200, 8)
    assert 0 < small < large


class TestMartRefresh:
    @pytest.fixture
    def replicated(self, world):
        net, clock, t1, t2, wh = world
        load_all(wh, t1, t2)
        ms = MartSet(wh)
        ms.add_mart(Database("m1", "mysql"), "hostA")
        ms.replicate(["v_run_summary", "v_calibration"])
        return net, clock, t1, wh, ms

    def test_fresh_marts_have_no_stale_views(self, replicated):
        *_, ms = replicated
        assert ms.stale_views() == []
        assert ms.refresh() == []

    def test_warehouse_change_marks_views_stale(self, replicated):
        net, clock, t1, wh, ms = replicated
        wh.db.execute("DELETE FROM event_fact WHERE event_id = 1")
        assert ms.stale_views() == ["v_run_summary"]  # calibration untouched

    def test_refresh_rematerializes_only_stale(self, replicated):
        net, clock, t1, wh, ms = replicated
        wh.db.execute("DELETE FROM event_fact WHERE event_id = 1")
        reports = ms.refresh()
        assert [r.job_table for r in reports] == ["v_run_summary"]
        assert ms.stale_views() == []
        # the mart now agrees with the warehouse again
        mart = ms.marts[0][0]
        wh_rows = wh.db.execute(
            "SELECT run_id, n_events FROM v_run_summary ORDER BY run_id"
        ).rows
        mart_rows = mart.execute(
            "SELECT run_id, n_events FROM v_run_summary ORDER BY run_id"
        ).rows
        assert mart_rows == wh_rows

    def test_calibration_change_detected_independently(self, replicated):
        net, clock, t1, wh, ms = replicated
        wh.db.execute("UPDATE calib_fact SET gain = gain * 2")
        assert ms.stale_views() == ["v_calibration"]

"""The tracereport CLI: human tree, JSON artifact, self-test gate."""

import json

from repro.tools.tracereport import build_report, main


class TestTraceReportCLI:
    def test_human_report(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "trace jclarens-a-t1" in out
        assert "├─" in out and "└─" in out
        assert "monitor_spans" in out
        assert "histogram query_ms" in out

    def test_json_report(self, capsys):
        assert main(["--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        for key in (
            "trace_id", "spans", "tree", "metrics", "total_ms",
            "monitor_span_count",
        ):
            assert key in report
        assert report["distributed"] is True
        assert report["servers_accessed"] == 2

    def test_json_out_file(self, tmp_path, capsys):
        target = tmp_path / "BENCH_federation.json"
        assert main(["--json", "--out", str(target)]) == 0
        report = json.loads(target.read_text())
        assert report["rows"] == 7
        assert len(report["spans"]) == len(report["tree"])

    def test_self_test_passes(self, capsys):
        assert main(["--self-test"]) == 0
        out = capsys.readouterr().out
        assert "all" in out and "passed" in out

    def test_report_is_deterministic(self):
        first = build_report()
        second = build_report()
        assert first == second

"""Edge-case tests for the engine executor and views."""

import pytest

from repro.common import PlanningError, SQLTypeError, TypeKind
from repro.common.errors import ColumnNotFoundError
from repro.engine import Database


@pytest.fixture
def db():
    d = Database("edge", "generic")
    d.execute(
        "CREATE TABLE t (id INT PRIMARY KEY, grp VARCHAR(4), x DOUBLE, s VARCHAR(16))"
    )
    d.execute(
        "INSERT INTO t VALUES "
        "(1,'a',1.5,'alpha'),(2,'a',2.5,'Beta'),(3,'b',NULL,'gamma'),"
        "(4,'b',4.5,NULL),(5,NULL,5.5,'epsilon')"
    )
    return d


class TestScalarFunctions:
    def test_round_with_digits(self, db):
        assert db.execute("SELECT ROUND(x, 0) FROM t WHERE id = 1").rows == [(2.0,)]

    def test_substr_without_length(self, db):
        assert db.execute("SELECT SUBSTR(s, 3) FROM t WHERE id = 1").rows == [("pha",)]

    def test_nested_functions(self, db):
        r = db.execute("SELECT UPPER(SUBSTR(s, 1, 2)) FROM t WHERE id = 2")
        assert r.rows == [("BE",)]

    def test_function_on_null_returns_null(self, db):
        assert db.execute("SELECT LENGTH(s) FROM t WHERE id = 4").rows == [(None,)]

    def test_coalesce_in_projection(self, db):
        r = db.execute("SELECT COALESCE(x, -1) FROM t ORDER BY id")
        assert r.rows[2] == (-1,)

    def test_concat_with_null_is_null(self, db):
        assert db.execute("SELECT s || '!' FROM t WHERE id = 4").rows == [(None,)]


class TestCaseAndCast:
    def test_case_in_where(self, db):
        r = db.execute(
            "SELECT id FROM t WHERE CASE WHEN grp = 'a' THEN 1 ELSE 0 END = 1 "
            "ORDER BY id"
        )
        assert r.rows == [(1,), (2,)]

    def test_case_in_aggregate(self, db):
        r = db.execute(
            "SELECT SUM(CASE WHEN grp = 'a' THEN 1 ELSE 0 END) FROM t"
        )
        assert r.rows == [(2,)]

    def test_cast_text_to_int(self, db):
        assert db.execute("SELECT CAST('42' AS INTEGER)").rows == [(42,)]

    def test_cast_failure_raises(self, db):
        with pytest.raises(SQLTypeError):
            db.execute("SELECT CAST(s AS INTEGER) FROM t WHERE id = 1")

    def test_cast_null_passes(self, db):
        assert db.execute("SELECT CAST(x AS INTEGER) FROM t WHERE id = 3").rows == [(None,)]


class TestGroupingEdges:
    def test_group_by_null_forms_its_own_group(self, db):
        r = db.execute("SELECT grp, COUNT(*) FROM t GROUP BY grp ORDER BY grp")
        groups = dict(r.rows)
        assert groups["a"] == 2 and groups["b"] == 2 and groups[None] == 1

    def test_group_by_expression(self, db):
        r = db.execute(
            "SELECT id % 2 AS parity, COUNT(*) AS n FROM t GROUP BY id % 2 "
            "ORDER BY parity"
        )
        assert r.rows == [(0, 2), (1, 3)]

    def test_avg_skips_nulls(self, db):
        r = db.execute("SELECT AVG(x) FROM t WHERE grp = 'b'")
        assert r.rows == [(4.5,)]

    def test_min_max_on_strings(self, db):
        r = db.execute("SELECT MIN(s), MAX(s) FROM t")
        assert r.rows == [("Beta", "gamma")]

    def test_having_without_group_by(self, db):
        r = db.execute("SELECT COUNT(*) FROM t HAVING COUNT(*) > 3")
        assert r.rows == [(5,)]
        r2 = db.execute("SELECT COUNT(*) FROM t HAVING COUNT(*) > 10")
        assert r2.rows == []

    def test_sum_distinct(self, db):
        db.execute("INSERT INTO t VALUES (6,'c',1.5,'dup')")
        r = db.execute("SELECT SUM(DISTINCT x) FROM t WHERE x = 1.5")
        assert r.rows == [(1.5,)]


class TestViews:
    def test_view_over_view(self, db):
        db.execute("CREATE VIEW v1 AS SELECT id, x FROM t WHERE x IS NOT NULL")
        db.execute("CREATE VIEW v2 AS SELECT id FROM v1 WHERE x > 2")
        r = db.execute("SELECT COUNT(*) FROM v2")
        assert r.rows == [(3,)]

    def test_view_with_join(self, db):
        db.execute("CREATE TABLE g (grp VARCHAR(4) PRIMARY KEY, label VARCHAR(8))")
        db.execute("INSERT INTO g VALUES ('a','first'),('b','second')")
        db.execute(
            "CREATE VIEW joined AS SELECT t.id, g.label FROM t "
            "JOIN g ON t.grp = g.grp"
        )
        assert db.execute("SELECT COUNT(*) FROM joined").rows == [(4,)]

    def test_view_with_aggregate(self, db):
        db.execute(
            "CREATE VIEW sums AS SELECT grp, SUM(x) AS total FROM t GROUP BY grp"
        )
        r = db.execute("SELECT total FROM sums WHERE grp = 'a'")
        assert r.rows == [(4.0,)]

    def test_drop_view(self, db):
        db.execute("CREATE VIEW v AS SELECT id FROM t")
        db.execute("DROP VIEW v")
        with pytest.raises(Exception):
            db.execute("SELECT * FROM v")

    def test_view_in_xspec(self, db):
        from repro.metadata import generate_lower_xspec

        db.execute("CREATE VIEW v AS SELECT id, x FROM t")
        spec = generate_lower_xspec(db)
        vt = spec.table_by_logical("v")
        assert [c.name for c in vt.columns] == ["id", "x"]


class TestProjectionEdges:
    def test_duplicate_output_names_allowed(self, db):
        r = db.execute("SELECT id, id FROM t WHERE id = 1")
        assert r.rows == [(1, 1)]
        assert r.columns == ["id", "id"]

    def test_expression_output_gets_synthetic_name(self, db):
        r = db.execute("SELECT x * 2 FROM t WHERE id = 1")
        assert r.columns == ["col1"]

    def test_star_plus_expression(self, db):
        r = db.execute("SELECT *, id * 10 AS big FROM t WHERE id = 1")
        assert r.columns == ["id", "grp", "x", "s", "big"]
        assert r.rows[0][-1] == 10

    def test_order_by_expression(self, db):
        r = db.execute("SELECT id FROM t WHERE x IS NOT NULL ORDER BY -x")
        assert [row[0] for row in r.rows] == [5, 4, 2, 1]

    def test_order_by_two_keys(self, db):
        r = db.execute("SELECT grp, id FROM t ORDER BY grp DESC, id DESC")
        assert r.rows[0] == (None, 5)  # NULL first on DESC
        assert r.rows[1] == ("b", 4)

    def test_offset_beyond_end(self, db):
        assert db.execute("SELECT id FROM t LIMIT 5 OFFSET 99").rows == []

    def test_limit_zero(self, db):
        assert db.execute("SELECT id FROM t LIMIT 0").rows == []


class TestErrorPaths:
    def test_unknown_column_in_order_by(self, db):
        with pytest.raises(ColumnNotFoundError):
            db.execute("SELECT id FROM t ORDER BY nothere")

    def test_unknown_table_qualifier_in_star(self, db):
        with pytest.raises(ColumnNotFoundError):
            db.execute("SELECT z.* FROM t")

    def test_aggregate_in_where_rejected(self, db):
        with pytest.raises(SQLTypeError):
            db.execute("SELECT id FROM t WHERE COUNT(*) > 1")

    def test_mixed_aggregate_and_bare_column(self, db):
        with pytest.raises(PlanningError):
            db.execute("SELECT id, COUNT(*) FROM t")

    def test_comparing_string_to_number_raises(self, db):
        with pytest.raises(SQLTypeError):
            db.execute("SELECT id FROM t WHERE s > 3")


class TestInsertSelectEdges:
    def test_insert_select_with_column_list(self, db):
        db.execute("CREATE TABLE archive (id INT, x DOUBLE)")
        n = db.execute(
            "INSERT INTO archive (id, x) SELECT id, x FROM t WHERE x IS NOT NULL"
        ).rowcount
        assert n == 4

    def test_insert_select_coerces_types(self, db):
        db.execute("CREATE TABLE narrow (id VARCHAR(8))")
        db.execute("INSERT INTO narrow SELECT id FROM t")
        assert db.execute("SELECT id FROM narrow WHERE id = '1'").row_count == 1

    def test_insert_wrong_arity_fails_atomically_per_row(self, db):
        from repro.common.errors import IntegrityError

        with pytest.raises(IntegrityError):
            db.execute("INSERT INTO t (id, grp) VALUES (100, 'z'), (100, 'z')")
        # the first row landed before the duplicate-PK failure (the
        # engine is non-transactional, like the prototype's autocommit)
        assert db.execute("SELECT COUNT(*) FROM t WHERE id = 100").rows == [(1,)]

    def test_multi_column_pk(self, db):
        from repro.common.errors import IntegrityError

        db.execute("CREATE TABLE mc (a INT, b INT, PRIMARY KEY (a, b))")
        db.execute("INSERT INTO mc VALUES (1, 1), (1, 2)")
        with pytest.raises(IntegrityError):
            db.execute("INSERT INTO mc VALUES (1, 1)")

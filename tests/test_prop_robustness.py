"""Robustness properties: the parser and engine fail *predictably*."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.common import DeterministicRNG, ReproError
from repro.common.errors import SQLSyntaxError
from repro.engine import Database
from repro.sql.parser import parse_statement


class TestParserRobustness:
    @given(st.text(max_size=80))
    @settings(max_examples=300)
    def test_arbitrary_text_never_crashes_unpredictably(self, text):
        """Any input either parses or raises SQLSyntaxError — nothing else."""
        try:
            parse_statement(text)
        except SQLSyntaxError:
            pass

    @given(st.text(alphabet="SELECT FROWHER()*,;'\"`[]<>=!?.0123456789abc ", max_size=60))
    @settings(max_examples=300)
    def test_sql_shaped_garbage(self, text):
        try:
            parse_statement(text)
        except SQLSyntaxError:
            pass

    @given(st.binary(max_size=40))
    def test_decoded_binary_garbage(self, blob):
        text = blob.decode("latin-1")
        try:
            parse_statement(text)
        except SQLSyntaxError:
            pass


class TestEngineRobustness:
    @given(st.text(max_size=60))
    @settings(max_examples=150, suppress_health_check=[HealthCheck.too_slow])
    def test_execute_raises_only_repro_errors(self, text):
        """Database.execute surfaces only the library's error hierarchy."""
        db = Database("rb", "mysql")
        db.execute("CREATE TABLE t (a INT)")
        try:
            db.execute(text)
        except ReproError:
            pass


class TestUnionProperties:
    @given(
        st.lists(st.integers(-50, 50), max_size=30),
        st.integers(-50, 50),
    )
    @settings(max_examples=60, deadline=None)
    def test_union_all_of_split_equals_whole(self, values, split):
        """Splitting a table at any threshold and UNION ALL-ing the halves
        returns exactly the original multiset."""
        db = Database("u", "generic")
        db.execute("CREATE TABLE t (v INT)")
        for v in values:
            db.execute(f"INSERT INTO t VALUES ({v})")
        whole = sorted(db.execute("SELECT v FROM t").rows)
        split_union = sorted(
            db.execute(
                f"SELECT v FROM t WHERE v < {split} "
                f"UNION ALL SELECT v FROM t WHERE v >= {split}"
            ).rows
        )
        assert split_union == whole

    @given(st.lists(st.integers(-10, 10), max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_union_is_distinct_of_union_all(self, values):
        db = Database("u", "generic")
        db.execute("CREATE TABLE t (v INT)")
        for v in values:
            db.execute(f"INSERT INTO t VALUES ({v})")
        distinct = set(
            db.execute("SELECT v FROM t UNION SELECT v FROM t").rows
        )
        assert distinct == set((v,) for v in values)
        # and UNION (not ALL) has no duplicates
        rows = db.execute("SELECT v FROM t UNION SELECT v FROM t").rows
        assert len(rows) == len(set(rows))


class TestIncrementalETLProperty:
    @given(st.lists(st.integers(1, 12), min_size=1, max_size=4))
    @settings(max_examples=20, deadline=None)
    def test_incremental_batches_equal_one_full_load(self, batch_sizes):
        """Loading runs one batch at a time through the watermark pipeline
        always produces the same warehouse as one big load."""
        from repro.hep import (
            create_source_schema,
            etl_jobs_for_source,
            generate_ntuple,
            populate_source,
        )
        from repro.net import Network, SimClock
        from repro.warehouse import Warehouse

        rng = DeterministicRNG(f"prop-{batch_sizes}")
        net = Network()
        net.add_host("tier1", 1)
        clock = SimClock()
        source = Database("src", "oracle")
        create_source_schema(source)
        wh_inc = Warehouse(net, clock, name="inc", nvar=3)
        job = etl_jobs_for_source(source, "tier1", 3)[0]

        next_id = 1
        for run_id, size in enumerate(batch_sizes, start=1):
            populate_source(
                source,
                rng.fork(f"b{run_id}"),
                {run_id: generate_ntuple(rng.fork(f"nt{run_id}"), size, 3)},
                first_event_id=next_id,
                n_calibrations=0,
            )
            next_id += size + 20
            wh_inc.pipeline.run_incremental(job, "e.event_id")

        wh_full = Warehouse(net, clock, name="full", nvar=3)
        wh_full.pipeline.run(job)
        a = wh_inc.db.execute(
            "SELECT event_id, var_0, var_1, var_2 FROM event_fact ORDER BY event_id"
        ).rows
        b = wh_full.db.execute(
            "SELECT event_id, var_0, var_1, var_2 FROM event_fact ORDER BY event_id"
        ).rows
        assert a == b

"""Tests for UNION execution and EXPLAIN (engine + federated)."""

import pytest

from repro.common import PlanningError, SQLSyntaxError, TypeKind
from repro.engine import Database
from repro.sql import ast, parse_statement


@pytest.fixture
def db():
    d = Database("u", "mysql")
    d.execute("CREATE TABLE a (x INT, label VARCHAR(10))")
    d.execute("CREATE TABLE b (x INT, label VARCHAR(10))")
    d.execute("INSERT INTO a VALUES (1,'one'),(2,'two'),(3,'three')")
    d.execute("INSERT INTO b VALUES (3,'three'),(4,'four')")
    return d


class TestUnionParsing:
    def test_union_parses(self):
        stmt = parse_statement("SELECT x FROM a UNION SELECT x FROM b")
        assert isinstance(stmt, ast.Union)
        assert not stmt.all
        assert len(stmt.selects) == 2

    def test_union_all_parses(self):
        stmt = parse_statement("SELECT x FROM a UNION ALL SELECT x FROM b")
        assert stmt.all

    def test_three_branch_chain(self):
        stmt = parse_statement(
            "SELECT x FROM a UNION SELECT x FROM b UNION SELECT x FROM a"
        )
        assert len(stmt.selects) == 3

    def test_trailing_order_limit_lifted_to_union(self):
        stmt = parse_statement(
            "SELECT x FROM a UNION SELECT x FROM b ORDER BY x DESC LIMIT 2"
        )
        assert stmt.limit == 2
        assert stmt.order_by[0].ascending is False
        assert stmt.selects[-1].limit is None
        assert stmt.selects[-1].order_by == ()

    def test_mixed_union_and_union_all_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement(
                "SELECT x FROM a UNION SELECT x FROM b UNION ALL SELECT x FROM a"
            )

    def test_union_unparse_round_trip(self):
        text = "SELECT x FROM a UNION ALL SELECT x FROM b ORDER BY x ASC LIMIT 3"
        stmt = parse_statement(text)
        assert parse_statement(stmt.unparse()).unparse() == stmt.unparse()


class TestUnionExecution:
    def test_union_deduplicates(self, db):
        r = db.execute("SELECT x FROM a UNION SELECT x FROM b ORDER BY x")
        assert r.rows == [(1,), (2,), (3,), (4,)]

    def test_union_all_keeps_duplicates(self, db):
        r = db.execute("SELECT x FROM a UNION ALL SELECT x FROM b ORDER BY x")
        assert r.rows == [(1,), (2,), (3,), (3,), (4,)]

    def test_columns_named_from_first_branch(self, db):
        r = db.execute("SELECT x AS id FROM a UNION SELECT x FROM b")
        assert r.columns == ["id"]

    def test_types_widen_across_branches(self, db):
        db.execute("CREATE TABLE c (x DOUBLE)")
        db.execute("INSERT INTO c VALUES (9.5)")
        r = db.execute("SELECT x FROM a UNION SELECT x FROM c")
        assert r.types[0].kind is TypeKind.DOUBLE

    def test_arity_mismatch_rejected(self, db):
        with pytest.raises(PlanningError):
            db.execute("SELECT x FROM a UNION SELECT x, label FROM b")

    def test_order_by_output_column(self, db):
        r = db.execute(
            "SELECT x, label FROM a UNION ALL SELECT x, label FROM b "
            "ORDER BY label"
        )
        assert r.rows[0][1] == "four"

    def test_order_by_unknown_column_rejected(self, db):
        with pytest.raises(PlanningError):
            db.execute("SELECT x FROM a UNION SELECT x FROM b ORDER BY nosuch")

    def test_limit_offset_apply_to_whole_union(self, db):
        r = db.execute(
            "SELECT x FROM a UNION SELECT x FROM b ORDER BY x LIMIT 2 OFFSET 1"
        )
        assert r.rows == [(2,), (3,)]

    def test_union_with_where_and_aggregate_branches(self, db):
        r = db.execute(
            "SELECT COUNT(*) FROM a WHERE x > 1 UNION ALL SELECT COUNT(*) FROM b"
        )
        assert sorted(r.rows) == [(2,), (2,)]

    def test_stats_accumulate(self, db):
        r = db.execute("SELECT x FROM a UNION SELECT x FROM b")
        assert set(r.stats.tables_accessed) == {"a", "b"}


class TestEngineExplain:
    def test_scan_and_filter(self, db):
        lines = db.explain("SELECT x FROM a WHERE x > 1 ORDER BY x LIMIT 2")
        text = "\n".join(lines)
        assert "scan a (3 rows)" in text
        assert "filter: (x > 1)" in text
        assert "sort: x ASC" in text
        assert "limit 2" in text

    def test_hash_join_detected(self, db):
        lines = db.explain("SELECT * FROM a JOIN b ON a.x = b.x")
        assert any("hash join" in line for line in lines)

    def test_nested_loop_detected(self, db):
        lines = db.explain("SELECT * FROM a JOIN b ON a.x > b.x")
        assert any("nested-loop" in line for line in lines)

    def test_residual_conjunct_reported(self, db):
        lines = db.explain(
            "SELECT * FROM a JOIN b ON a.x = b.x AND a.x > 1"
        )
        assert any("residual" in line for line in lines)

    def test_aggregate_reported(self, db):
        lines = db.explain("SELECT label, COUNT(*) FROM a GROUP BY label")
        assert any("aggregate" in line and "COUNT(*)" in line for line in lines)

    def test_union_explain(self, db):
        lines = db.explain("SELECT x FROM a UNION SELECT x FROM b LIMIT 2")
        assert lines[0].startswith("union of 2 branches")
        assert any("limit 2" in line for line in lines)

    def test_ddl_explain_trivial(self, db):
        lines = db.explain("DROP TABLE IF EXISTS a")
        assert lines[0].startswith("droptable")

    def test_view_size_label(self, db):
        db.execute("CREATE VIEW v AS SELECT x FROM a")
        lines = db.explain("SELECT * FROM v")
        assert "scan v (view)" in lines[0]


class TestFederatedExplain:
    @pytest.fixture
    def fed(self):
        from repro.core import GridFederation

        federation = GridFederation()
        s1 = federation.create_server("jc1", "pc1")
        s2 = federation.create_server("jc2", "pc2")
        mysql = Database("m1", "mysql")
        mysql.execute("CREATE TABLE EVT (EVENT_ID INT PRIMARY KEY, RUN_ID INT)")
        mysql.execute("INSERT INTO EVT VALUES (1, 0)")
        federation.attach_database(s1, mysql, logical_names={"EVT": "events"})
        mssql = Database("m2", "mssql")
        mssql.execute("CREATE TABLE RUNS (RUN_ID INT PRIMARY KEY)")
        mssql.execute("INSERT INTO RUNS VALUES (0)")
        federation.attach_database(s1, mssql, logical_names={"RUNS": "runs"})
        sqlite = Database("m3", "sqlite")
        sqlite.execute("CREATE TABLE calib (run_id INTEGER PRIMARY KEY)")
        sqlite.execute("INSERT INTO calib VALUES (0)")
        federation.attach_database(s2, sqlite)
        return federation, s1, s2

    def test_single_plan_explained(self, fed):
        federation, s1, _ = fed
        info = s1.service.explain("SELECT event_id FROM events")
        assert info["kind"] == "single"
        assert not info["distributed"]
        assert info["integration"] is None
        assert info["subqueries"][0]["route"] == "pool"

    def test_routes_predicted(self, fed):
        federation, s1, _ = fed
        info = s1.service.explain(
            "SELECT e.event_id FROM events e JOIN runs r ON e.run_id = r.run_id "
            "WHERE e.event_id > 0"
        )
        routes = {s["binding"]: s["route"] for s in info["subqueries"]}
        assert routes == {"e": "pool", "r": "jdbc"}
        assert info["integration"] is not None

    def test_pushed_predicates_listed(self, fed):
        federation, s1, _ = fed
        info = s1.service.explain(
            "SELECT e.event_id FROM events e JOIN runs r ON e.run_id = r.run_id "
            "WHERE e.event_id > 5"
        )
        by_binding = {s["binding"]: s for s in info["subqueries"]}
        assert by_binding["e"]["pushed_predicates"] == ["(e.event_id > 5)"]

    def test_remote_route_predicted(self, fed):
        federation, s1, _ = fed
        info = s1.service.explain(
            "SELECT e.event_id FROM events e JOIN calib c ON e.run_id = c.run_id"
        )
        routes = {s["binding"]: s["route"] for s in info["subqueries"]}
        assert routes["c"] == "remote"

    def test_explain_over_the_wire(self, fed):
        federation, s1, _ = fed
        client = federation.client("laptop")
        info = client.call(s1.server, "dataaccess.explain", "SELECT event_id FROM events")
        assert info["kind"] == "single"

"""SLO engine: burn-rate math, alert hysteresis, the health verdict.

Includes the acceptance scenario end-to-end: a chaos blackout (PR 4
harness) burns the error budget, ``dataaccess.health`` flips to
critical, and both ``monitor_alerts`` and ``monitor_history`` answer
plain federated SQL about what happened.
"""

import pytest

from repro.core import GridFederation
from repro.engine import Database
from repro.net.simclock import SimClock
from repro.obs.archive import MetricsArchiver
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLO, SLOEngine, default_slos
from repro.resilience import BreakerConfig, ChaosSchedule, ResilienceConfig


def make_engine(slos=None, interval_ms=100.0):
    clock = SimClock()
    registry = MetricsRegistry()
    archiver = MetricsArchiver(registry, clock, interval_ms=interval_ms)
    engine = SLOEngine(archiver, clock=clock, slos=slos)
    return clock, registry, archiver, engine


def make_events_db(name, vendor="mysql", n=10):
    db = Database(name, vendor)
    db.execute("CREATE TABLE EVT (EVENT_ID INT PRIMARY KEY, ENERGY DOUBLE)")
    for i in range(n):
        db.execute(f"INSERT INTO EVT VALUES ({i}, {i * 1.0})")
    return db


class TestSLODeclaration:
    def test_budget(self):
        assert SLO(name="a", objective=0.99).budget == pytest.approx(0.01)

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            SLO(name="a", kind="vibes")

    def test_invalid_objective_rejected(self):
        with pytest.raises(ValueError):
            SLO(name="a", objective=1.0)

    def test_defaults_cover_availability_and_latency(self):
        kinds = {s.kind for s in default_slos()}
        assert kinds == {"errors", "latency"}

    def test_latency_slo_registers_archiver_threshold(self):
        _, _, archiver, _ = make_engine()
        assert archiver.thresholds.get("query_ms") == 1_000.0


class TestBurnMath:
    def test_no_traffic_is_no_data_not_compliance(self):
        """Zero attempted events must never read as 'burn 0' (guard)."""
        _, _, _, engine = make_engine()
        status = engine.status()
        assert status["availability"]["state"] == "no_data"
        assert status["availability"]["fast_burn"] is None

    def test_burn_is_bad_fraction_over_budget(self):
        clock, registry, archiver, engine = make_engine()
        registry.counter("queries").inc(90)
        registry.counter("partial_answers").inc(10)
        archiver.snapshot()
        reading = engine._burn(engine.slos[0], 5_000.0)
        assert reading.total == pytest.approx(90.0)
        assert reading.bad == pytest.approx(10.0)
        assert reading.burn == pytest.approx((10.0 / 90.0) / 0.01)

    def test_latency_burn_counts_threshold_breaches(self):
        slo = SLO(
            name="lat", kind="latency", objective=0.9,
            metric="query_ms", threshold_ms=100.0,
        )
        clock, registry, archiver, engine = make_engine(slos=(slo,))
        h = registry.histogram("query_ms")
        for v in (10.0, 50.0, 500.0, 900.0):
            h.observe(v)
        archiver.snapshot()
        reading = engine._burn(slo, 5_000.0)
        assert reading.total == pytest.approx(4.0)
        assert reading.bad == pytest.approx(2.0)
        assert reading.burn == pytest.approx(0.5 / 0.1)


class TestAlertLifecycle:
    def fire_engine(self):
        """An engine with a torched fast window (100% bad)."""
        clock, registry, archiver, engine = make_engine()
        registry.counter("queries").inc(10)
        registry.counter("partial_answers").inc(10)
        archiver.snapshot()
        return clock, registry, archiver, engine

    def test_fast_burn_fires_page(self):
        clock, registry, archiver, engine = self.fire_engine()
        changed = engine.evaluate()
        assert any(
            a.severity == "page" and a.state == "firing" for a in changed
        )
        assert engine.firing()

    def test_firing_is_edge_triggered(self):
        clock, registry, archiver, engine = self.fire_engine()
        first = engine.evaluate()
        second = engine.evaluate()
        assert first and not second  # no re-fire while still burning

    def test_resolves_with_hysteresis_after_window_drains(self):
        clock, registry, archiver, engine = self.fire_engine()
        engine.evaluate()
        # healthy traffic pushes the bad buckets out of the fast window
        for _ in range(20):
            clock.advance_ms(500.0)
            registry.counter("queries").inc(5)
            archiver.snapshot()
            engine.evaluate()
        firing_keys = {(a.slo, a.severity) for a in engine.firing()}
        assert ("availability", "page") not in firing_keys
        states = [a.state for a in engine.alerts if a.severity == "page"]
        assert states == ["firing", "resolved"]

    def test_alert_rows_shape(self):
        clock, registry, archiver, engine = self.fire_engine()
        engine.evaluate()
        rows = engine.alert_rows()
        assert rows
        for row in rows:
            assert len(row) == 7


class TestHealthVerdict:
    def test_healthy_engine_reports_ok(self):
        clock, registry, archiver, engine = make_engine()
        registry.counter("queries").inc(10)
        archiver.snapshot()
        engine.evaluate()
        health = engine.health()
        assert health["verdict"] == "ok"
        assert health["observed"] is True
        assert health["error_fraction"] == pytest.approx(0.0)

    def test_p99_none_without_latency_data(self):
        _, _, _, engine = make_engine()
        assert engine.health()["p99_ms"] is None


class TestChaosBlackoutAcceptance:
    @pytest.fixture
    def observed_resilient(self):
        """One observed+resilient server, 'events' on two db hosts."""
        fed = GridFederation()
        config = ResilienceConfig(breaker=BreakerConfig(cooldown_ms=5_000.0))
        server = fed.create_server(
            "jc1", "pc1", observe=True, resilience=config,
        )
        fed.attach_database(
            server, make_events_db("primary_mart"),
            db_host="db1", logical_names={"EVT": "events"},
        )
        fed.attach_database(
            server, make_events_db("replica_mart", vendor="sqlite"),
            db_host="db2", logical_names={"EVT": "events"},
        )
        return fed, server

    def test_blackout_burns_budget_and_flips_health(self, observed_resilient):
        fed, server = observed_resilient
        service = server.service

        # healthy phase
        for _ in range(6):
            service.execute("SELECT COUNT(*) FROM events")
            fed.clock.advance_ms(400.0)
        assert service.health()["verdict"] == "ok"

        # blackout: both replica hosts die; queries degrade to partial
        base = fed.clock.now_ms
        schedule = (
            ChaosSchedule().fail_host(base, "db1").fail_host(base, "db2")
        )
        driver = schedule.driver(fed.network, fed.clock)
        driver.tick()
        for i in range(8):
            answer = service.execute(
                f"SELECT COUNT(*) FROM events WHERE event_id >= {i}",
                allow_partial=True,
            )
            assert answer.partial
            fed.clock.advance_ms(400.0)

        health = service.health()
        assert health["verdict"] == "critical"
        assert any(
            a["severity"] == "page" for a in health["alerts_firing"]
        )
        assert health["breakers"]["open"] >= 1

        # the same story through plain federated SQL
        fired = service.execute(
            "SELECT COUNT(*) FROM monitor_alerts WHERE state = 'firing'"
        )
        assert fired.rows[0][0] >= 1
        partials = service.execute(
            "SELECT SUM(total) FROM monitor_history "
            "WHERE metric = 'partial_answers' AND res_ms = 0.0"
        )
        assert partials.rows[0][0] == pytest.approx(8.0)

    def test_unobserved_service_has_no_health(self):
        fed = GridFederation()
        server = fed.create_server("jc1", "pc1")
        assert server.service.health() == {
            "observed": False, "verdict": "unobserved",
        }

"""Unit tests for the JDBC-style driver layer."""

import pytest

from repro.common import AuthenticationError, ConnectionFailedError
from repro.common.errors import DriverError, DuplicateObjectError
from repro.dialects import get_dialect
from repro.driver import Directory, connect, sniff_vendor
from repro.engine import Database
from repro.net import SimClock


@pytest.fixture
def setup():
    directory = Directory()
    db = Database("mart", "mysql")
    db.execute("CREATE TABLE t (a INT, b VARCHAR(10))")
    db.execute("INSERT INTO t VALUES (1,'x'),(2,'y'),(3,'z')")
    url = get_dialect("mysql").make_url("hostA", None, "mart")
    directory.register(url, db, user="alice", password="s3cret", host_name="hostA")
    return directory, db, url


class TestSniffing:
    def test_each_vendor_sniffs_its_own_url(self):
        for vendor in ("oracle", "mysql", "mssql", "sqlite"):
            d = get_dialect(vendor)
            url = d.make_url("h", None, "db")
            sniffed, parsed = sniff_vendor(url)
            assert sniffed.name == vendor
            assert parsed.database == "db"

    def test_unknown_scheme_raises(self):
        with pytest.raises(ConnectionFailedError):
            sniff_vendor("odbc:whatever://h/db")


class TestDirectory:
    def test_duplicate_registration_rejected(self, setup):
        directory, db, url = setup
        with pytest.raises(DuplicateObjectError):
            directory.register(url, db)

    def test_replace_flag_allows_rebind(self, setup):
        directory, db, url = setup
        directory.register(url, db, replace=True)

    def test_unknown_url_raises(self, setup):
        directory, _, _ = setup
        with pytest.raises(ConnectionFailedError):
            directory.lookup("jdbc:mysql://nowhere:3306/x")

    def test_unregister(self, setup):
        directory, _, url = setup
        directory.unregister(url)
        assert directory.urls() == []


class TestConnect:
    def test_connect_and_query(self, setup):
        directory, _, url = setup
        conn = connect(url, "alice", "s3cret", directory=directory)
        cursor = conn.execute("SELECT a FROM t ORDER BY a")
        assert cursor.fetchall() == [(1,), (2,), (3,)]

    def test_bad_password_raises(self, setup):
        directory, _, url = setup
        with pytest.raises(AuthenticationError):
            connect(url, "alice", "wrong", directory=directory)

    def test_bad_user_raises(self, setup):
        directory, _, url = setup
        with pytest.raises(AuthenticationError):
            connect(url, "mallory", "s3cret", directory=directory)

    def test_connect_charges_vendor_cost(self, setup):
        directory, _, url = setup
        clock = SimClock()
        connect(url, "alice", "s3cret", directory=directory, clock=clock)
        cost = get_dialect("mysql").cost
        assert clock.now_ms == pytest.approx(cost.connect_ms + cost.auth_ms)

    def test_closed_connection_rejects_cursor(self, setup):
        directory, _, url = setup
        conn = connect(url, "alice", "s3cret", directory=directory)
        conn.close()
        with pytest.raises(DriverError):
            conn.cursor()

    def test_context_manager_closes(self, setup):
        directory, _, url = setup
        with connect(url, "alice", "s3cret", directory=directory) as conn:
            pass
        assert conn.closed


class TestCursor:
    @pytest.fixture
    def cursor(self, setup):
        directory, _, url = setup
        return connect(url, "alice", "s3cret", directory=directory).cursor()

    def test_fetchone_sequence(self, cursor):
        cursor.execute("SELECT a FROM t ORDER BY a")
        assert cursor.fetchone() == (1,)
        assert cursor.fetchone() == (2,)
        assert cursor.fetchone() == (3,)
        assert cursor.fetchone() is None

    def test_fetchmany(self, cursor):
        cursor.execute("SELECT a FROM t ORDER BY a")
        assert cursor.fetchmany(2) == [(1,), (2,)]
        assert cursor.fetchmany(2) == [(3,)]
        assert cursor.fetchmany(2) == []

    def test_fetch_before_execute_raises(self, cursor):
        with pytest.raises(DriverError):
            cursor.fetchall()

    def test_description_and_types(self, cursor):
        cursor.execute("SELECT a, b FROM t")
        names = [d[0] for d in cursor.description]
        assert names == ["a", "b"]
        assert len(cursor.types) == 2

    def test_rowcount_for_dml(self, cursor):
        cursor.execute("INSERT INTO t (a, b) VALUES (9, 'w')")
        assert cursor.rowcount == 1

    def test_params(self, cursor):
        cursor.execute("SELECT b FROM t WHERE a = ?", (2,))
        assert cursor.fetchall() == [("y",)]

    def test_dml_charges_insert_and_commit(self, setup):
        directory, _, url = setup
        clock = SimClock()
        conn = connect(url, "alice", "s3cret", directory=directory, clock=clock)
        before = clock.now_ms
        conn.execute("INSERT INTO t (a, b) VALUES (7, 'q')")
        cost = get_dialect("mysql").cost
        spent = clock.now_ms - before
        assert spent >= cost.per_row_insert_ms + cost.commit_ms


class TestCursorIteration:
    def test_cursor_is_iterable(self, setup):
        directory, _, url = setup
        cursor = connect(url, "alice", "s3cret", directory=directory).cursor()
        cursor.execute("SELECT a FROM t ORDER BY a")
        assert list(cursor) == [(1,), (2,), (3,)]

    def test_iteration_resumes_after_fetchone(self, setup):
        directory, _, url = setup
        cursor = connect(url, "alice", "s3cret", directory=directory).cursor()
        cursor.execute("SELECT a FROM t ORDER BY a")
        assert cursor.fetchone() == (1,)
        assert list(cursor) == [(2,), (3,)]

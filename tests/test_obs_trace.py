"""Span tracing: nesting, simclock stamps, failover, cross-server hops."""

import pytest

from repro.core import GridFederation
from repro.engine import Database
from repro.net.simclock import SimClock
from repro.obs.trace import NOOP_SPAN, Span, Tracer, format_span_tree


def make_events_db(name, n=10, vendor="mysql"):
    db = Database(name, vendor)
    db.execute("CREATE TABLE EVT (EVENT_ID INT PRIMARY KEY, ENERGY DOUBLE)")
    for i in range(n):
        db.execute(f"INSERT INTO EVT VALUES ({i}, {i * 1.0})")
    return db


@pytest.fixture
def observed_replicated():
    """'events' on two databases behind one *observing* server."""
    fed = GridFederation()
    server = fed.create_server("jc1", "pc1", observe=True)
    primary = make_events_db("primary_mart")
    replica = make_events_db("replica_mart", vendor="sqlite")
    fed.attach_database(server, primary, logical_names={"EVT": "events"})
    fed.attach_database(
        server, replica, db_host="pc2", logical_names={"EVT": "events"}
    )
    return fed, server


class TestTracerBasics:
    def test_nesting_assigns_parent_child(self):
        clock = SimClock()
        tracer = Tracer(clock, "jc1")
        with tracer.span("query") as outer:
            clock.advance_ms(5)
            with tracer.span("decompose") as inner:
                clock.advance_ms(2)
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id
        assert outer.parent_id is None
        assert inner.duration_ms == pytest.approx(2.0)
        assert outer.duration_ms == pytest.approx(7.0)

    def test_ids_are_deterministic(self):
        tracer = Tracer(SimClock(), "jc1")
        with tracer.span("query") as a:
            pass
        with tracer.span("query") as b:
            pass
        assert (a.trace_id, a.span_id) == ("jc1-t1", "jc1-s1")
        assert (b.trace_id, b.span_id) == ("jc1-t2", "jc1-s2")

    def test_exception_recorded_on_span(self):
        tracer = Tracer(SimClock(), "jc1")
        with pytest.raises(ValueError):
            with tracer.span("query"):
                raise ValueError("boom")
        assert tracer.spans[0].error == "ValueError: boom"

    def test_record_outside_any_span_is_dropped(self):
        tracer = Tracer(SimClock(), "jc1")
        assert tracer.record("transfer", 0.0, 1.0) is None
        assert tracer.spans == []

    def test_wire_round_trip(self):
        tracer = Tracer(SimClock(), "jc1")
        with tracer.span("subquery", route="pool", rows=3):
            pass
        span = tracer.spans[0]
        clone = Span.from_dict(span.as_dict())
        assert clone == span

    def test_format_span_tree_single_root(self):
        clock = SimClock()
        tracer = Tracer(clock, "jc1")
        with tracer.span("query"):
            with tracer.span("decompose"):
                clock.advance_ms(1)
            with tracer.span("merge"):
                clock.advance_ms(1)
        lines = format_span_tree(tracer.spans_for("jc1-t1"))
        assert len(lines) == 3
        assert lines[0].startswith("query [jc1]")
        assert lines[1].startswith("├─ decompose")
        assert lines[2].startswith("└─ merge")


class TestFailoverTracing:
    def test_failed_attempt_and_retry_are_siblings(self, observed_replicated):
        fed, server = observed_replicated
        url = server.service.dictionary.url_for("primary_mart")
        fed.directory.unregister(url)
        answer = server.service.execute("SELECT COUNT(*) FROM events")
        assert answer.rows == [(10,)]
        tracer = server.service.tracer
        subs = [s for s in tracer.spans if s.stage == "subquery"]
        assert len(subs) == 2
        failed, retried = subs
        assert failed.error is not None
        assert "partition" in failed.error or "Connection" in failed.error
        assert retried.error is None
        assert retried.attrs["database"] == "replica_mart"
        # siblings: same parent, and the failed span closed before the retry
        assert failed.parent_id == retried.parent_id
        assert failed.end_ms <= retried.start_ms

    def test_failover_counters(self, observed_replicated):
        fed, server = observed_replicated
        fed.directory.unregister(server.service.dictionary.url_for("primary_mart"))
        server.service.execute("SELECT COUNT(*) FROM events")
        stats = server.service.stats()
        assert stats["failovers"] == 1
        assert stats["failover_retries"] == 1

    def test_replica_host_threaded_into_subquery_trace(self, observed_replicated):
        fed, server = observed_replicated
        fed.directory.unregister(server.service.dictionary.url_for("primary_mart"))
        answer = server.service.execute("SELECT COUNT(*) FROM events")
        trace = answer.traces[0]
        assert trace.replica_host == "pc2"
        assert trace.database == "replica_mart"
        assert trace.end_ms > trace.start_ms
        assert trace.duration_ms == pytest.approx(trace.end_ms - trace.start_ms)


class TestRemoteHopTracing:
    def test_remote_spans_parent_under_origin_subquery(self):
        from repro.tools.tracereport import DEMO_SQL, build_observed_federation

        fed, a, b = build_observed_federation()
        a.service.execute(DEMO_SQL)
        tracer = a.service.tracer
        spans = tracer.spans_for(tracer.last_trace_id)
        remote = [s for s in spans if s.server == "jclarens-b"]
        assert remote, "remote server's spans should be imported into the trace"
        ids = {s.span_id for s in spans}
        # the remote root (its 'query' span) parents under A's subquery span
        remote_query = next(s for s in remote if s.stage == "query")
        origin_sub = next(
            s
            for s in spans
            if s.stage == "subquery" and s.attrs.get("route") == "remote"
        )
        assert remote_query.parent_id == origin_sub.span_id
        assert all(s.parent_id in ids for s in remote)
        # the remote tracer holds no leftover context after the hop
        assert b.service.tracer._adopted == []

    def test_trace_wire_method(self):
        from repro.tools.tracereport import DEMO_SQL, build_observed_federation

        fed, a, b = build_observed_federation()
        a.service.execute(DEMO_SQL)
        client = fed.client("laptop")
        spans = client.call(a.server, "dataaccess.trace")
        assert spans
        assert {s["trace_id"] for s in spans} == {a.service.tracer.last_trace_id}
        by_id = client.call(a.server, "dataaccess.trace", spans[0]["trace_id"])
        assert by_id == spans

    def test_metrics_wire_method(self):
        from repro.tools.tracereport import DEMO_SQL, build_observed_federation

        fed, a, b = build_observed_federation()
        a.service.execute(DEMO_SQL)
        client = fed.client("laptop")
        snapshot = client.call(a.server, "dataaccess.metrics")
        assert snapshot["counters"]["queries"] == 1.0
        assert snapshot["histograms"]["query_ms"]["count"] == 1.0


class TestUnityDriverObservability:
    def test_driver_spans_and_trace_timestamps(self, two_db_federation):
        from repro.unity import UnityDriver

        directory, dictionary, events, runs, urls = two_db_federation
        clock = SimClock()
        driver = UnityDriver(dictionary, directory, clock=clock, observe=True)
        result = driver.execute(
            "SELECT e.energy, r.detector FROM events e "
            "INNER JOIN runs r ON e.run_id = r.run_id"
        )
        stages = [s.stage for s in driver.tracer.spans]
        assert stages.count("subquery") == 2
        assert "decompose" in stages and "query" in stages
        for trace in result.traces:
            assert trace.end_ms > trace.start_ms
            assert trace.duration_ms > 0
        assert driver.metrics.counter("queries").value == 1
        assert driver.metrics.histogram("query_ms").count == 1

    def test_driver_observe_off_allocates_no_spans(self, two_db_federation):
        from repro.unity import UnityDriver

        directory, dictionary, events, runs, urls = two_db_federation
        driver = UnityDriver(dictionary, directory, clock=SimClock())
        result = driver.execute("SELECT COUNT(*) FROM events")
        assert driver.tracer is None
        assert result.traces[0].end_ms > result.traces[0].start_ms


class TestObserveOff:
    def test_disabled_service_allocates_nothing(self):
        fed = GridFederation()
        server = fed.create_server("jc1", "pc1")  # observe defaults to False
        db = make_events_db("mart")
        fed.attach_database(server, db, logical_names={"EVT": "events"})
        service = server.service
        assert service.tracer is None
        assert service.monitor is None
        assert service._span("anything") is NOOP_SPAN
        service.execute("SELECT COUNT(*) FROM events")
        # no network observer was registered either
        assert fed.network._observers == []

    def test_trace_method_empty_when_off(self):
        fed = GridFederation()
        server = fed.create_server("jc1", "pc1")
        db = make_events_db("mart")
        fed.attach_database(server, db, logical_names={"EVT": "events"})
        client = fed.client("laptop")
        assert client.call(server.server, "dataaccess.trace") == []

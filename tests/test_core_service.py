"""Integration tests for the Data Access Service and GridFederation."""

import pytest

from repro.analysis import JASPlugin
from repro.common import TableNotRegisteredError
from repro.common.errors import ClarensFault
from repro.core import GridFederation
from repro.engine import Database


def make_events_db(name="mart1", n=30):
    db = Database(name, "mysql")
    db.execute("CREATE TABLE EVT (EVENT_ID INT PRIMARY KEY, RUN_ID INT, ENERGY DOUBLE)")
    for i in range(n):
        db.execute(f"INSERT INTO EVT VALUES ({i}, {i % 3}, {i * 1.5})")
    return db


def make_runs_db(name="mart2"):
    db = Database(name, "mssql")
    db.execute("CREATE TABLE RUN_INFO (RUN_ID INT PRIMARY KEY, DETECTOR NVARCHAR(20))")
    for i, d in enumerate(["cms", "atlas", "lhcb"]):
        db.execute(f"INSERT INTO RUN_INFO VALUES ({i}, '{d}')")
    return db


def make_calib_db(name="mart3"):
    db = Database(name, "sqlite")
    db.execute("CREATE TABLE calib (run_id INTEGER PRIMARY KEY, gain REAL)")
    for i in range(3):
        db.execute(f"INSERT INTO calib VALUES ({i}, {1.0 + i * 0.1})")
    return db


@pytest.fixture
def fed():
    federation = GridFederation()
    s1 = federation.create_server("jc1", "pcA")
    s2 = federation.create_server("jc2", "pcB")
    federation.attach_database(s1, make_events_db(), logical_names={"EVT": "events"})
    federation.attach_database(s1, make_runs_db(), logical_names={"RUN_INFO": "runs"})
    federation.attach_database(s2, make_calib_db())
    return federation, s1, s2


class TestLocalRouting:
    def test_pool_vendor_routes_via_pool(self, fed):
        federation, s1, _ = fed
        answer = s1.service.execute("SELECT event_id FROM events LIMIT 5")
        assert answer.routes == ["pool"]
        assert answer.row_count == 5

    def test_mssql_routes_via_jdbc(self, fed):
        federation, s1, _ = fed
        answer = s1.service.execute("SELECT detector FROM runs")
        assert answer.routes == ["jdbc"]

    def test_force_jdbc_disables_pool(self):
        federation = GridFederation()
        s1 = federation.create_server("jc1", "pcA", force_jdbc=True)
        federation.attach_database(s1, make_events_db(), logical_names={"EVT": "events"})
        answer = s1.service.execute("SELECT COUNT(*) FROM events")
        assert answer.routes == ["jdbc"]

    def test_distributed_local_join(self, fed):
        federation, s1, _ = fed
        answer = s1.service.execute(
            "SELECT e.event_id, r.detector FROM events e JOIN runs r "
            "ON e.run_id = r.run_id WHERE e.event_id < 6 ORDER BY e.event_id"
        )
        assert answer.distributed
        assert answer.row_count == 6
        assert sorted(answer.routes) == ["jdbc", "pool"]
        assert answer.servers_accessed == 1
        assert answer.tables_accessed == 2


class TestRemoteForwarding:
    QUERY = (
        "SELECT e.event_id, c.gain FROM events e JOIN calib c "
        "ON e.run_id = c.run_id WHERE e.event_id < 6 ORDER BY e.event_id"
    )

    def test_remote_table_resolved_via_rls(self, fed):
        federation, s1, _ = fed
        before = federation.rls_server.lookups
        answer = s1.service.execute(self.QUERY)
        assert federation.rls_server.lookups == before + 1
        assert answer.servers_accessed == 2
        assert "remote" in answer.routes

    def test_remote_join_values_correct(self, fed):
        federation, s1, _ = fed
        answer = s1.service.execute(self.QUERY)
        gain = answer.rows[0][answer.column_index("gain")]
        assert gain == pytest.approx(1.0)  # event 0 -> run 0 -> gain 1.0
        assert answer.row_count == 6

    def test_remote_location_cached_after_first_lookup(self, fed):
        federation, s1, _ = fed
        s1.service.execute(self.QUERY)
        lookups = federation.rls_server.lookups
        s1.service.execute(self.QUERY)
        assert federation.rls_server.lookups == lookups

    def test_no_forward_refuses_remote(self, fed):
        federation, s1, _ = fed
        with pytest.raises(TableNotRegisteredError):
            s1.service.execute("SELECT gain FROM calib", no_forward=True)

    def test_unknown_table_everywhere_raises(self, fed):
        federation, s1, _ = fed
        from repro.common import RLSLookupError

        with pytest.raises(RLSLookupError):
            s1.service.execute("SELECT x FROM ghost_table")

    def test_querying_owning_server_is_local(self, fed):
        federation, _, s2 = fed
        answer = s2.service.execute("SELECT COUNT(*) FROM calib")
        assert answer.routes == ["pool"]
        assert answer.servers_accessed == 1


class TestWireInterface:
    def test_query_over_the_wire(self, fed):
        federation, s1, _ = fed
        client = federation.client("laptop")
        outcome = federation.query(
            client, s1, "SELECT event_id FROM events ORDER BY event_id LIMIT 3"
        )
        assert outcome.answer.rows == [(0,), (1,), (2,)]
        assert outcome.response_ms > 0

    def test_distributed_flag_over_wire(self, fed):
        federation, s1, _ = fed
        client = federation.client("laptop")
        outcome = federation.query(
            client,
            s1,
            "SELECT e.event_id FROM events e JOIN runs r ON e.run_id = r.run_id",
        )
        assert outcome.answer.distributed
        assert outcome.answer.servers_accessed == 1

    def test_params_over_wire(self, fed):
        federation, s1, _ = fed
        client = federation.client("laptop")
        outcome = federation.query(
            client, s1, "SELECT COUNT(*) FROM events WHERE energy > ?", params=(30,)
        )
        assert outcome.answer.rows[0][0] == 9

    def test_tables_method(self, fed):
        federation, s1, _ = fed
        client = federation.client("laptop")
        tables = client.call(s1.server, "dataaccess.tables")
        assert tables == ["events", "runs"]

    def test_describe_unknown_table_faults(self, fed):
        federation, s1, _ = fed
        client = federation.client("laptop")
        with pytest.raises(ClarensFault):
            client.call(s1.server, "dataaccess.describe", "ghost")

    def test_ping(self, fed):
        federation, s1, _ = fed
        client = federation.client("laptop")
        assert client.call(s1.server, "dataaccess.ping") == "pong"


class TestTable1Shape:
    """The headline Table 1 property: distribution costs >10x."""

    def test_distributed_at_least_10x_slower_than_local(self, fed):
        federation, s1, _ = fed
        client = federation.client("laptop")
        local = federation.query(
            client, s1, "SELECT event_id FROM events WHERE event_id < 10"
        )
        distributed = federation.query(
            client,
            s1,
            "SELECT e.event_id, r.detector FROM events e JOIN runs r "
            "ON e.run_id = r.run_id WHERE e.event_id < 10",
        )
        assert distributed.response_ms > 10 * local.response_ms

    def test_two_server_query_slower_than_one_server(self, fed):
        federation, s1, _ = fed
        client = federation.client("laptop")
        one = federation.query(
            client,
            s1,
            "SELECT e.event_id, r.detector FROM events e JOIN runs r "
            "ON e.run_id = r.run_id",
        )
        two = federation.query(
            client,
            s1,
            "SELECT e.event_id, r.detector, c.gain FROM events e "
            "JOIN runs r ON e.run_id = r.run_id "
            "JOIN calib c ON e.run_id = c.run_id",
        )
        assert two.answer.servers_accessed == 2
        assert two.response_ms > one.response_ms


class TestSchemaEvolution:
    def test_new_table_becomes_queryable_after_poll(self, fed):
        federation, s1, _ = fed
        events_db = federation.directory.lookup(
            s1.service.dictionary.url_for("mart1")
        ).database
        events_db.execute("CREATE TABLE extras (k INT PRIMARY KEY, v VARCHAR(10))")
        events_db.execute("INSERT INTO extras VALUES (1, 'a')")
        with pytest.raises(Exception):
            s1.service.execute("SELECT v FROM extras", no_forward=True)
        changed = s1.service.tracker.poll()
        assert changed == ["mart1"]
        answer = s1.service.execute("SELECT v FROM extras")
        assert answer.rows == [("a",)]

    def test_new_table_published_to_rls(self, fed):
        federation, s1, _ = fed
        events_db = federation.directory.lookup(
            s1.service.dictionary.url_for("mart1")
        ).database
        events_db.execute("CREATE TABLE extras (k INT PRIMARY KEY)")
        s1.service.tracker.poll()
        assert "extras" in federation.rls_server.known_tables()

    def test_other_server_sees_new_table_via_rls(self, fed):
        federation, s1, s2 = fed
        events_db = federation.directory.lookup(
            s1.service.dictionary.url_for("mart1")
        ).database
        events_db.execute("CREATE TABLE extras (k INT PRIMARY KEY, v VARCHAR(4))")
        events_db.execute("INSERT INTO extras VALUES (7, 'x')")
        s1.service.tracker.poll()
        answer = s2.service.execute("SELECT v FROM extras WHERE k = 7")
        assert answer.rows == [("x",)]

    def test_unregister_database(self, fed):
        federation, s1, _ = fed
        s1.service.unregister_database("mart2")
        with pytest.raises(Exception):
            s1.service.execute("SELECT detector FROM runs", no_forward=True)
        assert "runs" not in federation.rls_server.known_tables()


class TestPluginDatabases:
    def test_plugin_at_runtime(self, fed):
        from repro.dialects import get_dialect
        from repro.metadata import generate_lower_xspec

        federation, s1, _ = fed
        new_db = Database("plugged", "sqlite")
        new_db.execute("CREATE TABLE hot_events (event_id INTEGER PRIMARY KEY)")
        new_db.execute("INSERT INTO hot_events VALUES (1), (2)")
        url = get_dialect("sqlite").make_url("newhost", None, "plugged")
        federation.add_host("newhost")
        federation.directory.register(url, new_db, host_name="newhost")
        spec_xml = generate_lower_xspec(new_db).to_xml()

        client = federation.client("laptop")
        added = client.call(s1.server, "dataaccess.plugin", spec_xml, url, "sqlite")
        assert added == ["hot_events"]
        answer = s1.service.execute("SELECT COUNT(*) FROM hot_events")
        assert answer.rows == [(2,)]
        assert "hot_events" in federation.rls_server.known_tables()

    def test_plugin_vendor_mismatch_faults(self, fed):
        from repro.dialects import get_dialect
        from repro.metadata import generate_lower_xspec

        federation, s1, _ = fed
        new_db = Database("plugged2", "sqlite")
        new_db.execute("CREATE TABLE t (a INT)")
        url = get_dialect("sqlite").make_url("h2", None, "plugged2")
        federation.add_host("h2")
        federation.directory.register(url, new_db, host_name="h2")
        spec_xml = generate_lower_xspec(new_db).to_xml()
        client = federation.client("laptop")
        with pytest.raises(ClarensFault):
            client.call(s1.server, "dataaccess.plugin", spec_xml, url, "mysql")

    def test_plugin_requires_running_database(self, fed):
        federation, s1, _ = fed
        from repro.common import ConnectionFailedError

        spec_xml = (
            "<xspec database='ghost' vendor='sqlite'>"
            "<table name='t' logical='t'>"
            "<column name='a' type='INTEGER' logicalType='INTEGER'/>"
            "</table></xspec>"
        )
        with pytest.raises(ConnectionFailedError):
            s1.service.plugin(spec_xml, "jdbc:sqlite:/nowhere/ghost.db", "sqlite")


class TestJASPlugin:
    def test_histogram_from_grid_query(self, fed):
        federation, s1, _ = fed
        client = federation.client("laptop")
        jas = JASPlugin(federation, client, s1)
        hist = jas.histogram_query(
            "SELECT energy FROM events", "energy", nbins=10
        )
        assert hist.entries == 30
        assert hist.in_range + hist.overflow + hist.underflow == 30

    def test_histogram2d_from_grid_query(self, fed):
        federation, s1, _ = fed
        client = federation.client("laptop")
        jas = JASPlugin(federation, client, s1)
        hist = jas.histogram2d_query(
            "SELECT event_id, energy FROM events", "event_id", "energy"
        )
        assert hist.entries == 30


class TestServiceStats:
    def test_stats_counters(self, fed):
        federation, s1, _ = fed
        client = federation.client("laptop")
        federation.query(client, s1, "SELECT COUNT(*) FROM events")
        federation.query(client, s1, "SELECT COUNT(*) FROM runs")
        stats = client.call(s1.server, "dataaccess.stats")
        assert stats["server"] == "jc1"
        assert stats["queries_served"] >= 2
        assert stats["routes"]["pool"] >= 1
        assert stats["routes"]["jdbc"] >= 1
        assert stats["pool_handles"] >= 1
        assert "mart1" in stats["databases"]
        assert stats["methods"]["dataaccess.query"]["calls"] >= 2

    def test_stats_include_pool_when_enabled(self):
        federation = GridFederation()
        server = federation.create_server("jc1", "pc1", jdbc_pooling=True)
        db = make_runs_db("rdb")
        federation.attach_database(server, db)
        server.service.execute("SELECT COUNT(*) FROM run_info")
        server.service.execute("SELECT COUNT(*) FROM run_info")
        stats = server.service.stats()
        assert stats["jdbc_pool"]["hits"] == 1
        assert stats["jdbc_pool"]["misses"] == 1

    def test_stats_wire_safe(self, fed):
        """The stats struct must survive the XML-RPC codec."""
        from repro.clarens import decode_payload, encode_payload

        federation, s1, _ = fed
        s1.service.execute("SELECT COUNT(*) FROM events")
        stats = s1.service.stats()
        _, decoded = decode_payload(encode_payload("m", stats))
        assert decoded["queries_served"] == stats["queries_served"]


class TestRoutesOverWire:
    def test_routes_travel_in_query_response(self, fed):
        federation, s1, _ = fed
        client = federation.client("laptop")
        outcome = federation.query(
            client,
            s1,
            "SELECT e.event_id FROM events e JOIN runs r ON e.run_id = r.run_id",
        )
        assert sorted(outcome.answer.routes) == ["jdbc", "pool"]

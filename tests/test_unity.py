"""Unit tests for query decomposition, integration and the Unity driver."""

import pytest

from repro.common import PlanningError, TableNotRegisteredError
from repro.sql import parse_select
from repro.unity import UnityDriver, decompose

from tests.conftest import reference_database


class TestDecomposeSingle:
    def test_single_table_is_single_plan(self, two_db_federation):
        _, dictionary, *_ = two_db_federation
        plan = decompose(parse_select("SELECT event_id FROM events"), dictionary)
        assert plan.kind == "single"
        assert not plan.is_distributed
        assert len(plan.subqueries) == 1

    def test_single_plan_uses_physical_names(self, two_db_federation):
        _, dictionary, *_ = two_db_federation
        plan = decompose(
            parse_select("SELECT event_id FROM events WHERE energy > 5"), dictionary
        )
        sql = plan.subqueries[0].sql
        assert "EVT" in sql and "ENERGY" in sql
        # physical table with the logical binding kept as an alias
        assert "FROM EVT" in sql

    def test_single_plan_keeps_aggregates_pushed(self, two_db_federation):
        _, dictionary, *_ = two_db_federation
        plan = decompose(
            parse_select("SELECT COUNT(*) AS n, AVG(energy) FROM events"), dictionary
        )
        assert plan.kind == "single"
        assert "AVG" in plan.subqueries[0].sql

    def test_unknown_table_raises(self, two_db_federation):
        _, dictionary, *_ = two_db_federation
        with pytest.raises(TableNotRegisteredError):
            decompose(parse_select("SELECT x FROM ghost"), dictionary)

    def test_unknown_column_raises(self, two_db_federation):
        _, dictionary, *_ = two_db_federation
        with pytest.raises(PlanningError):
            decompose(parse_select("SELECT ghost_col FROM events"), dictionary)

    def test_no_from_raises(self, two_db_federation):
        _, dictionary, *_ = two_db_federation
        with pytest.raises(PlanningError):
            decompose(parse_select("SELECT 1"), dictionary)


class TestDecomposeFederated:
    QUERY = (
        "SELECT e.event_id, r.detector FROM events e JOIN runs r "
        "ON e.run_id = r.run_id WHERE e.energy > 5 AND r.good = 1"
    )

    def test_two_databases_is_federated(self, two_db_federation):
        _, dictionary, *_ = two_db_federation
        plan = decompose(parse_select(self.QUERY), dictionary)
        assert plan.kind == "federated"
        assert plan.is_distributed
        assert sorted(s.binding for s in plan.subqueries) == ["e", "r"]

    def test_single_table_predicates_pushed(self, two_db_federation):
        _, dictionary, *_ = two_db_federation
        plan = decompose(parse_select(self.QUERY), dictionary)
        by_binding = {s.binding: s for s in plan.subqueries}
        assert "ENERGY > 5" in by_binding["e"].sql.replace("(", "").replace(")", "")
        assert "GOOD = 1" in by_binding["r"].sql.replace("(", "").replace(")", "")

    def test_cross_table_predicate_not_pushed(self, two_db_federation):
        _, dictionary, *_ = two_db_federation
        plan = decompose(
            parse_select(
                "SELECT e.event_id FROM events e JOIN runs r ON e.run_id = r.run_id "
                "WHERE e.energy > r.run_id"
            ),
            dictionary,
        )
        for sub in plan.subqueries:
            assert sub.select.where is None

    def test_needed_columns_only(self, two_db_federation):
        _, dictionary, *_ = two_db_federation
        plan = decompose(parse_select(self.QUERY), dictionary)
        e = next(s for s in plan.subqueries if s.binding == "e")
        fetched = {i.alias for i in e.select.items}
        assert fetched == {"event_id", "energy", "run_id"}  # no 'tag'

    def test_pushdown_disabled_fetches_everything(self, two_db_federation):
        _, dictionary, *_ = two_db_federation
        plan = decompose(parse_select(self.QUERY), dictionary, pushdown=False)
        e = next(s for s in plan.subqueries if s.binding == "e")
        assert e.select.where is None
        assert {i.alias for i in e.select.items} == {
            "event_id",
            "run_id",
            "energy",
            "tag",
        }

    def test_left_join_left_side_predicate_not_pushed(self, two_db_federation):
        _, dictionary, *_ = two_db_federation
        plan = decompose(
            parse_select(
                "SELECT e.event_id FROM events e LEFT JOIN runs r "
                "ON e.run_id = r.run_id AND e.energy > 5"
            ),
            dictionary,
        )
        e = next(s for s in plan.subqueries if s.binding == "e")
        assert e.select.where is None  # left-side ON conjunct must not prefilter

    def test_left_join_right_side_predicate_pushed(self, two_db_federation):
        _, dictionary, *_ = two_db_federation
        plan = decompose(
            parse_select(
                "SELECT e.event_id FROM events e LEFT JOIN runs r "
                "ON e.run_id = r.run_id AND r.good = 1"
            ),
            dictionary,
        )
        r = next(s for s in plan.subqueries if s.binding == "r")
        assert r.select.where is not None

    def test_ambiguous_unqualified_column_raises(self, two_db_federation):
        _, dictionary, *_ = two_db_federation
        with pytest.raises(PlanningError):
            decompose(
                parse_select(
                    "SELECT run_id FROM events e JOIN runs r ON e.run_id = r.run_id"
                ),
                dictionary,
            )

    def test_duplicate_binding_raises(self, two_db_federation):
        _, dictionary, *_ = two_db_federation
        with pytest.raises(PlanningError):
            decompose(
                parse_select("SELECT 1 FROM events e JOIN runs e ON 1 = 1"),
                dictionary,
            )

    def test_logical_select_available_for_forwarding(self, two_db_federation):
        _, dictionary, *_ = two_db_federation
        plan = decompose(parse_select(self.QUERY), dictionary)
        e = next(s for s in plan.subqueries if s.binding == "e")
        assert "events" in e.logical_sql
        assert "EVT" not in e.logical_sql

    def test_prefer_databases_pins_replica(self, two_db_federation):
        _, dictionary, events, _, (url1, _) = two_db_federation
        from repro.metadata import generate_lower_xspec, LowerXSpec

        spec = generate_lower_xspec(events, logical_names={"EVT": "events"})
        replica_spec = LowerXSpec("replica_db", spec.vendor, spec.tables)
        dictionary.add_database(replica_spec, "jdbc:mysql://other:3306/replica")
        plan = decompose(
            parse_select("SELECT event_id FROM events"),
            dictionary,
            prefer_databases={"events": "replica_db"},
        )
        assert plan.subqueries[0].location.database_name == "replica_db"


class TestUnityDriverExecution:
    """Federated execution must equal single-engine reference execution."""

    EQUIVALENCE_QUERIES = [
        "SELECT e.event_id, r.detector FROM events e JOIN runs r "
        "ON e.run_id = r.run_id ORDER BY e.event_id",
        "SELECT e.event_id FROM events e JOIN runs r ON e.run_id = r.run_id "
        "WHERE e.energy > 5 AND r.good = 1 ORDER BY e.event_id",
        "SELECT r.detector, COUNT(*) AS n FROM events e JOIN runs r "
        "ON e.run_id = r.run_id GROUP BY r.detector ORDER BY n DESC, detector",
        "SELECT e.event_id, r.detector FROM events e LEFT JOIN runs r "
        "ON e.run_id = r.run_id AND r.good = 1 ORDER BY e.event_id",
        "SELECT DISTINCT r.detector FROM events e JOIN runs r "
        "ON e.run_id = r.run_id ORDER BY r.detector",
        "SELECT e.tag, AVG(e.energy) AS avg_e FROM events e JOIN runs r "
        "ON e.run_id = r.run_id WHERE r.good = 1 GROUP BY e.tag "
        "HAVING COUNT(*) > 1 ORDER BY e.tag",
        "SELECT e.event_id FROM events e JOIN runs r ON e.run_id = r.run_id "
        "ORDER BY e.event_id LIMIT 3 OFFSET 1",
        "SELECT event_id, energy FROM events WHERE tag = 'hot' ORDER BY event_id",
        "SELECT COUNT(*) FROM events",
    ]

    @pytest.mark.parametrize("query", EQUIVALENCE_QUERIES)
    def test_federated_equals_reference(self, two_db_federation, query):
        directory, dictionary, *_ = two_db_federation
        driver = UnityDriver(dictionary, directory)
        federated = driver.execute(query)
        reference = reference_database().execute(query)
        assert federated.rows == reference.rows
        assert [c.lower() for c in federated.columns] == [
            c.lower() for c in reference.columns
        ]

    @pytest.mark.parametrize("query", EQUIVALENCE_QUERIES)
    def test_no_pushdown_equals_reference(self, two_db_federation, query):
        directory, dictionary, *_ = two_db_federation
        driver = UnityDriver(dictionary, directory, pushdown=False)
        assert driver.execute(query).rows == reference_database().execute(query).rows

    def test_traces_report_vendors(self, two_db_federation):
        directory, dictionary, *_ = two_db_federation
        driver = UnityDriver(dictionary, directory)
        result = driver.execute(
            "SELECT e.event_id, r.detector FROM events e JOIN runs r "
            "ON e.run_id = r.run_id"
        )
        assert sorted(t.vendor for t in result.traces) == ["mssql", "mysql"]
        assert all(t.via == "jdbc" for t in result.traces)

    def test_params_flow_to_subqueries(self, two_db_federation):
        directory, dictionary, *_ = two_db_federation
        driver = UnityDriver(dictionary, directory)
        result = driver.execute(
            "SELECT e.event_id FROM events e JOIN runs r ON e.run_id = r.run_id "
            "WHERE e.energy > ? ORDER BY e.event_id",
            params=(10,),
        )
        assert result.rows == [(7,), (8,), (9,)]

    def test_result_vector_is_2d_lists(self, two_db_federation):
        directory, dictionary, *_ = two_db_federation
        driver = UnityDriver(dictionary, directory)
        vec = driver.execute("SELECT event_id FROM events LIMIT 2").to_vector()
        assert isinstance(vec, list) and all(isinstance(r, list) for r in vec)

    def test_clock_accumulates_connect_costs(self, two_db_federation):
        from repro.net import SimClock

        directory, dictionary, *_ = two_db_federation
        clock = SimClock()
        driver = UnityDriver(dictionary, directory, clock=clock)
        driver.execute(
            "SELECT e.event_id FROM events e JOIN runs r ON e.run_id = r.run_id"
        )
        from repro.dialects import get_dialect

        floor = (
            get_dialect("mysql").cost.connect_ms
            + get_dialect("mssql").cost.connect_ms
        )
        assert clock.now_ms > floor

    def test_mssql_subquery_renders_with_top_when_limited(self, two_db_federation):
        directory, dictionary, *_ = two_db_federation
        driver = UnityDriver(dictionary, directory)
        result = driver.execute("SELECT detector FROM runs ORDER BY detector LIMIT 2")
        assert result.rows == [("atlas",), ("cms",)]


class TestFederatedStarAndEdges:
    def test_select_star_federated(self, two_db_federation):
        directory, dictionary, *_ = two_db_federation
        driver = UnityDriver(dictionary, directory)
        result = driver.execute(
            "SELECT * FROM events e JOIN runs r ON e.run_id = r.run_id "
            "WHERE e.event_id = 1"
        )
        # all logical columns from both tables, logical names preserved
        assert set(c.lower() for c in result.columns) == {
            "event_id", "run_id", "energy", "tag", "detector", "good",
        }

    def test_qualified_star_federated(self, two_db_federation):
        directory, dictionary, *_ = two_db_federation
        driver = UnityDriver(dictionary, directory)
        result = driver.execute(
            "SELECT e.* FROM events e JOIN runs r ON e.run_id = r.run_id "
            "WHERE e.event_id = 1"
        )
        assert [c.lower() for c in result.columns] == [
            "event_id", "run_id", "energy", "tag",
        ]

    def test_params_inside_pushed_predicate(self, two_db_federation):
        directory, dictionary, *_ = two_db_federation
        driver = UnityDriver(dictionary, directory)
        plan = driver.plan("SELECT event_id FROM events WHERE energy > ?")
        # single-table plan pushes the parameterized predicate down
        assert "?" in plan.subqueries[0].sql
        result = driver.execute(
            "SELECT event_id FROM events WHERE energy > ? ORDER BY event_id",
            params=(10,),
        )
        assert result.rows == [(7,), (8,), (9,)]

    def test_single_table_order_and_limit_pushed(self, two_db_federation):
        directory, dictionary, *_ = two_db_federation
        driver = UnityDriver(dictionary, directory)
        plan = driver.plan("SELECT event_id FROM events ORDER BY energy DESC LIMIT 2")
        assert plan.kind == "single"
        sql = plan.subqueries[0].sql
        assert "ORDER BY" in sql and "LIMIT 2" in sql

    def test_distinct_federated(self, two_db_federation):
        directory, dictionary, *_ = two_db_federation
        driver = UnityDriver(dictionary, directory)
        result = driver.execute(
            "SELECT DISTINCT r.good FROM events e JOIN runs r "
            "ON e.run_id = r.run_id ORDER BY r.good"
        )
        assert result.rows == [(0,), (1,)]

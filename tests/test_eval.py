"""Unit tests for expression compilation and three-valued logic."""

import pytest

from repro.common import ColumnNotFoundError, SQLType, SQLTypeError
from repro.sql import parse_expression
from repro.sql.eval import RowSchema, SchemaColumn, compile_expr, truthy


@pytest.fixture
def schema():
    return RowSchema(
        [
            SchemaColumn("t", "a", SQLType.integer()),
            SchemaColumn("t", "b", SQLType.double()),
            SchemaColumn("t", "name", SQLType.varchar(20)),
            SchemaColumn("u", "a", SQLType.integer()),
        ]
    )


def ev(text, schema, row, params=()):
    return compile_expr(parse_expression(text), schema, params)(row)


class TestResolution:
    def test_qualified_lookup(self, schema):
        assert ev("t.a", schema, (1, 2.0, "x", 9)) == 1
        assert ev("u.a", schema, (1, 2.0, "x", 9)) == 9

    def test_unqualified_unique_lookup(self, schema):
        assert ev("name", schema, (1, 2.0, "x", 9)) == "x"

    def test_unqualified_ambiguous_raises(self, schema):
        with pytest.raises(ColumnNotFoundError):
            ev("a", schema, (1, 2.0, "x", 9))

    def test_case_insensitive(self, schema):
        assert ev("T.A", schema, (5, 0.0, "", 0)) == 5

    def test_missing_column_raises(self, schema):
        with pytest.raises(ColumnNotFoundError):
            ev("t.zzz", schema, (1, 2.0, "x", 9))

    def test_star_indexes(self, schema):
        assert schema.indexes_for_star(None) == [0, 1, 2, 3]
        assert schema.indexes_for_star("u") == [3]
        with pytest.raises(ColumnNotFoundError):
            schema.indexes_for_star("zzz")


class TestArithmetic:
    def test_basic_ops(self, schema):
        row = (6, 4.0, "x", 2)
        assert ev("t.a + t.b", schema, row) == 10.0
        assert ev("t.a - u.a", schema, row) == 4
        assert ev("t.a * 2", schema, row) == 12
        assert ev("t.a % u.a", schema, row) == 0

    def test_integer_division_stays_int_when_exact(self, schema):
        assert ev("t.a / 2", schema, (6, 0.0, "", 0)) == 3
        assert isinstance(ev("t.a / 2", schema, (6, 0.0, "", 0)), int)

    def test_inexact_division_is_float(self, schema):
        assert ev("t.a / 4", schema, (6, 0.0, "", 0)) == 1.5

    def test_division_by_zero_is_null(self, schema):
        assert ev("t.a / 0", schema, (6, 0.0, "", 0)) is None

    def test_null_propagates(self, schema):
        assert ev("t.a + 1", schema, (None, 0.0, "", 0)) is None

    def test_string_arith_raises(self, schema):
        with pytest.raises(SQLTypeError):
            ev("name + 1", schema, (0, 0.0, "abc", 0))

    def test_concat(self, schema):
        assert ev("name || '!'", schema, (0, 0.0, "hi", 0)) == "hi!"

    def test_unary_minus(self, schema):
        assert ev("-t.b", schema, (0, 2.5, "", 0)) == -2.5


class TestThreeValuedLogic:
    def test_and_truth_table(self, schema):
        row = (None, 0.0, "", 0)
        # NULL AND FALSE = FALSE; NULL AND TRUE = NULL
        assert ev("t.a = 1 AND 1 = 2", schema, row) is False
        assert ev("t.a = 1 AND 1 = 1", schema, row) is None

    def test_or_truth_table(self, schema):
        row = (None, 0.0, "", 0)
        assert ev("t.a = 1 OR 1 = 1", schema, row) is True
        assert ev("t.a = 1 OR 1 = 2", schema, row) is None

    def test_not_null_is_null(self, schema):
        assert ev("NOT t.a = 1", schema, (None, 0.0, "", 0)) is None

    def test_comparison_with_null_is_unknown(self, schema):
        assert ev("t.a = 1", schema, (None, 0.0, "", 0)) is None
        assert ev("t.a <> 1", schema, (None, 0.0, "", 0)) is None

    def test_is_null(self, schema):
        assert ev("t.a IS NULL", schema, (None, 0.0, "", 0)) is True
        assert ev("t.a IS NOT NULL", schema, (None, 0.0, "", 0)) is False

    def test_truthy_only_true(self):
        assert truthy(True)
        assert not truthy(None)
        assert not truthy(False)


class TestPredicates:
    def test_in_list(self, schema):
        assert ev("t.a IN (1, 2, 3)", schema, (2, 0.0, "", 0)) is True
        assert ev("t.a IN (1, 2, 3)", schema, (9, 0.0, "", 0)) is False

    def test_in_list_with_null_member_unknown_on_miss(self, schema):
        assert ev("t.a IN (1, NULL)", schema, (9, 0.0, "", 0)) is None
        assert ev("t.a IN (9, NULL)", schema, (9, 0.0, "", 0)) is True

    def test_not_in(self, schema):
        assert ev("t.a NOT IN (1, 2)", schema, (9, 0.0, "", 0)) is True

    def test_between(self, schema):
        assert ev("t.a BETWEEN 1 AND 5", schema, (3, 0.0, "", 0)) is True
        assert ev("t.a BETWEEN 1 AND 5", schema, (7, 0.0, "", 0)) is False
        assert ev("t.a NOT BETWEEN 1 AND 5", schema, (7, 0.0, "", 0)) is True

    def test_like_percent(self, schema):
        assert ev("name LIKE 'ab%'", schema, (0, 0.0, "abcdef", 0)) is True
        assert ev("name LIKE 'ab%'", schema, (0, 0.0, "xabc", 0)) is False

    def test_like_underscore(self, schema):
        assert ev("name LIKE 'a_c'", schema, (0, 0.0, "abc", 0)) is True
        assert ev("name LIKE 'a_c'", schema, (0, 0.0, "abbc", 0)) is False

    def test_like_escapes_regex_chars(self, schema):
        assert ev("name LIKE 'a.c'", schema, (0, 0.0, "a.c", 0)) is True
        assert ev("name LIKE 'a.c'", schema, (0, 0.0, "abc", 0)) is False

    def test_like_null_operand(self, schema):
        assert ev("name LIKE 'a%'", schema, (0, 0.0, None, 0)) is None


class TestFunctionsAndCase:
    def test_case(self, schema):
        text = "CASE WHEN t.a > 0 THEN 'pos' WHEN t.a < 0 THEN 'neg' ELSE 'zero' END"
        assert ev(text, schema, (3, 0.0, "", 0)) == "pos"
        assert ev(text, schema, (-3, 0.0, "", 0)) == "neg"
        assert ev(text, schema, (0, 0.0, "", 0)) == "zero"

    def test_case_no_else_yields_null(self, schema):
        assert ev("CASE WHEN t.a > 0 THEN 1 END", schema, (-1, 0.0, "", 0)) is None

    def test_cast(self, schema):
        assert ev("CAST(t.b AS INTEGER)", schema, (0, 7.9, "", 0)) == 7

    def test_scalar_functions(self, schema):
        row = (0, -2.5, "MiXeD", 0)
        assert ev("ABS(t.b)", schema, row) == 2.5
        assert ev("LOWER(name)", schema, row) == "mixed"
        assert ev("UPPER(name)", schema, row) == "MIXED"
        assert ev("LENGTH(name)", schema, row) == 5

    def test_coalesce(self, schema):
        assert ev("COALESCE(t.a, 42)", schema, (None, 0.0, "", 0)) == 42
        assert ev("COALESCE(t.a, 42)", schema, (7, 0.0, "", 0)) == 7

    def test_substr(self, schema):
        assert ev("SUBSTR(name, 2, 3)", schema, (0, 0.0, "abcdef", 0)) == "bcd"

    def test_unknown_function_raises(self, schema):
        with pytest.raises(SQLTypeError):
            ev("FROBNICATE(t.a)", schema, (1, 0.0, "", 0))

    def test_aggregate_outside_select_raises(self, schema):
        with pytest.raises(SQLTypeError):
            ev("SUM(t.a)", schema, (1, 0.0, "", 0))


class TestParams:
    def test_param_binding(self, schema):
        assert ev("t.a = ?", schema, (5, 0.0, "", 0), params=(5,)) is True

    def test_missing_param_raises(self, schema):
        with pytest.raises(SQLTypeError):
            ev("t.a = ?", schema, (5, 0.0, "", 0), params=())

"""End-to-end integration: the paper's complete data path in one test
session — sources → warehouse → marts → federation → analysis — plus
the XSpec file store round trip.
"""

import pytest

from repro.analysis import JASPlugin
from repro.common import DeterministicRNG
from repro.core import GridFederation
from repro.engine import Database
from repro.hep import build_tier_sources, etl_jobs_for_source
from repro.marts import MartSet
from repro.metadata.store import XSpecStore
from repro.warehouse import Warehouse

NVAR = 6


@pytest.fixture(scope="module")
def pipeline():
    """Run the full Stage 1 + Stage 2 + serving pipeline once."""
    rng = DeterministicRNG("e2e")
    fed = GridFederation()
    fed.add_host("tier1.cern.ch", 1)
    fed.add_host("tier2.caltech.edu", 2)

    tier1, tier2 = build_tier_sources(rng, n_runs=4, events_per_run=60, nvar=NVAR)
    warehouse = Warehouse(fed.network, fed.clock, nvar=NVAR)
    for source, host in ((tier1, "tier1.cern.ch"), (tier2, "tier2.caltech.edu")):
        for job in etl_jobs_for_source(source, host, NVAR):
            warehouse.load(job)

    marts = MartSet(warehouse)
    mysql_mart = Database("analysis_mart", "mysql")
    sqlite_mart = Database("laptop_mart", "sqlite")
    marts.add_mart(mysql_mart, "pc1.caltech.edu")
    marts.add_mart(sqlite_mart, "laptop.cern.ch")
    marts.replicate(["v_event_wide", "v_run_summary", "v_calibration"])

    server = fed.create_server("jclarens1", "pc1.caltech.edu")
    fed.attach_database(server, mysql_mart, db_host="pc1.caltech.edu")
    client = fed.client("laptop.cern.ch")
    return fed, server, client, warehouse, tier1, tier2, mysql_mart, sqlite_mart


class TestEndToEnd:
    def test_every_source_event_reaches_the_warehouse(self, pipeline):
        _, _, _, warehouse, tier1, tier2, *_ = pipeline
        source_total = (
            tier1.execute("SELECT COUNT(*) FROM events").rows[0][0]
            + tier2.execute("SELECT COUNT(*) FROM events").rows[0][0]
        )
        assert warehouse.row_count("event_fact") == source_total == 240

    def test_warehouse_values_match_source_eav(self, pipeline):
        _, _, _, warehouse, tier1, *_ = pipeline
        eav = tier1.execute(
            "SELECT ev.value FROM event_values ev "
            "JOIN variables v ON ev.variable_id = v.variable_id "
            "WHERE ev.event_id = 5 AND v.var_index = 2"
        ).rows[0][0]
        wide = warehouse.db.execute(
            "SELECT var_2 FROM event_fact WHERE event_id = 5"
        ).rows[0][0]
        assert wide == pytest.approx(eav)

    def test_marts_agree_with_each_other(self, pipeline):
        *_, mysql_mart, sqlite_mart = pipeline
        a = mysql_mart.execute(
            "SELECT run_id, n_events FROM v_run_summary ORDER BY run_id"
        ).rows
        b = sqlite_mart.execute(
            "SELECT run_id, n_events FROM v_run_summary ORDER BY run_id"
        ).rows
        assert a == b

    def test_mart_aggregates_match_warehouse(self, pipeline):
        _, _, _, warehouse, _, _, mysql_mart, _ = pipeline
        wh = warehouse.db.execute(
            "SELECT run_id, mean_var0 FROM v_run_summary ORDER BY run_id"
        ).rows
        mart = mysql_mart.execute(
            "SELECT run_id, mean_var0 FROM v_run_summary ORDER BY run_id"
        ).rows
        for (wr, wm), (mr, mm) in zip(wh, mart):
            assert wr == mr
            assert mm == pytest.approx(wm)

    def test_grid_query_equals_direct_mart_query(self, pipeline):
        fed, server, client, *_ , mysql_mart, _ = pipeline
        sql = "SELECT run_id, n_events FROM v_run_summary ORDER BY run_id"
        grid = fed.query(client, server, sql)
        direct = mysql_mart.execute(sql)
        assert grid.answer.rows == direct.rows

    def test_cross_table_mart_join_through_grid(self, pipeline):
        fed, server, client, *_ = pipeline
        outcome = fed.query(
            client,
            server,
            "SELECT w.run_id, s.n_events, COUNT(*) AS wide_rows "
            "FROM v_event_wide w JOIN v_run_summary s ON w.run_id = s.run_id "
            "GROUP BY w.run_id, s.n_events ORDER BY w.run_id",
        )
        for run_id, n_events, wide_rows in outcome.answer.rows:
            assert n_events == wide_rows == 60

    def test_histogram_over_the_grid(self, pipeline):
        fed, server, client, *_ = pipeline
        jas = JASPlugin(fed, client, server)
        hist = jas.histogram_query(
            "SELECT var_0 FROM v_event_wide", "var_0", nbins=12
        )
        assert hist.entries == 240

    def test_simulated_time_accrued_monotonically(self, pipeline):
        fed, server, client, *_ = pipeline
        t0 = fed.clock.now_ms
        fed.query(client, server, "SELECT COUNT(*) FROM v_event_wide")
        assert fed.clock.now_ms > t0


class TestXSpecStoreRoundTrip:
    def test_dictionary_survives_disk_round_trip(self, pipeline, tmp_path):
        _, server, *_ = pipeline
        store = XSpecStore(tmp_path)
        upper = store.save_dictionary(server.service.dictionary)
        assert store.upper_path.exists()
        assert len(upper.entries) == len(server.service.dictionary.databases())

        reloaded = store.load_dictionary()
        original = server.service.dictionary
        assert reloaded.logical_tables() == original.logical_tables()
        for table in original.logical_tables():
            a = original.locate(table)
            b = reloaded.locate(table)
            assert (a.database_name, a.url, a.physical_name) == (
                b.database_name,
                b.url,
                b.physical_name,
            )

    def test_spec_files_are_valid_standalone_xml(self, pipeline, tmp_path):
        _, server, *_ = pipeline
        store = XSpecStore(tmp_path)
        store.save_dictionary(server.service.dictionary)
        import xml.etree.ElementTree as ET

        for name in store.list_specs():
            ET.fromstring(store.lower_path(name).read_text())
        ET.fromstring(store.upper_path.read_text())

    def test_missing_files_raise(self, tmp_path):
        from repro.common.errors import XSpecError

        store = XSpecStore(tmp_path / "empty")
        with pytest.raises(XSpecError):
            store.load_upper()
        with pytest.raises(XSpecError):
            store.load_lower("nope")

"""Property-based tests (hypothesis) for the SQL layer."""

import math

from hypothesis import given, settings, strategies as st

from repro.common import SQLType, TypeKind, coerce_value, common_supertype, sql_repr
from repro.common.errors import SQLTypeError
from repro.sql import ast, parse_expression, parse_statement, tokenize


# -- value strategies -------------------------------------------------------------

sql_ints = st.integers(min_value=-(2**40), max_value=2**40)
sql_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
sql_strings = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")), max_size=30
)
sql_scalars = st.one_of(st.none(), st.booleans(), sql_ints, sql_floats, sql_strings)


class TestLiteralRoundTrip:
    @given(sql_ints)
    def test_int_literal_round_trip(self, value):
        expr = parse_expression(sql_repr(value))
        assert isinstance(expr, ast.Literal)
        assert expr.value == value

    @given(sql_floats)
    def test_float_literal_round_trip(self, value):
        expr = parse_expression(sql_repr(value))
        assert isinstance(expr, ast.Literal)
        assert math.isclose(float(expr.value), value, rel_tol=0, abs_tol=0) or (
            expr.value == value
        )

    @given(sql_strings)
    def test_string_literal_round_trip(self, value):
        expr = parse_expression(sql_repr(value))
        assert isinstance(expr, ast.Literal)
        assert expr.value == value

    @given(st.booleans())
    def test_bool_literal_round_trip(self, value):
        assert parse_expression(sql_repr(value)).value is value

    def test_null_round_trip(self):
        assert parse_expression(sql_repr(None)).value is None


# -- expression AST round trip ----------------------------------------------------------

_idents = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
    lambda s: s.upper() not in __import__("repro.sql.lexer", fromlist=["KEYWORDS"]).KEYWORDS
)


def _exprs():
    leaves = st.one_of(
        sql_ints.map(ast.Literal),
        sql_strings.map(ast.Literal),
        st.booleans().map(ast.Literal),
        st.just(ast.Literal(None)),
        _idents.map(lambda c: ast.ColumnRef(column=c)),
        st.tuples(_idents, _idents).map(
            lambda t: ast.ColumnRef(column=t[1], table=t[0])
        ),
    )

    def extend(children):
        binary = st.tuples(
            st.sampled_from(["+", "-", "*", "/", "AND", "OR", "=", "<", ">=", "||"]),
            children,
            children,
        ).map(lambda t: ast.BinaryOp(*t))
        unary = children.map(lambda e: ast.UnaryOp("NOT", e))
        isnull = st.tuples(children, st.booleans()).map(
            lambda t: ast.IsNull(t[0], t[1])
        )
        inlist = st.tuples(children, st.lists(children, min_size=1, max_size=3)).map(
            lambda t: ast.InList(t[0], tuple(t[1]))
        )
        between = st.tuples(children, children, children).map(
            lambda t: ast.Between(*t)
        )
        func = st.tuples(
            st.sampled_from(["ABS", "LOWER", "UPPER", "LENGTH", "COALESCE"]),
            st.lists(children, min_size=1, max_size=2),
        ).map(lambda t: ast.FunctionCall(t[0], tuple(t[1])))
        return st.one_of(binary, unary, isnull, inlist, between, func)

    return st.recursive(leaves, extend, max_leaves=12)


class TestExpressionRoundTrip:
    @given(_exprs())
    @settings(max_examples=150)
    def test_unparse_parse_fixed_point(self, expr):
        """parse(unparse(e)) unparsed again must be byte-identical."""
        text = expr.unparse()
        reparsed = parse_expression(text)
        assert reparsed.unparse() == text

    @given(_exprs())
    @settings(max_examples=80)
    def test_unparse_tokenizes(self, expr):
        tokenize(expr.unparse())


# -- statement round trip --------------------------------------------------------------------


def _selects():
    tables = st.lists(_idents, min_size=1, max_size=3, unique=True)

    def build(names):
        items = tuple(
            ast.SelectItem(ast.ColumnRef(column=f"c{i}"), alias=None)
            for i in range(len(names))
        )
        from_ = tuple(ast.TableRef(name=n) for n in names)
        return ast.Select(items=items, from_=from_)

    return tables.map(build)


class TestStatementRoundTrip:
    @given(_selects())
    def test_select_round_trip(self, select):
        text = select.unparse()
        assert parse_statement(text).unparse() == text


# -- type system properties ------------------------------------------------------------------

_types = st.sampled_from(
    [
        SQLType.integer(),
        SQLType.bigint(),
        SQLType.double(),
        SQLType(TypeKind.FLOAT),
        SQLType.decimal(10, 2),
        SQLType.varchar(64),
        SQLType.text(),
        SQLType.boolean(),
        SQLType.timestamp(),
    ]
)


class TestTypeProperties:
    @given(_types, _types)
    def test_supertype_commutative(self, a, b):
        try:
            ab = common_supertype(a, b)
        except SQLTypeError:
            try:
                common_supertype(b, a)
                raise AssertionError("asymmetric supertype failure")
            except SQLTypeError:
                return
        assert ab.kind == common_supertype(b, a).kind

    @given(_types)
    def test_supertype_idempotent(self, t):
        assert common_supertype(t, t).kind == t.kind

    @given(sql_scalars, _types)
    def test_coerce_idempotent(self, value, target):
        try:
            once = coerce_value(value, target)
        except SQLTypeError:
            return
        assert coerce_value(once, target) == once

    @given(sql_scalars)
    def test_null_coerces_everywhere(self, _):
        for t in (SQLType.integer(), SQLType.text(), SQLType.boolean()):
            assert coerce_value(None, t) is None

"""Tests for JDBC connection pooling."""

import pytest

from repro.core import GridFederation
from repro.dialects import get_dialect
from repro.driver import Directory
from repro.driver.pool import ConnectionPool
from repro.engine import Database
from repro.net import SimClock


@pytest.fixture
def pooled():
    directory = Directory()
    clock = SimClock()
    db = Database("m", "mssql")
    db.execute("CREATE TABLE T (A INT)")
    db.execute("INSERT INTO T VALUES (1)")
    url = get_dialect("mssql").make_url("h", None, "m")
    directory.register(url, db, host_name="h")
    pool = ConnectionPool(directory, clock=clock)
    return pool, url, clock


class TestConnectionPool:
    def test_first_get_dials(self, pooled):
        pool, url, clock = pooled
        conn = pool.get(url)
        assert pool.stats.misses == 1
        assert clock.now_ms > 0  # paid the connect

    def test_release_then_get_is_hit_and_free(self, pooled):
        pool, url, clock = pooled
        conn = pool.get(url)
        pool.release(conn)
        t = clock.now_ms
        again = pool.get(url)
        assert again is conn
        assert pool.stats.hits == 1
        assert clock.now_ms == t  # no connect cost on a hit

    def test_closed_connections_discarded(self, pooled):
        pool, url, _ = pooled
        conn = pool.get(url)
        conn.close()
        pool.release(conn)
        assert pool.idle_count() == 0
        assert pool.stats.discarded == 1

    def test_max_idle_bound(self, pooled):
        pool, url, _ = pooled
        pool.max_idle_per_key = 2
        conns = [pool.get(url) for _ in range(4)]
        for c in conns:
            pool.release(c)
        assert pool.idle_count() == 2

    def test_per_user_keying(self, pooled):
        pool, url, _ = pooled
        conn = pool.get(url)
        pool.release(conn, user="grid")
        # a different user must not inherit grid's session
        with pytest.raises(Exception):
            pool.get(url, user="other", password="pw")

    def test_close_all(self, pooled):
        pool, url, _ = pooled
        conn = pool.get(url)
        pool.release(conn)
        pool.close_all()
        assert pool.idle_count() == 0
        assert conn.closed


class TestPooledService:
    def make(self, jdbc_pooling):
        fed = GridFederation()
        server = fed.create_server("jc1", "pc1", jdbc_pooling=jdbc_pooling)
        runs = Database("runs_mart", "mssql")
        runs.execute("CREATE TABLE RUNS (RUN_ID INT PRIMARY KEY)")
        runs.execute("INSERT INTO RUNS VALUES (0), (1)")
        fed.attach_database(server, runs)
        return fed, server

    def test_second_query_is_cheap_with_pooling(self):
        fed, server = self.make(jdbc_pooling=True)
        server.service.execute("SELECT COUNT(*) FROM runs")  # warms the pool
        t = fed.clock.now_ms
        server.service.execute("SELECT COUNT(*) FROM runs")
        warm = fed.clock.now_ms - t

        fed2, server2 = self.make(jdbc_pooling=False)
        server2.service.execute("SELECT COUNT(*) FROM runs")
        t = fed2.clock.now_ms
        server2.service.execute("SELECT COUNT(*) FROM runs")
        cold = fed2.clock.now_ms - t
        assert warm < cold / 5

    def test_answers_identical(self):
        fed, server = self.make(jdbc_pooling=True)
        fed2, server2 = self.make(jdbc_pooling=False)
        sql = "SELECT run_id FROM runs ORDER BY run_id"
        assert (
            server.service.execute(sql).rows == server2.service.execute(sql).rows
        )

    def test_pool_stats_visible(self):
        fed, server = self.make(jdbc_pooling=True)
        server.service.execute("SELECT COUNT(*) FROM runs")
        server.service.execute("SELECT COUNT(*) FROM runs")
        stats = server.service.router.jdbc_pool.stats
        assert stats.misses == 1 and stats.hits == 1

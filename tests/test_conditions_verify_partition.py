"""Tests for IOV conditions, ETL verification, CTAS and network partitions."""

import pytest

from repro.common import ConnectionFailedError, DeterministicRNG, ReproError
from repro.engine import Database
from repro.hep.conditions import INFINITE_RUN, ConditionsDB
from repro.net import Network, SimClock, costs


class TestConditionsDB:
    @pytest.fixture
    def conditions(self):
        return ConditionsDB(Database("cond", "oracle"))

    def test_store_and_lookup(self, conditions):
        conditions.store("hv_setting", 1500.0, valid_from=1, valid_to=100)
        value = conditions.lookup("hv_setting", 50)
        assert value.value == 1500.0
        assert value.version == 1

    def test_open_ended_interval(self, conditions):
        conditions.store("b_field", 3.8, valid_from=10)
        assert conditions.lookup("b_field", 10**6).value == 3.8

    def test_out_of_interval_raises(self, conditions):
        conditions.store("hv_setting", 1500.0, 10, 20)
        with pytest.raises(ReproError):
            conditions.lookup("hv_setting", 5)

    def test_newest_version_wins_on_overlap(self, conditions):
        conditions.store("gain", 1.00, 1, 100)
        conditions.store("gain", 1.05, 50, 100)  # supersedes the tail
        assert conditions.lookup("gain", 25).value == 1.00
        assert conditions.lookup("gain", 75).value == 1.05

    def test_interval_boundaries_inclusive(self, conditions):
        conditions.store("t", 7.0, 10, 20)
        assert conditions.lookup("t", 10).value == 7.0
        assert conditions.lookup("t", 20).value == 7.0

    def test_invalid_interval_rejected(self, conditions):
        with pytest.raises(ReproError):
            conditions.store("x", 1.0, 20, 10)

    def test_history_ordered_by_version(self, conditions):
        conditions.store("x", 1.0, 1, 10)
        conditions.store("x", 2.0, 11, 20)
        history = conditions.history("x")
        assert [h.version for h in history] == [1, 2]

    def test_snapshot(self, conditions):
        conditions.store("a", 1.0, 1, INFINITE_RUN)
        conditions.store("b", 2.0, 1, 5)
        snap = conditions.snapshot(10)
        assert snap == {"a": 1.0}

    def test_persists_across_wrapper_instances(self, conditions):
        conditions.store("x", 5.0, 1, 10)
        reopened = ConditionsDB(conditions.db)
        assert reopened.lookup("x", 5).value == 5.0
        reopened.store("y", 1.0, 1, 2)  # id allocation continues safely

    def test_federates_like_any_table(self, conditions):
        """Conditions are ordinary rows: the grid can serve them."""
        from repro.core import GridFederation

        conditions.store("hv_setting", 1500.0, 1, 100)
        fed = GridFederation()
        server = fed.create_server("jc1", "pc1")
        fed.attach_database(server, conditions.db)
        answer = server.service.execute(
            "SELECT value FROM condition_iov WHERE name = 'hv_setting' "
            "AND 50 BETWEEN valid_from AND valid_to"
        )
        assert answer.rows == [(1500.0,)]


class TestETLVerification:
    @pytest.fixture
    def loaded(self):
        from repro.hep import create_source_schema, etl_jobs_for_source, generate_ntuple, populate_source
        from repro.warehouse import Warehouse

        net = Network()
        clock = SimClock()
        net.add_host("tier1", 1)
        rng = DeterministicRNG("verify")
        src = Database("src", "oracle")
        create_source_schema(src)
        populate_source(src, rng, {1: generate_ntuple(rng.fork("nt"), 30, 4)})
        wh = Warehouse(net, clock, nvar=4)
        job = etl_jobs_for_source(src, "tier1", 4)[0]
        wh.load(job)
        return wh, job

    def test_clean_load_verifies(self, loaded):
        wh, job = loaded
        report = wh.pipeline.verify(job)
        assert report.ok
        assert report.expected_rows == 30
        assert not report.failures()

    def test_lost_rows_detected(self, loaded):
        wh, job = loaded
        wh.db.execute("DELETE FROM event_fact WHERE event_id <= 3")
        report = wh.pipeline.verify(job)
        assert not report.ok
        names = [n for n, _ in report.failures()]
        assert "row_presence" in names

    def test_corrupted_value_detected(self, loaded):
        wh, job = loaded
        wh.db.execute("UPDATE event_fact SET var_0 = var_0 + 1 WHERE event_id = 1")
        report = wh.pipeline.verify(job)
        assert not report.ok


class TestCreateTableAs:
    def test_ctas_round_trip(self):
        from repro.sql import parse_statement

        stmt = parse_statement("CREATE TABLE t2 AS SELECT a, b FROM t WHERE (a > 1)")
        assert parse_statement(stmt.unparse()).unparse() == stmt.unparse()

    def test_ctas_types_inferred(self):
        db = Database("c", "mysql")
        db.execute("CREATE TABLE t (a INT, b DOUBLE, s VARCHAR(8))")
        db.execute("INSERT INTO t VALUES (1, 2.5, 'x')")
        db.execute("CREATE TABLE copy AS SELECT * FROM t")
        cols = db.catalog.get_table("copy").columns
        from repro.common import TypeKind

        assert [c.type.kind for c in cols] == [
            TypeKind.INTEGER,
            TypeKind.DOUBLE,
            TypeKind.VARCHAR,
        ]

    def test_ctas_if_not_exists(self):
        db = Database("c", "mysql")
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("CREATE TABLE x AS SELECT a FROM t")
        db.execute("CREATE TABLE IF NOT EXISTS x AS SELECT a, a AS a2 FROM t")
        assert db.catalog.get_table("x").column_names == ["a"]

    def test_ctas_with_aggregate(self):
        db = Database("c", "mysql")
        db.execute("CREATE TABLE t (g VARCHAR(4), v INT)")
        db.execute("INSERT INTO t VALUES ('a',1),('a',2),('b',5)")
        db.execute(
            "CREATE TABLE sums AS SELECT g, SUM(v) AS total FROM t GROUP BY g"
        )
        assert db.execute("SELECT total FROM sums WHERE g = 'a'").rows == [(3,)]


class TestNetworkPartition:
    @pytest.fixture
    def net(self):
        n = Network()
        n.add_host("a")
        n.add_host("b")
        return n

    def test_failed_link_raises_after_timeout(self, net):
        clock = SimClock()
        net.fail_link("a", "b")
        with pytest.raises(ConnectionFailedError):
            net.transfer("a", "b", 10, clock)
        assert clock.now_ms == pytest.approx(costs.PARTITION_TIMEOUT_MS)

    def test_restore_link(self, net):
        net.fail_link("a", "b")
        net.restore_link("a", "b")
        net.transfer("a", "b", 10, SimClock())

    def test_failed_host_unreachable_from_everywhere(self, net):
        net.add_host("c")
        net.fail_host("b")
        assert not net.is_reachable("a", "b")
        assert net.is_reachable("a", "c")
        with pytest.raises(ConnectionFailedError):
            net.transfer("c", "b", 10, SimClock())

    def test_loopback_unaffected_by_link_failures(self, net):
        net.fail_link("a", "b")
        net.transfer("a", "a", 10, SimClock())

    def test_partitioned_remote_server_fails_query(self):
        from repro.core import GridFederation

        fed = GridFederation()
        s1 = fed.create_server("jc1", "pc1")
        s2 = fed.create_server("jc2", "pc2")
        db = Database("m", "mysql")
        db.execute("CREATE TABLE T (A INT PRIMARY KEY)")
        fed.attach_database(s2, db, logical_names={"T": "remote_t"})
        fed.network.fail_link("pc1", "pc2")
        with pytest.raises(ConnectionFailedError):
            s1.service.execute("SELECT a FROM remote_t")
        # after the partition heals, the query works
        fed.network.restore_link("pc1", "pc2")
        answer = s1.service.execute("SELECT COUNT(*) FROM remote_t")
        assert answer.rows == [(0,)]

"""Unit tests for the logical SQL type system."""

import pytest

from repro.common import (
    SQLType,
    SQLTypeError,
    TypeKind,
    coerce_value,
    common_supertype,
    infer_literal_type,
    is_null,
    sql_repr,
)


class TestTypeKind:
    def test_numeric_kinds(self):
        assert TypeKind.INTEGER.is_numeric
        assert TypeKind.DOUBLE.is_numeric
        assert TypeKind.DECIMAL.is_numeric
        assert not TypeKind.VARCHAR.is_numeric

    def test_textual_kinds(self):
        assert TypeKind.VARCHAR.is_textual
        assert TypeKind.TEXT.is_textual
        assert not TypeKind.BIGINT.is_textual

    def test_temporal_kinds(self):
        assert TypeKind.DATE.is_temporal
        assert TypeKind.TIMESTAMP.is_temporal
        assert not TypeKind.BLOB.is_temporal


class TestSQLTypeRendering:
    def test_varchar_renders_length(self):
        assert str(SQLType.varchar(40)) == "VARCHAR(40)"

    def test_decimal_renders_precision_scale(self):
        assert str(SQLType.decimal(10, 2)) == "DECIMAL(10,2)"

    def test_plain_kind_renders_bare(self):
        assert str(SQLType.bigint()) == "BIGINT"
        assert str(SQLType.timestamp()) == "TIMESTAMP"


class TestInferLiteralType:
    def test_small_int_is_integer(self):
        assert infer_literal_type(42).kind is TypeKind.INTEGER

    def test_large_int_is_bigint(self):
        assert infer_literal_type(2**40).kind is TypeKind.BIGINT

    def test_float_is_double(self):
        assert infer_literal_type(3.14).kind is TypeKind.DOUBLE

    def test_bool_is_boolean_not_integer(self):
        assert infer_literal_type(True).kind is TypeKind.BOOLEAN

    def test_str_is_varchar_with_length(self):
        t = infer_literal_type("hello")
        assert t.kind is TypeKind.VARCHAR
        assert t.length == 5

    def test_null_is_permissive_text(self):
        assert infer_literal_type(None).kind is TypeKind.TEXT

    def test_unsupported_python_type_raises(self):
        with pytest.raises(SQLTypeError):
            infer_literal_type(object())


class TestCommonSupertype:
    def test_same_kind_is_identity(self):
        t = common_supertype(SQLType.integer(), SQLType.integer())
        assert t.kind is TypeKind.INTEGER

    def test_integer_widens_to_double(self):
        t = common_supertype(SQLType.integer(), SQLType.double())
        assert t.kind is TypeKind.DOUBLE

    def test_varchar_lengths_take_max(self):
        t = common_supertype(SQLType.varchar(10), SQLType.varchar(30))
        assert t.length == 30

    def test_mixed_text_kinds_widen_to_text(self):
        t = common_supertype(SQLType.varchar(10), SQLType.text())
        assert t.kind is TypeKind.TEXT

    def test_boolean_widens_to_numeric(self):
        t = common_supertype(SQLType.boolean(), SQLType.integer())
        assert t.kind is TypeKind.INTEGER

    def test_date_and_timestamp_widen_to_timestamp(self):
        t = common_supertype(SQLType(TypeKind.DATE), SQLType.timestamp())
        assert t.kind is TypeKind.TIMESTAMP

    def test_incompatible_kinds_raise(self):
        with pytest.raises(SQLTypeError):
            common_supertype(SQLType.varchar(5), SQLType.integer())


class TestCoerceValue:
    def test_null_passes_every_type(self):
        for t in (SQLType.integer(), SQLType.varchar(5), SQLType.boolean()):
            assert coerce_value(None, t) is None

    def test_string_to_integer(self):
        assert coerce_value(" 42 ", SQLType.integer()) == 42

    def test_float_to_integer_truncates(self):
        assert coerce_value(3.9, SQLType.integer()) == 3

    def test_nan_to_integer_raises(self):
        with pytest.raises(SQLTypeError):
            coerce_value(float("nan"), SQLType.integer())

    def test_int_to_double(self):
        result = coerce_value(7, SQLType.double())
        assert result == 7.0 and isinstance(result, float)

    def test_number_to_varchar(self):
        assert coerce_value(12, SQLType.varchar(10)) == "12"

    def test_varchar_overflow_raises(self):
        with pytest.raises(SQLTypeError):
            coerce_value("toolongvalue", SQLType.varchar(4))

    def test_char_pads_to_length(self):
        assert coerce_value("ab", SQLType(TypeKind.CHAR, length=4)) == "ab  "

    def test_boolean_from_strings(self):
        assert coerce_value("true", SQLType.boolean()) is True
        assert coerce_value("0", SQLType.boolean()) is False

    def test_boolean_from_int(self):
        assert coerce_value(3, SQLType.boolean()) is True

    def test_blob_from_str_encodes(self):
        assert coerce_value("hi", SQLType(TypeKind.BLOB)) == b"hi"

    def test_garbage_string_to_int_raises(self):
        with pytest.raises(SQLTypeError):
            coerce_value("not-a-number", SQLType.integer())


class TestSqlRepr:
    def test_null(self):
        assert sql_repr(None) == "NULL"

    def test_string_escapes_quotes(self):
        assert sql_repr("o'brien") == "'o''brien'"

    def test_booleans(self):
        assert sql_repr(True) == "TRUE"
        assert sql_repr(False) == "FALSE"

    def test_numbers(self):
        assert sql_repr(5) == "5"
        assert sql_repr(2.5) == "2.5"

    def test_bytes_hex(self):
        assert sql_repr(b"\x01\x02") == "X'0102'"


def test_is_null_only_none():
    assert is_null(None)
    assert not is_null(float("nan"))
    assert not is_null(0)

"""Tests for non-correlated subqueries (scalar, IN, EXISTS)."""

import pytest

from repro.common import PlanningError, SQLTypeError
from repro.engine import Database
from repro.sql import ast, parse_expression, parse_statement


@pytest.fixture
def db():
    d = Database("sq", "generic")
    d.execute("CREATE TABLE emp (id INT PRIMARY KEY, dept VARCHAR(8), salary DOUBLE)")
    d.execute(
        "INSERT INTO emp VALUES (1,'hr',100),(2,'it',200),(3,'it',150),(4,'fin',300)"
    )
    d.execute("CREATE TABLE closed (dept VARCHAR(8))")
    d.execute("INSERT INTO closed VALUES ('fin')")
    return d


class TestParsing:
    def test_in_subquery_parses(self):
        expr = parse_expression("x IN (SELECT y FROM t)")
        assert isinstance(expr, ast.InSubquery)

    def test_not_in_subquery(self):
        assert parse_expression("x NOT IN (SELECT y FROM t)").negated

    def test_scalar_subquery_parses(self):
        expr = parse_expression("(SELECT MAX(y) FROM t)")
        assert isinstance(expr, ast.ScalarSubquery)

    def test_exists_parses(self):
        expr = parse_expression("EXISTS (SELECT 1 FROM t)")
        assert isinstance(expr, ast.Exists)

    def test_unparse_round_trip(self):
        for text in (
            "SELECT a FROM t WHERE (x IN (SELECT y FROM u))",
            "SELECT a FROM t WHERE (salary > (SELECT AVG(salary) FROM t))",
        ):
            stmt = parse_statement(text)
            assert parse_statement(stmt.unparse()).unparse() == stmt.unparse()

    def test_contains_subquery_helper(self):
        expr = parse_expression("a + 1 > (SELECT MAX(y) FROM t)")
        assert ast.contains_subquery(expr)
        assert not ast.contains_subquery(parse_expression("a + 1"))


class TestExecution:
    def test_in_subquery(self, db):
        r = db.execute(
            "SELECT id FROM emp WHERE dept IN (SELECT dept FROM closed)"
        )
        assert r.rows == [(4,)]

    def test_not_in_subquery(self, db):
        r = db.execute(
            "SELECT id FROM emp WHERE dept NOT IN (SELECT dept FROM closed) "
            "ORDER BY id"
        )
        assert r.rows == [(1,), (2,), (3,)]

    def test_in_subquery_with_null_member(self, db):
        db.execute("INSERT INTO closed VALUES (NULL)")
        # dept 'hr' is not in {fin, NULL}: UNKNOWN -> filtered
        r = db.execute("SELECT id FROM emp WHERE dept IN (SELECT dept FROM closed)")
        assert r.rows == [(4,)]
        # NOT IN over a set with NULL is never TRUE
        r2 = db.execute(
            "SELECT id FROM emp WHERE dept NOT IN (SELECT dept FROM closed)"
        )
        assert r2.rows == []

    def test_scalar_subquery_in_where(self, db):
        r = db.execute(
            "SELECT id FROM emp WHERE salary > (SELECT AVG(salary) FROM emp) "
            "ORDER BY id"
        )
        assert r.rows == [(2,), (4,)]

    def test_scalar_subquery_in_projection(self, db):
        r = db.execute("SELECT id, salary - (SELECT MIN(salary) FROM emp) FROM emp "
                       "WHERE id = 4")
        assert r.rows == [(4, 200.0)]

    def test_scalar_subquery_empty_is_null(self, db):
        r = db.execute(
            "SELECT (SELECT salary FROM emp WHERE id = 99)"
        )
        assert r.rows == [(None,)]

    def test_scalar_subquery_multirow_raises(self, db):
        with pytest.raises(SQLTypeError):
            db.execute("SELECT (SELECT salary FROM emp)")

    def test_scalar_subquery_multicolumn_raises(self, db):
        with pytest.raises(SQLTypeError):
            db.execute("SELECT id FROM emp WHERE salary > (SELECT id, salary FROM emp)")

    def test_exists(self, db):
        r = db.execute(
            "SELECT COUNT(*) FROM emp WHERE EXISTS (SELECT 1 FROM closed)"
        )
        assert r.rows == [(4,)]

    def test_not_exists(self, db):
        db.execute("DELETE FROM closed")
        r = db.execute(
            "SELECT COUNT(*) FROM emp WHERE NOT EXISTS (SELECT 1 FROM closed)"
        )
        assert r.rows == [(4,)]

    def test_subquery_in_delete(self, db):
        n = db.execute(
            "DELETE FROM emp WHERE dept IN (SELECT dept FROM closed)"
        ).rowcount
        assert n == 1

    def test_subquery_in_update(self, db):
        db.execute(
            "UPDATE emp SET salary = salary + 1 "
            "WHERE dept IN (SELECT dept FROM closed)"
        )
        assert db.execute("SELECT salary FROM emp WHERE id = 4").rows == [(301.0,)]

    def test_nested_subqueries(self, db):
        r = db.execute(
            "SELECT id FROM emp WHERE salary = "
            "(SELECT MAX(salary) FROM emp WHERE dept IN (SELECT dept FROM closed))"
        )
        assert r.rows == [(4,)]

    def test_subquery_examined_rows_counted(self, db):
        r = db.execute("SELECT id FROM emp WHERE salary > (SELECT AVG(salary) FROM emp)")
        assert r.stats.rows_examined >= 8  # outer scan + inner scan


class TestFederationRejection:
    def test_decompose_rejects_subqueries(self, two_db_federation):
        _, dictionary, *_ = two_db_federation
        from repro.sql import parse_select
        from repro.unity import decompose

        with pytest.raises(PlanningError):
            decompose(
                parse_select(
                    "SELECT event_id FROM events WHERE run_id IN "
                    "(SELECT run_id FROM runs)"
                ),
                dictionary,
            )

"""Tests for the server-side histogram service."""

import numpy as np
import pytest

from repro.analysis import JASPlugin, histogram_from_wire, histogram_to_wire
from repro.analysis.histogram import Histogram1D
from repro.common import ClarensFault, DeterministicRNG
from repro.core import GridFederation
from repro.engine import Database


@pytest.fixture
def fed():
    federation = GridFederation()
    server = federation.create_server("jc1", "pc1")
    db = Database("m", "mysql")
    db.execute("CREATE TABLE EVT (EVENT_ID INT PRIMARY KEY, E DOUBLE, TAG VARCHAR(4))")
    rng = DeterministicRNG("hs")
    rows = [[i, float(v), "t"] for i, v in enumerate(rng.normal(50, 10, 500))]
    db.bulk_insert("EVT", rows)
    federation.attach_database(server, db, logical_names={"EVT": "events"})
    client = federation.client("laptop")
    return federation, server, client


class TestWireCodec:
    def test_round_trip(self):
        h = Histogram1D(10, 0.0, 100.0, title="x")
        h.fill(DeterministicRNG("w").normal(50, 10, 200))
        back = histogram_from_wire(histogram_to_wire(h))
        assert np.array_equal(back.counts, h.counts)
        assert back.mean == pytest.approx(h.mean)
        assert back.entries == h.entries
        assert back.title == "x"


class TestHistogramService:
    def test_server_side_histogram(self, fed):
        federation, server, client = fed
        wire = client.call(
            server.server, "histogram.h1d",
            "SELECT e FROM events", "e", 20, 0.0, 100.0,
        )
        hist = histogram_from_wire(wire)
        assert hist.entries == 500
        assert hist.nbins == 20

    def test_matches_client_side_histogram(self, fed):
        federation, server, client = fed
        jas = JASPlugin(federation, client, server)
        client_side = jas.histogram_query(
            "SELECT e FROM events", "e", nbins=20, low=0.0, high=100.0
        )
        wire = client.call(
            server.server, "histogram.h1d",
            "SELECT e FROM events", "e", 20, 0.0, 100.0,
        )
        server_side = histogram_from_wire(wire)
        assert np.array_equal(server_side.counts, client_side.counts)
        assert server_side.mean == pytest.approx(client_side.mean)

    def test_ships_bins_not_rows(self, fed):
        """The whole point: response bytes independent of row count."""
        federation, server, client = fed
        before = client.bytes_received
        client.call(
            server.server, "histogram.h1d",
            "SELECT e FROM events", "e", 20, 0.0, 100.0,
        )
        hist_bytes = client.bytes_received - before
        before = client.bytes_received
        client.call(server.server, "dataaccess.query", "SELECT e FROM events")
        rows_bytes = client.bytes_received - before
        assert hist_bytes < rows_bytes / 5

    def test_auto_range(self, fed):
        federation, server, client = fed
        wire = client.call(
            server.server, "histogram.h1d", "SELECT e FROM events", "e"
        )
        hist = histogram_from_wire(wire)
        assert hist.underflow == 0 and hist.overflow == 0

    def test_unknown_column_faults(self, fed):
        federation, server, client = fed
        with pytest.raises(ClarensFault):
            client.call(
                server.server, "histogram.h1d", "SELECT e FROM events", "ghost"
            )

    def test_non_numeric_column_faults(self, fed):
        federation, server, client = fed
        with pytest.raises(ClarensFault):
            client.call(
                server.server, "histogram.h1d",
                "SELECT tag FROM events", "tag",
            )

    def test_empty_result_auto_range_faults(self, fed):
        federation, server, client = fed
        with pytest.raises(ClarensFault):
            client.call(
                server.server, "histogram.h1d",
                "SELECT e FROM events WHERE e > 1000000", "e",
            )

    def test_listed_by_introspection(self, fed):
        federation, server, client = fed
        assert "histogram.h1d" in client.call(server.server, "system.listMethods")

"""Tests for cut-flow analysis and prepared statements."""

import pytest

from repro.analysis import grid_cutflow, local_cutflow
from repro.common import ReproError
from repro.core import GridFederation
from repro.engine import Database


@pytest.fixture
def events_db():
    db = Database("cf", "mysql")
    db.execute("CREATE TABLE EVT (EVENT_ID INT PRIMARY KEY, E DOUBLE, ETA DOUBLE)")
    rows = []
    for i in range(100):
        rows.append([i, float(i), (i % 50) / 10.0 - 2.5])
    db.bulk_insert("EVT", rows)
    return db


class TestLocalCutFlow:
    def test_stage_counts(self, events_db):
        flow = (
            local_cutflow(events_db, "EVT")
            .add_cut("energy", "E > 49")
            .add_cut("central", "ETA BETWEEN -1.0 AND 1.0")
        )
        stages = flow.run()
        assert stages[0].passed == 100
        assert stages[1].passed == 50
        assert 0 < stages[2].passed < 50

    def test_efficiencies_consistent(self, events_db):
        stages = (
            local_cutflow(events_db, "EVT")
            .add_cut("a", "E > 24")
            .add_cut("b", "E > 74")
            .run()
        )
        assert stages[1].passed == 75
        assert stages[2].passed == 25
        assert stages[2].marginal_efficiency == pytest.approx(25 / 75)
        assert stages[2].cumulative_efficiency == pytest.approx(0.25)

    def test_cuts_are_cumulative(self, events_db):
        stages = (
            local_cutflow(events_db, "EVT")
            .add_cut("low", "E < 10")
            .add_cut("high", "E > 90")  # contradicts the first cut
            .run()
        )
        assert stages[2].passed == 0
        assert stages[2].marginal_efficiency == 0.0

    def test_empty_predicate_rejected(self, events_db):
        with pytest.raises(ReproError):
            local_cutflow(events_db, "EVT").add_cut("bad", "   ")

    def test_render_table(self, events_db):
        text = (
            local_cutflow(events_db, "EVT").add_cut("e", "E > 49").render()
        )
        assert "all events" in text and "passed" in text

    def test_empty_table(self):
        db = Database("empty", "mysql")
        db.execute("CREATE TABLE EVT (E DOUBLE)")
        stages = local_cutflow(db, "EVT").add_cut("x", "E > 0").run()
        assert stages[0].passed == 0
        assert stages[1].cumulative_efficiency == 0.0


class TestGridCutFlow:
    def test_over_the_wire(self, events_db):
        fed = GridFederation()
        server = fed.create_server("jc1", "pc1")
        fed.attach_database(server, events_db, logical_names={"EVT": "events"})
        client = fed.client("laptop")
        flow = grid_cutflow(fed, client, server, "events").add_cut("e", "e > 49")
        stages = flow.run()
        assert stages[1].passed == 50

    def test_matches_local(self, events_db):
        local = (
            local_cutflow(events_db, "EVT").add_cut("e", "E > 30").run()
        )
        fed = GridFederation()
        server = fed.create_server("jc1", "pc1")
        fed.attach_database(server, events_db, logical_names={"EVT": "events"})
        client = fed.client("laptop")
        remote = (
            grid_cutflow(fed, client, server, "events").add_cut("e", "e > 30").run()
        )
        assert [s.passed for s in local] == [s.passed for s in remote]


class TestPreparedStatements:
    def test_reuse_with_different_params(self, events_db):
        ps = events_db.prepare("SELECT COUNT(*) FROM EVT WHERE E > ?")
        assert ps.execute((49,)).rows == [(50,)]
        assert ps.execute((89,)).rows == [(10,)]
        assert ps.executions == 2

    def test_prepared_dml(self, events_db):
        ps = events_db.prepare("DELETE FROM EVT WHERE EVENT_ID = ?")
        assert ps.execute((1,)).rowcount == 1
        assert ps.execute((1,)).rowcount == 0

    def test_prepared_matches_adhoc(self, events_db):
        ps = events_db.prepare("SELECT EVENT_ID FROM EVT WHERE E > ? ORDER BY EVENT_ID")
        adhoc = events_db.execute(
            "SELECT EVENT_ID FROM EVT WHERE E > ? ORDER BY EVENT_ID", (95,)
        )
        assert ps.execute((95,)).rows == adhoc.rows

    def test_syntax_error_at_prepare_time(self, events_db):
        from repro.common import SQLSyntaxError

        with pytest.raises(SQLSyntaxError):
            events_db.prepare("SELEKT oops")

"""Shared fixtures: a small two-vendor federation used across test files."""

import pytest

from repro.dialects import get_dialect
from repro.driver import Directory
from repro.engine import Database
from repro.metadata import DataDictionary, generate_lower_xspec


def make_events_db(n_events: int = 10) -> Database:
    db = Database("mart_mysql", "mysql")
    db.execute(
        "CREATE TABLE EVT (EVENT_ID INT PRIMARY KEY, RUN_ID INT, ENERGY DOUBLE, "
        "TAG VARCHAR(8))"
    )
    for i in range(n_events):
        tag = "hot" if i % 2 else "cold"
        db.execute(f"INSERT INTO EVT VALUES ({i}, {i % 3}, {i * 1.5}, '{tag}')")
    return db


def make_runs_db() -> Database:
    db = Database("mart_mssql", "mssql")
    db.execute(
        "CREATE TABLE RUN_INFO (RUN_ID INT PRIMARY KEY, DETECTOR NVARCHAR(20), "
        "GOOD INT)"
    )
    for i, (det, good) in enumerate([("cms", 1), ("atlas", 1), ("lhcb", 0)]):
        db.execute(f"INSERT INTO RUN_INFO VALUES ({i}, '{det}', {good})")
    return db


@pytest.fixture
def two_db_federation():
    """(directory, dictionary, events_db, runs_db, urls) across two vendors."""
    directory = Directory()
    dictionary = DataDictionary()

    events = make_events_db()
    url1 = get_dialect("mysql").make_url("tier2a", None, "mart_mysql")
    directory.register(url1, events, host_name="tier2a")
    dictionary.add_database(
        generate_lower_xspec(events, logical_names={"EVT": "events"}), url1
    )

    runs = make_runs_db()
    url2 = get_dialect("mssql").make_url("tier2b", None, "mart_mssql")
    directory.register(url2, runs, host_name="tier2b")
    dictionary.add_database(
        generate_lower_xspec(runs, logical_names={"RUN_INFO": "runs"}), url2
    )
    return directory, dictionary, events, runs, (url1, url2)


def reference_database() -> Database:
    """All the same data in ONE engine, with logical names — the oracle
    for federated-vs-single-engine equivalence checks."""
    db = Database("reference", "generic")
    db.execute(
        "CREATE TABLE events (event_id INT PRIMARY KEY, run_id INT, energy DOUBLE, "
        "tag VARCHAR(8))"
    )
    db.execute(
        "CREATE TABLE runs (run_id INT PRIMARY KEY, detector VARCHAR(20), good INT)"
    )
    for i in range(10):
        tag = "hot" if i % 2 else "cold"
        db.execute(f"INSERT INTO events VALUES ({i}, {i % 3}, {i * 1.5}, '{tag}')")
    for i, (det, good) in enumerate([("cms", 1), ("atlas", 1), ("lhcb", 0)]):
        db.execute(f"INSERT INTO runs VALUES ({i}, '{det}', {good})")
    return db

"""Unit tests for the multi-level query cache (repro.cache)."""

import pytest

from repro.cache import (
    CacheManager,
    EpochRegistry,
    LRUCache,
    RemoteAnswerCache,
    normalize_sql,
)
from repro.net.simclock import SimClock
from repro.obs.metrics import MetricsRegistry
from repro.sql.parser import parse_select


class TestLRUCache:
    def test_get_put_and_lru_order(self):
        cache = LRUCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # touch a, b is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_byte_budget_evicts_oldest(self):
        cache = LRUCache(max_entries=10, max_bytes=100)
        cache.put("a", "x", nbytes=60)
        cache.put("b", "y", nbytes=60)
        assert "a" not in cache
        assert cache.get("b") == "y"
        assert cache.bytes == 60

    def test_oversized_sole_entry_is_kept(self):
        cache = LRUCache(max_entries=10, max_bytes=100)
        cache.put("huge", "x", nbytes=500)
        assert cache.get("huge") == "x"

    def test_replace_updates_byte_accounting(self):
        cache = LRUCache(max_entries=10, max_bytes=1000)
        cache.put("a", "x", nbytes=100)
        cache.put("a", "y", nbytes=40)
        assert cache.bytes == 40
        assert len(cache) == 1

    def test_invalidate_tag_removes_only_that_tag(self):
        cache = LRUCache(max_entries=10)
        cache.put("a", 1, tag="db1")
        cache.put("b", 2, tag="db2")
        cache.put("c", 3, tag="db1")
        assert cache.invalidate_tag("db1") == 2
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") is None

    def test_eviction_callback_counts(self):
        evicted = []
        cache = LRUCache(max_entries=1, on_evict=lambda n: evicted.append(n))
        cache.put("a", 1)
        cache.put("b", 2)
        assert sum(evicted) == 1

    def test_clear_reports_dropped_count(self):
        cache = LRUCache(max_entries=10)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.bytes == 0


class TestEpochRegistry:
    def test_epochs_start_at_zero_and_bump_independently(self):
        reg = EpochRegistry()
        assert reg.epoch("db1") == 0
        assert reg.bump("db1") == 1
        assert reg.epoch("db1") == 1
        assert reg.epoch("db2") == 0

    def test_generation_counts_every_bump(self):
        reg = EpochRegistry()
        reg.bump("a")
        reg.bump("b")
        reg.bump("a")
        assert reg.generation == 3

    def test_subscribers_see_the_bumped_database(self):
        reg = EpochRegistry()
        seen = []
        reg.subscribe(seen.append)
        reg.bump("db1")
        assert seen == ["db1"]

    def test_as_dict(self):
        reg = EpochRegistry()
        reg.bump("db1")
        assert reg.as_dict() == {"generation": 1, "epochs": {"db1": 1}}


class TestNormalizeSql:
    def test_collapses_whitespace(self):
        assert normalize_sql("SELECT  a\n FROM   t") == "SELECT a FROM t"

    def test_select_ast_uses_unparse(self):
        select = parse_select("SELECT a FROM t WHERE a > 1")
        assert normalize_sql(select) == select.unparse()


class TestCacheManager:
    @pytest.fixture
    def manager(self):
        return CacheManager(clock=SimClock(), metrics=MetricsRegistry())

    def test_plan_roundtrip(self, manager):
        select = parse_select("SELECT a FROM t")
        manager.put_plan("k", select, "the-plan", ("srv1",))
        entry = manager.get_plan("k")
        assert entry.plan == "the-plan"
        assert entry.remote_servers == frozenset({"srv1"})

    def test_dictionary_bump_invalidates_plans(self, manager):
        select = parse_select("SELECT a FROM t")
        manager.put_plan("k", select, "p")
        manager.bump_dictionary()
        assert manager.get_plan("k") is None

    def test_sub_key_changes_with_epoch(self, manager):
        class Loc:
            database_name = "db1"

        class Sub:
            location = Loc()
            sql = "SELECT 1"

        before = manager.sub_key(Sub(), ())
        manager.epochs.bump("db1")
        after = manager.sub_key(Sub(), ())
        assert before != after

    def test_epoch_bump_flushes_only_that_database(self, manager):
        manager.sub.put("k1", ("c", "t", [], "pool"), tag="db1")
        manager.sub.put("k2", ("c", "t", [], "pool"), tag="db2")
        manager.epochs.bump("db1")
        assert manager.sub.get("k1") is None
        assert manager.sub.get("k2") is not None

    def test_store_sub_copies_rows(self, manager):
        rows = [(1, 2)]
        manager.store_sub("k", (["a", "b"], ["INT", "INT"], rows, "pool"), tag="db")
        rows.append((3, 4))
        assert len(manager.lookup_sub("k")[2]) == 1

    def test_stats_shape(self, manager):
        stats = manager.stats()
        assert set(stats) >= {
            "plan", "sub", "remote", "evictions", "invalidations",
            "epoch_generation", "dict_generation",
        }
        for level in ("plan", "sub", "remote"):
            assert set(stats[level]) == {
                "entries", "bytes", "hits", "misses", "hit_rate",
            }

    def test_stat_rows_cover_every_level(self, manager):
        rows = manager.stat_rows()
        levels = {level for level, _stat, _value in rows}
        assert levels == {"plan", "sub", "remote", "all"}


class TestRemoteAnswerCache:
    @pytest.fixture
    def world(self):
        clock = SimClock()
        epochs = EpochRegistry()
        cache = RemoteAnswerCache(clock, epochs, ttl_ms=100.0)
        return clock, epochs, cache

    def test_only_query_answers_are_cacheable(self, world):
        _clock, _epochs, cache = world
        assert cache.cacheable("dataaccess.query")
        assert not cache.cacheable("dataaccess.stats")

    def test_roundtrip_returns_a_copy(self, world):
        _clock, _epochs, cache = world
        key = cache.key("srv", "dataaccess.query", ("sql", [], True))
        answer = {"rows": [[1]], "columns": ["a"]}
        cache.put(key, answer)
        got = cache.get(key)
        assert got == answer
        got["rows"].append([2])
        assert cache.get(key) == answer

    def test_ttl_expires_entries(self, world):
        clock, _epochs, cache = world
        key = cache.key("srv", "dataaccess.query", ("sql", [], True))
        cache.put(key, {"rows": []})
        clock.advance_ms(101.0)
        assert cache.get(key) is None

    def test_epoch_bump_invalidates(self, world):
        _clock, epochs, cache = world
        key = cache.key("srv", "dataaccess.query", ("sql", [], True))
        cache.put(key, {"rows": []})
        epochs.bump("anything")
        assert cache.get(key) is None

    def test_flush(self, world):
        _clock, _epochs, cache = world
        key = cache.key("srv", "dataaccess.query", ("sql", [], True))
        cache.put(key, {"rows": []})
        assert cache.flush() == 1
        assert len(cache) == 0

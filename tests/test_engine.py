"""Unit tests for storage, catalog and the Database facade (DDL/DML)."""

import pytest

from repro.common import SQLType, TableNotFoundError
from repro.common.errors import DuplicateObjectError, IntegrityError
from repro.engine import Column, Database, TableStorage, estimate_row_bytes


@pytest.fixture
def db():
    d = Database("testdb", "mysql")
    d.execute(
        "CREATE TABLE emp (id INTEGER PRIMARY KEY, name VARCHAR(40), "
        "dept VARCHAR(10), salary DOUBLE)"
    )
    d.execute(
        "INSERT INTO emp (id, name, dept, salary) VALUES "
        "(1,'ann','hr',100.0),(2,'bob','it',200.0),(3,'cho','it',150.0),"
        "(4,'dee','fin',NULL)"
    )
    return d


class TestTableStorage:
    def test_insert_coerces_types(self):
        t = TableStorage("t", [Column("a", SQLType.integer()), Column("b", SQLType.varchar(10))])
        row = t.insert(["5", 42])
        assert row == (5, "42")

    def test_pk_uniqueness_enforced(self):
        t = TableStorage("t", [Column("id", SQLType.integer(), primary_key=True, not_null=True)])
        t.insert([1])
        with pytest.raises(IntegrityError):
            t.insert([1])

    def test_not_null_enforced(self):
        t = TableStorage("t", [Column("a", SQLType.integer(), not_null=True)])
        with pytest.raises(IntegrityError):
            t.insert([None])

    def test_partial_insert_applies_defaults(self):
        t = TableStorage(
            "t",
            [
                Column("a", SQLType.integer()),
                Column("b", SQLType.varchar(5), default="x", has_default=True),
            ],
        )
        assert t.insert([1], ["a"]) == (1, "x")

    def test_partial_insert_unknown_column_raises(self):
        t = TableStorage("t", [Column("a", SQLType.integer())])
        with pytest.raises(Exception):
            t.insert([1], ["zzz"])

    def test_wrong_arity_raises(self):
        t = TableStorage("t", [Column("a", SQLType.integer())])
        with pytest.raises(IntegrityError):
            t.insert([1, 2])

    def test_duplicate_column_names_rejected(self):
        with pytest.raises(DuplicateObjectError):
            TableStorage("t", [Column("a", SQLType.integer()), Column("A", SQLType.integer())])

    def test_byte_size_tracks_rows(self):
        t = TableStorage("t", [Column("a", SQLType.integer())])
        assert t.byte_size == 0
        t.insert([12345])
        assert t.byte_size == estimate_row_bytes((12345,))

    def test_pk_point_lookup(self):
        t = TableStorage("t", [Column("id", SQLType.integer(), primary_key=True)])
        t.insert([7])
        assert t.lookup_pk((7,)) == (7,)
        assert t.lookup_pk((8,)) is None

    def test_hash_index_lookup(self):
        t = TableStorage("t", [Column("a", SQLType.integer()), Column("b", SQLType.integer())])
        t.insert([1, 10])
        t.insert([1, 20])
        index = t.ensure_index(("a",))
        assert index[(1,)] == [0, 1]

    def test_index_invalidated_on_insert(self):
        t = TableStorage("t", [Column("a", SQLType.integer())])
        t.insert([1])
        first = t.ensure_index(("a",))
        t.insert([2])
        second = t.ensure_index(("a",))
        assert (2,) in second and (2,) not in first

    def test_add_column_backfills(self):
        t = TableStorage("t", [Column("a", SQLType.integer())])
        t.insert([1])
        t.add_column(Column("b", SQLType.varchar(5), default="x", has_default=True))
        assert t.rows == [(1, "x")]

    def test_add_not_null_without_default_on_nonempty_raises(self):
        t = TableStorage("t", [Column("a", SQLType.integer())])
        t.insert([1])
        with pytest.raises(IntegrityError):
            t.add_column(Column("b", SQLType.integer(), not_null=True))

    def test_drop_column(self):
        t = TableStorage("t", [Column("a", SQLType.integer()), Column("b", SQLType.integer())])
        t.insert([1, 2])
        t.drop_column("a")
        assert t.column_names == ["b"]
        assert t.rows == [(2,)]

    def test_drop_pk_column_raises(self):
        t = TableStorage("t", [Column("a", SQLType.integer(), primary_key=True)])
        with pytest.raises(IntegrityError):
            t.drop_column("a")


class TestDatabaseDDL:
    def test_create_and_drop_table(self):
        db = Database("x")
        db.execute("CREATE TABLE t (a INT)")
        assert db.catalog.has_table("t")
        db.execute("DROP TABLE t")
        assert not db.catalog.has_table("t")

    def test_create_duplicate_raises(self):
        db = Database("x")
        db.execute("CREATE TABLE t (a INT)")
        with pytest.raises(DuplicateObjectError):
            db.execute("CREATE TABLE t (a INT)")

    def test_if_not_exists_is_noop(self):
        db = Database("x")
        db.execute("CREATE TABLE t (a INT)")
        db.execute("CREATE TABLE IF NOT EXISTS t (a INT)")

    def test_drop_missing_raises_unless_if_exists(self):
        db = Database("x")
        with pytest.raises(TableNotFoundError):
            db.execute("DROP TABLE t")
        db.execute("DROP TABLE IF EXISTS t")

    def test_case_insensitive_table_names(self, db):
        assert db.execute("SELECT COUNT(*) FROM EMP").rows == [(4,)]

    def test_create_view_and_query(self, db):
        db.execute("CREATE VIEW it AS SELECT name FROM emp WHERE dept = 'it'")
        rows = db.execute("SELECT * FROM it ORDER BY name").rows
        assert rows == [("bob",), ("cho",)]

    def test_view_reflects_underlying_changes(self, db):
        db.execute("CREATE VIEW it AS SELECT name FROM emp WHERE dept = 'it'")
        db.execute("INSERT INTO emp (id, name, dept) VALUES (9, 'zed', 'it')")
        assert db.execute("SELECT COUNT(*) FROM it").rows == [(3,)]

    def test_view_name_collision_with_table(self, db):
        with pytest.raises(DuplicateObjectError):
            db.execute("CREATE VIEW emp AS SELECT 1")

    def test_alter_rename(self, db):
        db.execute("ALTER TABLE emp RENAME TO people")
        assert db.catalog.has_table("people")
        assert not db.catalog.has_table("emp")

    def test_create_index_validates_columns(self, db):
        with pytest.raises(Exception):
            db.execute("CREATE INDEX i ON emp (nosuch)")
        db.execute("CREATE INDEX i ON emp (dept)")
        assert db.catalog.index_names() == ["i"]


class TestDatabaseDML:
    def test_insert_select(self, db):
        db.execute("CREATE TABLE emp2 (id INTEGER, name VARCHAR(40))")
        r = db.execute("INSERT INTO emp2 SELECT id, name FROM emp")
        assert r.rowcount == 4

    def test_update_with_where(self, db):
        r = db.execute("UPDATE emp SET salary = 999 WHERE dept = 'it'")
        assert r.rowcount == 2
        assert db.execute("SELECT SUM(salary) FROM emp WHERE dept = 'it'").rows == [(1998.0,)]

    def test_update_all_rows(self, db):
        assert db.execute("UPDATE emp SET dept = 'all'").rowcount == 4

    def test_update_null_into_notnull_raises(self):
        db = Database("x")
        db.execute("CREATE TABLE t (a INT NOT NULL)")
        db.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(IntegrityError):
            db.execute("UPDATE t SET a = NULL")

    def test_delete_with_where(self, db):
        assert db.execute("DELETE FROM emp WHERE dept = 'it'").rowcount == 2
        assert db.execute("SELECT COUNT(*) FROM emp").rows == [(2,)]

    def test_delete_all(self, db):
        assert db.execute("DELETE FROM emp").rowcount == 4
        assert db.execute("SELECT COUNT(*) FROM emp").rows == [(0,)]

    def test_bulk_insert_bypasses_parser(self, db):
        n = db.bulk_insert("emp", [[10, "x", "qa", 1.0], [11, "y", "qa", 2.0]])
        assert n == 2
        assert db.execute("SELECT COUNT(*) FROM emp").rows == [(6,)]


class TestSelectSemantics:
    def test_where_null_mismatch_filtered(self, db):
        # dee has NULL salary: neither > nor <= matches
        high = db.execute("SELECT COUNT(*) FROM emp WHERE salary > 120").rows[0][0]
        low = db.execute("SELECT COUNT(*) FROM emp WHERE salary <= 120").rows[0][0]
        assert high + low == 3

    def test_order_by_nulls_last_asc(self, db):
        rows = db.execute("SELECT name FROM emp ORDER BY salary").rows
        assert rows[-1] == ("dee",)

    def test_order_by_desc_nulls_first(self, db):
        rows = db.execute("SELECT name FROM emp ORDER BY salary DESC").rows
        assert rows[0] == ("dee",)

    def test_limit_offset(self, db):
        rows = db.execute("SELECT id FROM emp ORDER BY id LIMIT 2 OFFSET 1").rows
        assert rows == [(2,), (3,)]

    def test_distinct(self, db):
        rows = db.execute("SELECT DISTINCT dept FROM emp ORDER BY dept").rows
        assert rows == [("fin",), ("hr",), ("it",)]

    def test_select_star_columns(self, db):
        r = db.execute("SELECT * FROM emp")
        assert r.columns == ["id", "name", "dept", "salary"]

    def test_qualified_star(self, db):
        r = db.execute("SELECT e.* FROM emp e")
        assert len(r.columns) == 4

    def test_aggregates_on_empty_input(self, db):
        r = db.execute("SELECT COUNT(*), SUM(salary), MIN(salary) FROM emp WHERE id > 99")
        assert r.rows == [(0, None, None)]

    def test_count_ignores_nulls(self, db):
        assert db.execute("SELECT COUNT(salary) FROM emp").rows == [(3,)]

    def test_count_distinct(self, db):
        assert db.execute("SELECT COUNT(DISTINCT dept) FROM emp").rows == [(3,)]

    def test_group_by_having(self, db):
        rows = db.execute(
            "SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept HAVING n > 1"
        ).rows
        assert rows == [("it", 2)]

    def test_expression_over_aggregate(self, db):
        rows = db.execute(
            "SELECT dept, MAX(salary) - MIN(salary) AS spread FROM emp "
            "WHERE salary IS NOT NULL GROUP BY dept ORDER BY dept"
        ).rows
        assert ("it", 50.0) in rows

    def test_bare_column_not_in_group_by_raises(self, db):
        from repro.common import PlanningError

        with pytest.raises(PlanningError):
            db.execute("SELECT name, COUNT(*) FROM emp GROUP BY dept")

    def test_scalar_select(self, db):
        assert db.execute("SELECT 2 * 3 AS x").rows == [(6,)]

    def test_params_flow_through(self, db):
        rows = db.execute("SELECT name FROM emp WHERE dept = ? ORDER BY id", ("it",)).rows
        assert rows == [("bob",), ("cho",)]

    def test_mssql_top_syntax_runs(self, db):
        rows = db.execute("SELECT TOP 2 id FROM emp ORDER BY id").rows
        assert rows == [(1,), (2,)]

    def test_stats_rows_examined(self, db):
        r = db.execute("SELECT * FROM emp WHERE salary > 0")
        assert r.stats.rows_examined >= 4
        assert r.stats.tables_accessed == ["emp"]


class TestJoinSemantics:
    @pytest.fixture
    def jdb(self, db):
        db.execute("CREATE TABLE dept (code VARCHAR(10) PRIMARY KEY, label VARCHAR(30))")
        db.execute("INSERT INTO dept VALUES ('hr','HumanRes'),('it','Infotech')")
        return db

    def test_inner_join_uses_hash_strategy(self, jdb):
        r = jdb.execute("SELECT e.name FROM emp e JOIN dept d ON e.dept = d.code")
        assert r.stats.join_strategy == ["hash"]
        assert r.row_count == 3  # fin has no dept row

    def test_left_join_pads_nulls(self, jdb):
        r = jdb.execute(
            "SELECT e.name, d.label FROM emp e LEFT JOIN dept d ON e.dept = d.code "
            "ORDER BY e.id"
        )
        assert r.rows[-1] == ("dee", None)

    def test_join_on_expression_falls_back_to_nested_loop(self, jdb):
        r = jdb.execute(
            "SELECT COUNT(*) FROM emp e JOIN dept d ON e.salary > 120 AND e.dept = d.code"
        )
        # equi conjunct extracted -> hash join with residual (bob, cho)
        assert r.rows == [(2,)]

    def test_pure_inequality_join_nested_loop(self, jdb):
        r = jdb.execute("SELECT COUNT(*) FROM emp e JOIN emp f ON e.salary < f.salary")
        assert r.stats.join_strategy == ["nested-loop"]
        assert r.rows == [(3,)]

    def test_cross_join(self, jdb):
        r = jdb.execute("SELECT COUNT(*) FROM emp CROSS JOIN dept")
        assert r.rows == [(8,)]

    def test_comma_join_with_where(self, jdb):
        r = jdb.execute(
            "SELECT COUNT(*) FROM emp e, dept d WHERE e.dept = d.code"
        )
        assert r.rows == [(3,)]

    def test_self_join_with_aliases(self, jdb):
        r = jdb.execute(
            "SELECT a.name, b.name FROM emp a JOIN emp b ON a.id = b.id WHERE a.id = 1"
        )
        assert r.rows == [("ann", "ann")]

    def test_null_keys_never_match_in_hash_join(self, jdb):
        jdb.execute("INSERT INTO emp (id, name, dept) VALUES (20, 'nul', NULL)")
        jdb.execute("CREATE TABLE tags (dept VARCHAR(10), tag VARCHAR(10))")
        jdb.execute("INSERT INTO tags VALUES (NULL, 'ghost'), ('it', 'tech')")
        r = jdb.execute("SELECT COUNT(*) FROM emp e JOIN tags t ON e.dept = t.dept")
        assert r.rows == [(2,)]  # only bob and cho match 'it'; NULLs never join

    def test_three_way_join(self, jdb):
        jdb.execute("CREATE TABLE site (dept VARCHAR(10), city VARCHAR(20))")
        jdb.execute("INSERT INTO site VALUES ('it','geneva'),('hr','pasadena')")
        r = jdb.execute(
            "SELECT e.name, s.city FROM emp e "
            "JOIN dept d ON e.dept = d.code JOIN site s ON d.code = s.dept "
            "ORDER BY e.name"
        )
        assert r.rows == [
            ("ann", "pasadena"),
            ("bob", "geneva"),
            ("cho", "geneva"),
        ]

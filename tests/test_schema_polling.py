"""Tests for the periodic (virtual-time) schema polling of §4.9."""

import pytest

from repro.core import GridFederation
from repro.engine import Database


@pytest.fixture
def polled_fed():
    fed = GridFederation()
    server = fed.create_server("jc1", "pc1", schema_poll_interval_ms=10_000.0)
    db = Database("mart", "mysql")
    db.execute("CREATE TABLE T (A INT PRIMARY KEY)")
    db.execute("INSERT INTO T VALUES (1)")
    fed.attach_database(server, db, logical_names={"T": "t"})
    return fed, server, db


class TestSchemaPolling:
    def test_poll_fires_after_interval(self, polled_fed):
        fed, server, db = polled_fed
        db.execute("CREATE TABLE EXTRA (K INT PRIMARY KEY)")
        db.execute("INSERT INTO EXTRA VALUES (7)")
        fed.clock.advance_ms(20_000)
        # next query triggers the lazy poll, which registers the table
        answer = server.service.execute("SELECT k FROM extra")
        assert answer.rows == [(7,)]

    def test_no_poll_before_interval(self, polled_fed):
        fed, server, db = polled_fed
        # the first query at t~0 consumes the initial poll window
        server.service.execute("SELECT a FROM t")
        polls_before = server.service.tracker.polls
        db.execute("CREATE TABLE EXTRA (K INT PRIMARY KEY)")
        fed.clock.advance_ms(1_000)  # < interval
        with pytest.raises(Exception):
            server.service.execute("SELECT k FROM extra", no_forward=True)
        assert server.service.tracker.polls == polls_before

    def test_polls_counted_once_per_window(self, polled_fed):
        fed, server, _ = polled_fed
        server.service.execute("SELECT a FROM t")  # consumes window at t=0
        base = server.service.tracker.polls
        for _ in range(5):
            server.service.execute("SELECT a FROM t")
        assert server.service.tracker.polls == base  # clock barely moved

    def test_disabled_by_default(self):
        fed = GridFederation()
        server = fed.create_server("jc1", "pc1")
        assert server.service.schema_poll_interval_ms is None
        db = Database("mart", "mysql")
        db.execute("CREATE TABLE T (A INT)")
        fed.attach_database(server, db)
        before = server.service.tracker.polls
        fed.clock.advance_ms(10**9)
        server.service.execute("SELECT a FROM t")
        assert server.service.tracker.polls == before

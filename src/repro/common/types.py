"""The SQL type system shared by every engine instance and dialect.

A :class:`SQLType` is a *logical* type (kind + optional length/precision).
Dialects map logical types to vendor-specific type names in both
directions, so the warehouse can read an Oracle ``NUMBER(10)`` and write
a MySQL ``BIGINT`` while the planner reasons only about logical kinds.

Values are plain Python objects (``int``, ``float``, ``str``, ``bool``,
``None``); the helpers here coerce, compare, and infer them.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.common.errors import SQLTypeError


class TypeKind(enum.Enum):
    """Logical SQL type kinds understood by the engine."""

    INTEGER = "INTEGER"
    BIGINT = "BIGINT"
    FLOAT = "FLOAT"
    DOUBLE = "DOUBLE"
    DECIMAL = "DECIMAL"
    VARCHAR = "VARCHAR"
    CHAR = "CHAR"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"
    DATE = "DATE"
    TIMESTAMP = "TIMESTAMP"
    BLOB = "BLOB"

    @property
    def is_numeric(self) -> bool:
        """True for the numeric kinds (INTEGER..DECIMAL)."""
        return self in _NUMERIC_KINDS

    @property
    def is_textual(self) -> bool:
        """True for VARCHAR/CHAR/TEXT."""
        return self in _TEXT_KINDS

    @property
    def is_temporal(self) -> bool:
        """True for DATE/TIMESTAMP."""
        return self in (TypeKind.DATE, TypeKind.TIMESTAMP)


_NUMERIC_KINDS = frozenset(
    {TypeKind.INTEGER, TypeKind.BIGINT, TypeKind.FLOAT, TypeKind.DOUBLE, TypeKind.DECIMAL}
)
_TEXT_KINDS = frozenset({TypeKind.VARCHAR, TypeKind.CHAR, TypeKind.TEXT})

# Widening order used when two numeric types meet in an expression.
_NUMERIC_RANK = {
    TypeKind.INTEGER: 0,
    TypeKind.BIGINT: 1,
    TypeKind.DECIMAL: 2,
    TypeKind.FLOAT: 3,
    TypeKind.DOUBLE: 4,
}


@dataclass(frozen=True)
class SQLType:
    """A logical SQL type: a kind plus optional length/precision/scale."""

    kind: TypeKind
    length: int | None = None
    precision: int | None = None
    scale: int | None = None

    def __str__(self) -> str:
        if self.kind in _TEXT_KINDS and self.length is not None:
            return f"{self.kind.value}({self.length})"
        if self.kind is TypeKind.DECIMAL and self.precision is not None:
            if self.scale is not None:
                return f"DECIMAL({self.precision},{self.scale})"
            return f"DECIMAL({self.precision})"
        return self.kind.value

    # Convenience constructors -------------------------------------------------

    @staticmethod
    def integer() -> "SQLType":
        """Shorthand for the INTEGER type."""
        return SQLType(TypeKind.INTEGER)

    @staticmethod
    def bigint() -> "SQLType":
        """Shorthand for the BIGINT type."""
        return SQLType(TypeKind.BIGINT)

    @staticmethod
    def double() -> "SQLType":
        """Shorthand for the DOUBLE type."""
        return SQLType(TypeKind.DOUBLE)

    @staticmethod
    def decimal(precision: int = 38, scale: int = 0) -> "SQLType":
        """Shorthand for DECIMAL(precision, scale)."""
        return SQLType(TypeKind.DECIMAL, precision=precision, scale=scale)

    @staticmethod
    def varchar(length: int = 255) -> "SQLType":
        """Shorthand for VARCHAR(length)."""
        return SQLType(TypeKind.VARCHAR, length=length)

    @staticmethod
    def text() -> "SQLType":
        """Shorthand for the unbounded TEXT type."""
        return SQLType(TypeKind.TEXT)

    @staticmethod
    def boolean() -> "SQLType":
        """Shorthand for the BOOLEAN type."""
        return SQLType(TypeKind.BOOLEAN)

    @staticmethod
    def timestamp() -> "SQLType":
        """Shorthand for the TIMESTAMP type."""
        return SQLType(TypeKind.TIMESTAMP)


def is_null(value: object) -> bool:
    """SQL NULL test; NaN floats are *not* NULL (they are values)."""
    return value is None


def infer_literal_type(value: object) -> SQLType:
    """Infer the logical type of a Python literal used in SQL."""
    if value is None:
        # NULL is typeless; TEXT is the most permissive carrier.
        return SQLType.text()
    if isinstance(value, bool):
        return SQLType.boolean()
    if isinstance(value, int):
        return SQLType.bigint() if abs(value) > 2**31 - 1 else SQLType.integer()
    if isinstance(value, float):
        return SQLType.double()
    if isinstance(value, str):
        return SQLType.varchar(max(1, len(value)))
    if isinstance(value, (bytes, bytearray)):
        return SQLType(TypeKind.BLOB)
    raise SQLTypeError(f"cannot infer SQL type for Python value of type {type(value).__name__}")


def common_supertype(a: SQLType, b: SQLType) -> SQLType:
    """The narrowest logical type both ``a`` and ``b`` widen to.

    Used when a UNION/merge or cross-database join combines columns whose
    backing vendors disagree about representation.
    """
    if a.kind == b.kind:
        if a.kind in _TEXT_KINDS:
            length = None
            if a.length is not None and b.length is not None:
                length = max(a.length, b.length)
            return SQLType(a.kind, length=length)
        return a
    if a.kind.is_numeric and b.kind.is_numeric:
        winner = a if _NUMERIC_RANK[a.kind] >= _NUMERIC_RANK[b.kind] else b
        return SQLType(winner.kind)
    if a.kind.is_textual and b.kind.is_textual:
        return SQLType.text()
    if a.kind.is_temporal and b.kind.is_temporal:
        return SQLType.timestamp()
    # BOOLEAN widens to INTEGER for vendors without a boolean type.
    kinds = {a.kind, b.kind}
    if TypeKind.BOOLEAN in kinds and (kinds & _NUMERIC_KINDS):
        other = (kinds - {TypeKind.BOOLEAN}).pop()
        return SQLType(other)
    raise SQLTypeError(f"no common supertype for {a} and {b}")


def coerce_value(value: object, target: SQLType) -> object:
    """Coerce a Python value into the representation of ``target``.

    This is the single conversion point used by INSERT paths, the ETL
    transform stage, and cross-vendor materialization. NULL passes
    through every type.
    """
    if value is None:
        return None
    kind = target.kind
    try:
        if kind in (TypeKind.INTEGER, TypeKind.BIGINT):
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, float):
                if math.isnan(value) or math.isinf(value):
                    raise SQLTypeError(f"cannot store {value!r} in {target}")
                return int(value)
            if isinstance(value, str):
                return int(value.strip())
            if isinstance(value, int):
                return value
        elif kind in (TypeKind.FLOAT, TypeKind.DOUBLE, TypeKind.DECIMAL):
            if isinstance(value, bool):
                return float(value)
            if isinstance(value, (int, float)):
                return float(value)
            if isinstance(value, str):
                return float(value.strip())
        elif kind in _TEXT_KINDS:
            if isinstance(value, bool):
                text = "true" if value else "false"
            elif isinstance(value, float):
                text = repr(value)
            else:
                text = str(value)
            if target.length is not None and len(text) > target.length:
                raise SQLTypeError(
                    f"value of length {len(text)} exceeds {target} capacity"
                )
            if kind is TypeKind.CHAR and target.length is not None:
                text = text.ljust(target.length)
            return text
        elif kind is TypeKind.BOOLEAN:
            if isinstance(value, bool):
                return value
            if isinstance(value, int):
                return bool(value)
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("true", "t", "1", "yes"):
                    return True
                if lowered in ("false", "f", "0", "no"):
                    return False
        elif kind in (TypeKind.DATE, TypeKind.TIMESTAMP):
            # Temporal values travel as ISO-8601 strings between vendors.
            if isinstance(value, str):
                return value
        elif kind is TypeKind.BLOB:
            if isinstance(value, (bytes, bytearray)):
                return bytes(value)
            if isinstance(value, str):
                return value.encode("utf-8")
    except (ValueError, OverflowError) as exc:
        raise SQLTypeError(f"cannot coerce {value!r} to {target}: {exc}") from None
    raise SQLTypeError(f"cannot coerce {type(value).__name__} value {value!r} to {target}")


def sql_repr(value: object) -> str:
    """Render a Python value as a SQL literal (for generated sub-queries)."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, (bytes, bytearray)):
        return "X'" + bytes(value).hex() + "'"
    text = str(value).replace("'", "''")
    return f"'{text}'"

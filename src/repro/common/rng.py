"""Deterministic random number generation for workloads and simulations.

Every stochastic component (ntuple generator, workload mixes, simulated
network jitter) draws from a :class:`DeterministicRNG` seeded from a
name, so two runs with the same configuration produce identical data and
identical simulated timings — a requirement for reproducible benchmark
tables.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _seed_from(name: str, seed: int) -> int:
    digest = hashlib.sha256(f"{name}:{seed}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class DeterministicRNG:
    """A named, forkable wrapper around :class:`numpy.random.Generator`.

    ``fork(child)`` derives an independent stream keyed by the child
    name, so adding a new consumer never perturbs existing streams —
    the classic parallel-RNG discipline from HPC codes.
    """

    def __init__(self, name: str = "root", seed: int = 20050615):
        self.name = name
        self.seed = seed
        self._gen = np.random.default_rng(_seed_from(name, seed))

    def fork(self, child: str) -> "DeterministicRNG":
        """Derive an independent, reproducible child stream."""
        return DeterministicRNG(f"{self.name}/{child}", self.seed)

    # Thin passthroughs (typed for the subset we use) -------------------------

    def integers(self, low: int, high: int | None = None, size=None):
        """Uniform integers in [low, high)."""
        return self._gen.integers(low, high, size=size)

    def normal(self, loc: float = 0.0, scale: float = 1.0, size=None):
        """Gaussian samples."""
        return self._gen.normal(loc, scale, size=size)

    def exponential(self, scale: float = 1.0, size=None):
        """Exponential samples."""
        return self._gen.exponential(scale, size=size)

    def uniform(self, low: float = 0.0, high: float = 1.0, size=None):
        """Uniform floats in [low, high)."""
        return self._gen.uniform(low, high, size=size)

    def poisson(self, lam: float = 1.0, size=None):
        """Poisson samples."""
        return self._gen.poisson(lam, size=size)

    def choice(self, seq, size=None, replace=True, p=None):
        """Sample from a sequence (optionally weighted)."""
        return self._gen.choice(seq, size=size, replace=replace, p=p)

    def shuffle(self, seq) -> None:
        """In-place shuffle."""
        self._gen.shuffle(seq)

    def random(self, size=None):
        """Uniform floats in [0, 1)."""
        return self._gen.random(size)

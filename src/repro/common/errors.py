"""Exception hierarchy for the whole middleware.

The hierarchy mirrors the layering of the system: engine-level errors
(catalog, SQL), driver-level errors (connections, vendors), and
federation-level errors (planning, replica lookup, web-service faults).
Callers catch the narrowest class that makes sense; everything derives
from :class:`ReproError` so integration code can catch one root.
"""

from __future__ import annotations


class ReproError(Exception):
    """Root of every error raised by the ``repro`` library."""


# ---------------------------------------------------------------------------
# Engine / SQL layer
# ---------------------------------------------------------------------------


class SQLSyntaxError(ReproError):
    """The SQL text could not be tokenized or parsed.

    Carries the offending position so clients can point at the error.
    """

    def __init__(self, message: str, position: int | None = None, sql: str | None = None):
        self.position = position
        self.sql = sql
        if position is not None and sql is not None:
            snippet = sql[max(0, position - 20) : position + 20]
            message = f"{message} (at position {position}: ...{snippet!r}...)"
        super().__init__(message)


class SQLTypeError(ReproError):
    """An expression or assignment mixed incompatible SQL types."""


class CatalogError(ReproError):
    """Base class for schema-catalog problems."""


class TableNotFoundError(CatalogError):
    """A statement referenced a table (or view) absent from the catalog."""

    def __init__(self, table: str, database: str | None = None):
        self.table = table
        self.database = database
        where = f" in database {database!r}" if database else ""
        super().__init__(f"table {table!r} not found{where}")


class ColumnNotFoundError(CatalogError):
    """A statement referenced a column absent from every visible table."""

    def __init__(self, column: str, table: str | None = None):
        self.column = column
        self.table = table
        where = f" in table {table!r}" if table else ""
        super().__init__(f"column {column!r} not found{where}")


class DuplicateObjectError(CatalogError):
    """Attempted to create a table/view/index that already exists."""


class IntegrityError(ReproError):
    """A constraint (primary key, not-null) would be violated."""


# ---------------------------------------------------------------------------
# Driver layer
# ---------------------------------------------------------------------------


class DriverError(ReproError):
    """Base class for connection-level failures."""


class ConnectionFailedError(DriverError):
    """The connection URL did not resolve to a live database."""


class AuthenticationError(DriverError):
    """Credentials were rejected by the target database or server."""


class CircuitOpenError(ConnectionFailedError):
    """A circuit breaker refused the call without touching the backend.

    Subclasses :class:`ConnectionFailedError` so every failover path
    treats a tripped breaker exactly like a dead backend — except that
    the refusal is instant instead of costing a partition timeout.
    """

    def __init__(self, key: str, retry_after_ms: float | None = None):
        self.key = key
        self.retry_after_ms = retry_after_ms
        after = (
            f" (probe allowed in {retry_after_ms:.0f} ms)"
            if retry_after_ms is not None
            else ""
        )
        super().__init__(f"circuit breaker open for {key!r}{after}")


class UnsupportedVendorError(DriverError):
    """No registered dialect/driver understands the vendor name."""

    def __init__(self, vendor: str):
        self.vendor = vendor
        super().__init__(f"no driver registered for vendor {vendor!r}")


# ---------------------------------------------------------------------------
# Federation / middleware layer
# ---------------------------------------------------------------------------


class FederationError(ReproError):
    """Base class for data-access-service level failures."""


class PlanningError(FederationError):
    """The federated planner could not decompose a query."""


class PreflightError(FederationError):
    """Static pre-flight analysis rejected a query before routing.

    Carries the ERROR-severity lint diagnostics so callers (and remote
    clients, via the Clarens fault path) can show every finding at once
    instead of one remote failure per round trip.
    """

    def __init__(self, diagnostics):
        self.diagnostics = list(diagnostics)
        shown = "; ".join(str(d) for d in self.diagnostics[:3])
        more = len(self.diagnostics) - 3
        if more > 0:
            shown += f" (+{more} more)"
        super().__init__(f"query rejected by pre-flight analysis: {shown}")


class TableNotRegisteredError(FederationError):
    """A logical table is known to no local database and no replica."""

    def __init__(self, table: str):
        self.table = table
        super().__init__(f"logical table {table!r} is not registered with any server")


class RLSLookupError(FederationError):
    """The Replica Location Service had no mapping for a table."""


class ClarensFault(FederationError):
    """A remote Clarens method call failed; carries the remote fault."""

    def __init__(self, method: str, message: str):
        self.method = method
        super().__init__(f"fault from method {method!r}: {message}")


class ETLError(ReproError):
    """Extraction, transformation, or loading failed."""


class XSpecError(ReproError):
    """An XSpec document was malformed or inconsistent."""

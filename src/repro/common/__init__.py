"""Shared foundations: error hierarchy, SQL type system, deterministic RNG.

Every other ``repro`` package builds on these primitives, so they contain
no imports from the rest of the library.
"""

from repro.common.errors import (
    AuthenticationError,
    CatalogError,
    ClarensFault,
    ColumnNotFoundError,
    ConnectionFailedError,
    DriverError,
    DuplicateObjectError,
    ETLError,
    FederationError,
    PlanningError,
    PreflightError,
    ReproError,
    RLSLookupError,
    SQLSyntaxError,
    SQLTypeError,
    TableNotFoundError,
    TableNotRegisteredError,
    UnsupportedVendorError,
    XSpecError,
)
from repro.common.types import (
    SQLType,
    TypeKind,
    coerce_value,
    common_supertype,
    infer_literal_type,
    is_null,
    sql_repr,
)
from repro.common.rng import DeterministicRNG

__all__ = [
    "AuthenticationError",
    "CatalogError",
    "ClarensFault",
    "ColumnNotFoundError",
    "ConnectionFailedError",
    "DeterministicRNG",
    "DriverError",
    "DuplicateObjectError",
    "ETLError",
    "FederationError",
    "PlanningError",
    "PreflightError",
    "ReproError",
    "RLSLookupError",
    "SQLSyntaxError",
    "SQLType",
    "SQLTypeError",
    "TableNotFoundError",
    "TableNotRegisteredError",
    "TypeKind",
    "UnsupportedVendorError",
    "XSpecError",
    "coerce_value",
    "common_supertype",
    "infer_literal_type",
    "is_null",
    "sql_repr",
]

"""The virtual clock.

A :class:`SimClock` is a monotonically advancing millisecond counter.
Sequential work calls :meth:`advance_ms`; concurrent work (the paper's
remote JClarens servers processing forwarded sub-queries in parallel)
uses :meth:`branch` to fork per-branch clocks and :meth:`join_max` to
advance the parent to the latest finisher.
"""

from __future__ import annotations


class SimClock:
    """Millisecond virtual clock with fork/join for parallel branches."""

    def __init__(self, start_ms: float = 0.0):
        self.now_ms = float(start_ms)
        self._marks: list[tuple[str, float]] = []

    def advance_ms(self, ms: float) -> None:
        """Advance time by a non-negative duration."""
        if ms < 0:
            raise ValueError(f"cannot advance clock by negative duration {ms}")
        self.now_ms += ms

    def advance_s(self, seconds: float) -> None:
        self.advance_ms(seconds * 1000.0)

    # -- measurement -----------------------------------------------------------

    def mark(self, label: str) -> None:
        """Record a named timestamp (useful when debugging cost models)."""
        self._marks.append((label, self.now_ms))

    @property
    def marks(self) -> list[tuple[str, float]]:
        return list(self._marks)

    def elapsed_since(self, start_ms: float) -> float:
        return self.now_ms - start_ms

    # -- fork/join ----------------------------------------------------------------

    def branch(self) -> "SimClock":
        """A child clock starting at the current instant."""
        return SimClock(self.now_ms)

    def join_max(self, *branches: "SimClock") -> float:
        """Join parallel branches: jump to the latest branch finish time.

        Returns the duration of the slowest branch. Branches that never
        advanced contribute zero.
        """
        if not branches:
            return 0.0
        latest = max(b.now_ms for b in branches)
        if latest < self.now_ms:
            raise ValueError("branch clock ended before its fork point")
        duration = latest - self.now_ms
        self.now_ms = latest
        return duration

    def rewind_to(self, instant_ms: float) -> None:
        """Rewind to an earlier instant.

        Only legitimate inside a parallel section: run branch A, record
        its duration, rewind, run branch B, ..., then advance by the
        maximum. Virtual time makes this sound because branches only
        ever *advance* the clock.
        """
        if instant_ms > self.now_ms:
            raise ValueError("rewind_to cannot move the clock forward")
        self.now_ms = instant_ms

    def run_parallel(self, branches) -> float:
        """Execute callables as parallel branches; clock ends at the max.

        Returns the duration of the slowest branch. Each branch runs
        sequentially in real execution order but is charged from the
        same virtual start instant — the fork/join pattern the paper's
        remote JClarens servers exhibit.
        """
        start = self.now_ms
        longest = 0.0
        for branch in branches:
            branch()
            longest = max(longest, self.now_ms - start)
            self.rewind_to(start)
        self.advance_ms(longest)
        return longest

    def __repr__(self) -> str:
        return f"SimClock(now_ms={self.now_ms:.3f})"

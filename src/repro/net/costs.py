"""Every timing constant of the simulated testbed, with its fit note.

The paper's evaluation (§5) reports four quantities; each constant here
exists to reproduce one of them and says so. Changing a constant moves
the corresponding benchmark — the ablation benches rely on that.

Fit targets (from the paper):

* Table 1 — 38 ms local single-table query; 487.5 ms distributed
  2-table query on one server; 594 ms distributed 4-table query over
  two servers (the second server works in parallel, so the extra cost
  over 487.5 ms is RLS lookup + forwarding, not double the connects).
* Figure 6 — linear response growth, ~300 ms at 21 rows to ~700 ms at
  2551 rows: slope ≈ 0.158 ms/row from encode + transfer + merge.
* Figure 4 — source→warehouse ETL: extraction ≈ 1-6 s, loading ≈ 2-18 s
  over 0.4-208 kB; per-row INSERT round-trips dominate loading.
* Figure 5 — warehouse→mart materialization is several times slower
  per byte (per-row autocommit into marts without multi-row INSERT).
"""

from __future__ import annotations

# -- the LAN of the testbed (two machines, 100 Mbps Ethernet) -------------------

LAN_BANDWIDTH_MBPS = 100.0
LAN_LATENCY_MS = 0.2
#: loopback for co-hosted client/server processes
LOCAL_LATENCY_MS = 0.02
LOCAL_BANDWIDTH_MBPS = 1000.0
#: how long a sender waits before declaring a partitioned peer dead
PARTITION_TIMEOUT_MS = 3000.0
#: WAN profile for the future-work wide-area experiments
WAN_BANDWIDTH_MBPS = 10.0
WAN_LATENCY_MS = 45.0

# -- Clarens web-service layer ---------------------------------------------------

#: fixed server-side cost to parse an XML-RPC envelope and dispatch a method
CLARENS_DISPATCH_MS = 6.0
#: one-time session establishment (challenge/response) per client-server pair
CLARENS_SESSION_MS = 18.0
#: envelope bytes added to every request/response message
XMLRPC_ENVELOPE_BYTES = 512
#: XML text inflation over the raw row payload
XMLRPC_INFLATION = 2.5
#: CPU cost to encode one result row into the XML response (server side)
XMLRPC_ENCODE_ROW_MS = 0.09
#: CPU cost to decode one row at the client
XMLRPC_DECODE_ROW_MS = 0.05

# -- data access service / Unity driver ---------------------------------------------

#: parsing the XSpec metadata of one participating database per query
#: ("all the related meta-data information has to be parsed", §4.2)
UNITY_METADATA_PARSE_MS = 80.0
#: query decomposition (planning) fixed cost
DECOMPOSE_MS = 6.0
#: merging/integrating rows from sub-queries into the final 2-D vector
MERGE_PER_ROW_MS = 0.03
#: building the hash table for a cross-database join, per build row
XJOIN_BUILD_ROW_MS = 0.012
#: probing, per probe row
XJOIN_PROBE_ROW_MS = 0.008

# -- POOL-RAL ---------------------------------------------------------------------------

#: one-time handle initialization (paper's wrapper method 1)
POOL_INIT_HANDLE_MS = 90.0
#: per-query overhead through the JNI wrapper + RAL dispatch
POOL_CALL_MS = 12.0

# -- federated query caching (opt-in; see repro.cache) -----------------------------------

#: serving a cached sub-result or remote answer from the in-memory store
#: (hash lookup + handing over already-decoded rows). Replaces connect +
#: execute + transfer + encode/decode on a warm hit; tune it to model
#: slower cache media.
CACHE_HIT_MS = 2.0
#: default freshness bound for cached remote answers (simulated ms) —
#: epoch bumps invalidate sooner, the TTL caps unseen remote changes
CACHE_REMOTE_TTL_MS = 30_000.0

# -- Replica Location Service ------------------------------------------------------------

#: server-side lookup in the table→URL map
RLS_LOOKUP_MS = 12.0
#: server-side cost to publish one table mapping
RLS_PUBLISH_MS = 2.0

# -- ETL / materialization (Figures 4 and 5) ------------------------------------------------

#: temp staging file throughput (the paper stages every transfer on disk)
DISK_WRITE_MBPS = 35.0
DISK_READ_MBPS = 55.0
#: serializing one row into the staging file's text format (the staging
#: double-handling the paper calls a bottleneck is per-row CPU, not disk)
STAGE_SERIALIZE_ROW_MS = 2.0
#: parsing one row back out of the staging file
STAGE_PARSE_ROW_MS = 1.5
#: transform CPU per row (denormalization / view flattening)
TRANSFORM_ROW_MS = 0.4
#: extraction stream-out per source row (result-set cursoring at the source)
EXTRACT_ROW_MS = 0.25
#: JDBC statement marshalling per INSERT during loads (parameter binding,
#: statement object churn — the era's drivers did this per row)
LOAD_MARSHAL_MS = 11.0
#: network round-trip per INSERT statement (request + ack at LAN latency)
LOAD_RTT_MS = 2 * LAN_LATENCY_MS
#: commit interval (rows) during warehouse loads (loader batches commits)
WAREHOUSE_COMMIT_EVERY = 100
#: autocommit adds a per-row log flush on top of the vendor commit cost
AUTOCOMMIT_FLUSH_MS = 14.0
#: opening/closing the stream for each SQL statement (paper counts this in)
STREAM_OPEN_CLOSE_MS = 30.0


def transfer_ms(nbytes: int, bandwidth_mbps: float, latency_ms: float) -> float:
    """Wire time for one message of ``nbytes`` over a link."""
    return latency_ms + (nbytes * 8.0) / (bandwidth_mbps * 1e6) * 1000.0

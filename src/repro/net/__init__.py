"""Virtual-time network simulation.

The paper's measurements were taken on a 100 Mbps Ethernet LAN between
two Pentium IV machines. We reproduce those quantities in *virtual
time*: a :class:`SimClock` accumulates milliseconds charged by network
transfers (latency + bytes/bandwidth), vendor handshakes, per-row engine
work and middleware overheads. Virtual time makes every benchmark
deterministic and lets a laptop reproduce wall-clock-scale experiments
in milliseconds of real time.
"""

from repro.net.simclock import SimClock
from repro.net.network import Host, Link, Network
from repro.net import costs

__all__ = ["Host", "Link", "Network", "SimClock", "costs"]

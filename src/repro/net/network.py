"""Hosts, links and the network fabric.

A :class:`Network` owns a set of named hosts (with their LHC tier
numbers) and pairwise links. ``transfer()`` charges the wire time of a
message to the supplied clock and returns it, so callers can also
account it per-phase. Unspecified pairs fall back to the default link
(the testbed LAN); same-host transfers use the loopback profile.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ReproError
from repro.net import costs
from repro.net.simclock import SimClock


@dataclass(frozen=True)
class Link:
    """A symmetric network link."""

    bandwidth_mbps: float = costs.LAN_BANDWIDTH_MBPS
    latency_ms: float = costs.LAN_LATENCY_MS

    def transfer_ms(self, nbytes: int) -> float:
        """Wire time for ``nbytes`` over this link."""
        return costs.transfer_ms(nbytes, self.bandwidth_mbps, self.latency_ms)


LAN = Link()
LOOPBACK = Link(costs.LOCAL_BANDWIDTH_MBPS, costs.LOCAL_LATENCY_MS)
WAN = Link(costs.WAN_BANDWIDTH_MBPS, costs.WAN_LATENCY_MS)


@dataclass(frozen=True)
class Host:
    """A named machine in the grid topology."""

    name: str
    tier: int = 2


class Network:
    """The fabric: hosts plus (optionally) per-pair link overrides."""

    def __init__(self, default_link: Link = LAN):
        self.default_link = default_link
        self._hosts: dict[str, Host] = {}
        self._links: dict[frozenset[str], Link] = {}
        self._failed_links: set[frozenset[str]] = set()
        self._failed_hosts: set[str] = set()
        self.bytes_moved = 0
        self.messages = 0
        #: transfers that died waiting out a partition timeout
        self.partition_timeouts = 0
        #: observers called as fn(src, dst, nbytes, ms) after a transfer
        self._observers: list = []
        #: observers called as fn(src, dst, nbytes, ms) when a transfer
        #: fails on a partition/dead host (ms is the timeout paid)
        self._failure_observers: list = []

    # -- observers --------------------------------------------------------------

    def add_observer(self, fn) -> None:
        """Subscribe ``fn(src, dst, nbytes, ms)`` to successful transfers."""
        if fn not in self._observers:
            self._observers.append(fn)

    def remove_observer(self, fn) -> None:
        """Unsubscribe a transfer observer."""
        if fn in self._observers:
            self._observers.remove(fn)

    def add_failure_observer(self, fn) -> None:
        """Subscribe ``fn(src, dst, nbytes, ms)`` to failed transfers."""
        if fn not in self._failure_observers:
            self._failure_observers.append(fn)

    def remove_failure_observer(self, fn) -> None:
        """Unsubscribe a failed-transfer observer."""
        if fn in self._failure_observers:
            self._failure_observers.remove(fn)

    # -- topology -------------------------------------------------------------

    def add_host(self, name: str, tier: int = 2) -> Host:
        """Register a machine at the given LHC tier."""
        host = Host(name, tier)
        self._hosts[name] = host
        return host

    def host(self, name: str) -> Host:
        """The named host; raises on unknown names."""
        host = self._hosts.get(name)
        if host is None:
            raise ReproError(f"unknown host {name!r}")
        return host

    def has_host(self, name: str) -> bool:
        """True when the host is registered."""
        return name in self._hosts

    def hosts(self) -> list[Host]:
        """Every registered host, sorted by name."""
        return sorted(self._hosts.values(), key=lambda h: h.name)

    def set_link(self, a: str, b: str, link: Link) -> None:
        """Override the link profile between two hosts (symmetric)."""
        self.host(a), self.host(b)  # validate
        self._links[frozenset((a, b))] = link

    def link_between(self, a: str, b: str) -> Link:
        """Effective link between two hosts (loopback when equal)."""
        if a == b:
            return LOOPBACK
        return self._links.get(frozenset((a, b)), self.default_link)

    # -- failure injection --------------------------------------------------------

    def fail_link(self, a: str, b: str) -> None:
        """Cut the link between two hosts (network partition injection)."""
        self.host(a), self.host(b)
        self._failed_links.add(frozenset((a, b)))

    def restore_link(self, a: str, b: str) -> None:
        """Undo a fail_link."""
        self._failed_links.discard(frozenset((a, b)))

    def fail_host(self, name: str) -> None:
        """Take a host off the network entirely."""
        self.host(name)
        self._failed_hosts.add(name)

    def restore_host(self, name: str) -> None:
        """Bring a failed host back onto the network."""
        self._failed_hosts.discard(name)

    def is_reachable(self, src: str, dst: str) -> bool:
        """False when a failed host or cut link separates the pair."""
        if src in self._failed_hosts or dst in self._failed_hosts:
            return False
        return src == dst or frozenset((src, dst)) not in self._failed_links

    # -- traffic ---------------------------------------------------------------

    def transfer(self, src: str, dst: str, nbytes: int, clock: SimClock) -> float:
        """Move ``nbytes`` from ``src`` to ``dst``, charging ``clock``.

        A cut link or failed host surfaces as a connection failure after
        a timeout-priced delay — the caller sees what a real socket
        would show."""
        if not self.has_host(src) or not self.has_host(dst):
            raise ReproError(f"transfer between unknown hosts {src!r} -> {dst!r}")
        if not self.is_reachable(src, dst):
            from repro.common.errors import ConnectionFailedError

            clock.advance_ms(costs.PARTITION_TIMEOUT_MS)
            # a failed transfer is an event too: count it and tell the
            # failure observers, or dataaccess.metrics never sees it
            self.partition_timeouts += 1
            for fn in self._failure_observers:
                fn(src, dst, nbytes, costs.PARTITION_TIMEOUT_MS)
            raise ConnectionFailedError(
                f"network partition: {src!r} cannot reach {dst!r}"
            )
        ms = self.link_between(src, dst).transfer_ms(nbytes)
        clock.advance_ms(ms)
        self.bytes_moved += nbytes
        self.messages += 1
        for fn in self._observers:
            fn(src, dst, nbytes, ms)
        return ms

"""Query decomposition: logical SQL → per-database sub-queries.

The decomposer never executes anything; it is a pure function from
(Select, DataDictionary) to a :class:`DecomposedQuery`, which makes it
the most heavily property-tested module in the middleware (federated
execution must equal single-engine execution on the union of data).

Predicate pushdown rules (correctness first — every pushed predicate is
*also* kept in the integration query, so pushdown can only shrink
sub-results, never change the final answer):

* a WHERE conjunct referencing exactly one binding is pushed to it;
* an INNER JOIN ON conjunct referencing exactly one binding is pushed;
* a LEFT JOIN ON conjunct is pushed only when that binding is the
  *right* side (pre-filtering the left side would drop rows the outer
  join must pad).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import PlanningError
from repro.metadata.dictionary import DataDictionary, TableLocation
from repro.sql import ast


@dataclass(frozen=True)
class SubQuery:
    """One per-database fetch.

    ``select`` is in the target database's *physical* names and runs
    directly on it; ``logical_select`` is the same fetch in logical
    names, suitable for forwarding to a remote JClarens server that
    hosts the table (the remote decomposes it against its own
    dictionary).
    """

    binding: str  # the alias/name this table is visible as in the query
    location: TableLocation
    select: ast.Select
    pushed_conjuncts: tuple[ast.Expr, ...] = ()
    logical_select: ast.Select | None = None

    @property
    def sql(self) -> str:
        """The physical sub-query text."""
        return self.select.unparse()

    @property
    def logical_sql(self) -> str:
        if self.logical_select is None:
            raise PlanningError(f"sub-query for {self.binding!r} has no logical form")
        return self.logical_select.unparse()


@dataclass(frozen=True)
class DecomposedQuery:
    """The full decomposition plan."""

    original: ast.Select
    kind: str  # 'single' (whole query on one database) or 'federated'
    subqueries: tuple[SubQuery, ...]
    integration: ast.Select | None  # None for 'single'
    databases: tuple[str, ...]  # participating database names, sorted

    @property
    def is_distributed(self) -> bool:
        """True when the plan spans more than one database."""
        return len(self.databases) > 1


@dataclass
class _Binding:
    name: str  # lower-cased binding
    ref: ast.TableRef
    location: TableLocation
    needed: dict[str, None] = field(default_factory=dict)  # ordered set of logical cols

    def need(self, logical_column: str) -> None:
        """Mark one logical column as fetched by this binding."""
        self.needed.setdefault(logical_column.lower())

    def need_all(self) -> None:
        """Mark every column of the table as fetched."""
        for col in self.location.table.columns:
            self.need(col.logical_name)


def _split_conjuncts(expr: ast.Expr | None) -> list[ast.Expr]:
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def decompose(
    select: ast.Select,
    dictionary: DataDictionary,
    pushdown: bool = True,
    prefer_databases: dict[str, str] | None = None,
) -> DecomposedQuery:
    """Plan the federated execution of ``select``.

    ``prefer_databases`` maps logical table → database name, letting the
    caller pin replicated tables to specific marts (the router uses it
    to keep work local).
    """
    if not select.from_:
        raise PlanningError("federated query requires a FROM clause")
    _reject_subqueries(select)
    prefer = {k.lower(): v for k, v in (prefer_databases or {}).items()}

    bindings: dict[str, _Binding] = {}
    for ref in select.referenced_tables():
        key = ref.binding.lower()
        if key in bindings:
            raise PlanningError(f"duplicate table binding {ref.binding!r}")
        location = _choose_location(dictionary, ref.name, prefer.get(ref.name.lower()))
        bindings[key] = _Binding(name=key, ref=ref, location=location)

    alias_names = {
        item.alias.lower() for item in select.items if item.alias is not None
    }

    # -- column usage analysis ------------------------------------------------------

    def binding_of_column(ref: ast.ColumnRef) -> _Binding | None:
        """Owning binding, or None when the ref is an output-alias ref."""
        if ref.table is not None:
            b = bindings.get(ref.table.lower())
            if b is None:
                raise PlanningError(
                    f"qualifier {ref.table!r} does not match any table in the query"
                )
            if b.location.table.column_by_logical(ref.column) is None:
                raise PlanningError(
                    f"table {b.ref.name!r} has no logical column {ref.column!r}"
                )
            return b
        owners = [
            b
            for b in bindings.values()
            if b.location.table.column_by_logical(ref.column) is not None
        ]
        if len(owners) > 1:
            raise PlanningError(
                f"unqualified column {ref.column!r} is ambiguous across "
                f"{sorted(b.ref.binding for b in owners)}"
            )
        if not owners:
            if ref.column.lower() in alias_names:
                return None  # resolves against the select list at integration
            raise PlanningError(f"column {ref.column!r} is not in any queried table")
        return owners[0]

    def mark_needed(expr: ast.Expr) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.ColumnRef):
                owner = binding_of_column(node)
                if owner is not None:
                    owner.need(node.column)
            elif isinstance(node, ast.Star):
                if node.table is None:
                    for b in bindings.values():
                        b.need_all()
                else:
                    b = bindings.get(node.table.lower())
                    if b is None:
                        raise PlanningError(
                            f"qualifier {node.table!r} in '*' does not match any table"
                        )
                    b.need_all()

    for item in select.items:
        mark_needed(item.expr)
    for clause in (select.where, select.having):
        if clause is not None:
            mark_needed(clause)
    for join in select.joins:
        if join.on is not None:
            mark_needed(join.on)
    for g in select.group_by:
        mark_needed(g)
    for o in select.order_by:
        mark_needed(o.expr)

    # Join keys must travel even if no output needs them; ensure at least
    # one column per binding so SELECT COUNT(*) style queries still fetch.
    for b in bindings.values():
        if not b.needed:
            b.need(b.location.table.columns[0].logical_name)

    urls = {b.location.url for b in bindings.values()}
    databases = tuple(sorted({b.location.database_name for b in bindings.values()}))

    # -- single-database plan: push the whole query down --------------------------------

    if len(urls) == 1:
        rewritten = _rewrite_whole(select, bindings)
        only = next(iter(bindings.values()))
        # The logical form of a whole-query pushdown is the original
        # query itself: a remote server re-plans it against its own
        # dictionary when the plan is forwarded.
        sub = SubQuery(
            binding="*",
            location=only.location,
            select=rewritten,
            logical_select=select,
        )
        return DecomposedQuery(
            original=select,
            kind="single",
            subqueries=(sub,),
            integration=None,
            databases=databases,
        )

    # -- federated plan ---------------------------------------------------------------

    pushable: dict[str, list[ast.Expr]] = {b.name: [] for b in bindings.values()}

    def single_binding(expr: ast.Expr) -> _Binding | None:
        """The one binding this conjunct touches, else None."""
        found: set[str] = set()
        for node in ast.walk(expr):
            if isinstance(node, ast.FunctionCall) and node.name.upper() in ast.AGGREGATE_FUNCTIONS:
                return None
            if isinstance(node, ast.Star):
                return None
            if isinstance(node, ast.ColumnRef):
                owner = binding_of_column(node)
                if owner is None:
                    return None
                found.add(owner.name)
        if len(found) == 1:
            return bindings[found.pop()]
        return None

    if pushdown:
        for conj in _split_conjuncts(select.where):
            owner = single_binding(conj)
            if owner is not None:
                pushable[owner.name].append(conj)
        for join in select.joins:
            right_binding = join.table.binding.lower()
            for conj in _split_conjuncts(join.on):
                owner = single_binding(conj)
                if owner is None:
                    continue
                if join.kind == "INNER" or owner.name == right_binding:
                    pushable[owner.name].append(conj)

    subqueries = []
    for b in bindings.values():
        if not pushdown:
            b.need_all()
        items = tuple(
            ast.SelectItem(
                expr=ast.ColumnRef(column=b.location.physical_column(logical)),
                alias=logical,
            )
            for logical in b.needed
        )
        where = None
        pushed = tuple(pushable[b.name]) if pushdown else ()
        if pushed:
            translated = [_translate_to_physical(c, b) for c in pushed]
            where = translated[0]
            for extra in translated[1:]:
                where = ast.BinaryOp("AND", where, extra)
        logical_where = None
        for conj in pushed:
            logical_where = (
                conj if logical_where is None else ast.BinaryOp("AND", logical_where, conj)
            )
        logical_alias = (
            b.ref.binding if b.ref.binding.lower() != b.ref.name.lower() else None
        )
        subqueries.append(
            SubQuery(
                binding=b.ref.binding,
                location=b.location,
                select=ast.Select(
                    items=items,
                    from_=(ast.TableRef(name=b.location.physical_name),),
                    where=where,
                ),
                pushed_conjuncts=pushed,
                logical_select=ast.Select(
                    items=tuple(
                        ast.SelectItem(expr=ast.ColumnRef(column=logical))
                        for logical in b.needed
                    ),
                    from_=(ast.TableRef(name=b.ref.name, alias=logical_alias),),
                    where=logical_where,
                ),
            )
        )

    integration = _integration_select(select)
    return DecomposedQuery(
        original=select,
        kind="federated",
        subqueries=tuple(subqueries),
        integration=integration,
        databases=databases,
    )


def _reject_subqueries(select: ast.Select) -> None:
    """Subqueries are engine-level only; the federated planner cannot
    decompose an inner SELECT whose tables live elsewhere."""
    clauses: list[ast.Expr] = [item.expr for item in select.items]
    if select.where is not None:
        clauses.append(select.where)
    if select.having is not None:
        clauses.append(select.having)
    clauses.extend(j.on for j in select.joins if j.on is not None)
    clauses.extend(select.group_by)
    clauses.extend(o.expr for o in select.order_by)
    for clause in clauses:
        if ast.contains_subquery(clause):
            raise PlanningError(
                "subqueries are not supported in federated queries; "
                "run them directly on one database"
            )


def _choose_location(
    dictionary: DataDictionary, logical_table: str, preferred_db: str | None
) -> TableLocation:
    locations = dictionary.locations(logical_table)
    if not locations:
        from repro.common.errors import TableNotRegisteredError

        raise TableNotRegisteredError(logical_table)
    if preferred_db is not None:
        for loc in locations:
            if loc.database_name == preferred_db:
                return loc
    return locations[0]


def _integration_select(select: ast.Select) -> ast.Select:
    """The original query re-targeted at the scratch tables.

    Scratch tables are named by binding and keep logical column names,
    so only the FROM/JOIN table names change; expressions stay intact.
    """
    from_ = tuple(ast.TableRef(name=t.binding) for t in select.from_)
    joins = tuple(
        ast.Join(kind=j.kind, table=ast.TableRef(name=j.table.binding), on=j.on)
        for j in select.joins
    )
    return ast.Select(
        items=select.items,
        from_=from_,
        joins=joins,
        where=select.where,
        group_by=select.group_by,
        having=select.having,
        order_by=select.order_by,
        limit=select.limit,
        offset=select.offset,
        distinct=select.distinct,
    )


def _translate_to_physical(expr: ast.Expr, b: _Binding) -> ast.Expr:
    """Rewrite a pushed conjunct into the binding's physical names."""
    if isinstance(expr, ast.ColumnRef):
        return ast.ColumnRef(column=b.location.physical_column(expr.column))
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(
            expr.op,
            _translate_to_physical(expr.left, b),
            _translate_to_physical(expr.right, b),
        )
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, _translate_to_physical(expr.operand, b))
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(_translate_to_physical(expr.operand, b), expr.negated)
    if isinstance(expr, ast.InList):
        return ast.InList(
            _translate_to_physical(expr.operand, b),
            tuple(_translate_to_physical(i, b) for i in expr.items),
            expr.negated,
        )
    if isinstance(expr, ast.Between):
        return ast.Between(
            _translate_to_physical(expr.operand, b),
            _translate_to_physical(expr.low, b),
            _translate_to_physical(expr.high, b),
            expr.negated,
        )
    if isinstance(expr, ast.Like):
        return ast.Like(
            _translate_to_physical(expr.operand, b),
            _translate_to_physical(expr.pattern, b),
            expr.negated,
        )
    if isinstance(expr, ast.Case):
        return ast.Case(
            tuple(
                (_translate_to_physical(c, b), _translate_to_physical(r, b))
                for c, r in expr.whens
            ),
            _translate_to_physical(expr.else_, b) if expr.else_ else None,
        )
    if isinstance(expr, ast.Cast):
        return ast.Cast(_translate_to_physical(expr.operand, b), expr.target)
    if isinstance(expr, ast.FunctionCall):
        return ast.FunctionCall(
            expr.name,
            tuple(_translate_to_physical(a, b) for a in expr.args),
            expr.distinct,
        )
    return expr  # literals, params


def _rewrite_whole(select: ast.Select, bindings: dict[str, "_Binding"]) -> ast.Select:
    """Single-database pushdown: logical names → physical names everywhere.

    Scratch-free: the rewritten query runs directly on the backend. The
    select list is given explicit logical aliases so the result comes
    back with logical column names regardless of physical naming.
    """

    def owner_for(ref: ast.ColumnRef) -> _Binding | None:
        if ref.table is not None:
            return bindings.get(ref.table.lower())
        owners = [
            b
            for b in bindings.values()
            if b.location.table.column_by_logical(ref.column) is not None
        ]
        return owners[0] if len(owners) == 1 else None

    def rewrite(expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.ColumnRef):
            owner = owner_for(expr)
            if owner is None:
                return expr  # alias ref or genuinely unknown; backend decides
            return ast.ColumnRef(
                column=owner.location.physical_column(expr.column),
                table=expr.table,
            )
        if isinstance(expr, ast.BinaryOp):
            return ast.BinaryOp(expr.op, rewrite(expr.left), rewrite(expr.right))
        if isinstance(expr, ast.UnaryOp):
            return ast.UnaryOp(expr.op, rewrite(expr.operand))
        if isinstance(expr, ast.IsNull):
            return ast.IsNull(rewrite(expr.operand), expr.negated)
        if isinstance(expr, ast.InList):
            return ast.InList(
                rewrite(expr.operand), tuple(rewrite(i) for i in expr.items), expr.negated
            )
        if isinstance(expr, ast.Between):
            return ast.Between(
                rewrite(expr.operand), rewrite(expr.low), rewrite(expr.high), expr.negated
            )
        if isinstance(expr, ast.Like):
            return ast.Like(rewrite(expr.operand), rewrite(expr.pattern), expr.negated)
        if isinstance(expr, ast.Case):
            return ast.Case(
                tuple((rewrite(c), rewrite(r)) for c, r in expr.whens),
                rewrite(expr.else_) if expr.else_ else None,
            )
        if isinstance(expr, ast.Cast):
            return ast.Cast(rewrite(expr.operand), expr.target)
        if isinstance(expr, ast.FunctionCall):
            return ast.FunctionCall(
                expr.name, tuple(rewrite(a) for a in expr.args), expr.distinct
            )
        return expr

    def rewrite_table(ref: ast.TableRef) -> ast.TableRef:
        b = bindings[ref.binding.lower()]
        # Alias keeps the original binding so qualified refs still resolve.
        return ast.TableRef(name=b.location.physical_name, alias=ref.binding)

    items = []
    for ordinal, item in enumerate(select.items, start=1):
        if isinstance(item.expr, ast.Star):
            items.append(item)
            continue
        alias = item.alias
        if alias is None and isinstance(item.expr, ast.ColumnRef):
            alias = item.expr.column  # keep the logical output name
        items.append(ast.SelectItem(rewrite(item.expr), alias))

    return ast.Select(
        items=tuple(items),
        from_=tuple(rewrite_table(t) for t in select.from_),
        joins=tuple(
            ast.Join(
                kind=j.kind,
                table=rewrite_table(j.table),
                on=rewrite(j.on) if j.on is not None else None,
            )
            for j in select.joins
        ),
        where=rewrite(select.where) if select.where is not None else None,
        group_by=tuple(rewrite(g) for g in select.group_by),
        having=rewrite(select.having) if select.having is not None else None,
        order_by=tuple(
            ast.OrderItem(rewrite(o.expr), o.ascending) for o in select.order_by
        ),
        limit=select.limit,
        offset=select.offset,
        distinct=select.distinct,
    )

"""Unity-style federated query driver (§4.6).

Given a SQL query written entirely in *logical* names, the decomposer
resolves every table through the data dictionary, splits the query into
per-database sub-queries (with single-table predicates pushed down),
and emits an integration query; the integrator loads sub-results into a
scratch engine instance and runs the integration query there — which is
how our enhancement applies joins "on rows extracted from multiple
databases" with full SQL semantics (grouping, ordering, limits).

``pushdown=False`` reproduces the *original* Unity behaviour the paper
criticizes: every sub-query fetches whole tables and all filtering
happens in middleware memory.
"""

from repro.unity.decompose import DecomposedQuery, SubQuery, decompose
from repro.unity.merge import Integrator
from repro.unity.driver import FederatedResult, UnityDriver

__all__ = [
    "DecomposedQuery",
    "FederatedResult",
    "Integrator",
    "SubQuery",
    "UnityDriver",
    "decompose",
]

"""Result integration: sub-results → scratch engine → final 2-D vector.

The integrator creates a throwaway engine database, loads each
sub-query's rows as a scratch table named by its binding (columns carry
logical names and merged logical types), then executes the integration
query there. Cross-database joins therefore get the full executor
treatment — hash joins, three-valued logic, grouping — rather than a
bespoke merge loop.
"""

from __future__ import annotations

from repro.common.types import SQLType
from repro.engine.database import Database, ExecResult
from repro.engine.storage import Column
from repro.net import costs
from repro.unity.decompose import DecomposedQuery, SubQuery


class Integrator:
    """Builds the scratch database and runs the integration query."""

    def __init__(self, clock=None):
        self.clock = clock

    def _charge(self, ms: float) -> None:
        if self.clock is not None:
            self.clock.advance_ms(ms)

    def integrate(
        self,
        plan: DecomposedQuery,
        sub_results: dict[str, tuple[list[str], list[SQLType], list[tuple]]],
        params: tuple = (),
    ) -> ExecResult:
        """Merge ``sub_results`` (keyed by binding) per ``plan``.

        Each sub-result is ``(columns, types, rows)`` with logical column
        names, as produced by executing ``SubQuery.select`` anywhere.
        """
        assert plan.integration is not None, "single-database plans skip integration"
        scratch = Database("__integration__", "generic")
        total_rows = 0
        for sub in plan.subqueries:
            columns, types, rows = sub_results[sub.binding]
            scratch.catalog.create_table(
                sub.binding,
                [Column(name=c, type=t) for c, t in zip(columns, types)],
            )
            storage = scratch.catalog.get_table(sub.binding)
            storage.append_rows([list(row) for row in rows])
            total_rows += len(rows)
        # Building scratch tables is the "integration" cost of §5.2.
        self._charge(total_rows * costs.MERGE_PER_ROW_MS)
        if plan.integration.joins:
            # Hash-join build/probe work in the data access layer.
            sizes = sorted(len(r[2]) for r in sub_results.values())
            if sizes:
                self._charge(sizes[0] * costs.XJOIN_BUILD_ROW_MS)
                self._charge(sum(sizes[1:]) * costs.XJOIN_PROBE_ROW_MS)
        return scratch.execute_statement(plan.integration, params)


def result_vector(result: ExecResult) -> list[list]:
    """The paper's final product: a plain 2-D vector of values."""
    return [list(row) for row in result.rows]

"""The enhanced Unity driver: plan → fetch → integrate.

``execute_plan`` is the shared orchestration used both here (pure
JDBC, as the original Unity driver worked) and by the data access
service (which routes each sub-query through POOL-RAL or JDBC, §4.5).
A ``SubQueryRunner`` abstracts that choice: it executes one sub-query
somewhere and reports how.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.common.types import SQLType
from repro.dialects import get_dialect
from repro.driver.connection import connect
from repro.driver.directory import Directory
from repro.engine.storage import estimate_row_bytes
from repro.metadata.dictionary import DataDictionary
from repro.net import costs
from repro.sql import ast
from repro.sql.parser import parse_select
from repro.unity.decompose import DecomposedQuery, SubQuery, decompose
from repro.unity.merge import Integrator


@dataclass
class SubQueryTrace:
    """What happened to one sub-query (exposed to tests and benches).

    ``start_ms``/``end_ms`` are simulated-clock stamps around the
    runner call; ``replica_host`` is the host that actually served the
    sub-query (after replica selection or failover), filled in by the
    data access service when it knows better than the plan did.
    """

    binding: str
    database: str
    url: str
    vendor: str
    sql: str
    rows: int
    via: str  # 'jdbc' | 'pool' | 'remote'
    start_ms: float = 0.0
    end_ms: float = 0.0
    replica_host: str | None = None

    @property
    def duration_ms(self) -> float:
        """Simulated time the sub-query took, fetch included."""
        return self.end_ms - self.start_ms


@dataclass
class FederatedResult:
    """Final merged result: the paper's 2-D vector plus provenance."""

    columns: list[str]
    types: list[SQLType]
    rows: list[tuple]
    plan: DecomposedQuery
    traces: list[SubQueryTrace] = field(default_factory=list)

    @property
    def row_count(self) -> int:
        return len(self.rows)

    def to_vector(self) -> list[list]:
        return [list(r) for r in self.rows]

    def column_index(self, name: str) -> int:
        lowered = name.lower()
        for i, c in enumerate(self.columns):
            if c.lower() == lowered:
                return i
        raise KeyError(name)


class SubQueryRunner(Protocol):
    """Executes one sub-query and returns (columns, types, rows, via)."""

    def __call__(
        self, sub: SubQuery, params: tuple
    ) -> tuple[list[str], list[SQLType], list[tuple], str]: ...


def execute_plan(
    plan: DecomposedQuery,
    runner: SubQueryRunner,
    params: tuple = (),
    clock=None,
) -> FederatedResult:
    """Run every sub-query through ``runner`` and integrate."""

    def now() -> float:
        return clock.now_ms if clock is not None else 0.0

    traces: list[SubQueryTrace] = []
    if plan.kind == "single":
        sub = plan.subqueries[0]
        t0 = now()
        columns, types, rows, via = runner(sub, params)
        t1 = now()
        columns = _logicalize_columns(columns, sub)
        if sub.select.limit is not None:
            vendor_dialect = get_dialect(sub.location.vendor)
            if vendor_dialect.limit_applied_client_side:
                rows = rows[: sub.select.limit]
        traces.append(_trace(sub, len(rows), via, t0, t1))
        return FederatedResult(columns, types, list(rows), plan, traces)

    sub_results: dict[str, tuple[list[str], list[SQLType], list[tuple]]] = {}
    for sub in plan.subqueries:
        t0 = now()
        columns, types, rows, via = runner(sub, params)
        t1 = now()
        sub_results[sub.binding] = (columns, types, rows)
        traces.append(_trace(sub, len(rows), via, t0, t1))
    result = Integrator(clock).integrate(plan, sub_results, params)
    return FederatedResult(result.columns, result.types, result.rows, plan, traces)


def _trace(
    sub: SubQuery, rows: int, via: str, start_ms: float, end_ms: float
) -> SubQueryTrace:
    return SubQueryTrace(
        binding=sub.binding,
        database=sub.location.database_name,
        url=sub.location.url,
        vendor=sub.location.vendor,
        sql=sub.sql,
        rows=rows,
        via=via,
        start_ms=start_ms,
        end_ms=end_ms,
    )


def _logicalize_columns(columns: list[str], sub: SubQuery) -> list[str]:
    """Map physical output names back to logical ones (star pushdowns)."""
    reverse = {
        c.name.lower(): c.logical_name for c in sub.location.table.columns
    }
    return [reverse.get(c.lower(), c) for c in columns]


class UnityDriver:
    """The federated driver in its standalone (pure JDBC) form."""

    def __init__(
        self,
        dictionary: DataDictionary,
        directory: Directory,
        clock=None,
        network=None,
        host: str | None = None,
        pushdown: bool = True,
        user: str = "grid",
        password: str = "grid",
        preflight: bool = False,
        observe: bool = False,
        cache: bool = False,
        epochs=None,
        resilience=False,
    ):
        self.dictionary = dictionary
        self.directory = directory
        self.clock = clock
        self.network = network
        self.host = host
        self.pushdown = pushdown
        self.user = user
        self.password = password
        self.preflight = preflight
        from repro.obs.metrics import MetricsRegistry

        self.metrics = MetricsRegistry()
        self.tracer = None
        self.profiler = None
        if observe:
            from repro.obs.profiler import QueryProfiler
            from repro.obs.trace import Tracer

            self.tracer = Tracer(clock, host or "unity")
            self.profiler = QueryProfiler(clock)
        # Opt-in multi-level caching (plan + sub-results); with cache
        # off no cache objects exist and execution is the prototype's.
        self.cache = None
        if cache:
            from repro.cache import CacheManager

            self.cache = CacheManager(clock=clock, metrics=self.metrics, epochs=epochs)
        # Opt-in retry/backoff + per-database breakers; with resilience
        # off no manager exists and a dead database fails as before.
        self.resilience = None
        if resilience:
            from repro.resilience import ResilienceConfig, ResilienceManager

            config = resilience if isinstance(resilience, ResilienceConfig) else None
            self.resilience = ResilienceManager(
                clock=clock, metrics=self.metrics, config=config,
                tracer=self.tracer,
            )

    def _span(self, stage: str, **attrs):
        if self.tracer is None:
            from repro.obs.trace import NOOP_SPAN

            return NOOP_SPAN
        return self.tracer.span(stage, **attrs)

    # -- cost plumbing -----------------------------------------------------------

    def _charge(self, ms: float) -> None:
        if self.clock is not None:
            self.clock.advance_ms(ms)

    def _transfer_rows(self, from_host: str, rows: list[tuple]) -> None:
        """Wire cost of shipping a sub-result to the driver's host."""
        if self.network is None or self.host is None:
            return
        nbytes = sum(estimate_row_bytes(r) for r in rows) + 256
        self.network.transfer(from_host, self.host, nbytes, self.clock)

    # -- sub-query execution over JDBC ----------------------------------------------

    def _fetch_jdbc(
        self, sub: SubQuery, params: tuple
    ) -> tuple[list[str], list[SQLType], list[tuple]]:
        """One unprotected connect/execute/fetch round-trip."""
        dialect = get_dialect(sub.location.vendor)
        connection = connect(
            sub.location.url,
            self.user,
            self.password,
            directory=self.directory,
            clock=self.clock,
        )
        try:
            vendor_sql = dialect.render_select(sub.select)
            cursor = connection.execute(vendor_sql, params)
            rows = cursor.fetchall()
            types = cursor.types or [SQLType.text()] * len(cursor.columns)
            columns = cursor.columns
        finally:
            connection.close()
        binding = self.directory.lookup(sub.location.url)
        self._transfer_rows(binding.host_name, rows)
        return columns, types, rows

    def run_subquery(
        self, sub: SubQuery, params: tuple
    ) -> tuple[list[str], list[SQLType], list[tuple], str]:
        """Fresh connection per (query, database), like the prototype.

        With caching on, a warm sub-result is served from memory for
        ``CACHE_HIT_MS`` instead — route ``cache`` in the trace.
        """
        cache_key = None
        if self.cache is not None:
            cache_key = self.cache.sub_key(sub, params)
            hit = self.cache.lookup_sub(cache_key)
            if hit is not None:
                with self._span(
                    "subquery", binding=sub.binding,
                    database=sub.location.database_name,
                ) as span:
                    self._charge(costs.CACHE_HIT_MS)
                    self.cache.record_hit_latency(costs.CACHE_HIT_MS)
                    columns, types, rows, _via = hit
                    span.set("route", "cache").set("rows", len(rows))
                return list(columns), list(types), list(rows), "cache"
        with self._span(
            "subquery", binding=sub.binding, database=sub.location.database_name
        ) as span:
            if self.resilience is not None:
                columns, types, rows = self.resilience.call(
                    f"db:{sub.location.database_name}",
                    lambda: self._fetch_jdbc(sub, params),
                )
            else:
                columns, types, rows = self._fetch_jdbc(sub, params)
            self.metrics.counter("subqueries.jdbc").inc()
            self.metrics.counter("rows_moved").inc(len(rows))
            span.set("route", "jdbc").set("rows", len(rows))
        if cache_key is not None:
            self.cache.store_sub(
                cache_key,
                (columns, types, rows, "jdbc"),
                tag=sub.location.database_name,
            )
        return columns, types, rows, "jdbc"

    # -- public API -------------------------------------------------------------------

    def _preflight(
        self, select: ast.Select, prefer_databases: dict[str, str] | None
    ) -> None:
        """Lint against the dictionary and refuse before anything ships."""
        from repro.common.errors import PreflightError
        from repro.lint import DictionarySchema, lint_select

        report = lint_select(
            select, DictionarySchema(self.dictionary, prefer_databases)
        )
        if not report.ok:
            raise PreflightError(report.errors)

    def plan(
        self, sql: str | ast.Select, prefer_databases: dict[str, str] | None = None
    ) -> DecomposedQuery:
        plan_key = None
        if self.cache is not None:
            from repro.cache import normalize_sql

            prefer = tuple(sorted((prefer_databases or {}).items()))
            plan_key = (normalize_sql(sql), prefer)
            cached = self.cache.get_plan(plan_key)
            if cached is not None:
                # decomposition and the per-participant XSpec metadata
                # parse were paid when the plan was cached
                return cached.plan
        select = parse_select(sql) if isinstance(sql, str) else sql
        if self.preflight:
            self._preflight(select, prefer_databases)
        self._charge(costs.DECOMPOSE_MS)
        plan = decompose(
            select, self.dictionary, pushdown=self.pushdown,
            prefer_databases=prefer_databases,
        )
        # Parsing each participant's XSpec metadata per query (§4.2's
        # N×S criticism) is a real per-query cost in the prototype.
        self._charge(len(plan.databases) * costs.UNITY_METADATA_PARSE_MS)
        if plan_key is not None:
            self.cache.put_plan(plan_key, select, plan)
        return plan

    def execute(
        self,
        sql: str | ast.Select,
        params: tuple = (),
        prefer_databases: dict[str, str] | None = None,
    ) -> FederatedResult:
        start_ms = self.clock.now_ms if self.clock is not None else 0.0
        if self.resilience is not None:
            self.resilience.start_deadline()
        span_mark = len(self.tracer.spans) if self.tracer is not None else 0
        with self._span("query") as span:
            with self._span("decompose"):
                plan = self.plan(sql, prefer_databases)
            result = execute_plan(plan, self.run_subquery, params, self.clock)
            span.set("rows", len(result.rows))
        self.metrics.counter("queries").inc()
        if self.clock is not None:
            self.metrics.histogram("query_ms").observe(self.clock.now_ms - start_ms)
        if self.profiler is not None and span.trace_id is not None:
            shape = sql if isinstance(sql, str) else sql.unparse()
            self.profiler.record(
                span,
                [
                    s
                    for s in self.tracer.spans[span_mark:]
                    if s.trace_id == span.trace_id
                ],
                shape=shape,
            )
        return result

"""Clarens client proxy.

A client lives on a network host, connects to servers (session
establishment: two small messages plus the server's challenge work) and
invokes methods. Every call encodes the request, pays the wire both
ways, and pays per-row decode cost on list results — the client half of
Figure 6's slope.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clarens.codec import payload_bytes
from repro.clarens.server import ClarensServer, result_row_count
from repro.common.errors import AuthenticationError
from repro.net import costs
from repro.net.network import Network
from repro.net.simclock import SimClock


@dataclass
class ClarensSession:
    """An authenticated session with one server."""

    server: ClarensServer
    session_id: str
    user: str
    #: kept so a reconnect with different credentials re-authenticates
    #: instead of silently reusing the cached session
    password: str = ""


class ClarensClient:
    """A lightweight web-service client on one grid host."""

    def __init__(
        self,
        host: str,
        network: Network,
        clock: SimClock,
        user: str = "grid",
        password: str = "grid",
    ):
        self.host = host
        self.network = network
        self.clock = clock
        self.user = user
        self.password = password
        self._sessions: dict[str, ClarensSession] = {}
        self.calls_made = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        #: optional :class:`repro.cache.RemoteAnswerCache` — installed by
        #: a caching data access service on its peer client so forwarded
        #: logical sub-queries can be answered without touching the wire
        self.answer_cache = None

    # -- sessions ----------------------------------------------------------------

    def connect(
        self,
        server: ClarensServer,
        user: str | None = None,
        password: str | None = None,
    ) -> ClarensSession:
        """Authenticate with ``server``; sessions are cached per server.

        Identity defaults to the client's own ``user``/``password``.
        """
        user = self.user if user is None else user
        password = self.password if password is None else password
        cached = self._sessions.get(server.name)
        # a cached session only matches when BOTH credentials match —
        # reconnecting with a wrong password must hit the server and be
        # rejected, not silently ride the old authenticated session
        if cached is not None and cached.user == user and cached.password == password:
            return cached
        request = payload_bytes("auth", [user, "***"])
        self.network.transfer(self.host, server.host, request, self.clock)
        session_id = server.authenticate(user, password)
        self.network.transfer(
            server.host, self.host, payload_bytes("auth", session_id), self.clock
        )
        session = ClarensSession(server, session_id, user, password)
        self._sessions[server.name] = session
        return session

    def disconnect(self, server: ClarensServer) -> None:
        session = self._sessions.pop(server.name, None)
        if session is not None:
            session.server.close_session(session.session_id)

    @staticmethod
    def _session_alive(server: ClarensServer, session: ClarensSession) -> bool:
        """Is our cached session still live on the server?"""
        try:
            server.check_session(session.session_id)
        except AuthenticationError:
            return False
        return True

    # -- calls --------------------------------------------------------------------

    def call(self, server: ClarensServer, method: str, *args):
        """Invoke ``service.method`` on ``server``, paying the full wire cost.

        When an :attr:`answer_cache` is installed and holds a fresh
        answer for this exact call, the wire is skipped entirely: the
        hit costs ``CACHE_HIT_MS`` and does not count as a call made.
        """
        cache_key = None
        if self.answer_cache is not None and self.answer_cache.cacheable(method):
            cache_key = self.answer_cache.key(server.name, method, args)
            cached = self.answer_cache.get(cache_key)
            if cached is not None:
                self.clock.advance_ms(costs.CACHE_HIT_MS)
                return cached
        session = self.connect(server)
        request = payload_bytes(method, list(args))
        self.bytes_sent += request
        self.network.transfer(self.host, server.host, request, self.clock)
        try:
            result = server.dispatch(session.session_id, method, list(args))
        except AuthenticationError:
            if self._session_alive(server, session):
                raise  # a real ACL/credential fault, not a stale session
            # the server restarted (or expired us): drop the dead session,
            # re-authenticate once and replay the request
            self._sessions.pop(server.name, None)
            session = self.connect(server)
            self.bytes_sent += request
            self.network.transfer(self.host, server.host, request, self.clock)
            result = server.dispatch(session.session_id, method, list(args))
        response = payload_bytes(method, result) + costs.XMLRPC_ENVELOPE_BYTES
        self.bytes_received += response
        self.network.transfer(server.host, self.host, response, self.clock)
        nrows = result_row_count(result)
        if nrows:
            self.clock.advance_ms(nrows * costs.XMLRPC_DECODE_ROW_MS)
        self.calls_made += 1
        if cache_key is not None:
            self.answer_cache.put(cache_key, result)
        return result

"""Clarens-style web-service layer (§4, upper half of Figure 1).

JClarens in the paper is a Java service container speaking XML-RPC over
HTTP with session-based authentication. Here a :class:`ClarensServer`
hosts named services on a simulated network host; a
:class:`ClarensClient` establishes an authenticated session and invokes
``service.method`` calls. Requests and responses are *actually encoded*
to an XML-RPC-like wire text, whose byte length drives the simulated
transfer times.
"""

from repro.clarens.codec import decode_payload, encode_payload, payload_bytes
from repro.clarens.server import ClarensServer, ClarensService, MethodStats
from repro.clarens.client import ClarensClient, ClarensSession

__all__ = [
    "ClarensClient",
    "ClarensServer",
    "ClarensService",
    "ClarensSession",
    "MethodStats",
    "decode_payload",
    "encode_payload",
    "payload_bytes",
]

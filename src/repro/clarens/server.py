"""The Clarens service container.

A server lives on one network host, hosts named services (each a bundle
of methods), authenticates clients into sessions, and dispatches
``service.method`` invocations. Dispatch charges the container's fixed
envelope-parse cost plus per-row response-encoding cost to the shared
virtual clock; the method body charges whatever the underlying layers
(drivers, engines, RLS) cost.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable

from repro.common.errors import AuthenticationError, ClarensFault
from repro.net import costs
from repro.net.network import Network
from repro.net.simclock import SimClock


def result_row_count(result) -> int:
    """Rows inside a method result: a bare list, or a struct's 'rows'."""
    if isinstance(result, list):
        return len(result)
    if isinstance(result, dict):
        rows = result.get("rows")
        if isinstance(rows, list):
            return len(rows)
    return 0


class ClarensService:
    """Base class for services hosted in a Clarens server.

    Subclasses set :attr:`service_name` and list remotely callable
    method names in :attr:`exposed` — everything else stays private to
    the server process (a service object usually also has local
    administration methods that must not be web-callable).
    """

    service_name = "service"
    exposed: tuple[str, ...] = ()

    def methods(self) -> dict[str, Callable]:
        """The remotely callable methods, keyed by name."""
        return {name: getattr(self, name) for name in self.exposed}


@dataclass
class MethodStats:
    """Per-method invocation counters (exposed for the benchmarks)."""

    calls: int = 0
    rows_returned: int = 0
    busy_ms: float = 0.0


@dataclass
class _Account:
    user: str
    password: str
    groups: frozenset = frozenset({"users"})


class ClarensServer:
    """One JClarens instance on one grid host."""

    _session_counter = itertools.count(1)

    def __init__(
        self,
        name: str,
        host: str,
        network: Network,
        clock: SimClock,
        require_auth: bool = True,
    ):
        self.name = name
        self.host = host
        self.network = network
        self.clock = clock
        self.require_auth = require_auth
        self._services: dict[str, ClarensService] = {}
        self._accounts: dict[str, _Account] = {
            "grid": _Account("grid", "grid", frozenset({"users", "admin"}))
        }
        self._sessions: dict[str, str] = {}  # session id -> user
        #: method full-name -> groups allowed to call it (absent = everyone)
        self._acl: dict[str, frozenset] = {}
        self.method_stats: dict[str, MethodStats] = {}

    def __repr__(self) -> str:
        return f"ClarensServer(name={self.name!r}, host={self.host!r})"

    # -- administration ------------------------------------------------------------

    def add_account(
        self, user: str, password: str, groups: tuple[str, ...] = ("users",)
    ) -> None:
        """Register a user with a password and group memberships."""
        self._accounts[user] = _Account(user, password, frozenset(groups))

    def set_acl(self, method: str, groups: tuple[str, ...]) -> None:
        """Restrict ``service.method`` to sessions whose user is in one
        of ``groups`` (Clarens-style method-level access control)."""
        self._acl[method] = frozenset(groups)

    def _check_acl(self, session_id: str | None, method: str) -> None:
        allowed = self._acl.get(method)
        if allowed is None:
            return
        user = self._sessions.get(session_id or "")
        account = self._accounts.get(user or "")
        groups = account.groups if account else frozenset()
        if not (groups & allowed):
            raise AuthenticationError(
                f"user {user!r} is not permitted to call {method!r}"
            )

    def register_service(self, service: ClarensService) -> None:
        """Host a service; its exposed methods become callable."""
        self._services[service.service_name] = service
        service.server = self  # back-reference for services that call out

    def service(self, name: str) -> ClarensService:
        """A hosted service by name; faults when absent."""
        svc = self._services.get(name)
        if svc is None:
            raise ClarensFault(name, f"no service {name!r} on server {self.name!r}")
        return svc

    def service_names(self) -> list[str]:
        """Sorted names of the hosted services."""
        return sorted(self._services)

    # -- authentication ---------------------------------------------------------------

    def authenticate(self, user: str, password: str) -> str:
        """Create a session; the paper's Clarens uses certificate sessions."""
        account = self._accounts.get(user)
        if account is None or account.password != password:
            raise AuthenticationError(
                f"server {self.name!r} rejected credentials for user {user!r}"
            )
        self.clock.advance_ms(costs.CLARENS_SESSION_MS)
        session_id = f"{self.name}-session-{next(self._session_counter)}"
        self._sessions[session_id] = user
        return session_id

    def check_session(self, session_id: str | None) -> None:
        """Raise unless the session is live (no-op when auth is off)."""
        if not self.require_auth:
            return
        if session_id is None or session_id not in self._sessions:
            raise AuthenticationError(
                f"server {self.name!r}: missing or expired session"
            )

    def close_session(self, session_id: str) -> None:
        """Invalidate a session id."""
        self._sessions.pop(session_id, None)

    # -- dispatch ---------------------------------------------------------------------

    # -- introspection (classic XML-RPC 'system' namespace) -----------------------------

    def list_methods(self) -> list[str]:
        """Every callable ``service.method`` on this server."""
        out = ["system.listMethods", "system.methodHelp"]
        for service_name, service in self._services.items():
            out.extend(f"{service_name}.{m}" for m in service.methods())
        return sorted(out)

    def method_help(self, method: str) -> str:
        """The docstring of a method, as ``system.methodHelp`` returns it."""
        if method in ("system.listMethods", "system.methodHelp"):
            return "Clarens introspection method."
        if "." not in method:
            raise ClarensFault(method, "method must be 'service.method'")
        service_name, method_name = method.split(".", 1)
        fn = self.service(service_name).methods().get(method_name)
        if fn is None:
            raise ClarensFault(method, f"no such method {method!r}")
        return (fn.__doc__ or "").strip()

    # -- dispatch ---------------------------------------------------------------------

    def dispatch(self, session_id: str | None, method: str, args: list):
        """Execute ``service.method(*args)`` with container accounting."""
        self.check_session(session_id)
        self._check_acl(session_id, method)
        self.clock.advance_ms(costs.CLARENS_DISPATCH_MS)
        if method == "system.listMethods":
            return self.list_methods()
        if method == "system.methodHelp":
            return self.method_help(args[0] if args else "")
        if "." not in method:
            raise ClarensFault(method, "method must be 'service.method'")
        service_name, method_name = method.split(".", 1)
        service = self.service(service_name)
        fn = service.methods().get(method_name)
        if fn is None:
            raise ClarensFault(
                method, f"service {service_name!r} has no method {method_name!r}"
            )
        start = self.clock.now_ms
        result = fn(*args)
        stats = self.method_stats.setdefault(method, MethodStats())
        stats.calls += 1
        stats.busy_ms += self.clock.now_ms - start
        nrows = result_row_count(result)
        if nrows:
            stats.rows_returned += nrows
            # Encoding the response rows into the XML envelope is a real,
            # per-row server cost (Figure 6's slope).
            self.clock.advance_ms(nrows * costs.XMLRPC_ENCODE_ROW_MS)
        return result

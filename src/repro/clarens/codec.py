"""XML-RPC-style wire codec.

Values really are encoded to (and decoded from) an XML text, because
the benchmarks need *honest* payload sizes: Figure 6's slope is mostly
the per-row encode/transfer/decode cost, and an invented size constant
would make that slope an artifact. The element vocabulary is the
classic XML-RPC one (``<int>``, ``<double>``, ``<string>``,
``<boolean>``, ``<nil>``, ``<array>``).
"""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET
from xml.sax.saxutils import escape

from repro.common.errors import ClarensFault

# XML 1.0 cannot carry control characters (or lone non-characters) at
# all — real XML-RPC shares the restriction. We escape them (and the
# escape introducer itself) as ``\xHHHH`` so arbitrary SQL data
# round-trips the wire.
_XML_UNSAFE = re.compile(r"[^\x09\x0a\x20-퟿-�\U00010000-\U0010ffff]|\\")
_ESCAPE_SEQ = re.compile(r"\\x([0-9a-fA-F]{6})")


def _escape_text(text: str) -> str:
    return _XML_UNSAFE.sub(lambda m: f"\\x{ord(m.group()):06x}", text)


def _unescape_text(text: str) -> str:
    return _ESCAPE_SEQ.sub(lambda m: chr(int(m.group(1), 16)), text)


def _encode_value(value, out: list[str]) -> None:
    if value is None:
        out.append("<nil/>")
    elif isinstance(value, bool):
        out.append(f"<boolean>{1 if value else 0}</boolean>")
    elif isinstance(value, int):
        out.append(f"<int>{value}</int>")
    elif isinstance(value, float):
        out.append(f"<double>{value!r}</double>")
    elif isinstance(value, str):
        out.append(f"<string>{escape(_escape_text(value))}</string>")
    elif isinstance(value, (list, tuple)):
        out.append("<array>")
        for item in value:
            _encode_value(item, out)
        out.append("</array>")
    elif isinstance(value, dict):
        out.append("<struct>")
        for key in sorted(value):
            out.append(f"<member><name>{escape(_escape_text(str(key)))}</name>")
            _encode_value(value[key], out)
            out.append("</member>")
        out.append("</struct>")
    else:
        raise ClarensFault("encode", f"cannot encode value of type {type(value).__name__}")


def encode_payload(method: str, value) -> str:
    """Encode one request/response payload to wire text."""
    out = [f"<methodCall><methodName>{escape(method)}</methodName><params>"]
    _encode_value(value, out)
    out.append("</params></methodCall>")
    return "".join(out)


def payload_bytes(method: str, value) -> int:
    """Wire size of the encoded payload in bytes."""
    return len(encode_payload(method, value).encode("utf-8"))


def _decode_element(el: ET.Element):
    tag = el.tag
    if tag == "nil":
        return None
    if tag == "boolean":
        return el.text == "1"
    if tag == "int":
        return int(el.text or "0")
    if tag == "double":
        return float(el.text or "0")
    if tag == "string":
        return _unescape_text(el.text or "")
    if tag == "array":
        return [_decode_element(child) for child in el]
    if tag == "struct":
        out = {}
        for member in el:
            name = member.find("name")
            if name is None or len(member) < 2:
                raise ClarensFault("decode", "malformed struct member")
            out[_unescape_text(name.text or "")] = _decode_element(member[1])
        return out
    raise ClarensFault("decode", f"unknown wire element <{tag}>")


def decode_payload(text: str) -> tuple[str, object]:
    """Decode wire text back to ``(method, value)``.

    Lists decode as Python lists (tuples do not survive the wire — just
    like real XML-RPC, which the result-merging code must cope with).
    """
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ClarensFault("decode", f"malformed wire payload: {exc}") from None
    if root.tag != "methodCall":
        raise ClarensFault("decode", f"expected <methodCall>, found <{root.tag}>")
    name_el = root.find("methodName")
    params_el = root.find("params")
    if name_el is None or params_el is None or len(params_el) != 1:
        raise ClarensFault("decode", "payload missing methodName or params")
    return name_el.text or "", _decode_element(params_el[0])

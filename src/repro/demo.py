"""Interactive demo: ``python -m repro.demo [SQL ...]``.

Boots a small two-server grid (MySQL events mart + MS SQL runs mart on
server 1, SQLite calibration mart on server 2, all published to the
RLS), then runs the given SQL — or a default tour — printing for each
query the federated EXPLAIN, the result rows and the simulated response
time.
"""

from __future__ import annotations

import sys

from repro.core.federation import GridFederation
from repro.engine.database import Database

DEFAULT_QUERIES = [
    "SELECT event_id, energy FROM events WHERE energy > 60 ORDER BY event_id",
    "SELECT r.detector, COUNT(*) AS n, AVG(e.energy) AS avg_e "
    "FROM events e JOIN runs r ON e.run_id = r.run_id "
    "GROUP BY r.detector ORDER BY n DESC",
    "SELECT e.event_id, e.energy * c.gain AS calibrated "
    "FROM events e JOIN calibration c ON e.run_id = c.run_id "
    "WHERE e.event_id < 5 ORDER BY e.event_id",
]


def build_demo_federation() -> tuple[GridFederation, object, object]:
    """The demo topology: 2 servers, 3 vendor marts, 1 client."""
    fed = GridFederation()
    s1 = fed.create_server("jclarens1", "pc1.demo.org")
    s2 = fed.create_server("jclarens2", "pc2.demo.org")

    events = Database("events_mart", "mysql")
    events.execute(
        "CREATE TABLE EVT (EVENT_ID INT PRIMARY KEY, RUN_ID INT, ENERGY DOUBLE)"
    )
    for i in range(40):
        events.execute(f"INSERT INTO EVT VALUES ({i}, {i % 4}, {i * 2.5})")
    fed.attach_database(s1, events, logical_names={"EVT": "events"})

    runs = Database("runs_mart", "mssql")
    runs.execute(
        "CREATE TABLE RUN_INFO (RUN_ID INT PRIMARY KEY, DETECTOR NVARCHAR(20))"
    )
    for run_id, det in enumerate(["TRACKER", "ECAL", "HCAL", "MUON"]):
        runs.execute(f"INSERT INTO RUN_INFO VALUES ({run_id}, '{det}')")
    fed.attach_database(s1, runs, logical_names={"RUN_INFO": "runs"})

    calib = Database("calib_mart", "sqlite")
    calib.execute("CREATE TABLE calibration (run_id INTEGER PRIMARY KEY, gain REAL)")
    for run_id in range(4):
        calib.execute(f"INSERT INTO calibration VALUES ({run_id}, {1.0 + run_id * 0.05})")
    fed.attach_database(s2, calib)

    client = fed.client("laptop.demo.org")
    return fed, s1, client


def run_query(fed: GridFederation, server, client, sql: str) -> None:
    print(f"\nSQL> {sql}")
    info = server.service.explain(sql)
    print(f"  plan: {info['kind']}"
          + (f", {len(info['subqueries'])} sub-queries" if info["distributed"] else ""))
    for sub in info["subqueries"]:
        print(f"    [{sub['route']:>6}] {sub['database']} ({sub['vendor']}): {sub['sql']}")
    outcome = fed.query(client, server, sql)
    print(f"  {' | '.join(outcome.answer.columns)}")
    for row in outcome.answer.rows[:10]:
        print("  " + " | ".join(str(v) for v in row))
    if outcome.answer.row_count > 10:
        print(f"  ... {outcome.answer.row_count - 10} more rows")
    print(f"  -> {outcome.answer.row_count} rows in {outcome.response_ms:.1f} simulated ms "
          f"({outcome.answer.servers_accessed} server(s))")


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    fed, server, client = build_demo_federation()
    print("demo grid: 2 JClarens servers, 3 vendor marts "
          f"(RLS knows: {', '.join(fed.rls_server.known_tables())})")
    queries = argv if argv else DEFAULT_QUERIES
    for sql in queries:
        run_query(fed, server, client, sql)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

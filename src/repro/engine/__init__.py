"""In-memory relational engine.

One :class:`~repro.engine.database.Database` instance stands in for one
vendor database server process (Oracle, MySQL, MS SQL Server or SQLite
in the paper's testbed). The engine executes the vendor-neutral SQL core
produced by :mod:`repro.sql`; vendor personality (type-name mapping,
quoting, limit syntax, cost profile) is layered on by
:mod:`repro.dialects`.
"""

from repro.engine.storage import Column, TableStorage, estimate_value_bytes, estimate_row_bytes
from repro.engine.catalog import Catalog, ViewDef
from repro.engine.database import Database, ExecResult

__all__ = [
    "Catalog",
    "Column",
    "Database",
    "ExecResult",
    "TableStorage",
    "ViewDef",
    "estimate_row_bytes",
    "estimate_value_bytes",
]

"""SELECT execution against a table resolver.

The executor is deliberately a *materializing* vector executor: each
stage consumes and produces lists of row tuples. At the scales the paper
evaluates (~80 k rows across 6 databases) this is faster in CPython than
a pull-based iterator tree, and it keeps the stage boundaries — scan,
join, filter, aggregate, sort, project — easy to cost-model and test.

Join strategy: conjunctive equi-join predicates become hash joins
(build on the right input, probe from the left); remaining conjuncts
are applied as residual filters. Everything else falls back to a
nested-loop join.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.common.errors import (
    ColumnNotFoundError,
    PlanningError,
    SQLTypeError,
)
from repro.common.types import SQLType, infer_literal_type
from repro.sql import ast
from repro.sql.eval import RowSchema, SchemaColumn, compile_expr, truthy


class TableResolver(Protocol):
    """What the executor needs from its host database."""

    def resolve_table(self, name: str) -> tuple[list[SchemaColumn], list[tuple]]:
        """Return (columns, rows) for a base table or view."""
        ...


@dataclass
class ExecStats:
    """Work counters the simulated cost model charges for."""

    rows_examined: int = 0
    rows_returned: int = 0
    tables_accessed: list[str] = field(default_factory=list)
    join_strategy: list[str] = field(default_factory=list)


@dataclass
class QueryResult:
    """A fully materialized result set."""

    columns: list[str]
    types: list[SQLType]
    rows: list[tuple]
    stats: ExecStats = field(default_factory=ExecStats)

    @property
    def row_count(self) -> int:
        """Number of result rows."""
        return len(self.rows)

    def column_index(self, name: str) -> int:
        """Index of a result column by (case-insensitive) name."""
        lowered = name.lower()
        for i, c in enumerate(self.columns):
            if c.lower() == lowered:
                return i
        raise ColumnNotFoundError(name)

    def column_values(self, name: str) -> list:
        """All values of one column, in row order."""
        idx = self.column_index(name)
        return [row[idx] for row in self.rows]

    def to_dicts(self) -> list[dict]:
        """Rows as dicts keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]


@functools.total_ordering
class _SortKey:
    """Total order over SQL values: NULL sorts last ascending-wise."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __eq__(self, other):
        return self.value == other.value

    def __lt__(self, other):
        a, b = self.value, other.value
        if a is None:
            return False  # NULL is the greatest
        if b is None:
            return True
        if isinstance(a, bool):
            a = int(a)
        if isinstance(b, bool):
            b = int(b)
        if isinstance(a, (int, float)) and isinstance(b, (int, float)):
            return a < b
        return str(a) < str(b)


class SelectExecutor:
    """Executes one SELECT statement against a resolver."""

    def __init__(self, resolver: TableResolver, params: tuple = ()):
        self.resolver = resolver
        self.params = params
        self.stats = ExecStats()
        self._subquery_depth = 0

    def _compile(self, expr: ast.Expr, schema: RowSchema):
        """Compile with this executor as the subquery runner."""
        return compile_expr(expr, schema, self.params, self._run_subquery)

    def _run_subquery(self, select: ast.Select):
        """Execute a non-correlated subquery against the same resolver."""
        if self._subquery_depth > 8:
            raise PlanningError("subquery nesting too deep")
        inner = SelectExecutor(self.resolver, self.params)
        inner._subquery_depth = self._subquery_depth + 1
        result = inner.execute(select)
        self.stats.rows_examined += result.stats.rows_examined
        return result.columns, result.rows

    # -- entry point -------------------------------------------------------------

    def execute(self, select: ast.Select) -> QueryResult:
        """Run the SELECT through scan/join/filter/aggregate/sort/limit."""
        if not select.from_:
            self._typecheck(select, RowSchema([]))
            return self._execute_scalar(select)
        schema, rows = self._execute_from(select)
        self._typecheck(select, schema)
        if select.where is not None:
            predicate = self._compile(select.where, schema)
            self.stats.rows_examined += len(rows)
            rows = [r for r in rows if truthy(predicate(r))]
        needs_agg = bool(select.group_by) or any(
            ast.contains_aggregate(i.expr) for i in select.items
        ) or (select.having is not None)
        if needs_agg:
            result = self._execute_aggregate(select, schema, rows)
        else:
            result = self._execute_plain(select, schema, rows)
        if select.distinct:
            result.rows = list(dict.fromkeys(result.rows))
        offset = select.offset or 0
        if offset:
            result.rows = result.rows[offset:]
        if select.limit is not None:
            result.rows = result.rows[: select.limit]
        result.stats = self.stats
        self.stats.rows_returned = len(result.rows)
        return result

    def _typecheck(self, select: ast.Select, schema: RowSchema) -> None:
        """Static type check before any row is evaluated.

        Closes the lazy-evaluation hole where a type-mismatched
        expression (``SELECT a + 'x' FROM t``) silently returned an
        empty result on an empty table instead of an error.
        """
        from repro.lint.analyzer import typecheck_select

        for diag in typecheck_select(select, schema):
            raise SQLTypeError(diag.message)

    # -- FROM / joins ------------------------------------------------------------

    def _scan(self, ref: ast.TableRef) -> tuple[RowSchema, list[tuple]]:
        columns, rows = self.resolver.resolve_table(ref.name)
        qualifier = ref.binding
        schema = RowSchema(
            [SchemaColumn(qualifier, c.name, c.type) for c in columns]
        )
        self.stats.tables_accessed.append(ref.name)
        self.stats.rows_examined += len(rows)
        return schema, rows

    def _execute_from(self, select: ast.Select) -> tuple[RowSchema, list[tuple]]:
        schema, rows = self._scan(select.from_[0])
        for ref in select.from_[1:]:
            rschema, rrows = self._scan(ref)
            schema, rows = self._cross_join(schema, rows, rschema, rrows)
        for join in select.joins:
            rschema, rrows = self._scan(join.table)
            schema, rows = self._join(schema, rows, rschema, rrows, join)
        return schema, rows

    def _cross_join(self, lschema, lrows, rschema, rrows):
        combined = lschema.concat(rschema)
        rows = [lr + rr for lr in lrows for rr in rrows]
        self.stats.join_strategy.append("cross")
        return combined, rows

    def _split_conjuncts(self, expr: ast.Expr) -> list[ast.Expr]:
        if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
            return self._split_conjuncts(expr.left) + self._split_conjuncts(expr.right)
        return [expr]

    def _join(self, lschema, lrows, rschema, rrows, join: ast.Join):
        combined = lschema.concat(rschema)
        if join.kind == "CROSS" or join.on is None:
            return self._cross_join(lschema, lrows, rschema, rrows)
        conjuncts = self._split_conjuncts(join.on)
        left_keys: list[Callable] = []
        right_keys: list[Callable] = []
        residual: list[ast.Expr] = []
        for conj in conjuncts:
            pair = self._equi_pair(conj, lschema, rschema)
            if pair is None:
                residual.append(conj)
            else:
                left_keys.append(pair[0])
                right_keys.append(pair[1])
        if left_keys:
            residual_fn = None
            if residual:
                pred_fns = [self._compile(c, combined) for c in residual]
                residual_fn = lambda row: all(truthy(p(row)) for p in pred_fns)  # noqa: E731
            rows = self._hash_join(
                lrows, rrows, left_keys, right_keys, join.kind, len(rschema), residual_fn
            )
            self.stats.join_strategy.append("hash")
        else:
            rows = self._nested_loop(
                lrows, rrows, combined, join.on, join.kind, len(rschema)
            )
            self.stats.join_strategy.append("nested-loop")
        return combined, rows

    def _equi_pair(self, conj: ast.Expr, lschema: RowSchema, rschema: RowSchema):
        """If ``conj`` is ``left_col = right_col`` across inputs, return key fns."""
        if not (isinstance(conj, ast.BinaryOp) and conj.op == "="):
            return None
        a, b = conj.left, conj.right
        if not (isinstance(a, ast.ColumnRef) and isinstance(b, ast.ColumnRef)):
            return None

        def side(ref: ast.ColumnRef) -> str | None:
            in_left = in_right = False
            try:
                lschema.resolve(ref)
                in_left = True
            except ColumnNotFoundError:
                pass
            try:
                rschema.resolve(ref)
                in_right = True
            except ColumnNotFoundError:
                pass
            if in_left and not in_right:
                return "L"
            if in_right and not in_left:
                return "R"
            return None

        sa, sb = side(a), side(b)
        if sa == "L" and sb == "R":
            la = self._compile(a, lschema)
            rb = self._compile(b, rschema)
            return la, rb
        if sa == "R" and sb == "L":
            lb = self._compile(b, lschema)
            ra = self._compile(a, rschema)
            return lb, ra
        return None

    def _hash_join(
        self, lrows, rrows, left_keys, right_keys, kind, right_width, residual_fn=None
    ):
        """Hash join; ``residual_fn`` is the non-equi remainder of the ON
        clause and participates in *match determination* (a LEFT row whose
        only hash matches fail the residual is padded, not dropped)."""
        self.stats.rows_examined += len(lrows) + len(rrows)
        table: dict[tuple, list[tuple]] = {}
        for rr in rrows:
            key = tuple(fn(rr) for fn in right_keys)
            if any(k is None for k in key):
                continue  # NULL never equi-joins
            table.setdefault(key, []).append(rr)
        out: list[tuple] = []
        pad = (None,) * right_width
        for lr in lrows:
            key = tuple(fn(lr) for fn in left_keys)
            candidates = [] if any(k is None for k in key) else table.get(key, [])
            matched = False
            for rr in candidates:
                row = lr + rr
                if residual_fn is None or residual_fn(row):
                    out.append(row)
                    matched = True
            if not matched and kind == "LEFT":
                out.append(lr + pad)
        return out

    def _nested_loop(self, lrows, rrows, combined, on, kind, right_width):
        self.stats.rows_examined += len(lrows) * max(1, len(rrows))
        predicate = self._compile(on, combined)
        out: list[tuple] = []
        pad = (None,) * right_width
        for lr in lrows:
            matched = False
            for rr in rrows:
                row = lr + rr
                if truthy(predicate(row)):
                    out.append(row)
                    matched = True
            if not matched and kind == "LEFT":
                out.append(lr + pad)
        return out

    # -- projection --------------------------------------------------------------

    def _expand_items(
        self, items: tuple[ast.SelectItem, ...], schema: RowSchema
    ) -> list[tuple[str, SQLType, Callable]]:
        """Expand stars and compile each output column."""
        out: list[tuple[str, SQLType, Callable]] = []
        for ordinal, item in enumerate(items, start=1):
            if isinstance(item.expr, ast.Star):
                for idx in schema.indexes_for_star(item.expr.table):
                    col = schema.columns[idx]
                    out.append(
                        (col.name, col.type, (lambda row, i=idx: row[i]))
                    )
                continue
            fn = self._compile(item.expr, schema)
            ctype = self._infer_type(item.expr, schema)
            out.append((item.output_name(ordinal), ctype, fn))
        return out

    def _infer_type(self, expr: ast.Expr, schema: RowSchema) -> SQLType:
        if isinstance(expr, ast.ColumnRef):
            try:
                return schema.columns[schema.resolve(expr)].type
            except ColumnNotFoundError:
                raise
        if isinstance(expr, ast.Literal):
            return infer_literal_type(expr.value)
        if isinstance(expr, ast.Cast):
            return expr.target
        if isinstance(expr, ast.FunctionCall):
            name = expr.name.upper()
            if name == "COUNT":
                return SQLType.bigint()
            if name in ("SUM", "AVG"):
                return SQLType.double()
            if name in ("MIN", "MAX") and expr.args:
                return self._infer_type(expr.args[0], schema)
        if isinstance(expr, ast.BinaryOp):
            if expr.op in ("AND", "OR", "=", "<>", "<", "<=", ">", ">="):
                return SQLType.boolean()
            if expr.op == "||":
                return SQLType.text()
            return SQLType.double()
        if isinstance(expr, (ast.IsNull, ast.InList, ast.Between, ast.Like)):
            return SQLType.boolean()
        if isinstance(expr, ast.UnaryOp):
            if expr.op == "NOT":
                return SQLType.boolean()
            return self._infer_type(expr.operand, schema)
        if isinstance(expr, ast.Case):
            for _, result in expr.whens:
                try:
                    return self._infer_type(result, schema)
                except (ColumnNotFoundError, SQLTypeError):
                    continue
        return SQLType.text()

    def _sort_rows(
        self,
        rows: list[tuple],
        order_by: tuple[ast.OrderItem, ...],
        schema: RowSchema,
        output: list[tuple[str, SQLType, Callable]] | None,
    ) -> list[tuple]:
        """Sort ``rows`` (pre-projection) honoring output aliases."""
        key_fns: list[tuple[Callable, bool]] = []
        alias_map = {}
        if output is not None:
            alias_map = {name.lower(): fn for name, _, fn in output}
        for item in order_by:
            fn = None
            if isinstance(item.expr, ast.ColumnRef) and item.expr.table is None:
                fn = alias_map.get(item.expr.column.lower())
            if fn is None:
                try:
                    fn = self._compile(item.expr, schema)
                except ColumnNotFoundError:
                    if fn is None:
                        raise
            key_fns.append((fn, item.ascending))
        # Stable sort from the last key to the first.
        out = list(rows)
        for fn, ascending in reversed(key_fns):
            out.sort(key=lambda r, f=fn: _SortKey(f(r)), reverse=not ascending)
        return out

    def _execute_plain(
        self, select: ast.Select, schema: RowSchema, rows: list[tuple]
    ) -> QueryResult:
        output = self._expand_items(select.items, schema)
        if select.order_by:
            rows = self._sort_rows(rows, select.order_by, schema, output)
        projected = [tuple(fn(row) for _, _, fn in output) for row in rows]
        return QueryResult(
            columns=[name for name, _, _ in output],
            types=[ctype for _, ctype, _ in output],
            rows=projected,
        )

    # -- scalar select (no FROM) ----------------------------------------------------

    def _execute_scalar(self, select: ast.Select) -> QueryResult:
        schema = RowSchema([])
        output = self._expand_items(select.items, schema)
        row = tuple(fn(()) for _, _, fn in output)
        return QueryResult(
            columns=[name for name, _, _ in output],
            types=[ctype for _, ctype, _ in output],
            rows=[row],
        )

    # -- aggregation ------------------------------------------------------------------

    def _execute_aggregate(
        self, select: ast.Select, schema: RowSchema, rows: list[tuple]
    ) -> QueryResult:
        group_exprs = list(select.group_by)
        group_fns = [self._compile(g, schema) for g in group_exprs]

        # HAVING and ORDER BY may reference output names (MySQL-style,
        # e.g. HAVING n > 1 for COUNT(*) AS n, or ORDER BY detector for
        # an unaliased r.detector item): expand output names to the
        # underlying item expressions before anything else.
        alias_expr_map: dict[str, ast.Expr] = {}
        for ordinal, item in enumerate(select.items, start=1):
            if isinstance(item.expr, ast.Star):
                continue
            name = item.output_name(ordinal).lower()
            alias_expr_map.setdefault(name, item.expr)

        def expand_aliases(expr: ast.Expr) -> ast.Expr:
            if isinstance(expr, ast.ColumnRef) and expr.table is None:
                mapped = alias_expr_map.get(expr.column.lower())
                if mapped is not None:
                    return mapped
                return expr
            if isinstance(expr, ast.BinaryOp):
                return ast.BinaryOp(
                    expr.op, expand_aliases(expr.left), expand_aliases(expr.right)
                )
            if isinstance(expr, ast.UnaryOp):
                return ast.UnaryOp(expr.op, expand_aliases(expr.operand))
            if isinstance(expr, ast.IsNull):
                return ast.IsNull(expand_aliases(expr.operand), expr.negated)
            if isinstance(expr, ast.Between):
                return ast.Between(
                    expand_aliases(expr.operand),
                    expand_aliases(expr.low),
                    expand_aliases(expr.high),
                    expr.negated,
                )
            return expr

        having_expr = (
            expand_aliases(select.having) if select.having is not None else None
        )
        order_exprs = [expand_aliases(o.expr) for o in select.order_by]

        # Collect unique aggregate calls from items, HAVING and ORDER BY.
        agg_calls: list[ast.FunctionCall] = []
        agg_index: dict[str, int] = {}

        def collect(expr: ast.Expr) -> None:
            for node in ast.walk(expr):
                if (
                    isinstance(node, ast.FunctionCall)
                    and node.name.upper() in ast.AGGREGATE_FUNCTIONS
                ):
                    key = node.unparse()
                    if key not in agg_index:
                        agg_index[key] = len(agg_calls)
                        agg_calls.append(node)

        for item in select.items:
            collect(item.expr)
        if having_expr is not None:
            collect(having_expr)
        for order_expr in order_exprs:
            collect(order_expr)

        # Compile aggregate argument functions against the *input* schema.
        agg_arg_fns: list[Callable | None] = []
        for call in agg_calls:
            if call.args and not isinstance(call.args[0], ast.Star):
                agg_arg_fns.append(self._compile(call.args[0], schema))
            else:
                agg_arg_fns.append(None)  # COUNT(*)

        # Group rows.
        groups: dict[tuple, list[tuple]] = {}
        if group_fns:
            for row in rows:
                key = tuple(fn(row) for fn in group_fns)
                groups.setdefault(key, []).append(row)
        else:
            groups[()] = list(rows)
        self.stats.rows_examined += len(rows)

        # Post-aggregation schema: group columns then aggregate results.
        post_columns = [
            SchemaColumn(None, f"__g{i}", SQLType.text()) for i in range(len(group_exprs))
        ] + [
            SchemaColumn(None, f"__a{j}", SQLType.double()) for j in range(len(agg_calls))
        ]
        post_schema = RowSchema(post_columns)

        post_rows: list[tuple] = []
        for key, grouped in groups.items():
            agg_values = [
                self._compute_aggregate(call, fn, grouped)
                for call, fn in zip(agg_calls, agg_arg_fns)
            ]
            post_rows.append(tuple(key) + tuple(agg_values))

        # Rewrite expressions onto the post-aggregation schema.
        group_keys = {g.unparse(): i for i, g in enumerate(group_exprs)}

        def rewrite(expr: ast.Expr) -> ast.Expr:
            key = expr.unparse()
            if key in agg_index and isinstance(expr, ast.FunctionCall):
                return ast.ColumnRef(column=f"__a{agg_index[key]}")
            if key in group_keys:
                return ast.ColumnRef(column=f"__g{group_keys[key]}")
            if isinstance(expr, ast.BinaryOp):
                return ast.BinaryOp(expr.op, rewrite(expr.left), rewrite(expr.right))
            if isinstance(expr, ast.UnaryOp):
                return ast.UnaryOp(expr.op, rewrite(expr.operand))
            if isinstance(expr, ast.FunctionCall):
                if expr.name.upper() in ast.AGGREGATE_FUNCTIONS:
                    return ast.ColumnRef(column=f"__a{agg_index[expr.unparse()]}")
                return ast.FunctionCall(
                    expr.name, tuple(rewrite(a) for a in expr.args), expr.distinct
                )
            if isinstance(expr, ast.IsNull):
                return ast.IsNull(rewrite(expr.operand), expr.negated)
            if isinstance(expr, ast.InList):
                return ast.InList(
                    rewrite(expr.operand),
                    tuple(rewrite(i) for i in expr.items),
                    expr.negated,
                )
            if isinstance(expr, ast.Between):
                return ast.Between(
                    rewrite(expr.operand), rewrite(expr.low), rewrite(expr.high), expr.negated
                )
            if isinstance(expr, ast.Like):
                return ast.Like(rewrite(expr.operand), rewrite(expr.pattern), expr.negated)
            if isinstance(expr, ast.Case):
                return ast.Case(
                    tuple((rewrite(c), rewrite(r)) for c, r in expr.whens),
                    rewrite(expr.else_) if expr.else_ else None,
                )
            if isinstance(expr, ast.Cast):
                return ast.Cast(rewrite(expr.operand), expr.target)
            if isinstance(expr, ast.ColumnRef):
                # A bare column in the select list must be a grouping column.
                raise PlanningError(
                    f"column {expr.unparse()!r} must appear in GROUP BY or an aggregate"
                )
            return expr

        if having_expr is not None:
            having_fn = self._compile(rewrite(having_expr), post_schema)
            post_rows = [r for r in post_rows if truthy(having_fn(r))]

        rewritten_items = tuple(
            ast.SelectItem(rewrite(item.expr), item.alias or item.output_name(i + 1))
            for i, item in enumerate(select.items)
        )
        output = self._expand_items(rewritten_items, post_schema)
        # Fix inferred output types (post-agg schema lost the real types).
        fixed_types = [
            self._infer_type(item.expr, schema) for item in select.items
        ]
        if select.order_by:
            rewritten_order = tuple(
                ast.OrderItem(rewrite(expr), order.ascending)
                for expr, order in zip(order_exprs, select.order_by)
            )
            post_rows = self._sort_rows(post_rows, rewritten_order, post_schema, output)
        projected = [tuple(fn(row) for _, _, fn in output) for row in post_rows]
        return QueryResult(
            columns=[name for name, _, _ in output],
            types=fixed_types,
            rows=projected,
        )

    @staticmethod
    def _compute_aggregate(call: ast.FunctionCall, arg_fn, rows: list[tuple]):
        name = call.name.upper()
        if name == "COUNT":
            if arg_fn is None:
                return len(rows)
            values = [arg_fn(r) for r in rows]
            values = [v for v in values if v is not None]
            if call.distinct:
                return len(set(values))
            return len(values)
        values = [arg_fn(r) for r in rows]
        values = [v for v in values if v is not None]
        if call.distinct:
            values = list(set(values))
        if not values:
            return None
        if name == "SUM":
            return sum(values)
        if name == "AVG":
            return sum(values) / len(values)
        if name == "MIN":
            return min(values, key=_SortKey)
        if name == "MAX":
            return max(values, key=_SortKey)
        if name in ("STDDEV", "VARIANCE"):
            # population moments, HBOOK-style
            n = len(values)
            mean = sum(values) / n
            variance = sum((v - mean) ** 2 for v in values) / n
            return variance if name == "VARIANCE" else variance**0.5
        raise PlanningError(f"unknown aggregate {name}")

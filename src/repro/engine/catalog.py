"""Schema catalog for one database: tables, views, indexes.

The catalog is the source of truth the XSpec generator serializes and
the schema-change tracker watches. Names are case-insensitive, matching
the behaviour of all four target vendors for unquoted identifiers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import DuplicateObjectError, TableNotFoundError
from repro.engine.storage import Column, TableStorage
from repro.sql import ast


@dataclass(frozen=True)
class ViewDef:
    """A named stored SELECT (the warehouse's read-only analysis views)."""

    name: str
    select: ast.Select
    sql: str


class Catalog:
    """All persistent objects of one database."""

    def __init__(self, database_name: str):
        self.database_name = database_name
        self._tables: dict[str, TableStorage] = {}
        self._views: dict[str, ViewDef] = {}
        self._index_defs: dict[str, ast.CreateIndex] = {}

    # Tables ---------------------------------------------------------------------

    def create_table(self, name: str, columns: list[Column], if_not_exists: bool = False) -> TableStorage | None:
        """Create a table; None (not an error) under IF NOT EXISTS."""
        key = name.lower()
        if key in self._tables or key in self._views:
            if if_not_exists:
                return None
            raise DuplicateObjectError(
                f"object {name!r} already exists in {self.database_name!r}"
            )
        table = TableStorage(name, columns)
        self._tables[key] = table
        return table

    def drop_table(self, name: str, if_exists: bool = False) -> bool:
        """Drop a table (and its index definitions); returns whether it existed."""
        key = name.lower()
        if key not in self._tables:
            if if_exists:
                return False
            raise TableNotFoundError(name, self.database_name)
        del self._tables[key]
        self._index_defs = {
            n: d for n, d in self._index_defs.items() if d.table.lower() != key
        }
        return True

    def get_table(self, name: str) -> TableStorage:
        """Storage of a table; raises TableNotFoundError on miss."""
        table = self._tables.get(name.lower())
        if table is None:
            raise TableNotFoundError(name, self.database_name)
        return table

    def has_table(self, name: str) -> bool:
        """True when a base table of this name exists."""
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        """Sorted names of every base table."""
        return sorted(t.name for t in self._tables.values())

    def rename_table(self, old: str, new: str) -> None:
        """Rename a table, keeping its storage and rows."""
        table = self.get_table(old)
        if new.lower() in self._tables or new.lower() in self._views:
            raise DuplicateObjectError(f"object {new!r} already exists")
        del self._tables[old.lower()]
        table.name = new
        self._tables[new.lower()] = table

    # Views ------------------------------------------------------------------------

    def create_view(self, view: ViewDef) -> None:
        """Register a stored SELECT under a new name."""
        key = view.name.lower()
        if key in self._views or key in self._tables:
            raise DuplicateObjectError(f"object {view.name!r} already exists")
        self._views[key] = view

    def drop_view(self, name: str, if_exists: bool = False) -> bool:
        """Drop a view; returns whether it existed."""
        key = name.lower()
        if key not in self._views:
            if if_exists:
                return False
            raise TableNotFoundError(name, self.database_name)
        del self._views[key]
        return True

    def get_view(self, name: str) -> ViewDef | None:
        """The view definition, or None."""
        return self._views.get(name.lower())

    def has_view(self, name: str) -> bool:
        """True when a view of this name exists."""
        return name.lower() in self._views

    def view_names(self) -> list[str]:
        """Sorted names of every view."""
        return sorted(v.name for v in self._views.values())

    # Indexes ------------------------------------------------------------------------

    def create_index(self, stmt: ast.CreateIndex) -> None:
        """Validate and register an index; builds its hash table eagerly."""
        key = stmt.name.lower()
        if key in self._index_defs:
            raise DuplicateObjectError(f"index {stmt.name!r} already exists")
        table = self.get_table(stmt.table)  # validates table + columns
        for col in stmt.columns:
            table.column_position(col)
        self._index_defs[key] = stmt
        table.ensure_index(stmt.columns)

    def index_names(self) -> list[str]:
        """Sorted names of every index."""
        return sorted(d.name for d in self._index_defs.values())

"""Row storage for one table, with constraints and hash indexes.

Rows are stored as tuples in insertion order. A primary-key hash index
is maintained eagerly; secondary indexes are built lazily and dropped on
mutation (rebuild-on-demand keeps the mutation path simple and is the
right trade for the read-mostly mart workloads the paper evaluates).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import (
    ColumnNotFoundError,
    DuplicateObjectError,
    IntegrityError,
)
from repro.common.types import SQLType, coerce_value


@dataclass(frozen=True)
class Column:
    """Schema of one stored column."""

    name: str
    type: SQLType
    not_null: bool = False
    primary_key: bool = False
    default: object = None
    has_default: bool = False


def estimate_value_bytes(value: object) -> int:
    """Approximate wire/storage footprint of one value.

    Used for the kB-based ETL benchmarks (Figs 4-5) and network payload
    sizing; mirrors a simple text-protocol encoding.
    """
    if value is None:
        return 4  # 'NULL'
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return max(1, len(str(value)))
    if isinstance(value, float):
        return len(repr(value))
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    return len(str(value))


def estimate_row_bytes(row: tuple) -> int:
    """Footprint of a full row including per-value separators."""
    return sum(estimate_value_bytes(v) for v in row) + len(row)


class TableStorage:
    """Storage and constraint enforcement for a single table."""

    def __init__(self, name: str, columns: list[Column]):
        if not columns:
            raise IntegrityError(f"table {name!r} must have at least one column")
        seen = set()
        for col in columns:
            key = col.name.lower()
            if key in seen:
                raise DuplicateObjectError(f"duplicate column {col.name!r} in {name!r}")
            seen.add(key)
        self.name = name
        self.columns = list(columns)
        self.rows: list[tuple] = []
        self._col_index = {c.name.lower(): i for i, c in enumerate(self.columns)}
        pk_cols = [i for i, c in enumerate(self.columns) if c.primary_key]
        self._pk_positions: tuple[int, ...] = tuple(pk_cols)
        self._pk_index: dict[tuple, int] | None = {} if pk_cols else None
        # name -> (column positions, key -> row positions)
        self._indexes: dict[str, tuple[tuple[int, ...], dict[tuple, list[int]]]] = {}
        self._byte_size = 0

    # Introspection -------------------------------------------------------------

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    @property
    def row_count(self) -> int:
        return len(self.rows)

    @property
    def byte_size(self) -> int:
        """Approximate data footprint in bytes (used by ETL sizing)."""
        return self._byte_size

    def column_position(self, name: str) -> int:
        idx = self._col_index.get(name.lower())
        if idx is None:
            raise ColumnNotFoundError(name, self.name)
        return idx

    def has_column(self, name: str) -> bool:
        return name.lower() in self._col_index

    # Mutation ------------------------------------------------------------------

    def _check_and_coerce(self, values: list, partial_columns: list[str] | None) -> tuple:
        """Coerce ``values`` onto full column order, applying defaults."""
        if partial_columns is None:
            if len(values) != len(self.columns):
                raise IntegrityError(
                    f"table {self.name!r} expects {len(self.columns)} values, got {len(values)}"
                )
            ordered = list(values)
        else:
            if len(values) != len(partial_columns):
                raise IntegrityError(
                    f"INSERT column list has {len(partial_columns)} names but "
                    f"{len(values)} values"
                )
            ordered = []
            provided = {name.lower(): v for name, v in zip(partial_columns, values)}
            for col in self.columns:
                key = col.name.lower()
                if key in provided:
                    ordered.append(provided.pop(key))
                elif col.has_default:
                    ordered.append(col.default)
                else:
                    ordered.append(None)
            if provided:
                raise ColumnNotFoundError(next(iter(provided)), self.name)
        out = []
        for col, value in zip(self.columns, ordered):
            coerced = None if value is None else coerce_value(value, col.type)
            if coerced is None and col.not_null:
                raise IntegrityError(
                    f"NULL violates NOT NULL on {self.name}.{col.name}"
                )
            out.append(coerced)
        return tuple(out)

    def insert(self, values: list, columns: list[str] | None = None) -> tuple:
        """Insert one row; returns the stored (coerced) tuple."""
        row = self._check_and_coerce(values, columns)
        if self._pk_index is not None:
            key = tuple(row[i] for i in self._pk_positions)
            if key in self._pk_index:
                raise IntegrityError(
                    f"duplicate primary key {key!r} in table {self.name!r}"
                )
            self._pk_index[key] = len(self.rows)
        self.rows.append(row)
        self._byte_size += estimate_row_bytes(row)
        self._indexes.clear()
        return row

    def insert_many(self, rows: list[list], columns: list[str] | None = None) -> int:
        return self.append_rows(rows, columns)

    def append_rows(self, rows: list[list], columns: list[str] | None = None) -> int:
        """Bulk insert: validate every row, then commit the batch at once.

        All-or-nothing — constraint violations (including duplicate keys
        *within* the batch) raise before any row lands, the secondary
        indexes are dropped once instead of per row, and byte accounting
        is summed over the batch. This is what the scratch-engine merge
        and the warehouse loader use; per-row :meth:`insert` keeps
        modelling the prototype's statement-at-a-time path.
        """
        if not rows:
            return 0
        staged: list[tuple] = []
        staged_keys: dict[tuple, None] = {}
        for values in rows:
            row = self._check_and_coerce(values, columns)
            if self._pk_index is not None:
                key = tuple(row[i] for i in self._pk_positions)
                if key in self._pk_index or key in staged_keys:
                    raise IntegrityError(
                        f"duplicate primary key {key!r} in table {self.name!r}"
                    )
                staged_keys[key] = None
            staged.append(row)
        base = len(self.rows)
        if self._pk_index is not None:
            for offset, key in enumerate(staged_keys):
                self._pk_index[key] = base + offset
        self.rows.extend(staged)
        self._byte_size += sum(estimate_row_bytes(r) for r in staged)
        self._indexes.clear()
        return len(staged)

    def delete_where(self, keep_predicate) -> int:
        """Delete rows for which ``keep_predicate(row)`` is False; returns count."""
        kept = [r for r in self.rows if keep_predicate(r)]
        deleted = len(self.rows) - len(kept)
        if deleted:
            self.rows = kept
            self._rebuild_after_mutation()
        return deleted

    def replace_rows(self, rows: list[tuple]) -> None:
        """Wholesale row replacement (used by UPDATE)."""
        self.rows = list(rows)
        self._rebuild_after_mutation()

    def _rebuild_after_mutation(self) -> None:
        self._indexes.clear()
        self._byte_size = sum(estimate_row_bytes(r) for r in self.rows)
        if self._pk_index is not None:
            self._pk_index = {}
            for pos, row in enumerate(self.rows):
                key = tuple(row[i] for i in self._pk_positions)
                if key in self._pk_index:
                    raise IntegrityError(
                        f"duplicate primary key {key!r} in table {self.name!r}"
                    )
                self._pk_index[key] = pos

    # Schema evolution ----------------------------------------------------------

    def add_column(self, column: Column) -> None:
        if self.has_column(column.name):
            raise DuplicateObjectError(
                f"column {column.name!r} already exists in {self.name!r}"
            )
        fill = column.default if column.has_default else None
        if fill is None and column.not_null and self.rows:
            raise IntegrityError(
                f"cannot add NOT NULL column {column.name!r} without default to "
                f"non-empty table {self.name!r}"
            )
        self.columns.append(column)
        self.rows = [row + (fill,) for row in self.rows]
        self._col_index[column.name.lower()] = len(self.columns) - 1
        self._rebuild_after_mutation()

    def drop_column(self, name: str) -> None:
        pos = self.column_position(name)
        if self.columns[pos].primary_key:
            raise IntegrityError(f"cannot drop primary-key column {name!r}")
        del self.columns[pos]
        self.rows = [row[:pos] + row[pos + 1 :] for row in self.rows]
        self._col_index = {c.name.lower(): i for i, c in enumerate(self.columns)}
        self._pk_positions = tuple(
            i for i, c in enumerate(self.columns) if c.primary_key
        )
        self._rebuild_after_mutation()

    # Indexes --------------------------------------------------------------------

    def ensure_index(self, columns: tuple[str, ...]) -> dict[tuple, list[int]]:
        """Hash index on ``columns``, built lazily, invalidated on mutation."""
        key = "|".join(c.lower() for c in columns)
        cached = self._indexes.get(key)
        if cached is not None:
            return cached[1]
        positions = tuple(self.column_position(c) for c in columns)
        index: dict[tuple, list[int]] = {}
        for pos, row in enumerate(self.rows):
            index.setdefault(tuple(row[i] for i in positions), []).append(pos)
        self._indexes[key] = (positions, index)
        return index

    def lookup_pk(self, key: tuple) -> tuple | None:
        """Primary-key point lookup; None when the table has no PK or misses."""
        if self._pk_index is None:
            return None
        pos = self._pk_index.get(key)
        return None if pos is None else self.rows[pos]

"""EXPLAIN: human-readable plan outlines without executing.

``explain_statement`` mirrors the executor's actual decisions — which
join becomes a hash join on which keys, which conjuncts remain residual,
where filters/aggregates/sorts apply — by running the same analysis the
executor would, against catalog metadata only.
"""

from __future__ import annotations

from repro.common.errors import ColumnNotFoundError
from repro.sql import ast
from repro.sql.eval import RowSchema, SchemaColumn
from repro.sql.parser import parse_statement


def _split_conjuncts(expr: ast.Expr | None) -> list[ast.Expr]:
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _schema_for(db, ref: ast.TableRef) -> RowSchema:
    columns, _rows = db.resolve_table(ref.name)
    return RowSchema([SchemaColumn(ref.binding, c.name, c.type) for c in columns])


def _table_size(db, name: str) -> str:
    if db.catalog.has_table(name):
        return f"{db.catalog.get_table(name).row_count} rows"
    return "view"


def explain_select(db, select: ast.Select, indent: str = "") -> list[str]:
    lines: list[str] = []
    if not select.from_:
        lines.append(f"{indent}evaluate scalar select")
        return lines

    first = select.from_[0]
    lines.append(f"{indent}scan {first.name}" +
                 (f" AS {first.alias}" if first.alias else "") +
                 f" ({_table_size(db, first.name)})")
    schema = _schema_for(db, first)
    for ref in select.from_[1:]:
        lines.append(
            f"{indent}cross join {ref.name} ({_table_size(db, ref.name)})"
        )
        schema = schema.concat(_schema_for(db, ref))

    for join in select.joins:
        rschema = _schema_for(db, join.table)
        label = f"{join.table.name}" + (
            f" AS {join.table.alias}" if join.table.alias else ""
        )
        if join.kind == "CROSS" or join.on is None:
            lines.append(f"{indent}cross join {label}")
            schema = schema.concat(rschema)
            continue
        equi, residual = [], []
        for conj in _split_conjuncts(join.on):
            if _is_equi_pair(conj, schema, rschema):
                equi.append(conj.unparse())
            else:
                residual.append(conj.unparse())
        if equi:
            lines.append(
                f"{indent}{join.kind.lower()} hash join {label} on "
                + " AND ".join(equi)
            )
            if residual:
                lines.append(f"{indent}  residual: " + " AND ".join(residual))
        else:
            lines.append(
                f"{indent}{join.kind.lower()} nested-loop join {label} on "
                f"{join.on.unparse()}"
            )
        schema = schema.concat(rschema)

    if select.where is not None:
        lines.append(f"{indent}filter: {select.where.unparse()}")
    has_agg = bool(select.group_by) or any(
        ast.contains_aggregate(i.expr) for i in select.items
    )
    if has_agg:
        aggs = sorted(
            {
                node.unparse()
                for item in select.items
                for node in ast.walk(item.expr)
                if isinstance(node, ast.FunctionCall)
                and node.name.upper() in ast.AGGREGATE_FUNCTIONS
            }
        )
        group = ", ".join(g.unparse() for g in select.group_by) or "<all rows>"
        lines.append(f"{indent}aggregate [{', '.join(aggs)}] group by {group}")
        if select.having is not None:
            lines.append(f"{indent}having: {select.having.unparse()}")
    lines.append(
        f"{indent}project: " + ", ".join(i.unparse() for i in select.items)
    )
    if select.order_by:
        lines.append(
            f"{indent}sort: " + ", ".join(o.unparse() for o in select.order_by)
        )
    if select.distinct:
        lines.append(f"{indent}distinct")
    if select.limit is not None or select.offset is not None:
        lines.append(
            f"{indent}limit {select.limit}"
            + (f" offset {select.offset}" if select.offset else "")
        )
    return lines


def _is_equi_pair(conj: ast.Expr, lschema: RowSchema, rschema: RowSchema) -> bool:
    if not (isinstance(conj, ast.BinaryOp) and conj.op == "="):
        return False
    a, b = conj.left, conj.right
    if not (isinstance(a, ast.ColumnRef) and isinstance(b, ast.ColumnRef)):
        return False

    def side(ref):
        in_l = in_r = False
        try:
            lschema.resolve(ref)
            in_l = True
        except ColumnNotFoundError:
            pass
        try:
            rschema.resolve(ref)
            in_r = True
        except ColumnNotFoundError:
            pass
        if in_l and not in_r:
            return "L"
        if in_r and not in_l:
            return "R"
        return None

    return {side(a), side(b)} == {"L", "R"}


def explain_statement(db, sql: str | ast.Statement) -> list[str]:
    """Plan outline for a SELECT or UNION (DDL/DML explain trivially)."""
    stmt = parse_statement(sql) if isinstance(sql, str) else sql
    if isinstance(stmt, ast.Select):
        return explain_select(db, stmt)
    if isinstance(stmt, ast.Union):
        lines = [f"union{' all' if stmt.all else ''} of {len(stmt.selects)} branches:"]
        for i, branch in enumerate(stmt.selects, start=1):
            lines.append(f"  branch {i}:")
            lines.extend(explain_select(db, branch, indent="    "))
        if stmt.order_by:
            lines.append(
                "  sort: " + ", ".join(o.unparse() for o in stmt.order_by)
            )
        if stmt.limit is not None:
            lines.append(f"  limit {stmt.limit}")
        return lines
    return [f"{type(stmt).__name__.lower()}: {stmt.unparse()}"]

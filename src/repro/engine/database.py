"""The per-server database facade: parse + dispatch + execute.

One :class:`Database` models one vendor database instance. It owns a
:class:`~repro.engine.catalog.Catalog`, accepts SQL text (optionally with
positional parameters), and returns :class:`ExecResult`. Views are
expanded recursively at resolve time, which is exactly how the paper's
warehouse exposes its read-only analysis views.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import (
    IntegrityError,
    PlanningError,
    SQLSyntaxError,
    TableNotFoundError,
)
from repro.common.types import SQLType, coerce_value
from repro.engine.catalog import Catalog, ViewDef
from repro.engine.executor import ExecStats, QueryResult, SelectExecutor
from repro.engine.storage import Column, TableStorage
from repro.sql import ast
from repro.sql.eval import RowSchema, SchemaColumn, compile_expr, truthy
from repro.sql.parser import parse_statement


@dataclass
class ExecResult:
    """Outcome of one statement: a result set and/or an affected-row count."""

    columns: list[str] = field(default_factory=list)
    types: list[SQLType] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)
    rowcount: int = 0
    stats: ExecStats = field(default_factory=ExecStats)

    @property
    def row_count(self) -> int:
        """Number of result rows."""
        return len(self.rows)

    def column_index(self, name: str) -> int:
        """Index of a result column by (case-insensitive) name."""
        lowered = name.lower()
        for i, c in enumerate(self.columns):
            if c.lower() == lowered:
                return i
        raise TableNotFoundError(name)

    def to_dicts(self) -> list[dict]:
        """Rows as dicts keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    @staticmethod
    def from_query(result: QueryResult) -> "ExecResult":
        """Wrap an executor QueryResult as an ExecResult."""
        return ExecResult(
            columns=result.columns,
            types=result.types,
            rows=result.rows,
            rowcount=len(result.rows),
            stats=result.stats,
        )


class Database:
    """One simulated database server instance.

    ``vendor`` names the dialect personality (resolved lazily to avoid an
    import cycle with :mod:`repro.dialects`); the engine itself is
    vendor-neutral.
    """

    def __init__(self, name: str, vendor: str = "generic"):
        self.name = name
        self.vendor = vendor
        self.catalog = Catalog(name)
        self._view_depth = 0

    def __repr__(self) -> str:
        return f"Database(name={self.name!r}, vendor={self.vendor!r})"

    # -- TableResolver protocol ----------------------------------------------------

    def resolve_table(self, name: str) -> tuple[list[SchemaColumn], list[tuple]]:
        """(columns, rows) of a base table, or of a view expanded now."""
        if self.catalog.has_table(name):
            table = self.catalog.get_table(name)
            cols = [
                SchemaColumn(None, c.name, c.type) for c in table.columns
            ]
            return cols, table.rows
        view = self.catalog.get_view(name)
        if view is not None:
            if self._view_depth > 16:
                raise PlanningError(f"view expansion too deep at {name!r}")
            self._view_depth += 1
            try:
                result = SelectExecutor(self).execute(view.select)
            finally:
                self._view_depth -= 1
            cols = [
                SchemaColumn(None, cname, ctype)
                for cname, ctype in zip(result.columns, result.types)
            ]
            return cols, result.rows
        raise TableNotFoundError(name, self.name)

    # -- statement execution ---------------------------------------------------------

    def execute(self, sql: str, params: tuple = ()) -> ExecResult:
        """Parse and execute one SQL statement."""
        stmt = parse_statement(sql)
        return self.execute_statement(stmt, params, sql_text=sql)

    def execute_statement(
        self, stmt: ast.Statement, params: tuple = (), sql_text: str | None = None
    ) -> ExecResult:
        """Execute an already-parsed statement."""
        if isinstance(stmt, ast.Select):
            result = SelectExecutor(self, params).execute(stmt)
            return ExecResult.from_query(result)
        if isinstance(stmt, ast.Union):
            return self._execute_union(stmt, params)
        if isinstance(stmt, ast.CreateTable):
            columns = [
                Column(
                    name=c.name,
                    type=c.type,
                    not_null=c.not_null,
                    primary_key=c.primary_key,
                    default=c.default,
                    has_default=c.has_default,
                )
                for c in stmt.columns
            ]
            self.catalog.create_table(stmt.name, columns, stmt.if_not_exists)
            return ExecResult()
        if isinstance(stmt, ast.CreateTableAs):
            if stmt.if_not_exists and self.catalog.has_table(stmt.name):
                return ExecResult()
            result = SelectExecutor(self, params).execute(stmt.select)
            columns = [
                Column(name=c, type=t) for c, t in zip(result.columns, result.types)
            ]
            self.catalog.create_table(stmt.name, columns)
            storage = self.catalog.get_table(stmt.name)
            for row in result.rows:
                storage.insert(list(row))
            return ExecResult(rowcount=len(result.rows))
        if isinstance(stmt, ast.DropTable):
            self.catalog.drop_table(stmt.name, stmt.if_exists)
            return ExecResult()
        if isinstance(stmt, ast.CreateView):
            text = sql_text or stmt.unparse()
            self.catalog.create_view(ViewDef(stmt.name, stmt.select, text))
            return ExecResult()
        if isinstance(stmt, ast.DropView):
            self.catalog.drop_view(stmt.name, stmt.if_exists)
            return ExecResult()
        if isinstance(stmt, ast.CreateIndex):
            self.catalog.create_index(stmt)
            return ExecResult()
        if isinstance(stmt, ast.Insert):
            return self._execute_insert(stmt, params)
        if isinstance(stmt, ast.Update):
            return self._execute_update(stmt, params)
        if isinstance(stmt, ast.Delete):
            return self._execute_delete(stmt, params)
        if isinstance(stmt, ast.AlterTable):
            return self._execute_alter(stmt)
        raise SQLSyntaxError(f"unsupported statement type {type(stmt).__name__}")

    def _execute_union(self, stmt: ast.Union, params: tuple) -> ExecResult:
        """UNION [ALL]: branch results combined by position.

        Column names come from the first branch; types are widened to a
        common supertype per position; trailing ORDER BY/LIMIT apply to
        the combined set and may reference the first branch's output
        names.
        """
        from repro.common.errors import SQLTypeError
        from repro.common.types import common_supertype
        from repro.engine.executor import _SortKey

        branches = [
            SelectExecutor(self, params).execute(branch) for branch in stmt.selects
        ]
        width = len(branches[0].columns)
        for branch in branches[1:]:
            if len(branch.columns) != width:
                raise PlanningError(
                    f"UNION branches have {width} vs {len(branch.columns)} columns"
                )
        types = list(branches[0].types)
        for branch in branches[1:]:
            for i, t in enumerate(branch.types):
                try:
                    types[i] = common_supertype(types[i], t)
                except SQLTypeError:
                    from repro.common.types import SQLType

                    types[i] = SQLType.text()
        rows: list[tuple] = []
        for branch in branches:
            rows.extend(branch.rows)
        if not stmt.all:
            rows = list(dict.fromkeys(rows))
        columns = branches[0].columns
        if stmt.order_by:
            lowered = [c.lower() for c in columns]
            keys: list[tuple[int, bool]] = []
            for item in stmt.order_by:
                if not (
                    isinstance(item.expr, ast.ColumnRef) and item.expr.table is None
                ):
                    raise PlanningError(
                        "UNION ORDER BY must name an output column"
                    )
                name = item.expr.column.lower()
                if name not in lowered:
                    raise PlanningError(
                        f"UNION ORDER BY column {item.expr.column!r} is not an output"
                    )
                keys.append((lowered.index(name), item.ascending))
            for idx, ascending in reversed(keys):
                rows.sort(key=lambda r, i=idx: _SortKey(r[i]), reverse=not ascending)
        offset = stmt.offset or 0
        if offset:
            rows = rows[offset:]
        if stmt.limit is not None:
            rows = rows[: stmt.limit]
        stats = ExecStats(
            rows_examined=sum(b.stats.rows_examined for b in branches),
            rows_returned=len(rows),
            tables_accessed=[
                t for b in branches for t in b.stats.tables_accessed
            ],
        )
        return ExecResult(
            columns=list(columns), types=types, rows=rows, rowcount=len(rows),
            stats=stats,
        )

    # -- DML --------------------------------------------------------------------------

    def _execute_insert(self, stmt: ast.Insert, params: tuple) -> ExecResult:
        table = self.catalog.get_table(stmt.table)
        columns = list(stmt.columns) or None
        count = 0
        if stmt.select is not None:
            result = SelectExecutor(self, params).execute(stmt.select)
            for row in result.rows:
                table.insert(list(row), columns)
                count += 1
            return ExecResult(rowcount=count)
        empty = RowSchema([])
        for row_exprs in stmt.rows:
            values = [compile_expr(e, empty, params)(()) for e in row_exprs]
            table.insert(values, columns)
            count += 1
        return ExecResult(rowcount=count)

    def _table_schema(self, table: TableStorage) -> RowSchema:
        return RowSchema(
            [SchemaColumn(table.name, c.name, c.type) for c in table.columns]
        )

    def _subquery_runner(self, params: tuple):
        """Non-correlated subquery evaluation for UPDATE/DELETE predicates."""

        def run(select: ast.Select):
            result = SelectExecutor(self, params).execute(select)
            return result.columns, result.rows

        return run

    def _execute_update(self, stmt: ast.Update, params: tuple) -> ExecResult:
        table = self.catalog.get_table(stmt.table)
        schema = self._table_schema(table)
        runner = self._subquery_runner(params)
        predicate = (
            compile_expr(stmt.where, schema, params, runner)
            if stmt.where is not None
            else None
        )
        assignment_fns = []
        for col_name, expr in stmt.assignments:
            pos = table.column_position(col_name)
            fn = compile_expr(expr, schema, params, runner)
            assignment_fns.append((pos, table.columns[pos], fn))
        new_rows: list[tuple] = []
        updated = 0
        for row in table.rows:
            if predicate is None or truthy(predicate(row)):
                mutable = list(row)
                for pos, col, fn in assignment_fns:
                    value = fn(row)
                    if value is not None:
                        value = coerce_value(value, col.type)
                    elif col.not_null:
                        raise IntegrityError(
                            f"NULL violates NOT NULL on {table.name}.{col.name}"
                        )
                    mutable[pos] = value
                new_rows.append(tuple(mutable))
                updated += 1
            else:
                new_rows.append(row)
        table.replace_rows(new_rows)
        return ExecResult(rowcount=updated)

    def _execute_delete(self, stmt: ast.Delete, params: tuple) -> ExecResult:
        table = self.catalog.get_table(stmt.table)
        if stmt.where is None:
            count = table.row_count
            table.replace_rows([])
            return ExecResult(rowcount=count)
        schema = self._table_schema(table)
        predicate = compile_expr(
            stmt.where, schema, params, self._subquery_runner(params)
        )
        deleted = table.delete_where(lambda row: not truthy(predicate(row)))
        return ExecResult(rowcount=deleted)

    def _execute_alter(self, stmt: ast.AlterTable) -> ExecResult:
        if stmt.action == "RENAME":
            self.catalog.rename_table(stmt.table, stmt.new_name)
            return ExecResult()
        table = self.catalog.get_table(stmt.table)
        if stmt.action == "ADD":
            assert stmt.column is not None
            table.add_column(
                Column(
                    name=stmt.column.name,
                    type=stmt.column.type,
                    not_null=stmt.column.not_null,
                    primary_key=False,
                    default=stmt.column.default,
                    has_default=stmt.column.has_default,
                )
            )
            return ExecResult()
        if stmt.action == "DROP":
            assert stmt.column_name is not None
            table.drop_column(stmt.column_name)
            return ExecResult()
        raise SQLSyntaxError(f"unsupported ALTER action {stmt.action!r}")

    # -- prepared statements -----------------------------------------------------------

    def prepare(self, sql: str) -> "PreparedStatement":
        """Parse once, execute many times with different parameters.

        The parse is the fixed per-statement cost a repeated workload
        pays on every call; a prepared statement amortizes it exactly
        like a real driver's ``PreparedStatement``.
        """
        return PreparedStatement(self, parse_statement(sql), sql)

    # -- introspection -------------------------------------------------------------------

    def explain(self, sql: str) -> list[str]:
        """Plan outline for ``sql`` without executing it, with any static
        lint findings appended as ``lint:`` lines."""
        from repro.engine.explain import explain_statement

        lines = explain_statement(self, sql)
        from repro.common.errors import ReproError
        from repro.lint import CatalogSchema, lint_sql

        try:
            report = lint_sql(sql, CatalogSchema(self))
        except ReproError:
            return lines
        lines.extend(f"lint: {d}" for d in report)
        return lines

    # -- bulk API used by ETL/materialization ------------------------------------------

    def bulk_insert(self, table_name: str, rows: list[list]) -> int:
        """Fast path for streaming loads: no SQL parse per row."""
        table = self.catalog.get_table(table_name)
        return table.insert_many(rows)

    def table_bytes(self, table_name: str) -> int:
        """Approximate stored bytes of one table (ETL sizing)."""
        return self.catalog.get_table(table_name).byte_size


class PreparedStatement:
    """A parsed statement bound to one database."""

    def __init__(self, database: Database, statement: ast.Statement, sql: str):
        self.database = database
        self.statement = statement
        self.sql = sql
        self.executions = 0

    def execute(self, params: tuple = ()) -> ExecResult:
        """Run with ``params``; no re-parse."""
        self.executions += 1
        return self.database.execute_statement(
            self.statement, params, sql_text=self.sql
        )

    def __repr__(self) -> str:
        return f"PreparedStatement({self.sql!r}, executions={self.executions})"

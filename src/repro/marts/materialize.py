"""View materialization into vendor marts.

The mart table is created with the *mart vendor's own DDL* (rendered by
its dialect and re-parsed by the engine — Oracle NUMBER / MySQL INT /
SQLite TEXT really differ), then loaded through the same staged
streaming pipeline as the warehouse, but in autocommit mode and without
multi-row INSERT where the vendor lacks it: this is why Figure 5's
per-byte times are several times worse than Figure 4's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ETLError
from repro.dialects import get_dialect
from repro.engine.database import Database
from repro.engine.storage import Column
from repro.warehouse.etl import ETLJob, ETLPipeline, ETLReport
from repro.warehouse.warehouse import Warehouse


def view_columns(warehouse_db: Database, view: str) -> list[Column]:
    """Engine column definitions matching a view's output schema."""
    schema_cols, _rows = warehouse_db.resolve_table(view)
    return [Column(name=c.name, type=c.type) for c in schema_cols]


def materialize_view(
    warehouse: Warehouse,
    view: str,
    mart_db: Database,
    mart_host: str,
    table_name: str | None = None,
    direct: bool = False,
    epochs=None,
) -> ETLReport:
    """Replicate one warehouse view into one mart; returns phase timings.

    ``epochs`` (an :class:`repro.cache.EpochRegistry`) lets a cached
    federation learn about the refresh: the mart's epoch is bumped, so
    cached sub-results over the mart are dropped.
    """
    if not warehouse.db.catalog.has_view(view):
        raise ETLError(f"warehouse has no view {view!r}")
    table_name = table_name or view
    dialect = get_dialect(mart_db.vendor)
    columns = view_columns(warehouse.db, view)
    if mart_db.catalog.has_table(table_name):
        mart_db.catalog.drop_table(table_name)
    # Vendor DDL round-trip: render in the mart's own spelling, re-parse.
    mart_db.execute(dialect.render_create_table(table_name, columns))
    if epochs is None:
        epochs = warehouse.epochs
    pipeline = ETLPipeline(
        warehouse.network, warehouse.clock, mart_db, mart_host,
        autocommit=True, epochs=epochs,
    )
    job = ETLJob(
        source=warehouse.db,
        source_host=warehouse.host,
        query=f"SELECT * FROM {view}",
        target_table=table_name,
        target_columns=[c.name for c in columns],
    )
    if direct:
        return pipeline.run_direct(job)
    return pipeline.run(job)


def _view_fingerprint(warehouse_db: Database, view: str) -> tuple[int, int]:
    """Cheap change detector for a view: (row count, content hash)."""
    _cols, rows = warehouse_db.resolve_table(view)
    return len(rows), hash(tuple(sorted(hash(r) for r in rows)))


@dataclass
class MartSet:
    """A set of marts receiving replicated warehouse views.

    Tracks, per view, the warehouse content fingerprint at the last
    replication, so :meth:`refresh` re-materializes only views that
    actually changed — the operational loop after every nightly ETL.
    """

    warehouse: Warehouse
    marts: list[tuple[Database, str]] = field(default_factory=list)  # (db, host)
    reports: list[ETLReport] = field(default_factory=list)
    #: optional EpochRegistry — replications bump each mart's epoch
    epochs: object = None
    _fingerprints: dict[str, tuple[int, int]] = field(default_factory=dict)

    def add_mart(self, db: Database, host: str) -> None:
        if not self.warehouse.network.has_host(host):
            self.warehouse.network.add_host(host, tier=2)
        self.marts.append((db, host))

    def replicate(self, views: list[str], direct: bool = False) -> list[ETLReport]:
        """Materialize every view into every mart (the paper's Stage 2)."""
        out: list[ETLReport] = []
        for view in views:
            for db, host in self.marts:
                out.append(
                    materialize_view(
                        self.warehouse, view, db, host,
                        direct=direct, epochs=self.epochs,
                    )
                )
            self._fingerprints[view] = _view_fingerprint(self.warehouse.db, view)
        self.reports.extend(out)
        return out

    def stale_views(self) -> list[str]:
        """Replicated views whose warehouse content has since changed."""
        out = []
        for view, fingerprint in sorted(self._fingerprints.items()):
            if _view_fingerprint(self.warehouse.db, view) != fingerprint:
                out.append(view)
        return out

    def refresh(self, direct: bool = False) -> list[ETLReport]:
        """Re-materialize only the stale views; returns their reports."""
        stale = self.stale_views()
        if not stale:
            return []
        return self.replicate(stale, direct=direct)

"""Data marts: locally accessible replicas of warehouse views (§4.3).

A mart is a vendor database (MySQL, MS SQL Server, Oracle or SQLite)
holding materialized copies of the warehouse's analysis views. Stage 2
of the paper's measurements — view extraction + materialization through
a staging file — lives in :func:`materialize_view`; :class:`MartSet`
replicates a set of views into a set of marts and is what the Figure 5
bench drives.
"""

from repro.marts.materialize import MartSet, materialize_view

__all__ = ["MartSet", "materialize_view"]

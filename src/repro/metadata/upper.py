"""The upper-level XSpec: the single federation-wide database list.

One entry per participating database: its logical name, connection URL,
driver (vendor) name and the name of its lower-level XSpec document.
The paper generates this file manually (§4.4.2); here it is built
programmatically and round-trips through XML.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass

from repro.common.errors import XSpecError


@dataclass(frozen=True)
class UpperXSpecEntry:
    """One participating database."""

    name: str
    url: str
    driver: str
    lower_spec: str  # name/path of the lower-level XSpec document


@dataclass(frozen=True)
class UpperXSpec:
    """The federation's master metadata document."""

    entries: tuple[UpperXSpecEntry, ...]

    def entry(self, name: str) -> UpperXSpecEntry | None:
        lowered = name.lower()
        for e in self.entries:
            if e.name.lower() == lowered:
                return e
        return None

    def database_names(self) -> list[str]:
        return sorted(e.name for e in self.entries)

    def with_entry(self, entry: UpperXSpecEntry) -> "UpperXSpec":
        """Functional update: add (or replace) one database entry."""
        kept = tuple(e for e in self.entries if e.name.lower() != entry.name.lower())
        return UpperXSpec(kept + (entry,))

    def without_entry(self, name: str) -> "UpperXSpec":
        return UpperXSpec(
            tuple(e for e in self.entries if e.name.lower() != name.lower())
        )

    def to_xml(self) -> str:
        root = ET.Element("upperxspec")
        for entry in sorted(self.entries, key=lambda e: e.name.lower()):
            ET.SubElement(
                root,
                "database",
                {
                    "name": entry.name,
                    "url": entry.url,
                    "driver": entry.driver,
                    "xspec": entry.lower_spec,
                },
            )
        ET.indent(root)
        return ET.tostring(root, encoding="unicode") + "\n"

    @staticmethod
    def from_xml(text: str) -> "UpperXSpec":
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise XSpecError(f"malformed upper XSpec XML: {exc}") from None
        if root.tag != "upperxspec":
            raise XSpecError(f"expected <upperxspec> root, found <{root.tag}>")
        entries = []
        for element in root:
            if element.tag != "database":
                raise XSpecError(f"unexpected element <{element.tag}> in upper XSpec")
            for attr in ("name", "url", "driver", "xspec"):
                if attr not in element.attrib:
                    raise XSpecError(f"<database> is missing {attr!r}")
            entries.append(
                UpperXSpecEntry(
                    name=element.attrib["name"],
                    url=element.attrib["url"],
                    driver=element.attrib["driver"],
                    lower_spec=element.attrib["xspec"],
                )
            )
        return UpperXSpec(tuple(entries))

"""Schema diffs between XSpec versions.

The §4.9 tracker detects *that* a schema changed (size/md5); operators
need to know *what* changed before trusting a refreshed dictionary.
``diff_specs`` compares two lower XSpecs structurally: tables added and
removed, and per-table column additions, removals and type/nullability
changes. The tracker records the diff of every detected change.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metadata.xspec import LowerXSpec, XSpecTable


@dataclass(frozen=True)
class ColumnChange:
    """One column whose definition changed between versions."""

    column: str
    before: str  # rendered vendor type + flags
    after: str


@dataclass
class TableDiff:
    """Changes within one table present in both versions."""

    table: str
    added_columns: list[str] = field(default_factory=list)
    removed_columns: list[str] = field(default_factory=list)
    changed_columns: list[ColumnChange] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not (self.added_columns or self.removed_columns or self.changed_columns)


@dataclass
class SchemaDiff:
    """The full delta between two spec versions of one database."""

    database: str
    added_tables: list[str] = field(default_factory=list)
    removed_tables: list[str] = field(default_factory=list)
    table_diffs: list[TableDiff] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not (self.added_tables or self.removed_tables or self.table_diffs)

    def summary(self) -> str:
        """One-line operator summary, e.g. '+2 tables, EVT: +1 col'."""
        parts: list[str] = []
        if self.added_tables:
            parts.append(f"+{len(self.added_tables)} table(s): {', '.join(self.added_tables)}")
        if self.removed_tables:
            parts.append(f"-{len(self.removed_tables)} table(s): {', '.join(self.removed_tables)}")
        for td in self.table_diffs:
            bits = []
            if td.added_columns:
                bits.append(f"+{', '.join(td.added_columns)}")
            if td.removed_columns:
                bits.append(f"-{', '.join(td.removed_columns)}")
            if td.changed_columns:
                bits.append(
                    "~" + ", ".join(c.column for c in td.changed_columns)
                )
            parts.append(f"{td.table}: {' '.join(bits)}")
        return "; ".join(parts) if parts else "no structural change"


def _column_signature(col) -> str:
    flags = []
    if col.primary_key:
        flags.append("PK")
    if col.not_null:
        flags.append("NOT NULL")
    suffix = f" {' '.join(flags)}" if flags else ""
    return f"{col.vendor_type}{suffix}"


def _diff_table(old: XSpecTable, new: XSpecTable) -> TableDiff:
    diff = TableDiff(table=new.name)
    old_cols = {c.name.lower(): c for c in old.columns}
    new_cols = {c.name.lower(): c for c in new.columns}
    for key in sorted(new_cols.keys() - old_cols.keys()):
        diff.added_columns.append(new_cols[key].name)
    for key in sorted(old_cols.keys() - new_cols.keys()):
        diff.removed_columns.append(old_cols[key].name)
    for key in sorted(old_cols.keys() & new_cols.keys()):
        before = _column_signature(old_cols[key])
        after = _column_signature(new_cols[key])
        if before != after:
            diff.changed_columns.append(
                ColumnChange(new_cols[key].name, before, after)
            )
    return diff


def diff_specs(old: LowerXSpec, new: LowerXSpec) -> SchemaDiff:
    """Structural delta from ``old`` to ``new`` (same database)."""
    diff = SchemaDiff(database=new.database_name)
    old_tables = {t.logical_name.lower(): t for t in old.tables}
    new_tables = {t.logical_name.lower(): t for t in new.tables}
    for key in sorted(new_tables.keys() - old_tables.keys()):
        diff.added_tables.append(new_tables[key].name)
    for key in sorted(old_tables.keys() - new_tables.keys()):
        diff.removed_tables.append(old_tables[key].name)
    for key in sorted(old_tables.keys() & new_tables.keys()):
        table_diff = _diff_table(old_tables[key], new_tables[key])
        if not table_diff.empty:
            diff.table_diffs.append(table_diff)
    return diff

"""The data dictionary: logical names → physical locations.

Built from the upper XSpec plus the lower XSpecs it references, the
dictionary answers the two questions the data access layer asks for
every query: *which database hosts logical table T* and *what is T's
physical table/column naming there*. A logical table may be replicated
in several databases (marts holding the same materialized view); all
locations are kept so the router can choose.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import TableNotRegisteredError, XSpecError
from repro.metadata.upper import UpperXSpec
from repro.metadata.xspec import LowerXSpec, XSpecTable


@dataclass(frozen=True)
class TableLocation:
    """One physical hosting of a logical table.

    ``remote_server`` is None for databases registered with the local
    JClarens instance; for tables discovered through the RLS it carries
    the URL of the remote JClarens server that fronts the database, and
    sub-queries must be forwarded there instead of opening a direct
    connection.
    """

    logical_table: str
    database_name: str
    url: str
    vendor: str
    table: XSpecTable
    remote_server: str | None = None

    @property
    def is_remote(self) -> bool:
        """True when sub-queries must be forwarded to another server."""
        return self.remote_server is not None

    @property
    def physical_name(self) -> str:
        """The table's physical name at this hosting."""
        return self.table.name

    def physical_column(self, logical: str) -> str:
        """Physical column name for a logical one; raises on miss."""
        col = self.table.column_by_logical(logical)
        if col is None:
            raise XSpecError(
                f"logical column {logical!r} unknown in {self.logical_table!r} "
                f"at {self.database_name!r}"
            )
        return col.name


class DataDictionary:
    """Logical-name resolution over a set of XSpec documents."""

    def __init__(self) -> None:
        self._locations: dict[str, list[TableLocation]] = {}
        self._databases: dict[str, LowerXSpec] = {}
        self._urls: dict[str, str] = {}

    # -- construction ---------------------------------------------------------

    @staticmethod
    def build(upper: UpperXSpec, lower_specs: dict[str, LowerXSpec]) -> "DataDictionary":
        """Assemble a dictionary from the upper spec + its lower specs.

        ``lower_specs`` is keyed by the upper entries' ``lower_spec``
        reference names.
        """
        dictionary = DataDictionary()
        for entry in upper.entries:
            lower = lower_specs.get(entry.lower_spec)
            if lower is None:
                raise XSpecError(
                    f"upper XSpec references missing lower spec {entry.lower_spec!r}"
                )
            dictionary.add_database(lower, entry.url)
        return dictionary

    def add_database(
        self, spec: LowerXSpec, url: str, remote_server: str | None = None
    ) -> None:
        """Register (or refresh) one database's tables."""
        self.remove_database(spec.database_name)
        self._databases[spec.database_name] = spec
        self._urls[spec.database_name] = url
        for table in spec.tables:
            self._locations.setdefault(table.logical_name.lower(), []).append(
                TableLocation(
                    logical_table=table.logical_name,
                    database_name=spec.database_name,
                    url=url,
                    vendor=spec.vendor,
                    table=table,
                    remote_server=remote_server,
                )
            )

    def remove_database(self, database_name: str) -> None:
        """Drop a database and every location it contributed."""
        if database_name not in self._databases:
            return
        del self._databases[database_name]
        del self._urls[database_name]
        for logical in list(self._locations):
            kept = [
                loc
                for loc in self._locations[logical]
                if loc.database_name != database_name
            ]
            if kept:
                self._locations[logical] = kept
            else:
                del self._locations[logical]

    # -- queries ---------------------------------------------------------------

    def locations(self, logical_table: str) -> list[TableLocation]:
        """All physical hostings of ``logical_table`` (may be replicas)."""
        return list(self._locations.get(logical_table.lower(), []))

    def locate(self, logical_table: str) -> TableLocation:
        """First hosting of ``logical_table``; raises when unregistered."""
        found = self.locations(logical_table)
        if not found:
            raise TableNotRegisteredError(logical_table)
        return found[0]

    def has_table(self, logical_table: str) -> bool:
        """True when some hosting of the logical table is known."""
        return logical_table.lower() in self._locations

    def logical_tables(self) -> list[str]:
        """Sorted logical table names across every database."""
        return sorted(self._locations)

    def databases(self) -> list[str]:
        """Sorted names of every registered database."""
        return sorted(self._databases)

    def spec_for(self, database_name: str) -> LowerXSpec:
        """The lower XSpec of a registered database."""
        spec = self._databases.get(database_name)
        if spec is None:
            raise XSpecError(f"no spec registered for database {database_name!r}")
        return spec

    def url_for(self, database_name: str) -> str:
        """The connection URL of a registered database."""
        url = self._urls.get(database_name)
        if url is None:
            raise XSpecError(f"no URL registered for database {database_name!r}")
        return url

"""Lower-level XSpec documents: one XML file per database.

The serialized form is *canonical* — tables and columns are emitted in
sorted order with stable attribute order — because the schema-change
tracker (§4.9) compares specs by byte size and md5; a semantically
identical regeneration must produce byte-identical XML.
"""

from __future__ import annotations

import hashlib
import xml.etree.ElementTree as ET
from dataclasses import dataclass

from repro.common.errors import XSpecError
from repro.common.types import SQLType
from repro.sql.parser import _Parser


def parse_type_text(text: str) -> SQLType:
    """Parse a rendered type name (vendor or logical) back to SQLType."""
    parser = _Parser(text)
    try:
        return parser.parse_type()
    except Exception as exc:  # noqa: BLE001 - normalize to XSpecError
        raise XSpecError(f"bad type text {text!r} in XSpec: {exc}") from None


@dataclass(frozen=True)
class XSpecColumn:
    """One column: physical name, logical name, vendor + logical types."""

    name: str
    logical_name: str
    vendor_type: str
    logical_type: SQLType
    not_null: bool = False
    primary_key: bool = False


@dataclass(frozen=True)
class XSpecTable:
    """One table with its columns and a row-count hint for planning."""

    name: str
    logical_name: str
    columns: tuple[XSpecColumn, ...]
    row_count: int = 0

    def column_by_logical(self, logical: str) -> XSpecColumn | None:
        lowered = logical.lower()
        for col in self.columns:
            if col.logical_name.lower() == lowered:
                return col
        return None


@dataclass(frozen=True)
class XSpecRelationship:
    """A foreign-key style relationship between two tables."""

    table: str
    column: str
    ref_table: str
    ref_column: str


@dataclass(frozen=True)
class LowerXSpec:
    """The full metadata description of one database."""

    database_name: str
    vendor: str
    tables: tuple[XSpecTable, ...]
    relationships: tuple[XSpecRelationship, ...] = ()
    version: int = 1

    def table_by_logical(self, logical: str) -> XSpecTable | None:
        lowered = logical.lower()
        for table in self.tables:
            if table.logical_name.lower() == lowered:
                return table
        return None

    def logical_table_names(self) -> list[str]:
        return sorted(t.logical_name for t in self.tables)

    # -- XML serialization -------------------------------------------------------

    def to_xml(self, include_row_counts: bool = True) -> str:
        """Canonical XML.

        ``include_row_counts=False`` omits the planner's row-count hints
        so that the schema-change fingerprint ignores data growth.
        """
        root = ET.Element(
            "xspec",
            {
                "database": self.database_name,
                "vendor": self.vendor,
                "version": str(self.version),
            },
        )
        for table in sorted(self.tables, key=lambda t: t.name.lower()):
            attrs = {"name": table.name, "logical": table.logical_name}
            if include_row_counts:
                attrs["rowCount"] = str(table.row_count)
            t_el = ET.SubElement(root, "table", attrs)
            for col in table.columns:  # keep declaration order: it is physical order
                ET.SubElement(
                    t_el,
                    "column",
                    {
                        "name": col.name,
                        "logical": col.logical_name,
                        "type": col.vendor_type,
                        "logicalType": str(col.logical_type),
                        "notNull": "true" if col.not_null else "false",
                        "primaryKey": "true" if col.primary_key else "false",
                    },
                )
        for rel in sorted(
            self.relationships,
            key=lambda r: (r.table.lower(), r.column.lower(), r.ref_table.lower()),
        ):
            ET.SubElement(
                root,
                "relationship",
                {
                    "table": rel.table,
                    "column": rel.column,
                    "refTable": rel.ref_table,
                    "refColumn": rel.ref_column,
                },
            )
        ET.indent(root)
        return ET.tostring(root, encoding="unicode") + "\n"

    @staticmethod
    def from_xml(text: str) -> "LowerXSpec":
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise XSpecError(f"malformed XSpec XML: {exc}") from None
        if root.tag != "xspec":
            raise XSpecError(f"expected <xspec> root, found <{root.tag}>")
        for attr in ("database", "vendor"):
            if attr not in root.attrib:
                raise XSpecError(f"<xspec> is missing the {attr!r} attribute")
        tables: list[XSpecTable] = []
        relationships: list[XSpecRelationship] = []
        for element in root:
            if element.tag == "table":
                columns = []
                for c_el in element:
                    if c_el.tag != "column":
                        raise XSpecError(f"unexpected <{c_el.tag}> inside <table>")
                    columns.append(
                        XSpecColumn(
                            name=c_el.attrib["name"],
                            logical_name=c_el.attrib.get(
                                "logical", c_el.attrib["name"].lower()
                            ),
                            vendor_type=c_el.attrib["type"],
                            logical_type=parse_type_text(
                                c_el.attrib.get("logicalType", c_el.attrib["type"])
                            ),
                            not_null=c_el.attrib.get("notNull") == "true",
                            primary_key=c_el.attrib.get("primaryKey") == "true",
                        )
                    )
                if not columns:
                    raise XSpecError(
                        f"table {element.attrib.get('name')!r} has no columns"
                    )
                tables.append(
                    XSpecTable(
                        name=element.attrib["name"],
                        logical_name=element.attrib.get(
                            "logical", element.attrib["name"].lower()
                        ),
                        columns=tuple(columns),
                        row_count=int(element.attrib.get("rowCount", "0")),
                    )
                )
            elif element.tag == "relationship":
                relationships.append(
                    XSpecRelationship(
                        table=element.attrib["table"],
                        column=element.attrib["column"],
                        ref_table=element.attrib["refTable"],
                        ref_column=element.attrib["refColumn"],
                    )
                )
            else:
                raise XSpecError(f"unexpected element <{element.tag}> in XSpec")
        return LowerXSpec(
            database_name=root.attrib["database"],
            vendor=root.attrib["vendor"],
            tables=tuple(tables),
            relationships=tuple(relationships),
            version=int(root.attrib.get("version", "1")),
        )

    # -- change detection ---------------------------------------------------------

    def single_table_spec(self, logical_table: str) -> "LowerXSpec":
        """A one-table slice of this spec (used by the describe RPC)."""
        table = self.table_by_logical(logical_table)
        if table is None:
            raise XSpecError(
                f"no logical table {logical_table!r} in {self.database_name!r}"
            )
        return LowerXSpec(
            database_name=self.database_name,
            vendor=self.vendor,
            tables=(table,),
            version=self.version,
        )

    def fingerprint(self) -> tuple[int, str]:
        """(size, md5) of the canonical XML — the paper's §4.9 comparison key.

        Row-count hints are excluded: data growth is not a schema change.
        """
        text = self.to_xml(include_row_counts=False).encode("utf-8")
        return len(text), hashlib.md5(text).hexdigest()

"""XSpec generation from a live database catalog.

This is the simulated equivalent of the Unity project's spec-generation
tools: point it at a database, get the lower-level XSpec. Logical names
default to lower-cased physical names; a ``logical_names`` override maps
physical → logical for sites whose schemas use vendor-specific naming
(e.g. Oracle's upper-case ``EVENT_NTUPLE`` published logically as
``events``). Foreign-key style relationships are auto-detected from the
``<table>_<pkcolumn>`` naming convention used by the HEP schemas.
"""

from __future__ import annotations

from repro.dialects import get_dialect
from repro.engine.database import Database
from repro.metadata.xspec import (
    LowerXSpec,
    XSpecColumn,
    XSpecRelationship,
    XSpecTable,
)


def generate_lower_xspec(
    database: Database,
    logical_names: dict[str, str] | None = None,
    include_views: bool = True,
) -> LowerXSpec:
    """Introspect ``database`` and build its canonical lower XSpec."""
    logical_names = {k.lower(): v for k, v in (logical_names or {}).items()}
    dialect = get_dialect(database.vendor)
    tables: list[XSpecTable] = []

    names = database.catalog.table_names()
    if include_views:
        names = names + database.catalog.view_names()

    pk_by_table: dict[str, str] = {}
    for name in database.catalog.table_names():
        storage = database.catalog.get_table(name)
        pks = [c.name for c in storage.columns if c.primary_key]
        if len(pks) == 1:
            pk_by_table[name.lower()] = pks[0]

    for name in names:
        columns, row_count = _describe(database, name)
        xcolumns = tuple(
            XSpecColumn(
                name=col_name,
                logical_name=col_name.lower(),
                vendor_type=dialect.format_type(col_type),
                logical_type=col_type,
                not_null=not_null,
                primary_key=primary_key,
            )
            for col_name, col_type, not_null, primary_key in columns
        )
        tables.append(
            XSpecTable(
                name=name,
                logical_name=logical_names.get(name.lower(), name.lower()),
                columns=xcolumns,
                row_count=row_count,
            )
        )

    relationships = _detect_relationships(database, pk_by_table)
    return LowerXSpec(
        database_name=database.name,
        vendor=database.vendor,
        tables=tuple(tables),
        relationships=tuple(relationships),
    )


def _describe(database: Database, name: str):
    """(columns, row_count) for a table or view."""
    if database.catalog.has_table(name):
        storage = database.catalog.get_table(name)
        cols = [
            (c.name, c.type, c.not_null, c.primary_key) for c in storage.columns
        ]
        return cols, storage.row_count
    schema_cols, rows = database.resolve_table(name)
    cols = [(c.name, c.type, False, False) for c in schema_cols]
    return cols, len(rows)


def _detect_relationships(
    database: Database, pk_by_table: dict[str, str]
) -> list[XSpecRelationship]:
    """Detect ``child.parent_pk -> parent.pk`` naming-convention FKs."""
    out: list[XSpecRelationship] = []
    for child_name in database.catalog.table_names():
        child = database.catalog.get_table(child_name)
        for col in child.columns:
            for parent_lower, pk in pk_by_table.items():
                if parent_lower == child_name.lower():
                    continue
                # e.g. column 'run_id' references table 'runs' pk 'run_id'
                if col.name.lower() == pk.lower() and not col.primary_key:
                    parent = database.catalog.get_table(parent_lower)
                    out.append(
                        XSpecRelationship(
                            table=child.name,
                            column=col.name,
                            ref_table=parent.name,
                            ref_column=pk,
                        )
                    )
    return out

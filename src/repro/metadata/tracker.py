"""Schema-change tracking (§4.9), exactly as the paper describes it.

Periodically (driven by the caller — tests and the federation call
``poll()`` explicitly instead of spawning threads) a new XSpec is
generated for every watched database. The new spec's canonical XML is
compared with the old one **first by size, then by md5** — the paper's
two-step comparison — and on any difference the stored spec is replaced
and subscribers are notified so they can refresh their dictionaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.engine.database import Database
from repro.metadata.generator import generate_lower_xspec
from repro.metadata.xspec import LowerXSpec


@dataclass
class TrackedSpec:
    """Current spec + fingerprint for one watched database."""

    database: Database
    spec: LowerXSpec
    size: int
    md5: str
    versions_seen: int = 1
    logical_names: dict[str, str] = field(default_factory=dict)


class SchemaTracker:
    """Watches databases and fires callbacks on schema change."""

    def __init__(self) -> None:
        self._tracked: dict[str, TrackedSpec] = {}
        self._subscribers: list[Callable[[str, LowerXSpec], None]] = []
        self.polls = 0
        self.changes_detected = 0
        #: structural delta of every detected change, newest last
        self.change_log: list = []
        #: optional :class:`repro.cache.EpochRegistry` — when a caching
        #: service installs one, every detected schema change bumps the
        #: database's epoch *before* subscribers run, so cached results
        #: keyed on the old epoch are unreachable by the time the
        #: dictionary refreshes
        self.epochs = None

    def watch(
        self, database: Database, logical_names: dict[str, str] | None = None
    ) -> LowerXSpec:
        """Start tracking ``database``; returns its initial spec."""
        spec = generate_lower_xspec(database, logical_names)
        size, md5 = spec.fingerprint()
        self._tracked[database.name] = TrackedSpec(
            database, spec, size, md5, logical_names=dict(logical_names or {})
        )
        return spec

    def unwatch(self, database_name: str) -> None:
        self._tracked.pop(database_name, None)

    def subscribe(self, callback: Callable[[str, LowerXSpec], None]) -> None:
        """``callback(database_name, new_spec)`` on every detected change."""
        self._subscribers.append(callback)

    def current_spec(self, database_name: str) -> LowerXSpec:
        return self._tracked[database_name].spec

    def watched(self) -> list[str]:
        return sorted(self._tracked)

    # -- the paper's algorithm ------------------------------------------------------

    def poll(self) -> list[str]:
        """Regenerate every watched spec; returns names of changed databases."""
        self.polls += 1
        changed: list[str] = []
        for name, tracked in self._tracked.items():
            new_spec = generate_lower_xspec(
                tracked.database, tracked.logical_names or None
            )
            new_size, new_md5 = new_spec.fingerprint()
            # Size check first (cheap), md5 only when sizes agree — §4.9.
            if new_size == tracked.size and new_md5 == tracked.md5:
                continue
            from repro.metadata.diff import diff_specs

            self.change_log.append(diff_specs(tracked.spec, new_spec))
            tracked.spec = new_spec
            tracked.size = new_size
            tracked.md5 = new_md5
            tracked.versions_seen += 1
            changed.append(name)
            self.changes_detected += 1
            if self.epochs is not None:
                self.epochs.bump(name)
            for callback in self._subscribers:
                callback(name, new_spec)
        return changed

"""XSpec metadata: the data dictionary of the federation (§4.4).

Lower-level XSpec files describe one database each (tables, columns,
relationships, logical names); the single upper-level XSpec lists every
participating database with its connection URL, driver name and lower
spec. The :class:`~repro.metadata.dictionary.DataDictionary` built from
them is what lets clients query by logical name with no knowledge of
physical locations, and the :class:`~repro.metadata.tracker.SchemaTracker`
re-generates and size/md5-diffs specs to follow schema changes (§4.9).
"""

from repro.metadata.xspec import (
    LowerXSpec,
    XSpecColumn,
    XSpecRelationship,
    XSpecTable,
)
from repro.metadata.generator import generate_lower_xspec
from repro.metadata.upper import UpperXSpec, UpperXSpecEntry
from repro.metadata.dictionary import DataDictionary, TableLocation
from repro.metadata.tracker import SchemaTracker, TrackedSpec
from repro.metadata.store import XSpecStore
from repro.metadata.semantic import (
    LogicalNameSuggestion,
    TableMatch,
    find_matches,
    suggest_logical_names,
)

__all__ = [
    "LogicalNameSuggestion",
    "TableMatch",
    "XSpecStore",
    "find_matches",
    "suggest_logical_names",
    "DataDictionary",
    "LowerXSpec",
    "SchemaTracker",
    "TableLocation",
    "TrackedSpec",
    "UpperXSpec",
    "UpperXSpecEntry",
    "XSpecColumn",
    "XSpecRelationship",
    "XSpecTable",
    "generate_lower_xspec",
]

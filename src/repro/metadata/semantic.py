"""Semantic schema matching (§6 future work, implemented).

The paper: "Another interesting extension to the project could be the
study of how tables from databases can be integrated with respect to
their semantic similarity."

This module scores how likely two physically different tables represent
the same logical entity: names are split into tokens (underscores,
camelCase, digits), normalized through a small HEP-flavoured synonym
table, and compared by Jaccard similarity; columns additionally require
type-family compatibility; a table's score is the coverage-weighted
mean of its greedy best column matches plus a table-name term. The
output is directly consumable: suggested shared logical names for the
data dictionary.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.common.types import TypeKind
from repro.metadata.xspec import LowerXSpec, XSpecColumn, XSpecTable

# Normalization synonyms: every token maps to a canonical representative.
_SYNONYMS = {
    "identifier": "id",
    "key": "id",
    "num": "number",
    "no": "number",
    "cnt": "count",
    "evt": "event",
    "ev": "event",
    "det": "detector",
    "rn": "run",
    "nrg": "energy",
    "ene": "energy",
    "calib": "calibration",
    "cal": "calibration",
    "cond": "condition",
    "conds": "condition",
    "conditions": "condition",
    "vals": "value",
    "values": "value",
    "val": "value",
    "info": "",
    "tbl": "",
    "table": "",
    "data": "",
}

_CAMEL = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")


def tokenize_name(name: str) -> frozenset[str]:
    """Split an identifier into normalized semantic tokens."""
    spaced = _CAMEL.sub("_", name)
    raw = re.split(r"[_\W]+", spaced.lower())
    tokens = set()
    for token in raw:
        if not token:
            continue
        token = token.rstrip("0123456789") or token
        token = _SYNONYMS.get(token, token)
        # crude singularization: runs -> run, events -> event
        if len(token) > 3 and token.endswith("s"):
            token = _SYNONYMS.get(token[:-1], token[:-1])
        if token:
            tokens.add(token)
    return frozenset(tokens)


def jaccard(a: frozenset[str], b: frozenset[str]) -> float:
    if not a and not b:
        return 0.0
    union = a | b
    return len(a & b) / len(union) if union else 0.0


_TYPE_FAMILY = {
    TypeKind.INTEGER: "number",
    TypeKind.BIGINT: "number",
    TypeKind.FLOAT: "number",
    TypeKind.DOUBLE: "number",
    TypeKind.DECIMAL: "number",
    TypeKind.VARCHAR: "text",
    TypeKind.CHAR: "text",
    TypeKind.TEXT: "text",
    TypeKind.BOOLEAN: "number",  # vendors without BOOLEAN store it numerically
    TypeKind.DATE: "temporal",
    TypeKind.TIMESTAMP: "temporal",
    TypeKind.BLOB: "blob",
}


def column_similarity(a: XSpecColumn, b: XSpecColumn) -> float:
    """Name similarity gated by type-family compatibility."""
    if _TYPE_FAMILY[a.logical_type.kind] != _TYPE_FAMILY[b.logical_type.kind]:
        return 0.0
    return jaccard(tokenize_name(a.name), tokenize_name(b.name))


@dataclass(frozen=True)
class ColumnMatch:
    column_a: str
    column_b: str
    score: float


@dataclass(frozen=True)
class TableMatch:
    """A scored hypothesis that two tables are the same logical entity."""

    database_a: str
    table_a: str
    database_b: str
    table_b: str
    score: float
    columns: tuple[ColumnMatch, ...] = ()


def table_similarity(a: XSpecTable, b: XSpecTable) -> tuple[float, tuple[ColumnMatch, ...]]:
    """Score two tables: greedy column matching + table-name term.

    Returns (score in [0,1], matched column pairs). The column part is
    the mean matched-pair score weighted by how much of the *smaller*
    table was covered, so a 3-column table embedded in a 30-column one
    can still match well.
    """
    name_term = jaccard(tokenize_name(a.name), tokenize_name(b.name))
    pairs: list[tuple[float, XSpecColumn, XSpecColumn]] = []
    for ca in a.columns:
        for cb in b.columns:
            s = column_similarity(ca, cb)
            if s > 0:
                pairs.append((s, ca, cb))
    pairs.sort(key=lambda t: -t[0])
    used_a: set[str] = set()
    used_b: set[str] = set()
    matches: list[ColumnMatch] = []
    for s, ca, cb in pairs:
        if ca.name in used_a or cb.name in used_b:
            continue
        used_a.add(ca.name)
        used_b.add(cb.name)
        matches.append(ColumnMatch(ca.name, cb.name, s))
    smaller = min(len(a.columns), len(b.columns))
    if smaller == 0:
        return 0.0, ()
    coverage = len(matches) / smaller
    mean_score = sum(m.score for m in matches) / len(matches) if matches else 0.0
    column_term = coverage * mean_score
    score = 0.4 * name_term + 0.6 * column_term
    return score, tuple(matches)


def find_matches(
    spec_a: LowerXSpec, spec_b: LowerXSpec, threshold: float = 0.45
) -> list[TableMatch]:
    """All cross-database table pairs scoring at or above ``threshold``."""
    out: list[TableMatch] = []
    for ta in spec_a.tables:
        for tb in spec_b.tables:
            score, columns = table_similarity(ta, tb)
            if score >= threshold:
                out.append(
                    TableMatch(
                        database_a=spec_a.database_name,
                        table_a=ta.name,
                        database_b=spec_b.database_name,
                        table_b=tb.name,
                        score=round(score, 4),
                        columns=columns,
                    )
                )
    out.sort(key=lambda m: -m.score)
    return out


@dataclass
class LogicalNameSuggestion:
    """A proposed shared logical name for a cluster of matched tables."""

    logical_name: str
    members: list[tuple[str, str]] = field(default_factory=list)  # (database, table)
    score: float = 0.0


def suggest_logical_names(
    specs: list[LowerXSpec], threshold: float = 0.45
) -> list[LogicalNameSuggestion]:
    """Cluster same-entity tables across databases and name the clusters.

    Greedy transitive clustering over pairwise matches; the suggested
    name is the most common normalized token sequence of the members.
    """
    matches: list[TableMatch] = []
    for i in range(len(specs)):
        for j in range(i + 1, len(specs)):
            matches.extend(find_matches(specs[i], specs[j], threshold))

    parent: dict[tuple[str, str], tuple[str, str]] = {}

    def find(x):
        while parent.get(x, x) != x:
            parent[x] = parent.get(parent[x], parent[x])
            x = parent[x]
        return x

    def union(a, b):
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for m in matches:
        union((m.database_a, m.table_a), (m.database_b, m.table_b))

    clusters: dict[tuple[str, str], list[tuple[str, str]]] = {}
    for m in matches:
        for member in ((m.database_a, m.table_a), (m.database_b, m.table_b)):
            root = find(member)
            bucket = clusters.setdefault(root, [])
            if member not in bucket:
                bucket.append(member)

    score_by_member: dict[tuple[str, str], float] = {}
    for m in matches:
        for member in ((m.database_a, m.table_a), (m.database_b, m.table_b)):
            score_by_member[member] = max(score_by_member.get(member, 0.0), m.score)

    suggestions = []
    for members in clusters.values():
        token_votes: dict[str, int] = {}
        for _db, table in members:
            for token in sorted(tokenize_name(table)):
                token_votes[token] = token_votes.get(token, 0) + 1
        best_tokens = sorted(
            token_votes, key=lambda t: (-token_votes[t], t)
        )[:2]
        logical = "_".join(sorted(best_tokens)) or members[0][1].lower()
        suggestions.append(
            LogicalNameSuggestion(
                logical_name=logical,
                members=sorted(members),
                score=max(score_by_member.get(m, 0.0) for m in members),
            )
        )
    suggestions.sort(key=lambda s: -s.score)
    return suggestions

"""File-backed XSpec store.

In the paper the XSpec documents are real XML files: lower-level specs
generated per database by the Unity tooling, the single upper-level
spec written by hand, and the tracker's regenerated files compared on
disk. This module persists and reloads that layout::

    <root>/
      upper.xspec
      <database_name>.xspec      (one per participating database)

so a federation's metadata survives process restarts and can be
inspected/edited with ordinary tools.
"""

from __future__ import annotations

import pathlib

from repro.common.errors import XSpecError
from repro.metadata.dictionary import DataDictionary
from repro.metadata.upper import UpperXSpec, UpperXSpecEntry
from repro.metadata.xspec import LowerXSpec

UPPER_FILENAME = "upper.xspec"


class XSpecStore:
    """Reads and writes the XSpec file layout under one directory."""

    def __init__(self, root: str | pathlib.Path):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- paths ------------------------------------------------------------------

    @property
    def upper_path(self) -> pathlib.Path:
        return self.root / UPPER_FILENAME

    def lower_path(self, database_name: str) -> pathlib.Path:
        return self.root / f"{database_name}.xspec"

    # -- writing ------------------------------------------------------------------

    def save_lower(self, spec: LowerXSpec) -> pathlib.Path:
        path = self.lower_path(spec.database_name)
        path.write_text(spec.to_xml(), encoding="utf-8")
        return path

    def save_upper(self, upper: UpperXSpec) -> pathlib.Path:
        self.upper_path.write_text(upper.to_xml(), encoding="utf-8")
        return self.upper_path

    def save_dictionary(self, dictionary: DataDictionary) -> UpperXSpec:
        """Persist every database of a dictionary plus the upper spec."""
        entries = []
        for name in dictionary.databases():
            spec = dictionary.spec_for(name)
            self.save_lower(spec)
            entries.append(
                UpperXSpecEntry(
                    name=name,
                    url=dictionary.url_for(name),
                    driver=spec.vendor,
                    lower_spec=self.lower_path(name).name,
                )
            )
        upper = UpperXSpec(tuple(entries))
        self.save_upper(upper)
        return upper

    # -- reading ---------------------------------------------------------------------

    def load_lower(self, database_name: str) -> LowerXSpec:
        path = self.lower_path(database_name)
        if not path.exists():
            raise XSpecError(f"no lower XSpec file for {database_name!r} at {path}")
        return LowerXSpec.from_xml(path.read_text(encoding="utf-8"))

    def load_upper(self) -> UpperXSpec:
        if not self.upper_path.exists():
            raise XSpecError(f"no upper XSpec file at {self.upper_path}")
        return UpperXSpec.from_xml(self.upper_path.read_text(encoding="utf-8"))

    def load_dictionary(self) -> DataDictionary:
        """Rebuild a data dictionary from the stored file layout."""
        upper = self.load_upper()
        lowers: dict[str, LowerXSpec] = {}
        for entry in upper.entries:
            path = self.root / entry.lower_spec
            if not path.exists():
                raise XSpecError(
                    f"upper spec references missing file {entry.lower_spec!r}"
                )
            lowers[entry.lower_spec] = LowerXSpec.from_xml(
                path.read_text(encoding="utf-8")
            )
        return DataDictionary.build(upper, lowers)

    def list_specs(self) -> list[str]:
        return sorted(
            p.stem for p in self.root.glob("*.xspec") if p.name != UPPER_FILENAME
        )

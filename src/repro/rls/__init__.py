"""Replica Location Service (§4.8).

A central server maps logical table names to the URLs of the JClarens
servers hosting them. Service instances publish their tables on
startup (and on plug-in/schema events); the data access layer performs
a lookup whenever a query references a table with no local
registration. The RLS is what lets many small service instances share
the hosting load instead of one server registering every database.
"""

from repro.rls.server import RLSServer
from repro.rls.client import RLSClient

__all__ = ["RLSClient", "RLSServer"]

"""RLS client: pays the wire to the central server for every operation."""

from __future__ import annotations

from repro.clarens.codec import payload_bytes
from repro.net.network import Network
from repro.net.simclock import SimClock
from repro.rls.server import RLSServer


class RLSClient:
    """Talks to the central RLS server from one grid host.

    The owning data access service may attach a ``tracer``, a
    ``metrics`` registry, and a ``resilience`` manager; lookups then
    carry spans, hit/miss counters, and retry/breaker protection. All
    default to off at class level, so a bare client stays
    allocation-free.
    """

    tracer = None
    metrics = None
    #: optional :class:`repro.resilience.ResilienceManager` — when set,
    #: lookups retry transient RLS failures and fast-fail once the
    #: central server's breaker is open
    resilience = None

    def __init__(self, host: str, network: Network, clock: SimClock, server: RLSServer):
        self.host = host
        self.network = network
        self.clock = clock
        self.server = server

    def _count(self, name: str, n: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(n)

    def publish(self, logical_table: str, server_url: str) -> None:
        request = payload_bytes("rls.publish", [logical_table, server_url])
        self.network.transfer(self.host, self.server.host, request, self.clock)
        self.server.publish(logical_table, server_url)
        ack = payload_bytes("rls.publish", True)
        self.network.transfer(self.server.host, self.host, ack, self.clock)
        self._count("rls.publishes")

    def publish_many(self, tables: list[str], server_url: str) -> None:
        """Bulk publication used at service startup (one message)."""
        request = payload_bytes("rls.publish_many", [tables, server_url])
        self.network.transfer(self.host, self.server.host, request, self.clock)
        for table in tables:
            self.server.publish(table, server_url)
        ack = payload_bytes("rls.publish_many", True)
        self.network.transfer(self.server.host, self.host, ack, self.clock)
        self._count("rls.publishes", len(tables))

    def lookup(self, logical_table: str) -> list[str]:
        from repro.obs.trace import NOOP_SPAN

        span = (
            self.tracer.span("rls_wire", table=logical_table)
            if self.tracer is not None and self.tracer.active is not None
            else NOOP_SPAN
        )
        with span:
            if self.resilience is not None:
                urls = self.resilience.call(
                    f"rls:{self.server.host}",
                    lambda: self._lookup_once(logical_table),
                )
            else:
                urls = self._lookup_once(logical_table)
            span.set("replicas", len(urls))
        self._count("rls.lookups")
        self._count("rls.hits" if urls else "rls.misses")
        return urls

    def _lookup_once(self, logical_table: str) -> list[str]:
        """One unprotected wire round-trip to the central RLS."""
        request = payload_bytes("rls.lookup", logical_table)
        self.network.transfer(self.host, self.server.host, request, self.clock)
        urls = self.server.lookup(logical_table)
        response = payload_bytes("rls.lookup", urls)
        self.network.transfer(self.server.host, self.host, response, self.clock)
        return urls

"""RLS client: pays the wire to the central server for every operation."""

from __future__ import annotations

from repro.clarens.codec import payload_bytes
from repro.net.network import Network
from repro.net.simclock import SimClock
from repro.rls.server import RLSServer


class RLSClient:
    """Talks to the central RLS server from one grid host.

    The owning data access service may attach a ``tracer`` and a
    ``metrics`` registry; lookups then carry spans and hit/miss
    counters. Both default to off at class level, so a bare client
    stays allocation-free.
    """

    tracer = None
    metrics = None

    def __init__(self, host: str, network: Network, clock: SimClock, server: RLSServer):
        self.host = host
        self.network = network
        self.clock = clock
        self.server = server

    def _count(self, name: str, n: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(n)

    def publish(self, logical_table: str, server_url: str) -> None:
        request = payload_bytes("rls.publish", [logical_table, server_url])
        self.network.transfer(self.host, self.server.host, request, self.clock)
        self.server.publish(logical_table, server_url)
        ack = payload_bytes("rls.publish", True)
        self.network.transfer(self.server.host, self.host, ack, self.clock)
        self._count("rls.publishes")

    def publish_many(self, tables: list[str], server_url: str) -> None:
        """Bulk publication used at service startup (one message)."""
        request = payload_bytes("rls.publish_many", [tables, server_url])
        self.network.transfer(self.host, self.server.host, request, self.clock)
        for table in tables:
            self.server.publish(table, server_url)
        ack = payload_bytes("rls.publish_many", True)
        self.network.transfer(self.server.host, self.host, ack, self.clock)
        self._count("rls.publishes", len(tables))

    def lookup(self, logical_table: str) -> list[str]:
        from repro.obs.trace import NOOP_SPAN

        span = (
            self.tracer.span("rls_wire", table=logical_table)
            if self.tracer is not None and self.tracer.active is not None
            else NOOP_SPAN
        )
        with span:
            request = payload_bytes("rls.lookup", logical_table)
            self.network.transfer(self.host, self.server.host, request, self.clock)
            urls = self.server.lookup(logical_table)
            response = payload_bytes("rls.lookup", urls)
            self.network.transfer(self.server.host, self.host, response, self.clock)
            span.set("replicas", len(urls))
        self._count("rls.lookups")
        self._count("rls.hits" if urls else "rls.misses")
        return urls

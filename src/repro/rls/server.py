"""The central RLS server: logical table name → replica server URLs."""

from __future__ import annotations

from repro.common.errors import RLSLookupError
from repro.net import costs
from repro.net.simclock import SimClock


class RLSServer:
    """Central mapping store on one grid host."""

    def __init__(self, host: str, clock: SimClock):
        self.host = host
        self.clock = clock
        # logical table -> ordered unique list of server URLs
        self._mappings: dict[str, list[str]] = {}
        self.lookups = 0
        self.publishes = 0

    # -- publication ---------------------------------------------------------------

    def publish(self, logical_table: str, server_url: str) -> None:
        """Register that ``server_url`` hosts ``logical_table``."""
        self.clock.advance_ms(costs.RLS_PUBLISH_MS)
        self.publishes += 1
        urls = self._mappings.setdefault(logical_table.lower(), [])
        if server_url not in urls:
            urls.append(server_url)

    def unpublish(self, logical_table: str, server_url: str) -> None:
        urls = self._mappings.get(logical_table.lower())
        if not urls:
            return
        if server_url in urls:
            urls.remove(server_url)
        if not urls:
            del self._mappings[logical_table.lower()]

    def unpublish_server(self, server_url: str) -> None:
        """Remove every mapping that points at ``server_url``."""
        for table in list(self._mappings):
            self.unpublish(table, server_url)

    # -- lookup -----------------------------------------------------------------------

    def lookup(self, logical_table: str) -> list[str]:
        """URLs of servers hosting ``logical_table``; raises on no mapping."""
        self.clock.advance_ms(costs.RLS_LOOKUP_MS)
        self.lookups += 1
        urls = self._mappings.get(logical_table.lower())
        if not urls:
            raise RLSLookupError(
                f"RLS has no replica mapping for table {logical_table!r}"
            )
        return list(urls)

    def known_tables(self) -> list[str]:
        return sorted(self._mappings)

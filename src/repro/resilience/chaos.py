"""Scripted fault injection: a timeline of host/link failures.

The network fabric has had ``fail_host``/``fail_link`` primitives since
the seed, but nothing drove them. A :class:`ChaosSchedule` is a sorted
timeline of :class:`ChaosEvent`\\ s expressed in simulated milliseconds;
a :class:`ChaosDriver` binds the schedule to a concrete network + clock
and applies every event whose instant has passed each time ``tick()``
is called (virtual time has no background threads — the workload loop
is the scheduler).

Used by ``python -m repro.tools.chaosreport``, the chaos bench and the
hypothesis chaos property test.
"""

from __future__ import annotations

from dataclasses import dataclass

_ACTIONS = ("fail_host", "restore_host", "fail_link", "restore_link")


@dataclass(frozen=True)
class ChaosEvent:
    """One scripted fault (or repair) at an absolute simulated instant."""

    at_ms: float
    action: str  # one of _ACTIONS
    args: tuple[str, ...]

    def __post_init__(self):
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown chaos action {self.action!r}")
        want = 1 if self.action.endswith("host") else 2
        if len(self.args) != want:
            raise ValueError(
                f"{self.action} takes {want} argument(s), got {self.args!r}"
            )

    def apply(self, network) -> None:
        """Perform this event on a :class:`~repro.net.network.Network`."""
        getattr(network, self.action)(*self.args)


class ChaosSchedule:
    """An ordered, chainable timeline of fault-injection events."""

    def __init__(self, events: list[ChaosEvent] | None = None):
        self.events: list[ChaosEvent] = sorted(
            events or [], key=lambda e: e.at_ms
        )

    def _add(self, at_ms: float, action: str, *args: str) -> "ChaosSchedule":
        self.events.append(ChaosEvent(float(at_ms), action, tuple(args)))
        self.events.sort(key=lambda e: e.at_ms)
        return self

    def fail_host(self, at_ms: float, host: str) -> "ChaosSchedule":
        """Schedule a host death at ``at_ms``."""
        return self._add(at_ms, "fail_host", host)

    def restore_host(self, at_ms: float, host: str) -> "ChaosSchedule":
        """Schedule a host repair at ``at_ms``."""
        return self._add(at_ms, "restore_host", host)

    def fail_link(self, at_ms: float, a: str, b: str) -> "ChaosSchedule":
        """Schedule a link cut at ``at_ms``."""
        return self._add(at_ms, "fail_link", a, b)

    def restore_link(self, at_ms: float, a: str, b: str) -> "ChaosSchedule":
        """Schedule a link repair at ``at_ms``."""
        return self._add(at_ms, "restore_link", a, b)

    def hosts_killed(self) -> set[str]:
        """Every host the schedule fails at least once."""
        return {
            e.args[0] for e in self.events if e.action == "fail_host"
        }

    def __len__(self) -> int:
        return len(self.events)

    def driver(self, network, clock) -> "ChaosDriver":
        """Bind this schedule to a live network + clock."""
        return ChaosDriver(self, network, clock)


class ChaosDriver:
    """Applies a schedule's due events against one network as time passes."""

    def __init__(self, schedule: ChaosSchedule, network, clock):
        self.schedule = schedule
        self.network = network
        self.clock = clock
        self._cursor = 0
        self.applied: list[ChaosEvent] = []

    def tick(self) -> list[ChaosEvent]:
        """Apply every event due at the clock's current instant."""
        now = self.clock.now_ms
        fired: list[ChaosEvent] = []
        events = self.schedule.events
        while self._cursor < len(events) and events[self._cursor].at_ms <= now:
            event = events[self._cursor]
            event.apply(self.network)
            fired.append(event)
            self._cursor += 1
        self.applied.extend(fired)
        return fired

    @property
    def exhausted(self) -> bool:
        """True once every scheduled event has been applied."""
        return self._cursor >= len(self.schedule.events)

    def finish(self) -> list[ChaosEvent]:
        """Apply every remaining event regardless of the clock (cleanup)."""
        fired = []
        events = self.schedule.events
        while self._cursor < len(events):
            event = events[self._cursor]
            event.apply(self.network)
            fired.append(event)
            self._cursor += 1
        self.applied.extend(fired)
        return fired

"""Deterministic retry policy priced on the simulated clock.

Real grid middleware (Condor's ``JobLeaseDuration``, Globus retry
handlers) treats retry policy as configuration, not as code sprinkled
through call sites. Ours is a frozen dataclass: attempts, exponential
backoff and a per-query deadline budget, every delay charged to the
virtual clock so benches see exactly what a client would wait.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try a backend and how long to wait in between.

    ``deadline_ms`` is a *per-query* budget: once the query has been
    running that long, no further backoff sleeps are scheduled and the
    last error surfaces immediately (the caller's failover logic may
    still move on to a replica — the budget bounds waiting, not work).
    """

    max_attempts: int = 2
    backoff_base_ms: float = 25.0
    backoff_multiplier: float = 2.0
    backoff_cap_ms: float = 2_000.0
    deadline_ms: float | None = 20_000.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_ms < 0 or self.backoff_cap_ms < 0:
            raise ValueError("backoff durations cannot be negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")

    def backoff_ms(self, failure_count: int) -> float:
        """Backoff before the next attempt, after ``failure_count`` failures."""
        if failure_count < 1:
            raise ValueError(f"failure_count must be >= 1, got {failure_count}")
        delay = self.backoff_base_ms * self.backoff_multiplier ** (failure_count - 1)
        return min(self.backoff_cap_ms, delay)


@dataclass(frozen=True)
class BreakerConfig:
    """When a per-backend circuit breaker trips and how it recovers."""

    failure_threshold: int = 3
    cooldown_ms: float = 10_000.0
    half_open_probes: int = 1

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_ms < 0:
            raise ValueError("cooldown_ms cannot be negative")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")


@dataclass(frozen=True)
class ResilienceConfig:
    """The whole failure-handling knob set a service accepts."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)

"""repro.resilience — retry/backoff, circuit breakers, chaos schedules.

Opt-in failure handling for the federation (``resilience=True`` on
``create_server`` / :class:`~repro.core.service.DataAccessService` /
:class:`~repro.unity.driver.UnityDriver`; bit-for-bit unchanged when
off). See :mod:`repro.resilience.manager` for the call surface,
:mod:`repro.resilience.chaos` for the scripted fault-injection harness.
"""

from repro.common.errors import CircuitOpenError
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.resilience.chaos import ChaosDriver, ChaosEvent, ChaosSchedule
from repro.resilience.manager import ResilienceManager
from repro.resilience.partial import SubQueryFailure
from repro.resilience.policy import BreakerConfig, ResilienceConfig, RetryPolicy

__all__ = [
    "BreakerConfig",
    "CLOSED",
    "ChaosDriver",
    "ChaosEvent",
    "ChaosSchedule",
    "CircuitBreaker",
    "CircuitOpenError",
    "HALF_OPEN",
    "OPEN",
    "ResilienceConfig",
    "ResilienceManager",
    "RetryPolicy",
    "SubQueryFailure",
]

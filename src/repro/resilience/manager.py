"""The resilience manager: retry + breakers behind one call surface.

One manager lives inside each opted-in service/driver. Call sites wrap
a backend touch as ``manager.call(key, fn)``; the manager consults the
backend's circuit breaker, retries transient connection failures with
exponential backoff (charged to the simulated clock), honours the
per-query deadline budget, and feeds the metrics registry and tracer so
every retry and fast-fail is visible in ``dataaccess.metrics`` and the
span tree.
"""

from __future__ import annotations

from repro.common.errors import CircuitOpenError, ConnectionFailedError
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.policy import ResilienceConfig


class ResilienceManager:
    """Retry policy + per-backend breakers for one service or driver."""

    def __init__(
        self,
        clock=None,
        metrics=None,
        config: ResilienceConfig | None = None,
        tracer=None,
    ):
        self.clock = clock
        self.metrics = metrics
        self.tracer = tracer
        self.config = config or ResilienceConfig()
        self.policy = self.config.retry
        self._breakers: dict[str, CircuitBreaker] = {}
        #: absolute simulated instant after which no more backoff sleeps
        #: are scheduled for the current query (set by start_deadline)
        self.deadline_at_ms: float | None = None

    # -- breakers -----------------------------------------------------------------

    def breaker(self, key: str) -> CircuitBreaker:
        """The breaker guarding ``key`` (created closed on first touch)."""
        inst = self._breakers.get(key)
        if inst is None:
            inst = self._breakers[key] = CircuitBreaker(
                key, self.config.breaker, self.clock
            )
        return inst

    def breakers(self) -> list[CircuitBreaker]:
        """Every breaker, sorted by key."""
        return [self._breakers[k] for k in sorted(self._breakers)]

    def breaker_rows(self) -> list[tuple]:
        """(key, state, consecutive_failures, opens, fast_fails, opened_at)."""
        return [b.as_row() for b in self.breakers()]

    # -- budgets ------------------------------------------------------------------

    def start_deadline(self) -> None:
        """Arm the per-query deadline budget from the current instant."""
        if self.policy.deadline_ms is not None and self.clock is not None:
            self.deadline_at_ms = self.clock.now_ms + self.policy.deadline_ms
        else:
            self.deadline_at_ms = None

    def _budget_allows(self, delay_ms: float) -> bool:
        if self.deadline_at_ms is None or self.clock is None:
            return True
        return self.clock.now_ms + delay_ms < self.deadline_at_ms

    # -- accounting ---------------------------------------------------------------

    def _count(self, name: str, n: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(n)

    def _record_backoff(self, key: str, attempt: int, t0: float, t1: float) -> None:
        if self.tracer is not None and self.tracer.active is not None:
            self.tracer.record(
                "retry_backoff", t0, t1, backend=key, attempt=attempt
            )

    # -- the call surface ---------------------------------------------------------

    def call(self, key: str, fn, retry_on=(ConnectionFailedError,)):
        """Run ``fn()`` under ``key``'s breaker with retry + backoff.

        Raises :class:`CircuitOpenError` (a ``ConnectionFailedError``)
        instantly when the breaker is open, so callers' replica-failover
        logic treats a known-dead backend like a dead one — without
        paying the partition timeout to find out.
        """
        attempt = 0
        while True:
            breaker = self.breaker(key)
            if not breaker.allow():
                self._count("resilience.fast_fails")
                raise CircuitOpenError(key, breaker.retry_after_ms())
            attempt += 1
            try:
                result = fn()
            except retry_on:
                if breaker.record_failure():
                    self._count("resilience.breaker_opens")
                self._count("resilience.failures")
                if attempt >= self.policy.max_attempts:
                    raise
                delay = self.policy.backoff_ms(attempt)
                if not self._budget_allows(delay):
                    self._count("resilience.deadline_exhausted")
                    raise
                if self.clock is not None and delay > 0:
                    t0 = self.clock.now_ms
                    self.clock.advance_ms(delay)
                    self._record_backoff(key, attempt, t0, self.clock.now_ms)
                self._count("resilience.retries")
                continue
            breaker.record_success()
            return result

    # -- views --------------------------------------------------------------------

    def stats(self) -> dict:
        """Wire-safe summary for ``dataaccess.stats``."""
        count = 0.0
        if self.metrics is not None:
            count = self.metrics.counter("resilience.retries").value
        return {
            "retries": int(count),
            "breakers": {
                b.key: {
                    "state": b.state,
                    "consecutive_failures": b.consecutive_failures,
                    "opens": b.opens,
                    "fast_fails": b.fast_fails,
                }
                for b in self.breakers()
            },
        }

"""Per-sub-query failure provenance for graceful partial answers.

When every replica and retry of a sub-query is exhausted, an
``allow_partial`` query degrades instead of raising: the failed branch
contributes zero rows, the answer is flagged ``partial=True``, and one
:class:`SubQueryFailure` per dead branch records exactly what was lost
— so a client can distinguish "no matching events" from "the events
mart was unreachable".
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SubQueryFailure:
    """What happened to one sub-query that could not be answered."""

    binding: str
    database: str
    logical_table: str
    error: str  # exception class name
    message: str

    def as_dict(self) -> dict:
        """Wire-safe shape (travels in the ``failures`` response key)."""
        return {
            "binding": self.binding,
            "database": self.database,
            "logical_table": self.logical_table,
            "error": self.error,
            "message": self.message,
        }

    @classmethod
    def from_exception(cls, sub, exc: BaseException) -> "SubQueryFailure":
        """Provenance for ``sub`` (a decomposed SubQuery) dying with ``exc``."""
        return cls(
            binding=sub.binding,
            database=sub.location.database_name,
            logical_table=sub.location.logical_table,
            error=type(exc).__name__,
            message=str(exc),
        )

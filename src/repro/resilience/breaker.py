"""Per-backend circuit breakers on the simulated clock.

A dead database or JClarens peer costs ``PARTITION_TIMEOUT_MS`` per
touch; without a breaker, every query keeps paying that until the host
comes back. The breaker converts consecutive failures into an *instant*
refusal (``CircuitOpenError``), then lets a half-open probe through
after a cooldown — the matchmaking-time liveness idea from Condor-style
middleware, applied to the federation's data paths.

States: ``closed`` (normal) → ``open`` after ``failure_threshold``
consecutive failures → ``half_open`` once ``cooldown_ms`` of simulated
time has passed; a successful probe closes the breaker, a failed probe
re-opens it.
"""

from __future__ import annotations

from repro.resilience.policy import BreakerConfig

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Failure-counting gate in front of one backend."""

    def __init__(self, key: str, config: BreakerConfig | None = None, clock=None):
        self.key = key
        self.config = config or BreakerConfig()
        self.clock = clock
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at_ms: float | None = None
        self._probes_in_flight = 0
        # lifetime counters (monitor_breakers rows)
        self.opens = 0
        self.fast_fails = 0
        self.failures = 0
        self.successes = 0

    @property
    def _now(self) -> float:
        return self.clock.now_ms if self.clock is not None else 0.0

    def retry_after_ms(self) -> float | None:
        """Simulated ms until a half-open probe is allowed (None if closed)."""
        if self.state != OPEN or self.opened_at_ms is None:
            return None
        return max(0.0, self.opened_at_ms + self.config.cooldown_ms - self._now)

    def allow(self) -> bool:
        """May a call proceed right now? (May transition open → half-open.)"""
        if self.clock is None:
            # without a clock there is no cooldown to measure; the breaker
            # still counts failures but never refuses a call
            return True
        if self.state == OPEN:
            if self._now - (self.opened_at_ms or 0.0) >= self.config.cooldown_ms:
                self.state = HALF_OPEN
                self._probes_in_flight = 0
            else:
                self.fast_fails += 1
                return False
        if self.state == HALF_OPEN:
            if self._probes_in_flight < self.config.half_open_probes:
                self._probes_in_flight += 1
                return True
            self.fast_fails += 1
            return False
        return True

    def record_failure(self) -> bool:
        """Account one failure; True when this call tripped the breaker."""
        self.failures += 1
        self.consecutive_failures += 1
        if self.state == HALF_OPEN:
            # the probe failed: straight back to open, cooldown restarts
            self._trip()
            return True
        if (
            self.state == CLOSED
            and self.consecutive_failures >= self.config.failure_threshold
        ):
            self._trip()
            return True
        return False

    def record_success(self) -> None:
        """Account one success; closes a half-open breaker."""
        self.successes += 1
        self.consecutive_failures = 0
        if self.state == HALF_OPEN:
            self.state = CLOSED
            self.opened_at_ms = None
            self._probes_in_flight = 0

    def _trip(self) -> None:
        self.state = OPEN
        self.opened_at_ms = self._now
        self.opens += 1
        self._probes_in_flight = 0

    def as_row(self) -> tuple:
        """The ``monitor_breakers`` table shape."""
        return (
            self.key,
            self.state,
            int(self.consecutive_failures),
            int(self.opens),
            int(self.fast_fails),
            float(self.opened_at_ms) if self.opened_at_ms is not None else None,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker(key={self.key!r}, state={self.state!r}, "
            f"consecutive_failures={self.consecutive_failures})"
        )

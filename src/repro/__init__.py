"""repro — Grid-enabled heterogeneous relational database middleware.

A full reproduction of Ali et al., "Heterogeneous Relational Databases
for a Grid-enabled Analysis Environment" (ICPP Workshops 2005): a data
warehouse + data marts + XSpec metadata + Unity-style federated query
driver + POOL-RAL + Clarens web services + Replica Location Service,
running on simulated vendor databases over a virtual-time network.

Quickstart::

    from repro import GridFederation, Database

    fed = GridFederation()
    server = fed.create_server("jclarens1", "pcA.example.org")
    db = Database("mart1", "mysql")
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, x DOUBLE)")
    fed.attach_database(server, db)
    client = fed.client("laptop.example.org")
    outcome = fed.query(client, server, "SELECT COUNT(*) FROM t")
"""

from repro.analysis import Histogram1D, Histogram2D, JASPlugin
from repro.common import DeterministicRNG, ReproError, SQLType, TypeKind
from repro.common.errors import PreflightError
from repro.core import DataAccessService, GridFederation, QueryAnswer, ServerHandle
from repro.dialects import Dialect, available_vendors, get_dialect
from repro.driver import Directory, connect
from repro.engine import Database
from repro.hep import Ntuple, generate_ntuple
from repro.lint import Diagnostic, LintReport, Severity, lint_select, sqlcheck
from repro.marts import MartSet, materialize_view
from repro.metadata import (
    DataDictionary,
    LowerXSpec,
    SchemaTracker,
    UpperXSpec,
    generate_lower_xspec,
)
from repro.net import Network, SimClock
from repro.obs import (
    MetricsRegistry,
    MonitorDatabase,
    Tracer,
    format_span_tree,
)
from repro.poolral import PoolRAL, PoolRALWrapper
from repro.resilience import (
    ChaosSchedule,
    CircuitBreaker,
    ResilienceConfig,
    RetryPolicy,
    SubQueryFailure,
)
from repro.rls import RLSClient, RLSServer
from repro.unity import UnityDriver
from repro.warehouse import ETLJob, ETLPipeline, Warehouse

__version__ = "1.0.0"

__all__ = [
    "DataAccessService",
    "DataDictionary",
    "Database",
    "DeterministicRNG",
    "Diagnostic",
    "Dialect",
    "Directory",
    "ETLJob",
    "ETLPipeline",
    "GridFederation",
    "Histogram1D",
    "Histogram2D",
    "JASPlugin",
    "LintReport",
    "LowerXSpec",
    "MartSet",
    "ChaosSchedule",
    "CircuitBreaker",
    "MetricsRegistry",
    "MonitorDatabase",
    "Network",
    "Ntuple",
    "PoolRAL",
    "PoolRALWrapper",
    "PreflightError",
    "QueryAnswer",
    "RLSClient",
    "RLSServer",
    "ReproError",
    "ResilienceConfig",
    "RetryPolicy",
    "SQLType",
    "SchemaTracker",
    "ServerHandle",
    "Severity",
    "SimClock",
    "SubQueryFailure",
    "Tracer",
    "TypeKind",
    "UnityDriver",
    "UpperXSpec",
    "Warehouse",
    "available_vendors",
    "connect",
    "format_span_tree",
    "generate_lower_xspec",
    "generate_ntuple",
    "get_dialect",
    "lint_select",
    "materialize_view",
    "sqlcheck",
    "__version__",
]

"""Federation-wide telemetry: tracing, metrics, self-querying monitors.

The *capture* side (PR 2), all stamped from the simulated clock:

* :mod:`repro.obs.trace` — span-based query-lifecycle tracing with
  parent/child propagation across Clarens hops;
* :mod:`repro.obs.metrics` — a named-instrument registry (counters,
  gauges, percentile histograms) that is the single source of truth
  behind ``dataaccess.stats``;
* :mod:`repro.obs.monitor` — R-GMA-style monitor tables: the
  federation publishes its own telemetry as relational tables and
  answers plain federated SQL about itself.

And the *analysis* side (obs v2), three cooperating layers on top:

* :mod:`repro.obs.profiler` — EXPLAIN-ANALYZE-style per-operator cost
  profiles folded from completed span trees, with folded-stack export;
* :mod:`repro.obs.archive` — an R-GMA-archiver-style time-series store
  snapshotting every instrument into multi-resolution rollup rings,
  published as the ``monitor_history`` federated table;
* :mod:`repro.obs.slo` — declarative latency/error-budget objectives
  with fast/slow burn-rate alerting and the RED-style
  ``dataaccess.health`` verdict.
"""

from repro.obs.archive import (
    RAW_RESOLUTION_MS,
    Bucket,
    MetricsArchiver,
    SeriesArchive,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.monitor import (
    MONITOR_TABLES,
    TIMESTAMP_COLUMN,
    MonitorDatabase,
)
from repro.obs.profiler import (
    BackendStats,
    OperatorCost,
    QueryProfile,
    QueryProfiler,
    ShapeStats,
)
from repro.obs.slo import SLO, Alert, SLOEngine, default_slos
from repro.obs.trace import (
    NOOP_SPAN,
    QueryRecord,
    Span,
    Tracer,
    format_span_tree,
)

__all__ = [
    "Alert",
    "BackendStats",
    "Bucket",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsArchiver",
    "MetricsRegistry",
    "MONITOR_TABLES",
    "MonitorDatabase",
    "NOOP_SPAN",
    "OperatorCost",
    "QueryProfile",
    "QueryProfiler",
    "QueryRecord",
    "RAW_RESOLUTION_MS",
    "SeriesArchive",
    "ShapeStats",
    "SLO",
    "SLOEngine",
    "Span",
    "TIMESTAMP_COLUMN",
    "Tracer",
    "default_slos",
    "format_span_tree",
]

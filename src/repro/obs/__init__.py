"""Federation-wide telemetry: tracing, metrics, self-querying monitors.

Three cooperating pieces, all stamped from the simulated clock:

* :mod:`repro.obs.trace` — span-based query-lifecycle tracing with
  parent/child propagation across Clarens hops;
* :mod:`repro.obs.metrics` — a named-instrument registry (counters,
  gauges, percentile histograms) that is the single source of truth
  behind ``dataaccess.stats``;
* :mod:`repro.obs.monitor` — R-GMA-style monitor tables: the
  federation publishes its own telemetry as relational tables and
  answers plain federated SQL about itself.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.monitor import MONITOR_TABLES, MonitorDatabase
from repro.obs.trace import (
    NOOP_SPAN,
    QueryRecord,
    Span,
    Tracer,
    format_span_tree,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MONITOR_TABLES",
    "MonitorDatabase",
    "NOOP_SPAN",
    "QueryRecord",
    "Span",
    "Tracer",
    "format_span_tree",
]

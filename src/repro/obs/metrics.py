"""The federation's metrics registry: counters, gauges, histograms.

Instruments are named, created on first touch, and cheap enough to
leave always-on — the data access service's old ad-hoc ``stats()``
counters are now thin views over this registry, so there is exactly one
source of truth for operational numbers. Histograms are fed simulated
milliseconds (never host wall-time) and report nearest-rank
percentiles, the numbers the ROADMAP's perf PRs need to move.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    value: float = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {n})")
        self.value += n


@dataclass
class Gauge:
    """A point-in-time level (pool sizes, watermark positions)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """A distribution of observed values with nearest-rank percentiles."""

    name: str
    values: list = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def empty(self) -> bool:
        """True when nothing was ever observed.

        SLO math must distinguish "p99 = 0 ms" from "no samples": an
        empty histogram's ``percentile`` returns its *default* (0.0 for
        backward compatibility), so callers doing objective arithmetic
        check ``empty`` (or pass ``default=None``) instead of trusting
        a silent zero.
        """
        return not self.values

    @property
    def sum(self) -> float:
        return float(sum(self.values))

    @property
    def min(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.values else 0.0

    def percentile(self, p: float, default: float | None = 0.0):
        """Nearest-rank percentile; p in (0, 100].

        An empty histogram returns ``default`` — 0.0 by default so
        existing displays keep working, but callers that must not
        mistake "no data" for "0 ms" pass ``default=None`` (or check
        :attr:`empty` first).
        """
        if not 0 < p <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        if not self.values:
            return default
        ordered = sorted(self.values)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def stats(self) -> dict:
        """The summary row set this histogram contributes to monitoring."""
        return {
            "count": float(self.count),
            "sum": round(self.sum, 6),
            "min": round(self.min, 6),
            "max": round(self.max, 6),
            "mean": round(self.mean, 6),
            "p50": round(self.p50, 6),
            "p95": round(self.p95, 6),
            "p99": round(self.p99, 6),
        }


class MetricsRegistry:
    """Named instruments for one server (or pipeline, or driver).

    Calling the registry returns its wire-safe snapshot, which lets a
    Clarens service expose the registry object *itself* as the
    ``dataaccess.metrics`` web method.
    """

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- instrument access (create on first touch) ------------------------------

    def counter(self, name: str) -> Counter:
        inst = self.counters.get(name)
        if inst is None:
            inst = self.counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self.gauges.get(name)
        if inst is None:
            inst = self.gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self.histograms.get(name)
        if inst is None:
            inst = self.histograms[name] = Histogram(name)
        return inst

    # -- views -------------------------------------------------------------------

    def snapshot_rows(self) -> list[tuple[str, str, str, float]]:
        """(metric, kind, stat, value) rows — the ``monitor_metrics`` shape."""
        rows: list[tuple[str, str, str, float]] = []
        for name in sorted(self.counters):
            rows.append((name, "counter", "value", float(self.counters[name].value)))
        for name in sorted(self.gauges):
            rows.append((name, "gauge", "value", float(self.gauges[name].value)))
        for name in sorted(self.histograms):
            for stat, value in self.histograms[name].stats().items():
                rows.append((name, "histogram", stat, float(value)))
        return rows

    def as_dict(self) -> dict:
        """Wire-safe snapshot (survives the XML-RPC codec)."""
        return {
            "counters": {n: float(c.value) for n, c in sorted(self.counters.items())},
            "gauges": {n: float(g.value) for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: h.stats() for n, h in sorted(self.histograms.items())
            },
        }

    def __call__(self):
        """Clarens method: snapshot of every instrument on this server."""
        return self.as_dict()

"""R-GMA-style self-querying monitor tables.

R-GMA's insight (Cooke et al.) is that Grid monitoring should itself be
published and consumed *as relational tables*: producers insert rows,
consumers run plain SQL. We adopt that literally — each observing
JClarens server owns a :class:`MonitorDatabase`, a real in-memory
:class:`~repro.engine.database.Database` whose tables are regenerated
from the live tracer and metrics registry every time a query touches
them. Because it registers through the ordinary
``DataAccessService.register_database`` path, the federation machinery
(dictionary, RLS publication, decomposition, routing, remote
forwarding) applies unchanged: clients can ``SELECT stage,
AVG(duration_ms) FROM monitor_spans GROUP BY stage`` — locally, or
against a *remote* peer's monitor tables discovered through the RLS.

R-GMA also pairs producers with **archivers** retaining history; the
``monitor_history`` (archived metric buckets at every rollup
resolution), ``monitor_profile`` (per-operator costs of the slowest
retained queries) and ``monitor_alerts`` (SLO burn-rate transitions)
tables publish that side. Every monitor table carries the same
``ts_ms DOUBLE`` simclock timestamp column so history joins line up.
"""

from __future__ import annotations

from repro.engine.database import Database
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

#: the simclock timestamp column every monitor table carries
TIMESTAMP_COLUMN = "ts_ms"
TIMESTAMP_TYPE = "DOUBLE"

#: DDL for the monitor tables (lower-case physical names double as
#: the logical names the federation publishes).
_DDL = (
    """CREATE TABLE monitor_spans (
        trace_id VARCHAR(64), span_id VARCHAR(64), parent_id VARCHAR(64),
        stage VARCHAR(32), server VARCHAR(64),
        start_ms DOUBLE, end_ms DOUBLE, duration_ms DOUBLE,
        route VARCHAR(16), row_count INT, error VARCHAR(200),
        ts_ms DOUBLE
    )""",
    """CREATE TABLE monitor_metrics (
        metric VARCHAR(100), kind VARCHAR(16), stat VARCHAR(8), value DOUBLE,
        ts_ms DOUBLE
    )""",
    """CREATE TABLE monitor_queries (
        trace_id VARCHAR(64), server VARCHAR(64), sql_text VARCHAR(500),
        distributed INT, row_count INT, duration_ms DOUBLE,
        servers INT, status VARCHAR(80), ts_ms DOUBLE
    )""",
    """CREATE TABLE monitor_cache (
        cache_level VARCHAR(16), stat VARCHAR(20), value DOUBLE, ts_ms DOUBLE
    )""",
    """CREATE TABLE monitor_breakers (
        breaker_key VARCHAR(120), state VARCHAR(12),
        consecutive_failures INT, opens INT, fast_fails INT,
        opened_at_ms DOUBLE, ts_ms DOUBLE
    )""",
    """CREATE TABLE monitor_history (
        ts_ms DOUBLE, metric VARCHAR(100), kind VARCHAR(16), res_ms DOUBLE,
        samples INT, total DOUBLE, vmin DOUBLE, vmax DOUBLE,
        mean_val DOUBLE, last_val DOUBLE, bad INT
    )""",
    """CREATE TABLE monitor_profile (
        ts_ms DOUBLE, trace_id VARCHAR(64), shape VARCHAR(500),
        server VARCHAR(64), stage VARCHAR(32), op_server VARCHAR(64),
        calls INT, self_ms DOUBLE, cum_ms DOUBLE, total_ms DOUBLE
    )""",
    """CREATE TABLE monitor_alerts (
        ts_ms DOUBLE, slo VARCHAR(64), severity VARCHAR(12),
        state VARCHAR(12), burn_rate DOUBLE, window_ms DOUBLE,
        message VARCHAR(200)
    )""",
)

MONITOR_TABLES = (
    "monitor_spans",
    "monitor_metrics",
    "monitor_queries",
    "monitor_cache",
    "monitor_breakers",
    "monitor_history",
    "monitor_profile",
    "monitor_alerts",
)


class MonitorDatabase(Database):
    """An engine database whose tables mirror live telemetry.

    The tables refresh lazily on access (R-GMA's latest-state producer),
    so ``SELECT COUNT(*) FROM monitor_spans`` executed through the
    federation returns whatever the tracer holds at fetch time —
    including the spans of the monitoring query itself that finished
    before the fetch. The archiver/profiler/SLO tables are the
    R-GMA *archiver* side: retained history, not just the instant.
    """

    def __init__(
        self,
        name: str,
        tracer: Tracer,
        metrics: MetricsRegistry,
        vendor: str = "mysql",
        cache=None,
        resilience=None,
        clock=None,
        profiler=None,
        archiver=None,
        slo=None,
    ):
        super().__init__(name, vendor)
        self.tracer = tracer
        self.metrics = metrics
        #: optional :class:`repro.cache.CacheManager` feeding monitor_cache
        self.cache = cache
        #: optional :class:`repro.resilience.ResilienceManager` feeding
        #: monitor_breakers (one row per circuit breaker)
        self.resilience = resilience
        #: the simclock stamping every row's ``ts_ms``
        self.clock = clock
        #: optional :class:`repro.obs.profiler.QueryProfiler` → monitor_profile
        self.profiler = profiler
        #: optional :class:`repro.obs.archive.MetricsArchiver` → monitor_history
        self.archiver = archiver
        #: optional :class:`repro.obs.slo.SLOEngine` → monitor_alerts
        self.slo = slo
        self._refreshing = False
        for ddl in _DDL:
            self.execute(ddl)

    @property
    def now_ms(self) -> float:
        return self.clock.now_ms if self.clock is not None else 0.0

    # -- refresh-on-read ---------------------------------------------------------

    def resolve_table(self, name: str):
        if not self._refreshing:
            self.refresh()
        return super().resolve_table(name)

    def refresh(self) -> None:
        """Regenerate every monitor table from the live telemetry stack."""
        self._refreshing = True
        now = self.now_ms
        try:
            spans = self.catalog.get_table("monitor_spans")
            spans.replace_rows(
                [
                    (
                        s.trace_id,
                        s.span_id,
                        s.parent_id,
                        s.stage,
                        s.server,
                        float(s.start_ms),
                        float(s.end_ms if s.end_ms is not None else s.start_ms),
                        float(s.duration_ms),
                        _text_or_none(s.attrs.get("route")),
                        _int_or_none(s.attrs.get("rows")),
                        s.error,
                        float(s.end_ms if s.end_ms is not None else s.start_ms),
                    )
                    for s in self.tracer.spans
                ]
            )
            metrics = self.catalog.get_table("monitor_metrics")
            metrics.replace_rows(
                [
                    (metric, kind, stat, float(value), now)
                    for metric, kind, stat, value in self.metrics.snapshot_rows()
                ]
            )
            queries = self.catalog.get_table("monitor_queries")
            queries.replace_rows(
                [
                    (
                        q.trace_id,
                        q.server,
                        q.sql,
                        1 if q.distributed else 0,
                        int(q.row_count),
                        float(q.duration_ms),
                        int(q.servers),
                        q.status,
                        float(q.end_ms),
                    )
                    for q in self.tracer.queries
                ]
            )
            cache = self.catalog.get_table("monitor_cache")
            cache.replace_rows(
                []
                if self.cache is None
                else [
                    (level, stat, float(value), now)
                    for level, stat, value in self.cache.stat_rows()
                ]
            )
            breakers = self.catalog.get_table("monitor_breakers")
            breakers.replace_rows(
                []
                if self.resilience is None
                else [
                    (*row, now) for row in self.resilience.breaker_rows()
                ]
            )
            history = self.catalog.get_table("monitor_history")
            history.replace_rows(
                [] if self.archiver is None else self.archiver.history_rows()
            )
            profile = self.catalog.get_table("monitor_profile")
            profile.replace_rows(
                [] if self.profiler is None else self.profiler.profile_rows()
            )
            alerts = self.catalog.get_table("monitor_alerts")
            alerts.replace_rows(
                [] if self.slo is None else self.slo.alert_rows()
            )
        finally:
            self._refreshing = False


def _text_or_none(value) -> str | None:
    return None if value is None else str(value)


def _int_or_none(value) -> int | None:
    return None if value is None else int(value)

"""R-GMA-archiver-style metric time-series store with rollups.

R-GMA (Cooke et al.) pairs every monitoring *producer* with an
**archiver** that retains the stream and re-publishes it as queryable
relational history. PR 2's :class:`~repro.obs.metrics.MetricsRegistry`
is the producer — it only ever shows the current instant. The
:class:`MetricsArchiver` here snapshots every registered instrument on
a simclock cadence into per-series ring buffers with multi-resolution
rollups (raw → 1 s → 10 s buckets), and the monitor database exposes
the whole archive as the ``monitor_history`` federated table.

Downsampling is *conserving*: a rollup bucket's sample and sum totals
equal the totals of the raw buckets it absorbed, and ring eviction
folds the evicted buckets into a per-level remainder so series totals
never silently shrink. Percentile estimates over a window are clamped
into the window's observed [min, max] — the property test holds the
archiver to both invariants under arbitrary interleavings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: resolution key of the as-recorded (un-rolled) level
RAW_RESOLUTION_MS = 0.0


@dataclass
class Bucket:
    """One aggregation bucket of one series at one resolution."""

    t_ms: float
    samples: float = 0.0  # histogram observations / snapshots absorbed
    total: float = 0.0    # sum of observations (histogram) or deltas (counter)
    vmin: float | None = None
    vmax: float | None = None
    last: float = 0.0     # latest cumulative value (counter) / level (gauge)
    bad: float = 0.0      # observations beyond a watched threshold

    @property
    def mean(self) -> float:
        return self.total / self.samples if self.samples else 0.0

    def absorb(self, other: "Bucket") -> None:
        """Merge ``other`` (a later bucket) into this one, conserving."""
        self.samples += other.samples
        self.total += other.total
        if other.vmin is not None:
            self.vmin = other.vmin if self.vmin is None else min(self.vmin, other.vmin)
        if other.vmax is not None:
            self.vmax = other.vmax if self.vmax is None else max(self.vmax, other.vmax)
        self.last = other.last
        self.bad += other.bad

    def copy(self) -> "Bucket":
        return Bucket(
            self.t_ms, self.samples, self.total, self.vmin, self.vmax,
            self.last, self.bad,
        )


@dataclass
class _Level:
    """One resolution level: flushed ring + in-progress pending bucket."""

    res_ms: float
    cap: int
    buckets: list = field(default_factory=list)
    pending: Bucket | None = None
    #: conservation remainder for everything the ring evicted
    evicted: Bucket | None = None


class SeriesArchive:
    """The retained history of one instrument at several resolutions."""

    def __init__(
        self,
        name: str,
        kind: str,
        resolutions: tuple = (1_000.0, 10_000.0),
        raw_cap: int = 512,
        rollup_cap: int = 256,
    ):
        self.name = name
        self.kind = kind
        self._levels: dict[float, _Level] = {
            RAW_RESOLUTION_MS: _Level(RAW_RESOLUTION_MS, raw_cap)
        }
        for res in resolutions:
            self._levels[float(res)] = _Level(float(res), rollup_cap)

    @property
    def resolutions(self) -> list[float]:
        return sorted(self._levels)

    # -- recording ---------------------------------------------------------------

    def record(self, bucket: Bucket) -> None:
        """Append one raw bucket; cascade it into every rollup level."""
        raw = self._levels[RAW_RESOLUTION_MS]
        raw.buckets.append(bucket)
        self._evict(raw)
        for res, level in self._levels.items():
            if res == RAW_RESOLUTION_MS:
                continue
            key_ms = (bucket.t_ms // res) * res
            if level.pending is not None and level.pending.t_ms != key_ms:
                level.buckets.append(level.pending)
                level.pending = None
                self._evict(level)
            if level.pending is None:
                level.pending = Bucket(t_ms=key_ms)
                # a fresh bucket has no 'last' yet; adopt the stream's
                level.pending.last = bucket.last
            level.pending.absorb(bucket.copy())
            level.pending.t_ms = key_ms  # absorb keeps ours; be explicit

    def _evict(self, level: _Level) -> None:
        while len(level.buckets) > level.cap:
            gone = level.buckets.pop(0)
            if level.evicted is None:
                level.evicted = gone.copy()
            else:
                level.evicted.absorb(gone)

    # -- views --------------------------------------------------------------------

    def buckets(self, res_ms: float = RAW_RESOLUTION_MS) -> list[Bucket]:
        """All retained buckets of one level (pending rollup included)."""
        level = self._levels[res_ms]
        out = list(level.buckets)
        if level.pending is not None:
            out.append(level.pending)
        return out

    def totals(self, res_ms: float = RAW_RESOLUTION_MS) -> Bucket:
        """Whole-series totals at one level, eviction remainder included.

        Conservation invariant: ``totals(r).samples``/``.total``/``.bad``
        are identical for every resolution ``r``.
        """
        level = self._levels[res_ms]
        agg = Bucket(t_ms=0.0)
        if level.evicted is not None:
            agg.absorb(level.evicted.copy())
        for bucket in self.buckets(res_ms):
            agg.absorb(bucket.copy())
        return agg

    def window(
        self, window_ms: float, now_ms: float, res_ms: float = RAW_RESOLUTION_MS
    ) -> Bucket:
        """Merged aggregate of the buckets inside ``[now - window, now]``."""
        agg = Bucket(t_ms=now_ms - window_ms)
        for bucket in self.buckets(res_ms):
            if bucket.t_ms >= now_ms - window_ms:
                agg.absorb(bucket.copy())
        return agg

    def window_percentile(
        self,
        p: float,
        window_ms: float,
        now_ms: float,
        res_ms: float = RAW_RESOLUTION_MS,
    ) -> float | None:
        """Estimated percentile over a window; ``None`` when no samples.

        Nearest-rank over per-bucket means weighted by sample count,
        clamped into the window's [min, max] — never invents a value
        outside what was actually observed.
        """
        if not 0 < p <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        points: list[tuple[float, float]] = []
        vmin: float | None = None
        vmax: float | None = None
        for bucket in self.buckets(res_ms):
            if bucket.t_ms < now_ms - window_ms or bucket.samples <= 0:
                continue
            points.append((bucket.mean, bucket.samples))
            if bucket.vmin is not None:
                vmin = bucket.vmin if vmin is None else min(vmin, bucket.vmin)
            if bucket.vmax is not None:
                vmax = bucket.vmax if vmax is None else max(vmax, bucket.vmax)
        if not points:
            return None
        points.sort()
        total = sum(weight for _, weight in points)
        rank = p / 100.0 * total
        seen = 0.0
        estimate = points[-1][0]
        for value, weight in points:
            seen += weight
            if seen >= rank:
                estimate = value
                break
        if vmin is not None:
            estimate = max(estimate, vmin)
        if vmax is not None:
            estimate = min(estimate, vmax)
        return estimate


class MetricsArchiver:
    """Snapshots a metrics registry into per-series rollup archives."""

    def __init__(
        self,
        registry,
        clock=None,
        interval_ms: float = 100.0,
        resolutions: tuple = (1_000.0, 10_000.0),
        raw_cap: int = 512,
        rollup_cap: int = 256,
    ):
        self.registry = registry
        self.clock = clock
        self.interval_ms = interval_ms
        self.resolutions = tuple(float(r) for r in resolutions)
        self.raw_cap = raw_cap
        self.rollup_cap = rollup_cap
        self.series: dict[str, SeriesArchive] = {}
        self.snapshots = 0
        self._last_snapshot_ms: float | None = None
        self._counter_last: dict[str, float] = {}
        self._gauge_last: dict[str, float] = {}
        self._hist_cursor: dict[str, int] = {}
        #: histogram name → threshold; observations beyond it count as
        #: ``bad`` in that series' buckets (registered by latency SLOs)
        self.thresholds: dict[str, float] = {}

    @property
    def now_ms(self) -> float:
        return self.clock.now_ms if self.clock is not None else 0.0

    def watch_threshold(self, metric: str, threshold: float) -> None:
        """Count ``metric`` observations beyond ``threshold`` as bad."""
        self.thresholds[metric] = float(threshold)

    # -- snapshotting -------------------------------------------------------------

    def _series(self, name: str, kind: str) -> SeriesArchive:
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = SeriesArchive(
                name, kind, self.resolutions, self.raw_cap, self.rollup_cap
            )
        return series

    def maybe_snapshot(self) -> bool:
        """Snapshot iff the cadence interval elapsed; True when it fired."""
        now = self.now_ms
        if (
            self._last_snapshot_ms is not None
            and now - self._last_snapshot_ms < self.interval_ms
        ):
            return False
        self.snapshot()
        return True

    def _dirty(self) -> bool:
        """Did any instrument move since the last snapshot?

        Metric activity is free on the simulated clock, so instruments
        can change without time passing — same-instant idempotence must
        yield to fresh data or a forced flush would drop it.
        """
        for name, counter in self.registry.counters.items():
            if float(counter.value) != self._counter_last.get(name, 0.0):
                return True
        for name, gauge in self.registry.gauges.items():
            if float(gauge.value) != self._gauge_last.get(name, 0.0):
                return True
        for name, hist in self.registry.histograms.items():
            if len(hist.values) != self._hist_cursor.get(name, 0):
                return True
        return False

    def snapshot(self) -> None:
        """Archive one bucket per live instrument, stamped at now."""
        now = self.now_ms
        if self._last_snapshot_ms == now and self.snapshots and not self._dirty():
            return  # same instant and nothing fresh: idempotent
        for name in sorted(self.registry.counters):
            value = float(self.registry.counters[name].value)
            delta = value - self._counter_last.get(name, 0.0)
            self._counter_last[name] = value
            self._series(name, "counter").record(
                Bucket(
                    t_ms=now, samples=1.0, total=delta,
                    vmin=delta, vmax=delta, last=value,
                )
            )
        for name in sorted(self.registry.gauges):
            value = float(self.registry.gauges[name].value)
            self._gauge_last[name] = value
            self._series(name, "gauge").record(
                Bucket(
                    t_ms=now, samples=1.0, total=value,
                    vmin=value, vmax=value, last=value,
                )
            )
        for name in sorted(self.registry.histograms):
            hist = self.registry.histograms[name]
            cursor = self._hist_cursor.get(name, 0)
            fresh = hist.values[cursor:]
            self._hist_cursor[name] = len(hist.values)
            threshold = self.thresholds.get(name)
            self._series(name, "histogram").record(
                Bucket(
                    t_ms=now,
                    samples=float(len(fresh)),
                    total=float(sum(fresh)),
                    vmin=min(fresh) if fresh else None,
                    vmax=max(fresh) if fresh else None,
                    last=float(len(hist.values)),
                    bad=(
                        float(sum(1 for v in fresh if v > threshold))
                        if threshold is not None
                        else 0.0
                    ),
                )
            )
        self._last_snapshot_ms = now
        self.snapshots += 1

    # -- queries -------------------------------------------------------------------

    def series_for(self, name: str) -> SeriesArchive | None:
        return self.series.get(name)

    def window(
        self, name: str, window_ms: float, res_ms: float = RAW_RESOLUTION_MS
    ) -> Bucket | None:
        """Windowed aggregate ending now for one series, or None."""
        series = self.series.get(name)
        if series is None:
            return None
        return series.window(window_ms, self.now_ms, res_ms)

    def history_rows(self) -> list[tuple]:
        """``monitor_history`` rows, every series × level × bucket."""
        rows: list[tuple] = []
        for name in sorted(self.series):
            series = self.series[name]
            for res in series.resolutions:
                for bucket in series.buckets(res):
                    rows.append(
                        (
                            float(bucket.t_ms),
                            name,
                            series.kind,
                            float(res),
                            int(bucket.samples),
                            float(bucket.total),
                            bucket.vmin,
                            bucket.vmax,
                            float(bucket.mean),
                            float(bucket.last),
                            int(bucket.bad),
                        )
                    )
        return rows

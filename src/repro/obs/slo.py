"""Declarative SLOs with error-budget burn-rate alerting.

"When Database Systems Meet the Grid" argues a federated DB *service*
survives on operational feedback, not heroics: someone has to notice
the error budget burning before the users do. An :class:`SLO` declares
an objective over the archived telemetry — either an **error-rate**
objective (fraction of queries that fail or degrade to partial) or a
**latency** objective (fraction of queries beyond a threshold,
counted per-observation by the archiver) — and the :class:`SLOEngine`
evaluates it over two windows in the classic fast/slow burn-rate
pattern: a fast window catching sharp regressions (pages) and a slow
window catching slow leaks (tickets).

Alert transitions append to an immutable log published as the
``monitor_alerts`` federated table, and :meth:`SLOEngine.health` folds
SLO status, circuit-breaker states (PR 4) and cache health (PR 3) into
one RED-style verdict — the ``dataaccess.health`` wire method.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.archive import MetricsArchiver


@dataclass(frozen=True)
class SLO:
    """One declarative objective over archived telemetry."""

    name: str
    kind: str = "errors"  # 'errors' | 'latency'
    #: fraction of events that must be good (0.99 → 1% error budget)
    objective: float = 0.99
    #: latency kind: the histogram watched and the good/bad threshold
    metric: str = "query_ms"
    threshold_ms: float = 1_000.0
    #: errors kind: counters summed into the attempted / bad totals
    total_metrics: tuple = ("queries", "query_errors")
    bad_metrics: tuple = ("query_errors", "partial_answers")
    fast_window_ms: float = 5_000.0
    slow_window_ms: float = 60_000.0
    #: burn-rate thresholds (1.0 = spending budget exactly on schedule)
    fast_burn_threshold: float = 14.4
    slow_burn_threshold: float = 6.0

    def __post_init__(self):
        if self.kind not in ("errors", "latency"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError(f"objective must be in (0, 1), got {self.objective}")

    @property
    def budget(self) -> float:
        """The tolerated bad fraction (1 - objective)."""
        return 1.0 - self.objective


def default_slos() -> tuple[SLO, ...]:
    """The stock federation objectives: availability + tail latency."""
    return (
        SLO(name="availability", kind="errors", objective=0.99),
        SLO(
            name="latency",
            kind="latency",
            objective=0.95,
            metric="query_ms",
            threshold_ms=1_000.0,
        ),
    )


@dataclass
class Alert:
    """One alert transition (fire or resolve), append-only."""

    ts_ms: float
    slo: str
    severity: str  # 'page' (fast burn) | 'ticket' (slow burn)
    state: str     # 'firing' | 'resolved'
    burn_rate: float
    window_ms: float
    message: str

    def as_row(self) -> tuple:
        """``monitor_alerts`` row shape."""
        return (
            float(self.ts_ms),
            self.slo,
            self.severity,
            self.state,
            float(self.burn_rate),
            float(self.window_ms),
            self.message,
        )

    def as_dict(self) -> dict:
        return {
            "ts_ms": float(self.ts_ms),
            "slo": self.slo,
            "severity": self.severity,
            "state": self.state,
            "burn_rate": float(self.burn_rate),
            "window_ms": float(self.window_ms),
            "message": self.message,
        }


@dataclass
class _BurnReading:
    """One window's burn computation (None burn == no data)."""

    burn: float | None
    bad: float
    total: float


class SLOEngine:
    """Evaluates SLOs over the archive; fires burn-rate alerts."""

    def __init__(
        self,
        archiver: MetricsArchiver,
        clock=None,
        slos: tuple | None = None,
        resilience=None,
        cache=None,
    ):
        self.archiver = archiver
        self.clock = clock
        self.slos: tuple[SLO, ...] = tuple(slos) if slos else default_slos()
        self.resilience = resilience
        self.cache = cache
        #: append-only alert transition log (→ monitor_alerts)
        self.alerts: list[Alert] = []
        self.evaluations = 0
        self._firing: dict[tuple[str, str], Alert] = {}
        for slo in self.slos:
            if slo.kind == "latency":
                archiver.watch_threshold(slo.metric, slo.threshold_ms)

    @property
    def now_ms(self) -> float:
        return self.clock.now_ms if self.clock is not None else 0.0

    # -- burn math ----------------------------------------------------------------

    def _counts(self, slo: SLO, window_ms: float) -> tuple[float, float]:
        """(total, bad) events inside the window for one SLO."""
        if slo.kind == "latency":
            window = self.archiver.window(slo.metric, window_ms)
            if window is None:
                return 0.0, 0.0
            return window.samples, window.bad
        total = bad = 0.0
        for name in slo.total_metrics:
            window = self.archiver.window(name, window_ms)
            if window is not None:
                total += window.total
        for name in slo.bad_metrics:
            window = self.archiver.window(name, window_ms)
            if window is not None:
                bad += window.total
        return total, bad

    def _burn(self, slo: SLO, window_ms: float) -> _BurnReading:
        total, bad = self._counts(slo, window_ms)
        if total <= 0:
            # 'no traffic' is NOT 'no errors': the empty-histogram guard
            return _BurnReading(None, bad, total)
        return _BurnReading((bad / total) / slo.budget, bad, total)

    # -- evaluation ---------------------------------------------------------------

    def evaluate(self) -> list[Alert]:
        """One evaluation pass; returns the alert transitions it caused."""
        self.evaluations += 1
        changed: list[Alert] = []
        for slo in self.slos:
            fast = self._burn(slo, slo.fast_window_ms)
            slow = self._burn(slo, slo.slow_window_ms)
            self._transition(
                slo, "page", fast, slo.fast_burn_threshold,
                slo.fast_window_ms, changed,
            )
            self._transition(
                slo, "ticket", slow, slo.slow_burn_threshold,
                slo.slow_window_ms, changed,
            )
        return changed

    def _transition(
        self,
        slo: SLO,
        severity: str,
        reading: _BurnReading,
        threshold: float,
        window_ms: float,
        changed: list,
    ) -> None:
        key = (slo.name, severity)
        firing = key in self._firing
        if reading.burn is not None and reading.burn >= threshold and not firing:
            alert = Alert(
                ts_ms=self.now_ms,
                slo=slo.name,
                severity=severity,
                state="firing",
                burn_rate=reading.burn,
                window_ms=window_ms,
                message=(
                    f"{slo.name}: burn {reading.burn:.1f}x budget over "
                    f"{window_ms:g} ms ({reading.bad:g}/{reading.total:g} bad)"
                ),
            )
            self._firing[key] = alert
            self.alerts.append(alert)
            changed.append(alert)
        elif firing and (reading.burn is None or reading.burn < threshold / 2.0):
            # hysteresis: resolve at half the firing threshold
            del self._firing[key]
            alert = Alert(
                ts_ms=self.now_ms,
                slo=slo.name,
                severity=severity,
                state="resolved",
                burn_rate=0.0 if reading.burn is None else reading.burn,
                window_ms=window_ms,
                message=f"{slo.name}: burn back under {threshold / 2.0:g}x",
            )
            self.alerts.append(alert)
            changed.append(alert)

    # -- views --------------------------------------------------------------------

    def firing(self) -> list[Alert]:
        """Currently firing alerts, pages first."""
        return sorted(
            self._firing.values(), key=lambda a: (a.severity != "page", a.slo)
        )

    def alert_rows(self) -> list[tuple]:
        """``monitor_alerts`` rows: the full transition log."""
        return [alert.as_row() for alert in self.alerts]

    def status(self) -> dict:
        """Per-SLO burn status (wire-safe)."""
        out: dict = {}
        for slo in self.slos:
            fast = self._burn(slo, slo.fast_window_ms)
            slow = self._burn(slo, slo.slow_window_ms)
            if fast.burn is None and slow.burn is None:
                state = "no_data"
            elif (slo.name, "page") in self._firing:
                state = "fast_burn"
            elif (slo.name, "ticket") in self._firing:
                state = "slow_burn"
            else:
                state = "ok"
            out[slo.name] = {
                "kind": slo.kind,
                "objective": slo.objective,
                "state": state,
                "fast_burn": fast.burn,
                "slow_burn": slow.burn,
                "bad": slow.bad,
                "total": slow.total,
            }
        return out

    def health(self) -> dict:
        """The RED-style verdict: Rate, Errors, Duration + components.

        ``verdict`` is ``ok`` / ``degraded`` / ``critical``: critical
        when any page-severity alert is firing, degraded on ticket
        alerts or open circuit breakers.
        """
        now = self.now_ms
        window_ms = max(slo.fast_window_ms for slo in self.slos)
        queries = self.archiver.window("queries", window_ms)
        errors = self.archiver.window("query_errors", window_ms)
        partials = self.archiver.window("partial_answers", window_ms)
        attempted = (queries.total if queries else 0.0) + (
            errors.total if errors else 0.0
        )
        bad = (errors.total if errors else 0.0) + (
            partials.total if partials else 0.0
        )
        series = self.archiver.series_for("query_ms")
        p99 = (
            series.window_percentile(99, window_ms, now) if series else None
        )

        verdict = "ok"
        firing = self.firing()
        if any(a.severity == "ticket" for a in firing):
            verdict = "degraded"
        breakers = {"total": 0, "open": 0, "half_open": 0}
        if self.resilience is not None:
            for breaker in self.resilience.breakers():
                breakers["total"] += 1
                if breaker.state == "open":
                    breakers["open"] += 1
                elif breaker.state == "half_open":
                    breakers["half_open"] += 1
            if breakers["open"]:
                verdict = "degraded"
        if any(a.severity == "page" for a in firing):
            verdict = "critical"

        out = {
            "observed": True,
            "verdict": verdict,
            "window_ms": float(window_ms),
            "rate_qps": round(attempted / (window_ms / 1000.0), 6),
            "error_fraction": (
                round(bad / attempted, 6) if attempted > 0 else None
            ),
            "p99_ms": None if p99 is None else round(p99, 3),
            "slos": self.status(),
            "alerts_firing": [a.as_dict() for a in firing],
            "alerts_total": len(self.alerts),
            "breakers": breakers,
        }
        if self.cache is not None:
            stats = self.cache.stats()
            out["cache"] = {
                "plan_hit_rate": stats["plan"]["hit_rate"],
                "sub_hit_rate": stats["sub"]["hit_rate"],
                "remote_hit_rate": stats["remote"]["hit_rate"],
            }
        return out

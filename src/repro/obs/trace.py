"""Span-based query-lifecycle tracing on the virtual clock.

A :class:`Tracer` lives inside one JClarens server and stamps every
span from the server's :class:`~repro.net.simclock.SimClock`, so traces
carry *simulated* wall-time — the same milliseconds the paper's
benchmarks report. Spans nest through a context-manager stack
(``with tracer.span("decompose"): ...``), and trace/parent ids travel
across Clarens hops: the origin server sends ``{trace_id, parent_id}``
with a forwarded sub-query, the remote server *adopts* that context,
and its spans come back piggybacked on the response and are imported
into the origin's tracer — one federated query, one span tree.

Sibling sub-query spans executed by concurrent remote servers overlap
in simulated time (the clock forks per branch and joins at the max),
which is exactly the semantics a real distributed trace would show.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field


class _NoopSpan:
    """Allocation-free stand-in used when tracing is switched off.

    A single module-level instance (:data:`NOOP_SPAN`) is reused for
    every would-be span, so un-observed hot paths allocate no
    instrumentation objects at all.
    """

    __slots__ = ()

    trace_id = None
    span_id = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key, value) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


@dataclass
class Span:
    """One timed stage of a query's life, in simulated milliseconds."""

    trace_id: str
    span_id: str
    parent_id: str | None
    stage: str
    server: str | None = None
    start_ms: float = 0.0
    end_ms: float | None = None
    error: str | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration_ms(self) -> float:
        """Span length; zero while the span is still open."""
        if self.end_ms is None:
            return 0.0
        return self.end_ms - self.start_ms

    def set(self, key: str, value) -> "Span":
        """Attach one wire-safe attribute; chainable."""
        self.attrs[key] = value
        return self

    # -- context manager -------------------------------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None and self.error is None:
            self.error = f"{exc_type.__name__}: {exc}"
        tracer = self.__dict__.pop("_tracer", None)
        if tracer is not None:
            tracer._finish(self)
        return False

    # -- wire form -------------------------------------------------------------

    def as_dict(self) -> dict:
        """Wire-safe struct (survives the XML-RPC codec)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id or "",
            "stage": self.stage,
            "server": self.server or "",
            "start_ms": float(self.start_ms),
            "end_ms": float(self.end_ms if self.end_ms is not None else self.start_ms),
            "error": self.error or "",
            "attrs": dict(self.attrs),
        }

    @staticmethod
    def from_dict(data: dict) -> "Span":
        """Rebuild a span from its wire form."""
        return Span(
            trace_id=data["trace_id"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id") or None,
            stage=data["stage"],
            server=data.get("server") or None,
            start_ms=float(data.get("start_ms", 0.0)),
            end_ms=float(data.get("end_ms", 0.0)),
            error=data.get("error") or None,
            attrs=dict(data.get("attrs") or {}),
        )


@dataclass
class QueryRecord:
    """One row of the R-GMA-style ``monitor_queries`` table."""

    trace_id: str
    server: str
    sql: str
    distributed: bool
    row_count: int
    duration_ms: float
    servers: int
    status: str  # 'ok', 'partial' or 'error: <type>'
    #: simclock instant the query finished (the row's ``ts_ms``)
    end_ms: float = 0.0


class Tracer:
    """Deterministic span factory stamped from one server's SimClock."""

    def __init__(self, clock=None, server: str | None = None):
        self.clock = clock
        self.server = server
        #: finished spans, in finish order (includes imported remote spans)
        self.spans: list[Span] = []
        #: one record per query the owning service executed
        self.queries: list[QueryRecord] = []
        self.last_trace_id: str | None = None
        self._stack: list[Span] = []
        self._adopted: list[tuple[str, str]] = []
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)

    # -- clock ------------------------------------------------------------------

    @property
    def now_ms(self) -> float:
        return self.clock.now_ms if self.clock is not None else 0.0

    # -- span lifecycle ---------------------------------------------------------

    @property
    def active(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def _context(self) -> tuple[str, str | None]:
        parent = self.active
        if parent is not None:
            return parent.trace_id, parent.span_id
        if self._adopted:
            return self._adopted[-1]
        prefix = self.server or "local"
        return f"{prefix}-t{next(self._trace_ids)}", None

    def span(self, stage: str, **attrs) -> Span:
        """Open a child span of the current context (a context manager)."""
        trace_id, parent_id = self._context()
        span = Span(
            trace_id=trace_id,
            span_id=f"{self.server or 'local'}-s{next(self._span_ids)}",
            parent_id=parent_id,
            stage=stage,
            server=self.server,
            start_ms=self.now_ms,
            attrs=dict(attrs),
        )
        span.__dict__["_tracer"] = self
        self._stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        span.end_ms = self.now_ms
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # defensive; should not happen
            self._stack.remove(span)
        self.spans.append(span)
        if span.parent_id is None:
            self.last_trace_id = span.trace_id

    def record(self, stage: str, start_ms: float, end_ms: float, **attrs) -> Span | None:
        """Register an already-completed span (e.g. one network transfer).

        Only recorded while some span is open — an isolated transfer with
        no query in flight is not part of any trace.
        """
        trace_id, parent_id = self._context()
        if parent_id is None and not self._adopted:
            return None
        span = Span(
            trace_id=trace_id,
            span_id=f"{self.server or 'local'}-s{next(self._span_ids)}",
            parent_id=parent_id,
            stage=stage,
            server=self.server,
            start_ms=start_ms,
            end_ms=end_ms,
            attrs=dict(attrs),
        )
        self.spans.append(span)
        return span

    # -- cross-server propagation ----------------------------------------------

    def adopt(self, trace_id: str, parent_id: str) -> None:
        """Enter a remote trace context: new root spans parent under it."""
        self._adopted.append((trace_id, parent_id))

    def release(self) -> None:
        """Leave the innermost adopted context."""
        if self._adopted:
            self._adopted.pop()

    def import_spans(self, dicts: list[dict]) -> list[Span]:
        """Merge spans a remote server returned into this tracer."""
        imported = [Span.from_dict(d) for d in dicts]
        self.spans.extend(imported)
        return imported

    # -- queries ----------------------------------------------------------------

    def spans_for(self, trace_id: str) -> list[Span]:
        """Every finished span of one trace."""
        return [s for s in self.spans if s.trace_id == trace_id]

    def trace_ids(self) -> list[str]:
        """Distinct trace ids, in first-seen order."""
        seen: dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.trace_id)
        return list(seen)


def format_span_tree(spans: list[Span]) -> list[str]:
    """Render one trace's spans as an indented tree of text lines."""
    ids = {s.span_id for s in spans}
    children: dict[str | None, list[Span]] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in ids else None
        children.setdefault(parent, []).append(span)
    for bucket in children.values():
        bucket.sort(key=lambda s: (s.start_ms, s.span_id))

    lines: list[str] = []

    def describe(span: Span) -> str:
        bits = [f"{span.stage} [{span.server or '?'}]"]
        bits.append(f"{span.start_ms:.1f}..{(span.end_ms or span.start_ms):.1f}")
        bits.append(f"({span.duration_ms:.1f} ms)")
        for key in sorted(span.attrs):
            value = span.attrs[key]
            if key == "sql":
                value = str(value)[:60]
            bits.append(f"{key}={value}")
        if span.error:
            bits.append(f"error={span.error}")
        return " ".join(bits)

    def walk(span: Span, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(describe(span))
            child_prefix = ""
        else:
            lines.append(f"{prefix}{'└─ ' if is_last else '├─ '}{describe(span)}")
            child_prefix = prefix + ("   " if is_last else "│  ")
        kids = children.get(span.span_id, [])
        for i, kid in enumerate(kids):
            walk(kid, child_prefix, i == len(kids) - 1, False)

    roots = children.get(None, [])
    for i, root in enumerate(roots):
        walk(root, "", i == len(roots) - 1, True)
    return lines

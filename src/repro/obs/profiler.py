"""EXPLAIN-ANALYZE for federated queries: span trees → operator costs.

PR 2's tracer captures *what happened* to a query as a span tree; this
module folds that tree into the per-operator cost model a DBA expects
from ``EXPLAIN ANALYZE``: for every stage of the pipeline (parse, lint,
plan-cache, decompose, RLS resolve, connect, per-backend execute,
transfer, merge) the **cumulative** time (the span's wall interval) and
the **self** time (the part of the query's wall clock attributable to
that stage and nothing deeper).

Self-time is computed by a sweep over the root span's interval: each
elementary sub-interval is attributed to the deepest span(s) covering
it. Parallel sibling branches (the simclock forks per backend and joins
at the max, so sibling sub-query spans legitimately *overlap* in
simulated time) split the overlapped instants equally — which keeps the
invariant tests and the wire method rely on: **the self-times of a
query's operators sum exactly to its traced latency**.

A :class:`QueryProfiler` retains the top-N slowest profiles, aggregates
by query shape (normalized SQL) and by backend (database@host), and
exports folded-stack lines (``query;decompose 12.4``) ready for any
flame-graph renderer.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class OperatorCost:
    """One pipeline stage's cost inside one query (or one aggregate)."""

    stage: str
    server: str
    calls: int = 0
    self_ms: float = 0.0
    cum_ms: float = 0.0

    def as_dict(self) -> dict:
        """Wire-safe struct (survives the XML-RPC codec)."""
        return {
            "stage": self.stage,
            "server": self.server,
            "calls": int(self.calls),
            "self_ms": round(float(self.self_ms), 6),
            "cum_ms": round(float(self.cum_ms), 6),
        }


@dataclass
class QueryProfile:
    """The per-operator cost breakdown of one completed query."""

    trace_id: str
    shape: str
    server: str
    total_ms: float
    ts_ms: float
    operators: list[OperatorCost] = field(default_factory=list)
    #: aggregated (stack-path, self_ms) pairs — flame-graph input
    folded: list[tuple[str, float]] = field(default_factory=list)

    @property
    def self_total_ms(self) -> float:
        """Sum of operator self-times; equals ``total_ms`` by construction."""
        return sum(op.self_ms for op in self.operators)

    def operator(self, stage: str) -> OperatorCost | None:
        """The first operator row for ``stage`` (any server), if present."""
        for op in self.operators:
            if op.stage == stage:
                return op
        return None

    def folded_lines(self) -> list[str]:
        """Folded-stack text lines (``a;b;c <self_ms>``), flame-graph ready."""
        return [f"{path} {self_ms:.3f}" for path, self_ms in self.folded]

    def as_dict(self) -> dict:
        """Wire-safe struct for the ``dataaccess.profile`` method."""
        return {
            "trace_id": self.trace_id,
            "shape": self.shape,
            "server": self.server,
            "total_ms": round(float(self.total_ms), 6),
            "self_total_ms": round(float(self.self_total_ms), 6),
            "ts_ms": float(self.ts_ms),
            "operators": [op.as_dict() for op in self.operators],
            "folded": self.folded_lines(),
        }


@dataclass
class ShapeStats:
    """Aggregate cost of every profiled query sharing one SQL shape."""

    shape: str
    count: int = 0
    total_ms: float = 0.0
    max_ms: float = 0.0
    self_by_stage: dict = field(default_factory=dict)

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "shape": self.shape,
            "count": int(self.count),
            "total_ms": round(self.total_ms, 6),
            "mean_ms": round(self.mean_ms, 6),
            "max_ms": round(self.max_ms, 6),
            "self_by_stage": {
                k: round(v, 6) for k, v in sorted(self.self_by_stage.items())
            },
        }


@dataclass
class BackendStats:
    """Aggregate sub-query cost attributed to one database/peer."""

    backend: str
    calls: int = 0
    busy_ms: float = 0.0
    rows: int = 0

    def as_dict(self) -> dict:
        return {
            "backend": self.backend,
            "calls": int(self.calls),
            "busy_ms": round(self.busy_ms, 6),
            "rows": int(self.rows),
        }


def _self_times(root, spans) -> dict[str, float]:
    """Per-span self wall-time; conserving: values sum to root duration.

    Every span is clamped into the root's interval; each elementary
    interval of the sweep is charged to the deepest covering span(s),
    split equally when parallel siblings overlap.
    """
    root_start = root.start_ms
    root_end = root.end_ms if root.end_ms is not None else root.start_ms
    clamped: dict[str, tuple[float, float]] = {}
    for span in spans:
        end = span.end_ms if span.end_ms is not None else span.start_ms
        lo = min(max(span.start_ms, root_start), root_end)
        hi = min(max(end, root_start), root_end)
        clamped[span.span_id] = (lo, hi)

    ids = {s.span_id for s in spans}
    children: dict[str, list] = {}
    for span in spans:
        if span.parent_id in ids and span.span_id != root.span_id:
            children.setdefault(span.parent_id, []).append(span)

    bounds = sorted({b for pair in clamped.values() for b in pair})
    self_ms = {s.span_id: 0.0 for s in spans}
    for t0, t1 in zip(bounds, bounds[1:]):
        if t1 <= t0:
            continue
        cover = [
            s for s in spans
            if clamped[s.span_id][0] <= t0 and clamped[s.span_id][1] >= t1
        ]
        if not cover:
            continue
        covering = {s.span_id for s in cover}
        deepest = [
            s for s in cover
            if not any(c.span_id in covering for c in children.get(s.span_id, []))
        ]
        share = (t1 - t0) / len(deepest)
        for s in deepest:
            self_ms[s.span_id] += share
    return self_ms


def _stack_path(span, by_id: dict) -> str:
    """The ``root;...;stage`` path of one span (folded-stack form)."""
    path = [span.stage]
    seen = {span.span_id}
    parent = by_id.get(span.parent_id)
    while parent is not None and parent.span_id not in seen:
        path.append(parent.stage)
        seen.add(parent.span_id)
        parent = by_id.get(parent.parent_id)
    return ";".join(reversed(path))


class QueryProfiler:
    """Profiles completed span trees; retains the slowest, aggregates all."""

    def __init__(self, clock=None, top_n: int = 20, max_shapes: int = 256):
        self.clock = clock
        self.top_n = top_n
        self.max_shapes = max_shapes
        #: top-N slowest profiles, sorted slowest-first
        self.slowest: list[QueryProfile] = []
        #: most recently recorded profile
        self.last: QueryProfile | None = None
        self.shapes: dict[str, ShapeStats] = {}
        self.backends: dict[str, BackendStats] = {}
        self.profiled = 0
        self._by_trace: dict[str, QueryProfile] = {}

    @property
    def now_ms(self) -> float:
        return self.clock.now_ms if self.clock is not None else 0.0

    # -- recording ---------------------------------------------------------------

    def record(self, root, spans, shape: str) -> QueryProfile:
        """Fold one finished trace (root + its spans) into a profile."""
        if root not in spans:
            spans = [root, *spans]
        self_ms = _self_times(root, spans)
        by_id = {s.span_id: s for s in spans}

        operators: dict[tuple[str, str], OperatorCost] = {}
        folded: dict[str, float] = {}
        for span in spans:
            server = span.server or "?"
            key = (span.stage, server)
            op = operators.get(key)
            if op is None:
                op = operators[key] = OperatorCost(stage=span.stage, server=server)
            end = span.end_ms if span.end_ms is not None else span.start_ms
            op.calls += 1
            op.self_ms += self_ms[span.span_id]
            op.cum_ms += end - span.start_ms
            path = _stack_path(span, by_id)
            folded[path] = folded.get(path, 0.0) + self_ms[span.span_id]
            if span.stage == "subquery":
                backend = (
                    f"{span.attrs.get('database', '?')}"
                    f"@{span.attrs.get('host', server)}"
                )
                agg = self.backends.get(backend)
                if agg is None:
                    agg = self.backends[backend] = BackendStats(backend)
                agg.calls += 1
                agg.busy_ms += end - span.start_ms
                agg.rows += int(span.attrs.get("rows") or 0)

        root_end = root.end_ms if root.end_ms is not None else root.start_ms
        profile = QueryProfile(
            trace_id=root.trace_id,
            shape=shape,
            server=root.server or "?",
            total_ms=root_end - root.start_ms,
            ts_ms=self.now_ms,
            operators=sorted(
                operators.values(), key=lambda op: (-op.self_ms, op.stage, op.server)
            ),
            folded=sorted(folded.items()),
        )
        self._retain(profile)
        self._aggregate_shape(profile)
        self.profiled += 1
        return profile

    def _retain(self, profile: QueryProfile) -> None:
        self.last = profile
        self.slowest.append(profile)
        self.slowest.sort(key=lambda p: -p.total_ms)
        del self.slowest[self.top_n :]
        self._by_trace = {p.trace_id: p for p in self.slowest}
        self._by_trace[profile.trace_id] = profile

    def _aggregate_shape(self, profile: QueryProfile) -> None:
        stats = self.shapes.get(profile.shape)
        if stats is None:
            if len(self.shapes) >= self.max_shapes:
                return  # cardinality guard: never grow without bound
            stats = self.shapes[profile.shape] = ShapeStats(profile.shape)
        stats.count += 1
        stats.total_ms += profile.total_ms
        stats.max_ms = max(stats.max_ms, profile.total_ms)
        for op in profile.operators:
            stats.self_by_stage[op.stage] = (
                stats.self_by_stage.get(op.stage, 0.0) + op.self_ms
            )

    # -- views --------------------------------------------------------------------

    def get(self, trace_id: str | None = None) -> QueryProfile | None:
        """A retained profile by trace id; the most recent when omitted."""
        if trace_id:
            return self._by_trace.get(trace_id)
        return self.last

    def shape_stats(self) -> list[ShapeStats]:
        """Per-shape aggregates, slowest mean first."""
        return sorted(self.shapes.values(), key=lambda s: -s.mean_ms)

    def backend_stats(self) -> list[BackendStats]:
        """Per-backend aggregates, busiest first."""
        return sorted(self.backends.values(), key=lambda b: -b.busy_ms)

    def profile_rows(self) -> list[tuple]:
        """``monitor_profile`` rows: one per operator per retained profile."""
        rows: list[tuple] = []
        for profile in self.slowest:
            for op in profile.operators:
                rows.append(
                    (
                        float(profile.ts_ms),
                        profile.trace_id,
                        profile.shape[:500],
                        profile.server,
                        op.stage,
                        op.server,
                        int(op.calls),
                        float(op.self_ms),
                        float(op.cum_ms),
                        float(profile.total_ms),
                    )
                )
        return rows

"""Data warehouse and the streaming ETL process (§4.2, §5.1).

The warehouse is an Oracle instance at Tier-0 holding a denormalized
star schema. The ETL pipeline reproduces the paper's measured process
faithfully, including its admitted bottleneck: every transfer stages
rows through a temporary file — extraction (source query + transform +
temp-file write) and loading (temp-file read + per-row INSERT streaming
into the target) are separately timed, which is exactly what Figures 4
and 5 plot. ``run_direct`` implements the paper's stated future fix
(loading the warehouse directly, no staging file) for the ablation
bench.
"""

from repro.warehouse.etl import (
    ETLJob,
    ETLPipeline,
    ETLReport,
    StagingFile,
    VerificationReport,
)
from repro.warehouse.schema import (
    create_warehouse_schema,
    create_warehouse_views,
    WAREHOUSE_VIEWS,
)
from repro.warehouse.warehouse import Warehouse

__all__ = [
    "ETLJob",
    "ETLPipeline",
    "ETLReport",
    "StagingFile",
    "VerificationReport",
    "WAREHOUSE_VIEWS",
    "Warehouse",
    "create_warehouse_schema",
    "create_warehouse_views",
]

"""The warehouse's denormalized star schema and its analysis views.

The normalized sources store ntuple values in an EAV table (one row per
event × variable); the warehouse pivots them into a wide fact table —
one column per ntuple variable — surrounded by run/detector dimensions.
Read-only views over the integrated data (§4.2) are what get
materialized into the data marts.
"""

from __future__ import annotations

from repro.engine.database import Database


def var_columns(nvar: int) -> list[str]:
    """The wide fact table's variable column names: var_0 .. var_{n-1}."""
    return [f"var_{i}" for i in range(nvar)]


def create_warehouse_schema(db: Database, nvar: int) -> None:
    """Create the star schema on the (Oracle) warehouse database."""
    vars_ddl = ", ".join(f"{c} DOUBLE" for c in var_columns(nvar))
    db.execute(
        "CREATE TABLE run_dim (run_id INTEGER PRIMARY KEY, "
        "detector VARCHAR(24) NOT NULL, start_time VARCHAR(32), n_events INTEGER)"
    )
    db.execute(
        "CREATE TABLE detector_dim (detector VARCHAR(24) PRIMARY KEY, "
        "subsystem VARCHAR(24), channels INTEGER)"
    )
    db.execute(
        f"CREATE TABLE event_fact (event_id BIGINT PRIMARY KEY, "
        f"run_id INTEGER NOT NULL, detector VARCHAR(24), {vars_ddl})"
    )
    db.execute(
        "CREATE TABLE calib_fact (calib_id INTEGER PRIMARY KEY, "
        "detector VARCHAR(24), channel INTEGER, gain DOUBLE, pedestal DOUBLE)"
    )
    db.execute(
        "CREATE TABLE condition_fact (condition_id INTEGER PRIMARY KEY, "
        "run_id INTEGER, name VARCHAR(40), value DOUBLE)"
    )


#: names of the analysis views replicated into marts, with a builder each
WAREHOUSE_VIEWS = (
    "v_event_wide",
    "v_run_summary",
    "v_calibration",
    "v_conditions",
)


def create_warehouse_views(db: Database, nvar: int, wide_vars: int | None = None) -> None:
    """Create read-only analysis views over the integrated data.

    ``wide_vars`` limits how many variable columns ``v_event_wide``
    carries (marts usually replicate a subset of the ntuple variables).
    """
    wide_vars = nvar if wide_vars is None else min(wide_vars, nvar)
    wide_cols = ", ".join(["event_id", "run_id", "detector"] + var_columns(wide_vars))
    db.execute(f"CREATE VIEW v_event_wide AS SELECT {wide_cols} FROM event_fact")
    db.execute(
        "CREATE VIEW v_run_summary AS SELECT run_id, COUNT(*) AS n_events, "
        "AVG(var_0) AS mean_var0, MIN(var_0) AS min_var0, MAX(var_0) AS max_var0 "
        "FROM event_fact GROUP BY run_id"
    )
    db.execute(
        "CREATE VIEW v_calibration AS SELECT detector, channel, gain, pedestal "
        "FROM calib_fact"
    )
    db.execute(
        "CREATE VIEW v_conditions AS SELECT run_id, name, value FROM condition_fact"
    )

"""The streaming Extraction-Transformation-Transportation-Loading process.

Phases (per the paper's Stage 1/2 measurement protocol):

* **extraction** — run the source query, stream rows out of the source
  (per-row stream cost), apply the denormalizing transform (per-row CPU),
  move the bytes over the LAN, and write them into a temporary staging
  file (disk bandwidth + stream open/close);
* **loading** — read the staging file back and stream the rows into the
  target database as individual INSERTs (per-row statement round-trip +
  engine insert cost), committing every ``commit_every`` rows.

Both phase durations are returned so benches can plot the two series of
Figures 4 and 5. ``ETLPipeline.run_direct`` skips the staging file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import ETLError
from repro.dialects import get_dialect
from repro.engine.database import Database
from repro.engine.storage import estimate_row_bytes
from repro.net import costs
from repro.net.network import Network
from repro.net.simclock import SimClock


@dataclass
class StagingFile:
    """The temporary file every transfer is staged through."""

    clock: SimClock
    rows: list[tuple] = field(default_factory=list)
    columns: list[str] = field(default_factory=list)
    nbytes: int = 0

    def write(self, columns: list[str], rows: list[tuple]) -> None:
        """Append rows, paying disk-write time at staging bandwidth."""
        if not self.columns:
            self.columns = list(columns)
        elif self.columns != list(columns):
            raise ETLError("staging file cannot mix row shapes")
        self.rows.extend(rows)
        added = sum(estimate_row_bytes(r) for r in rows)
        self.nbytes += added
        # serialize each row to the file's text format, then hit the disk
        self.clock.advance_ms(len(rows) * costs.STAGE_SERIALIZE_ROW_MS)
        self.clock.advance_ms(
            costs.transfer_ms(added, costs.DISK_WRITE_MBPS, 0.0)
        )

    def read_all(self) -> tuple[list[str], list[tuple]]:
        """Read the whole file back, paying disk-read + per-row parse time."""
        self.clock.advance_ms(
            costs.transfer_ms(self.nbytes, costs.DISK_READ_MBPS, 0.0)
        )
        self.clock.advance_ms(len(self.rows) * costs.STAGE_PARSE_ROW_MS)
        return list(self.columns), list(self.rows)


@dataclass
class ETLJob:
    """One table's worth of ETL work."""

    source: Database
    source_host: str
    query: str
    target_table: str
    #: optional denormalizing transform: (columns, rows) -> (columns, rows)
    transform: Callable[[list[str], list[tuple]], tuple[list[str], list[tuple]]] | None = None
    #: column names in the target table (defaults to transformed columns)
    target_columns: list[str] | None = None


@dataclass
class VerificationReport:
    """Outcome of a post-load verification pass."""

    job_table: str
    expected_rows: int
    target_rows: int
    checks: list[tuple[str, bool, str]]

    @property
    def ok(self) -> bool:
        return all(ok for _, ok, _ in self.checks)

    def failures(self) -> list[tuple[str, str]]:
        return [(name, detail) for name, ok, detail in self.checks if not ok]


@dataclass
class ETLReport:
    """Per-job phase timings; the unit Figures 4 and 5 plot."""

    job_table: str
    rows: int
    staged_bytes: int
    extraction_ms: float
    loading_ms: float

    @property
    def staged_kb(self) -> float:
        return self.staged_bytes / 1000.0

    @property
    def extraction_s(self) -> float:
        return self.extraction_ms / 1000.0

    @property
    def loading_s(self) -> float:
        return self.loading_ms / 1000.0


class ETLPipeline:
    """Streams data from source databases into a target database."""

    def __init__(
        self,
        network: Network,
        clock: SimClock,
        target: Database,
        target_host: str,
        commit_every: int = costs.WAREHOUSE_COMMIT_EVERY,
        autocommit: bool = False,
        tracer=None,
        metrics=None,
        epochs=None,
    ):
        self.network = network
        self.clock = clock
        self.target = target
        self.target_host = target_host
        self.commit_every = commit_every
        self.autocommit = autocommit
        self.tracer = tracer
        self.metrics = metrics
        #: optional :class:`repro.cache.EpochRegistry` — every load that
        #: lands rows bumps the target database's epoch, so federated
        #: query caches drop that database's entries (data-side
        #: invalidation; the §4.9 schema fingerprint ignores row counts)
        self.epochs = epochs
        self.reports: list[ETLReport] = []
        #: target table -> highest watermark value shipped so far
        self.watermarks: dict[str, object] = {}
        self._last_loaded_columns: list[str] = []
        self._last_loaded_rows: list[tuple] = []

    # -- observability plumbing ----------------------------------------------------

    def _span(self, stage: str, **attrs):
        if self.tracer is None:
            from repro.obs.trace import NOOP_SPAN

            return NOOP_SPAN
        return self.tracer.span(stage, **attrs)

    def _count(self, name: str, n: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(n)

    # -- phase 1: extraction -------------------------------------------------------

    def _extract(self, job: ETLJob, staging: StagingFile | None):
        """Query + stream out + transform (+ stage). Returns (cols, rows)."""
        with self._span("etl_extract", table=job.target_table) as span:
            columns, rows = self._extract_inner(job, staging)
            span.set("rows", len(rows))
        if staging is not None:
            self._count("etl.rows_staged", len(rows))
            self._count("etl.bytes_staged", staging.nbytes)
        return columns, rows

    def _extract_inner(self, job: ETLJob, staging: StagingFile | None):
        # Opening the stream for the extraction SQL statement (§5.1 counts
        # connect/open/close time into the transfer time).
        self.clock.advance_ms(costs.STREAM_OPEN_CLOSE_MS)
        result = job.source.execute(job.query)
        dialect = get_dialect(job.source.vendor)
        # The source streams rows out one by one.
        self.clock.advance_ms(len(result.rows) * costs.EXTRACT_ROW_MS)
        self.clock.advance_ms(
            result.stats.rows_examined * dialect.cost.per_row_scan_us / 1000.0
        )
        columns, rows = result.columns, result.rows
        if job.transform is not None:
            columns, rows = job.transform(columns, rows)
            self.clock.advance_ms(len(rows) * costs.TRANSFORM_ROW_MS)
        # Ship the transformed stream to the ETL host (co-located with the
        # target) and stage it.
        nbytes = sum(estimate_row_bytes(r) for r in rows) + 256
        self.network.transfer(job.source_host, self.target_host, nbytes, self.clock)
        if staging is not None:
            self.clock.advance_ms(costs.STREAM_OPEN_CLOSE_MS)
            staging.write(columns, rows)
        return columns, rows

    # -- phase 2: loading -----------------------------------------------------------

    def _load(self, columns: list[str], rows: list[tuple], job: ETLJob) -> None:
        """Stream rows into the target as per-row INSERTs."""
        with self._span("etl_load", table=job.target_table) as span:
            self._load_inner(columns, rows, job)
            span.set("rows", len(rows))
        self._count("etl.rows_loaded", len(rows))
        if self.epochs is not None and rows:
            self.epochs.bump(self.target.name)

    def _load_inner(self, columns: list[str], rows: list[tuple], job: ETLJob) -> None:
        dialect = get_dialect(self.target.vendor)
        self.clock.advance_ms(costs.STREAM_OPEN_CLOSE_MS)
        target_columns = job.target_columns or columns
        storage = self.target.catalog.get_table(job.target_table)
        self._last_loaded_columns = list(columns)
        self._last_loaded_rows = list(rows)
        # One INSERT statement per row: driver marshalling + statement
        # round-trip to the target's listener + the engine's insert work;
        # autocommit (marts) additionally flushes the log every row.
        per_row = (
            costs.LOAD_MARSHAL_MS
            + costs.LOAD_RTT_MS
            + dialect.cost.per_statement_ms
            + dialect.cost.per_row_insert_ms
        )
        if self.autocommit:
            per_row += dialect.cost.commit_ms + costs.AUTOCOMMIT_FLUSH_MS
        pending = 0
        for row in rows:
            self.clock.advance_ms(per_row)
            storage.insert(list(row), list(target_columns))
            pending += 1
            if not self.autocommit and pending >= self.commit_every:
                self.clock.advance_ms(dialect.cost.commit_ms)
                pending = 0
        if pending and not self.autocommit:
            self.clock.advance_ms(dialect.cost.commit_ms)

    # -- public API --------------------------------------------------------------------

    def run(self, job: ETLJob) -> ETLReport:
        """Full staged pipeline: extract → temp file → load."""
        staging = StagingFile(self.clock)
        t0 = self.clock.now_ms
        self._extract(job, staging)
        extraction_ms = self.clock.now_ms - t0

        t1 = self.clock.now_ms
        columns, rows = staging.read_all()
        self._load(columns, rows, job)
        loading_ms = self.clock.now_ms - t1

        report = ETLReport(
            job_table=job.target_table,
            rows=len(rows),
            staged_bytes=staging.nbytes,
            extraction_ms=extraction_ms,
            loading_ms=loading_ms,
        )
        self.reports.append(report)
        return report

    # -- post-load verification -----------------------------------------------------------

    def verify(self, job: ETLJob) -> "VerificationReport":
        """Re-extract and confirm every expected row reached the target.

        Production ETL's trust-but-verify step: the source query (and
        transform) is re-run, and each resulting row must exist in the
        target table — catching lost rows, double-loads and coercion
        drift. Numeric totals are compared with a relative tolerance to
        allow cross-vendor float representation differences.
        """
        columns, rows = self._extract(job, staging=None)
        target_columns = job.target_columns or columns
        storage = self.target.catalog.get_table(job.target_table)
        positions = [storage.column_position(c) for c in target_columns]
        target_proj = {tuple(r[i] for i in positions) for r in storage.rows}

        checks: list[tuple[str, bool, str]] = []
        missing = [row for row in rows if tuple(row) not in target_proj]
        checks.append(
            (
                "row_presence",
                not missing,
                f"{len(missing)} of {len(rows)} expected rows missing"
                if missing
                else f"all {len(rows)} expected rows present",
            )
        )
        checks.append(
            (
                "row_count",
                storage.row_count >= len(rows),
                f"target has {storage.row_count} rows, expected at least {len(rows)}",
            )
        )
        expected_keys = {tuple(r) for r in rows}
        shipped_rows = [
            r for r in storage.rows if tuple(r[i] for i in positions) in expected_keys
        ]
        for idx, name in enumerate(columns):
            sample = next((r[idx] for r in rows if r[idx] is not None), None)
            if not isinstance(sample, (int, float)) or isinstance(sample, bool):
                continue
            expected_sum = sum(r[idx] for r in rows if r[idx] is not None)
            tpos = positions[idx]
            actual_sum = sum(
                r[tpos] for r in shipped_rows if r[tpos] is not None
            )
            ok = abs(actual_sum - expected_sum) <= 1e-9 * max(1.0, abs(expected_sum))
            checks.append(
                (
                    f"sum({name})",
                    ok,
                    f"expected {expected_sum!r}, target {actual_sum!r}",
                )
            )
        return VerificationReport(
            job_table=job.target_table,
            expected_rows=len(rows),
            target_rows=storage.row_count,
            checks=checks,
        )

    # -- incremental loads --------------------------------------------------------------

    def run_incremental(
        self,
        job: ETLJob,
        watermark: str,
        watermark_output: str | None = None,
        direct: bool = False,
    ) -> ETLReport:
        """Delta load: only source rows past the stored watermark.

        ``watermark`` is a (possibly qualified) column in the job's
        extraction query, e.g. ``e.event_id``; rows with values at or
        below the last seen maximum are skipped at the *source*. The
        new maximum is taken from ``watermark_output`` (default: the
        watermark's bare column name) in the transformed rows, so
        repeated calls ship only fresh data — production ETL's answer
        to re-streaming the whole source every night.
        """
        from repro.sql import ast as sql_ast
        from repro.sql.parser import parse_expression, parse_select

        output_col = watermark_output or watermark.split(".")[-1]
        last = self.watermarks.get(job.target_table)
        query = job.query
        if last is not None:
            select = parse_select(job.query)
            guard = sql_ast.BinaryOp(
                ">", parse_expression(watermark), sql_ast.Literal(last)
            )
            where = (
                guard
                if select.where is None
                else sql_ast.BinaryOp("AND", select.where, guard)
            )
            query = sql_ast.Select(
                items=select.items,
                from_=select.from_,
                joins=select.joins,
                where=where,
                group_by=select.group_by,
                having=select.having,
                order_by=select.order_by,
                limit=select.limit,
                offset=select.offset,
                distinct=select.distinct,
            ).unparse()
        delta_job = ETLJob(
            source=job.source,
            source_host=job.source_host,
            query=query,
            target_table=job.target_table,
            transform=job.transform,
            target_columns=job.target_columns,
        )
        report = self.run_direct(delta_job) if direct else self.run(delta_job)
        # advance the watermark from what actually arrived
        if report.rows:
            loaded = self._last_loaded_rows
            try:
                idx = [c.lower() for c in self._last_loaded_columns].index(
                    output_col.lower()
                )
            except ValueError:
                raise ETLError(
                    f"watermark column {output_col!r} is not in the loaded rows"
                ) from None
            values = [r[idx] for r in loaded if r[idx] is not None]
            if values:
                peak = max(values)
                if last is None or peak > last:
                    self.watermarks[job.target_table] = peak
        return report

    def run_direct(self, job: ETLJob) -> ETLReport:
        """The paper's future-work fix: no staging file, single pass."""
        t0 = self.clock.now_ms
        columns, rows = self._extract(job, staging=None)
        extraction_ms = self.clock.now_ms - t0
        t1 = self.clock.now_ms
        self._load(columns, rows, job)
        loading_ms = self.clock.now_ms - t1
        report = ETLReport(
            job_table=job.target_table,
            rows=len(rows),
            staged_bytes=sum(estimate_row_bytes(r) for r in rows),
            extraction_ms=extraction_ms,
            loading_ms=loading_ms,
        )
        self.reports.append(report)
        return report

"""The warehouse object: Oracle at Tier-0 plus its ETL plumbing."""

from __future__ import annotations

from repro.engine.database import Database
from repro.net.network import Network
from repro.net.simclock import SimClock
from repro.warehouse.etl import ETLJob, ETLPipeline, ETLReport
from repro.warehouse.schema import (
    create_warehouse_schema,
    create_warehouse_views,
)


class Warehouse:
    """The Tier-0 Oracle data warehouse with a denormalized star schema."""

    def __init__(
        self,
        network: Network,
        clock: SimClock,
        host: str = "tier0.cern.ch",
        name: str = "warehouse",
        nvar: int = 8,
        wide_vars: int | None = None,
        epochs=None,
    ):
        self.network = network
        self.clock = clock
        self.host = host
        self.nvar = nvar
        #: optional EpochRegistry shared with the federation's caches:
        #: warehouse loads invalidate cached queries over the warehouse
        self.epochs = epochs
        if not network.has_host(host):
            network.add_host(host, tier=0)
        self.db = Database(name, "oracle")
        create_warehouse_schema(self.db, nvar)
        create_warehouse_views(self.db, nvar, wide_vars)
        self.pipeline = ETLPipeline(network, clock, self.db, host, epochs=epochs)

    def load(self, job: ETLJob, direct: bool = False) -> ETLReport:
        """Run one ETL job into the warehouse (staged unless ``direct``)."""
        if direct:
            return self.pipeline.run_direct(job)
        return self.pipeline.run(job)

    def row_count(self, table: str) -> int:
        return self.db.catalog.get_table(table).row_count

"""SQL abstract syntax tree.

All nodes are frozen dataclasses with an ``unparse()`` that renders
canonical (vendor-neutral) SQL text. The federation layer relies on
``unparse`` to rewrite decomposed sub-queries, so round-tripping
``parse(unparse(node)) == node`` is a tested invariant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.types import SQLType, sql_repr

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for expression nodes."""

    def unparse(self) -> str:  # pragma: no cover - abstract
        """Render canonical SQL text; parse(unparse(e)) is a fixed point."""
        raise NotImplementedError


@dataclass(frozen=True)
class Literal(Expr):
    value: object

    def unparse(self) -> str:
        return sql_repr(self.value)


@dataclass(frozen=True)
class Param(Expr):
    """A positional ``?`` parameter, bound at execution time."""

    index: int

    def unparse(self) -> str:
        return "?"


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A possibly-qualified column reference ``table.column``."""

    column: str
    table: str | None = None

    def unparse(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``table.*`` in a select list or COUNT(*)."""

    table: str | None = None

    def unparse(self) -> str:
        return f"{self.table}.*" if self.table else "*"


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str
    left: Expr
    right: Expr

    def unparse(self) -> str:
        return f"({self.left.unparse()} {self.op} {self.right.unparse()})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # 'NOT' or '-'
    operand: Expr

    def unparse(self) -> str:
        if self.op == "NOT":
            return f"(NOT {self.operand.unparse()})"
        return f"({self.op}{self.operand.unparse()})"


@dataclass(frozen=True)
class FunctionCall(Expr):
    name: str
    args: tuple[Expr, ...]
    distinct: bool = False

    def unparse(self) -> str:
        inner = ", ".join(a.unparse() for a in self.args)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False

    def unparse(self) -> str:
        tail = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.unparse()} {tail})"


@dataclass(frozen=True)
class InList(Expr):
    operand: Expr
    items: tuple[Expr, ...]
    negated: bool = False

    def unparse(self) -> str:
        op = "NOT IN" if self.negated else "IN"
        inner = ", ".join(i.unparse() for i in self.items)
        return f"({self.operand.unparse()} {op} ({inner}))"


@dataclass(frozen=True)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def unparse(self) -> str:
        op = "NOT BETWEEN" if self.negated else "BETWEEN"
        return f"({self.operand.unparse()} {op} {self.low.unparse()} AND {self.high.unparse()})"


@dataclass(frozen=True)
class Like(Expr):
    operand: Expr
    pattern: Expr
    negated: bool = False

    def unparse(self) -> str:
        op = "NOT LIKE" if self.negated else "LIKE"
        return f"({self.operand.unparse()} {op} {self.pattern.unparse()})"


@dataclass(frozen=True)
class Case(Expr):
    whens: tuple[tuple[Expr, Expr], ...]
    else_: Expr | None = None

    def unparse(self) -> str:
        parts = ["CASE"]
        for cond, result in self.whens:
            parts.append(f"WHEN {cond.unparse()} THEN {result.unparse()}")
        if self.else_ is not None:
            parts.append(f"ELSE {self.else_.unparse()}")
        parts.append("END")
        return " ".join(parts)


@dataclass(frozen=True)
class Cast(Expr):
    operand: Expr
    target: SQLType

    def unparse(self) -> str:
        return f"CAST({self.operand.unparse()} AS {self.target})"


@dataclass(frozen=True)
class ScalarSubquery(Expr):
    """A parenthesized SELECT used as a scalar value (non-correlated)."""

    select: "Select"

    def unparse(self) -> str:
        return f"({self.select.unparse()})"


@dataclass(frozen=True)
class InSubquery(Expr):
    """``expr [NOT] IN (SELECT ...)`` (non-correlated)."""

    operand: Expr
    select: "Select"
    negated: bool = False

    def unparse(self) -> str:
        op = "NOT IN" if self.negated else "IN"
        return f"({self.operand.unparse()} {op} ({self.select.unparse()}))"


@dataclass(frozen=True)
class Exists(Expr):
    """``[NOT] EXISTS (SELECT ...)`` (non-correlated)."""

    select: "Select"
    negated: bool = False

    def unparse(self) -> str:
        op = "NOT EXISTS" if self.negated else "EXISTS"
        return f"({op} ({self.select.unparse()}))"


AGGREGATE_FUNCTIONS = frozenset(
    {"COUNT", "SUM", "AVG", "MIN", "MAX", "STDDEV", "VARIANCE"}
)


def contains_aggregate(expr: Expr) -> bool:
    """True if any node under ``expr`` is an aggregate function call."""
    if isinstance(expr, FunctionCall) and expr.name.upper() in AGGREGATE_FUNCTIONS:
        return True
    for child in _children(expr):
        if contains_aggregate(child):
            return True
    return False


def contains_subquery(expr: Expr) -> bool:
    """True if any node under ``expr`` embeds a subquery."""
    return any(
        isinstance(node, (ScalarSubquery, InSubquery, Exists)) for node in walk(expr)
    )


def _children(expr: Expr) -> tuple[Expr, ...]:
    if isinstance(expr, BinaryOp):
        return (expr.left, expr.right)
    if isinstance(expr, UnaryOp):
        return (expr.operand,)
    if isinstance(expr, FunctionCall):
        return expr.args
    if isinstance(expr, IsNull):
        return (expr.operand,)
    if isinstance(expr, InList):
        return (expr.operand, *expr.items)
    if isinstance(expr, Between):
        return (expr.operand, expr.low, expr.high)
    if isinstance(expr, Like):
        return (expr.operand, expr.pattern)
    if isinstance(expr, Case):
        out: list[Expr] = []
        for cond, result in expr.whens:
            out.extend((cond, result))
        if expr.else_ is not None:
            out.append(expr.else_)
        return tuple(out)
    if isinstance(expr, Cast):
        return (expr.operand,)
    if isinstance(expr, InSubquery):
        return (expr.operand,)
    return ()


def walk(expr: Expr):
    """Yield ``expr`` and every descendant, pre-order."""
    yield expr
    for child in _children(expr):
        yield from walk(child)


def column_refs(expr: Expr) -> list[ColumnRef]:
    """All column references in ``expr``, in source order."""
    return [node for node in walk(expr) if isinstance(node, ColumnRef)]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Statement:
    """Base class for statement nodes."""

    def unparse(self) -> str:  # pragma: no cover - abstract
        """Render canonical SQL text; parse(unparse(s)) is a fixed point."""
        raise NotImplementedError


@dataclass(frozen=True)
class TableRef:
    """A table in a FROM clause, with optional alias."""

    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        """The name this table is visible as inside the query."""
        return self.alias or self.name

    def unparse(self) -> str:
        return f"{self.name} AS {self.alias}" if self.alias else self.name


@dataclass(frozen=True)
class Join:
    kind: str  # 'INNER', 'LEFT', 'CROSS'
    table: TableRef
    on: Expr | None = None

    def unparse(self) -> str:
        head = f"{self.kind} JOIN {self.table.unparse()}"
        if self.on is not None:
            head += f" ON {self.on.unparse()}"
        return head


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: str | None = None

    def unparse(self) -> str:
        text = self.expr.unparse()
        return f"{text} AS {self.alias}" if self.alias else text

    def output_name(self, ordinal: int) -> str:
        """The column name this item produces in the result set."""
        if self.alias:
            return self.alias
        if isinstance(self.expr, ColumnRef):
            return self.expr.column
        return f"col{ordinal}"


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    ascending: bool = True

    def unparse(self) -> str:
        return f"{self.expr.unparse()} {'ASC' if self.ascending else 'DESC'}"


@dataclass(frozen=True)
class Select(Statement):
    items: tuple[SelectItem, ...]
    from_: tuple[TableRef, ...] = ()
    joins: tuple[Join, ...] = ()
    where: Expr | None = None
    group_by: tuple[Expr, ...] = ()
    having: Expr | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    offset: int | None = None
    distinct: bool = False

    def unparse(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(item.unparse() for item in self.items))
        if self.from_:
            parts.append("FROM")
            parts.append(", ".join(t.unparse() for t in self.from_))
        for join in self.joins:
            parts.append(join.unparse())
        if self.where is not None:
            parts.append(f"WHERE {self.where.unparse()}")
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(g.unparse() for g in self.group_by))
        if self.having is not None:
            parts.append(f"HAVING {self.having.unparse()}")
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(o.unparse() for o in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        if self.offset is not None:
            parts.append(f"OFFSET {self.offset}")
        return " ".join(parts)

    def referenced_tables(self) -> list[TableRef]:
        """Every table this query touches (FROM list plus joins)."""
        return list(self.from_) + [j.table for j in self.joins]


@dataclass(frozen=True)
class Union(Statement):
    """UNION [ALL] chain; trailing ORDER BY/LIMIT apply to the whole set."""

    selects: tuple[Select, ...]
    all: bool = False
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    offset: int | None = None

    def unparse(self) -> str:
        joiner = " UNION ALL " if self.all else " UNION "
        text = joiner.join(s.unparse() for s in self.selects)
        if self.order_by:
            text += " ORDER BY " + ", ".join(o.unparse() for o in self.order_by)
        if self.limit is not None:
            text += f" LIMIT {self.limit}"
        if self.offset is not None:
            text += f" OFFSET {self.offset}"
        return text


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type: SQLType
    not_null: bool = False
    primary_key: bool = False
    default: object = None
    has_default: bool = False

    def unparse(self) -> str:
        parts = [self.name, str(self.type)]
        if self.primary_key:
            parts.append("PRIMARY KEY")
        if self.not_null and not self.primary_key:
            parts.append("NOT NULL")
        if self.has_default:
            parts.append(f"DEFAULT {sql_repr(self.default)}")
        return " ".join(parts)


@dataclass(frozen=True)
class CreateTable(Statement):
    name: str
    columns: tuple[ColumnDef, ...]
    if_not_exists: bool = False

    def unparse(self) -> str:
        head = "CREATE TABLE "
        if self.if_not_exists:
            head += "IF NOT EXISTS "
        cols = ", ".join(c.unparse() for c in self.columns)
        return f"{head}{self.name} ({cols})"


@dataclass(frozen=True)
class CreateTableAs(Statement):
    """CREATE TABLE name AS SELECT ... — schema inferred from the result."""

    name: str
    select: Select
    if_not_exists: bool = False

    def unparse(self) -> str:
        head = "CREATE TABLE "
        if self.if_not_exists:
            head += "IF NOT EXISTS "
        return f"{head}{self.name} AS {self.select.unparse()}"


@dataclass(frozen=True)
class DropTable(Statement):
    name: str
    if_exists: bool = False

    def unparse(self) -> str:
        mid = "IF EXISTS " if self.if_exists else ""
        return f"DROP TABLE {mid}{self.name}"


@dataclass(frozen=True)
class CreateView(Statement):
    name: str
    select: Select

    def unparse(self) -> str:
        return f"CREATE VIEW {self.name} AS {self.select.unparse()}"


@dataclass(frozen=True)
class DropView(Statement):
    name: str
    if_exists: bool = False

    def unparse(self) -> str:
        mid = "IF EXISTS " if self.if_exists else ""
        return f"DROP VIEW {mid}{self.name}"


@dataclass(frozen=True)
class CreateIndex(Statement):
    name: str
    table: str
    columns: tuple[str, ...]
    unique: bool = False

    def unparse(self) -> str:
        kind = "UNIQUE INDEX" if self.unique else "INDEX"
        return f"CREATE {kind} {self.name} ON {self.table} ({', '.join(self.columns)})"


@dataclass(frozen=True)
class Insert(Statement):
    table: str
    columns: tuple[str, ...] = ()
    rows: tuple[tuple[Expr, ...], ...] = ()
    select: Select | None = None

    def unparse(self) -> str:
        head = f"INSERT INTO {self.table}"
        if self.columns:
            head += f" ({', '.join(self.columns)})"
        if self.select is not None:
            return f"{head} {self.select.unparse()}"
        rows = ", ".join(
            "(" + ", ".join(v.unparse() for v in row) + ")" for row in self.rows
        )
        return f"{head} VALUES {rows}"


@dataclass(frozen=True)
class Update(Statement):
    table: str
    assignments: tuple[tuple[str, Expr], ...]
    where: Expr | None = None

    def unparse(self) -> str:
        sets = ", ".join(f"{c} = {e.unparse()}" for c, e in self.assignments)
        text = f"UPDATE {self.table} SET {sets}"
        if self.where is not None:
            text += f" WHERE {self.where.unparse()}"
        return text


@dataclass(frozen=True)
class Delete(Statement):
    table: str
    where: Expr | None = None

    def unparse(self) -> str:
        text = f"DELETE FROM {self.table}"
        if self.where is not None:
            text += f" WHERE {self.where.unparse()}"
        return text


@dataclass(frozen=True)
class AlterTable(Statement):
    """ALTER TABLE ... ADD COLUMN / DROP COLUMN / RENAME TO."""

    table: str
    action: str  # 'ADD', 'DROP', 'RENAME'
    column: ColumnDef | None = None
    column_name: str | None = None
    new_name: str | None = None

    def unparse(self) -> str:
        if self.action == "ADD":
            assert self.column is not None
            return f"ALTER TABLE {self.table} ADD COLUMN {self.column.unparse()}"
        if self.action == "DROP":
            return f"ALTER TABLE {self.table} DROP COLUMN {self.column_name}"
        return f"ALTER TABLE {self.table} RENAME TO {self.new_name}"

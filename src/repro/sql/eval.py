"""Expression compilation and evaluation.

Expressions are compiled *once* against a :class:`RowSchema` into plain
Python closures that take a row tuple — column references resolve to a
tuple index at compile time, not per row (hoisting the lookup out of the
inner loop, per the HPC guides). SQL three-valued logic is implemented:
``None`` propagates through comparisons and arithmetic, and AND/OR follow
the Kleene truth tables.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

from repro.common.errors import ColumnNotFoundError, SQLTypeError
from repro.common.types import SQLType, coerce_value
from repro.sql import ast

Row = tuple
RowFn = Callable[[Row], object]


@dataclass(frozen=True)
class SchemaColumn:
    """One column visible during evaluation: qualifier, name, type."""

    qualifier: str | None
    name: str
    type: SQLType


class RowSchema:
    """Maps (qualifier, column) references onto row-tuple indexes.

    Lookups are case-insensitive, matching the behaviour of all four
    vendor dialects for unquoted identifiers.
    """

    def __init__(self, columns: list[SchemaColumn]):
        self.columns = list(columns)
        self._by_qualified: dict[tuple[str, str], int] = {}
        self._by_name: dict[str, list[int]] = {}
        for idx, col in enumerate(self.columns):
            key = col.name.lower()
            self._by_name.setdefault(key, []).append(idx)
            if col.qualifier is not None:
                self._by_qualified[(col.qualifier.lower(), key)] = idx

    def __len__(self) -> int:
        return len(self.columns)

    def resolve(self, ref: ast.ColumnRef) -> int:
        """Index of the column referenced by ``ref``; raises on miss/ambiguity."""
        name = ref.column.lower()
        if ref.table is not None:
            idx = self._by_qualified.get((ref.table.lower(), name))
            if idx is None:
                raise ColumnNotFoundError(ref.column, ref.table)
            return idx
        candidates = self._by_name.get(name, [])
        if not candidates:
            raise ColumnNotFoundError(ref.column)
        if len(candidates) > 1:
            quals = [self.columns[i].qualifier for i in candidates]
            raise ColumnNotFoundError(
                f"{ref.column} (ambiguous across {quals})"
            )
        return candidates[0]

    def indexes_for_star(self, qualifier: str | None) -> list[int]:
        """Column indexes selected by ``*`` or ``qualifier.*``."""
        if qualifier is None:
            return list(range(len(self.columns)))
        out = [
            i
            for i, col in enumerate(self.columns)
            if col.qualifier is not None and col.qualifier.lower() == qualifier.lower()
        ]
        if not out:
            raise ColumnNotFoundError("*", qualifier)
        return out

    def concat(self, other: "RowSchema") -> "RowSchema":
        return RowSchema(self.columns + other.columns)


def _like_to_regex(pattern: str) -> re.Pattern:
    out = ["^"]
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    out.append("$")
    return re.compile("".join(out), re.IGNORECASE)


def _and3(a, b):
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def _or3(a, b):
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


def _cmp(op: str, left, right):
    if left is None or right is None:
        return None
    # Allow numeric/boolean cross-comparison; otherwise require same family.
    if isinstance(left, bool):
        left = int(left)
    if isinstance(right, bool):
        right = int(right)
    lnum = isinstance(left, (int, float))
    rnum = isinstance(right, (int, float))
    if lnum != rnum:
        raise SQLTypeError(f"cannot compare {type(left).__name__} with {type(right).__name__}")
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise SQLTypeError(f"unknown comparison operator {op!r}")


import math as _math

_SCALAR_FUNCTIONS: dict[str, Callable] = {
    # numerics
    "ABS": abs,
    "ROUND": lambda x, nd=0: None if x is None else round(x, int(nd)),
    "FLOOR": lambda x: None if x is None else _math.floor(x),
    "CEIL": lambda x: None if x is None else _math.ceil(x),
    "SQRT": lambda x: None if x is None else _math.sqrt(x),
    "POWER": lambda x, y: None if x is None or y is None else float(x) ** float(y),
    "EXP": lambda x: None if x is None else _math.exp(x),
    "LN": lambda x: None if x is None or x <= 0 else _math.log(x),
    "LOG10": lambda x: None if x is None or x <= 0 else _math.log10(x),
    "MOD": lambda x, y: None if x is None or y is None or y == 0 else x % y,
    "SIGN": lambda x: None if x is None else (0 if x == 0 else (1 if x > 0 else -1)),
    # strings
    "LOWER": lambda s: None if s is None else str(s).lower(),
    "UPPER": lambda s: None if s is None else str(s).upper(),
    "LENGTH": lambda s: None if s is None else len(str(s)),
    "TRIM": lambda s: None if s is None else str(s).strip(),
    "LTRIM": lambda s: None if s is None else str(s).lstrip(),
    "RTRIM": lambda s: None if s is None else str(s).rstrip(),
    "REPLACE": lambda s, old, new: (
        None if s is None else str(s).replace(str(old), str(new))
    ),
    "INSTR": lambda s, sub: None if s is None else str(s).find(str(sub)) + 1,
    "CONCAT": None,  # special-cased (variadic, NULL-tolerant like MySQL's CONCAT_WS)
    "COALESCE": None,  # special-cased (variadic, lazy)
    "NULLIF": None,  # special-cased (lazy second arg comparison)
    "SUBSTR": lambda s, start, length=None: (
        None
        if s is None
        else (
            str(s)[int(start) - 1 : int(start) - 1 + int(length)]
            if length is not None
            else str(s)[int(start) - 1 :]
        )
    ),
}


def compile_expr(
    expr: ast.Expr, schema: RowSchema, params: tuple = (), subquery_runner=None
) -> RowFn:
    """Compile ``expr`` into a closure over row tuples.

    ``params`` supplies values for positional ``?`` placeholders.
    ``subquery_runner(select) -> (columns, rows)`` evaluates embedded
    non-correlated subqueries; contexts without one (pushed-down
    predicates, standalone evaluation) reject subquery nodes.
    """
    if isinstance(expr, (ast.ScalarSubquery, ast.InSubquery, ast.Exists)):
        if subquery_runner is None:
            raise SQLTypeError("subqueries are not supported in this context")
        return _compile_subquery(expr, schema, params, subquery_runner)
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda row: value
    if isinstance(expr, ast.Param):
        if expr.index >= len(params):
            raise SQLTypeError(
                f"statement requires parameter {expr.index + 1}, got {len(params)}"
            )
        value = params[expr.index]
        return lambda row: value
    if isinstance(expr, ast.ColumnRef):
        idx = schema.resolve(expr)
        return lambda row: row[idx]
    if isinstance(expr, ast.Star):
        raise SQLTypeError("'*' is only valid in a select list or COUNT(*)")
    if isinstance(expr, ast.BinaryOp):
        left = compile_expr(expr.left, schema, params, subquery_runner)
        right = compile_expr(expr.right, schema, params, subquery_runner)
        op = expr.op
        if op == "AND":
            return lambda row: _and3(left(row), right(row))
        if op == "OR":
            return lambda row: _or3(left(row), right(row))
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return lambda row: _cmp(op, left(row), right(row))
        if op == "||":

            def concat(row):
                a, b = left(row), right(row)
                if a is None or b is None:
                    return None
                return str(a) + str(b)

            return concat
        if op in ("+", "-", "*", "/", "%"):

            def arith(row, _op=op):
                a, b = left(row), right(row)
                if a is None or b is None:
                    return None
                if not isinstance(a, (int, float)) or isinstance(a, bool):
                    if isinstance(a, bool):
                        a = int(a)
                    else:
                        raise SQLTypeError(f"non-numeric operand {a!r} for {_op}")
                if not isinstance(b, (int, float)) or isinstance(b, bool):
                    if isinstance(b, bool):
                        b = int(b)
                    else:
                        raise SQLTypeError(f"non-numeric operand {b!r} for {_op}")
                if _op == "+":
                    return a + b
                if _op == "-":
                    return a - b
                if _op == "*":
                    return a * b
                if _op == "/":
                    if b == 0:
                        return None  # SQL engines commonly yield NULL/err; we use NULL
                    result = a / b
                    if isinstance(a, int) and isinstance(b, int) and result == int(result):
                        return int(result)
                    return result
                if b == 0:
                    return None
                return a % b

            return arith
        raise SQLTypeError(f"unknown binary operator {expr.op!r}")
    if isinstance(expr, ast.UnaryOp):
        operand = compile_expr(expr.operand, schema, params, subquery_runner)
        if expr.op == "NOT":

            def neg(row):
                v = operand(row)
                if v is None:
                    return None
                return not v

            return neg
        return lambda row: None if operand(row) is None else -operand(row)
    if isinstance(expr, ast.IsNull):
        operand = compile_expr(expr.operand, schema, params, subquery_runner)
        if expr.negated:
            return lambda row: operand(row) is not None
        return lambda row: operand(row) is None
    if isinstance(expr, ast.InList):
        operand = compile_expr(expr.operand, schema, params, subquery_runner)
        items = [compile_expr(i, schema, params, subquery_runner) for i in expr.items]
        negated = expr.negated

        def in_list(row):
            v = operand(row)
            if v is None:
                return None
            saw_null = False
            for item in items:
                iv = item(row)
                if iv is None:
                    saw_null = True
                    continue
                eq = _cmp("=", v, iv)
                if eq:
                    return not negated
            if saw_null:
                return None
            return negated

        return in_list
    if isinstance(expr, ast.Between):
        operand = compile_expr(expr.operand, schema, params, subquery_runner)
        low = compile_expr(expr.low, schema, params, subquery_runner)
        high = compile_expr(expr.high, schema, params, subquery_runner)
        negated = expr.negated

        def between(row):
            v = operand(row)
            lo, hi = low(row), high(row)
            ge = _cmp(">=", v, lo)
            le = _cmp("<=", v, hi)
            result = _and3(ge, le)
            if result is None:
                return None
            return result != negated

        return between
    if isinstance(expr, ast.Like):
        operand = compile_expr(expr.operand, schema, params, subquery_runner)
        negated = expr.negated
        if isinstance(expr.pattern, ast.Literal) and isinstance(expr.pattern.value, str):
            regex = _like_to_regex(expr.pattern.value)

            def like_const(row):
                v = operand(row)
                if v is None:
                    return None
                return bool(regex.match(str(v))) != negated

            return like_const
        pattern = compile_expr(expr.pattern, schema, params, subquery_runner)

        def like_dyn(row):
            v = operand(row)
            p = pattern(row)
            if v is None or p is None:
                return None
            return bool(_like_to_regex(str(p)).match(str(v))) != negated

        return like_dyn
    if isinstance(expr, ast.Case):
        whens = [
            (compile_expr(c, schema, params, subquery_runner), compile_expr(r, schema, params, subquery_runner))
            for c, r in expr.whens
        ]
        else_fn = compile_expr(expr.else_, schema, params, subquery_runner) if expr.else_ else None

        def case(row):
            for cond, result in whens:
                if cond(row) is True:
                    return result(row)
            return else_fn(row) if else_fn else None

        return case
    if isinstance(expr, ast.Cast):
        operand = compile_expr(expr.operand, schema, params, subquery_runner)
        target = expr.target
        return lambda row: coerce_value(operand(row), target)
    if isinstance(expr, ast.FunctionCall):
        name = expr.name.upper()
        if name in ast.AGGREGATE_FUNCTIONS:
            raise SQLTypeError(
                f"aggregate {name} not allowed here (only in SELECT list or HAVING)"
            )
        if name == "COALESCE":
            args = [compile_expr(a, schema, params, subquery_runner) for a in expr.args]

            def coalesce(row):
                for arg in args:
                    v = arg(row)
                    if v is not None:
                        return v
                return None

            return coalesce
        if name == "CONCAT":
            args = [compile_expr(a, schema, params, subquery_runner) for a in expr.args]

            def concat_fn(row):
                parts = [arg(row) for arg in args]
                if any(p is None for p in parts):
                    return None
                return "".join(str(p) for p in parts)

            return concat_fn
        if name == "NULLIF":
            if len(expr.args) != 2:
                raise SQLTypeError("NULLIF takes exactly two arguments")
            first = compile_expr(expr.args[0], schema, params, subquery_runner)
            second = compile_expr(expr.args[1], schema, params, subquery_runner)

            def nullif(row):
                a = first(row)
                if a is None:
                    return None
                b = second(row)
                if b is not None and _cmp("=", a, b):
                    return None
                return a

            return nullif
        fn = _SCALAR_FUNCTIONS.get(name)
        if fn is None:
            raise SQLTypeError(f"unknown function {expr.name!r}")
        args = [compile_expr(a, schema, params, subquery_runner) for a in expr.args]

        def call(row):
            values = [a(row) for a in args]
            if values and values[0] is None and name != "COALESCE":
                return None
            return fn(*values)

        return call
    raise SQLTypeError(f"cannot compile expression node {type(expr).__name__}")


def _compile_subquery(expr, schema: RowSchema, params: tuple, subquery_runner) -> RowFn:
    """Compile a non-correlated subquery node.

    The inner SELECT is executed lazily at most once per statement (it
    cannot reference the outer row) and the materialized result is
    shared by every outer-row evaluation.
    """
    memo: dict[str, object] = {}

    def run():
        if "result" not in memo:
            memo["result"] = subquery_runner(expr.select)
        return memo["result"]

    if isinstance(expr, ast.ScalarSubquery):

        def scalar(row):
            columns, rows = run()
            if len(columns) != 1:
                raise SQLTypeError(
                    f"scalar subquery must return one column, got {len(columns)}"
                )
            if not rows:
                return None
            if len(rows) > 1:
                raise SQLTypeError("scalar subquery returned more than one row")
            return rows[0][0]

        return scalar

    if isinstance(expr, ast.Exists):
        negated = expr.negated

        def exists(row):
            _columns, rows = run()
            return bool(rows) != negated

        return exists

    assert isinstance(expr, ast.InSubquery)
    operand = compile_expr(expr.operand, schema, params, subquery_runner)
    negated = expr.negated

    def in_subquery(row):
        columns, rows = run()
        if len(columns) != 1:
            raise SQLTypeError(
                f"IN subquery must return one column, got {len(columns)}"
            )
        v = operand(row)
        if v is None:
            return None
        saw_null = False
        for (candidate,) in rows:
            if candidate is None:
                saw_null = True
                continue
            if _cmp("=", v, candidate):
                return not negated
        if saw_null:
            return None
        return negated

    return in_subquery


def truthy(value: object) -> bool:
    """WHERE-clause semantics: keep the row only when the predicate is True."""
    return value is True

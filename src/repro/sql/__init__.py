"""SQL front-end: lexer, AST, parser, expression compiler, logical plans.

This package is vendor-neutral. Vendor-specific surface syntax (LIMIT vs
TOP vs ROWNUM, quoting, type names) is normalized by ``repro.dialects``
before or after the text passes through here.
"""

from repro.sql.lexer import Token, TokenType, tokenize
from repro.sql.parser import parse_expression, parse_select, parse_statement
from repro.sql import ast

__all__ = [
    "Token",
    "TokenType",
    "ast",
    "parse_expression",
    "parse_select",
    "parse_statement",
    "tokenize",
]

"""Recursive-descent SQL parser producing :mod:`repro.sql.ast` trees.

The accepted grammar is the vendor-neutral core every dialect in the
system can emit: SELECT (joins, grouping, ordering, limits), INSERT,
UPDATE, DELETE, CREATE/DROP TABLE/VIEW/INDEX, and ALTER TABLE. MS-SQL
``SELECT TOP n`` is accepted and normalized into ``limit`` so that text
produced by the MSSQL dialect re-parses.
"""

from __future__ import annotations

from repro.common.errors import SQLSyntaxError
from repro.common.types import SQLType, TypeKind
from repro.sql import ast
from repro.sql.lexer import Token, TokenType, tokenize

# Vendor type-name spellings normalized to logical kinds.
_TYPE_KEYWORDS = {
    "INT": TypeKind.INTEGER,
    "INTEGER": TypeKind.INTEGER,
    "SMALLINT": TypeKind.INTEGER,
    "BIGINT": TypeKind.BIGINT,
    "FLOAT": TypeKind.FLOAT,
    "REAL": TypeKind.FLOAT,
    "DOUBLE": TypeKind.DOUBLE,
    "DECIMAL": TypeKind.DECIMAL,
    "NUMERIC": TypeKind.DECIMAL,
    "NUMBER": TypeKind.DECIMAL,
    "VARCHAR": TypeKind.VARCHAR,
    "VARCHAR2": TypeKind.VARCHAR,
    "NVARCHAR": TypeKind.VARCHAR,
    "CHAR": TypeKind.CHAR,
    "TEXT": TypeKind.TEXT,
    "CLOB": TypeKind.TEXT,
    "BOOLEAN": TypeKind.BOOLEAN,
    "BOOL": TypeKind.BOOLEAN,
    "DATE": TypeKind.DATE,
    "DATETIME": TypeKind.TIMESTAMP,
    "TIMESTAMP": TypeKind.TIMESTAMP,
    "BLOB": TypeKind.BLOB,
}

_COMPARISON_OPS = {"=", "<>", "!=", "<", "<=", ">", ">="}


class _Parser:
    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = tokenize(sql)
        self.pos = 0
        self.param_count = 0

    # Token plumbing -----------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.type is not TokenType.EOF:
            self.pos += 1
        return tok

    def check_keyword(self, *words: str) -> bool:
        return self.current.type is TokenType.KEYWORD and self.current.value in words

    def accept_keyword(self, *words: str) -> bool:
        if self.check_keyword(*words):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> Token:
        if not self.check_keyword(word):
            raise SQLSyntaxError(
                f"expected {word}, found {self.current.value!r}", self.current.position, self.sql
            )
        return self.advance()

    def accept_punct(self, value: str) -> bool:
        if self.current.matches(TokenType.PUNCT, value):
            self.advance()
            return True
        return False

    def expect_punct(self, value: str) -> Token:
        if not self.current.matches(TokenType.PUNCT, value):
            raise SQLSyntaxError(
                f"expected {value!r}, found {self.current.value!r}",
                self.current.position,
                self.sql,
            )
        return self.advance()

    def accept_operator(self, value: str) -> bool:
        if self.current.matches(TokenType.OPERATOR, value):
            self.advance()
            return True
        return False

    def expect_identifier(self) -> str:
        tok = self.current
        # Unreserved keywords used as identifiers are common (e.g. a column
        # named "date"); allow a small safe subset.
        if tok.type is TokenType.IDENT:
            self.advance()
            return tok.value
        if tok.type is TokenType.KEYWORD and tok.value in ("DATE", "KEY", "INDEX", "COLUMN"):
            self.advance()
            return tok.value.lower()
        raise SQLSyntaxError(
            f"expected identifier, found {tok.value!r}", tok.position, self.sql
        )

    def expect_integer(self) -> int:
        tok = self.current
        if tok.type is not TokenType.NUMBER or any(c in tok.value for c in ".eE"):
            raise SQLSyntaxError(
                f"expected integer, found {tok.value!r}", tok.position, self.sql
            )
        self.advance()
        return int(tok.value)

    def at_end(self) -> bool:
        return self.current.type is TokenType.EOF or self.current.matches(
            TokenType.PUNCT, ";"
        )

    # Statements ---------------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        if self.check_keyword("SELECT"):
            return self.parse_select_chain()
        if self.check_keyword("INSERT"):
            return self.parse_insert()
        if self.check_keyword("UPDATE"):
            return self.parse_update()
        if self.check_keyword("DELETE"):
            return self.parse_delete()
        if self.check_keyword("CREATE"):
            return self.parse_create()
        if self.check_keyword("DROP"):
            return self.parse_drop()
        if self.check_keyword("ALTER"):
            return self.parse_alter()
        raise SQLSyntaxError(
            f"unsupported statement starting with {self.current.value!r}",
            self.current.position,
            self.sql,
        )

    def parse_select_chain(self) -> ast.Statement:
        """A SELECT, or a UNION [ALL] chain of SELECTs."""
        first = self.parse_select()
        if not self.check_keyword("UNION"):
            return first
        selects = [first]
        all_flags: set[bool] = set()
        while self.accept_keyword("UNION"):
            all_flags.add(self.accept_keyword("ALL"))
            selects.append(self.parse_select())
        if len(all_flags) > 1:
            raise SQLSyntaxError(
                "mixing UNION and UNION ALL in one chain is not supported",
                self.current.position,
                self.sql,
            )
        for branch in selects[:-1]:
            if branch.order_by or branch.limit is not None or branch.offset is not None:
                raise SQLSyntaxError(
                    "ORDER BY/LIMIT are only allowed after the last UNION branch",
                    self.current.position,
                    self.sql,
                )
        # the trailing ORDER BY/LIMIT the last branch swallowed belong to
        # the whole union
        last = selects[-1]
        order_by, limit, offset = last.order_by, last.limit, last.offset
        selects[-1] = ast.Select(
            items=last.items,
            from_=last.from_,
            joins=last.joins,
            where=last.where,
            group_by=last.group_by,
            having=last.having,
            order_by=(),
            limit=None,
            offset=None,
            distinct=last.distinct,
        )
        return ast.Union(
            selects=tuple(selects),
            all=all_flags.pop(),
            order_by=order_by,
            limit=limit,
            offset=offset,
        )

    def parse_select(self) -> ast.Select:
        self.expect_keyword("SELECT")
        limit: int | None = None
        distinct = False
        if self.accept_keyword("DISTINCT"):
            distinct = True
        elif self.accept_keyword("ALL"):
            pass
        if self.accept_keyword("TOP"):  # MS-SQL spelling, normalized to limit
            limit = self.expect_integer()

        items = [self.parse_select_item()]
        while self.accept_punct(","):
            items.append(self.parse_select_item())

        from_: list[ast.TableRef] = []
        joins: list[ast.Join] = []
        if self.accept_keyword("FROM"):
            from_.append(self.parse_table_ref())
            while True:
                if self.accept_punct(","):
                    from_.append(self.parse_table_ref())
                    continue
                join = self.try_parse_join()
                if join is None:
                    break
                joins.append(join)

        where = self.parse_expression() if self.accept_keyword("WHERE") else None

        group_by: list[ast.Expr] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_expression())
            while self.accept_punct(","):
                group_by.append(self.parse_expression())

        having = self.parse_expression() if self.accept_keyword("HAVING") else None

        order_by: list[ast.OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self.parse_order_item())
            while self.accept_punct(","):
                order_by.append(self.parse_order_item())

        offset: int | None = None
        if self.accept_keyword("LIMIT"):
            limit = self.expect_integer()
        if self.accept_keyword("OFFSET"):
            offset = self.expect_integer()

        return ast.Select(
            items=tuple(items),
            from_=tuple(from_),
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def parse_select_item(self) -> ast.SelectItem:
        expr = self.parse_expression()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_identifier()
        elif self.current.type is TokenType.IDENT:
            alias = self.advance().value
        return ast.SelectItem(expr=expr, alias=alias)

    def parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_expression()
        ascending = True
        if self.accept_keyword("DESC"):
            ascending = False
        else:
            self.accept_keyword("ASC")
        return ast.OrderItem(expr=expr, ascending=ascending)

    def parse_table_ref(self) -> ast.TableRef:
        name = self.expect_identifier()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_identifier()
        elif self.current.type is TokenType.IDENT:
            alias = self.advance().value
        return ast.TableRef(name=name, alias=alias)

    def try_parse_join(self) -> ast.Join | None:
        kind: str | None = None
        if self.accept_keyword("JOIN") or (
            self.check_keyword("INNER") and self._accept_join_prefix("INNER")
        ):
            kind = "INNER"
        elif self.check_keyword("LEFT") and self._accept_join_prefix("LEFT"):
            kind = "LEFT"
        elif self.check_keyword("CROSS") and self._accept_join_prefix("CROSS"):
            kind = "CROSS"
        if kind is None:
            return None
        table = self.parse_table_ref()
        on = None
        if kind != "CROSS":
            self.expect_keyword("ON")
            on = self.parse_expression()
        return ast.Join(kind=kind, table=table, on=on)

    def _accept_join_prefix(self, word: str) -> bool:
        self.expect_keyword(word)
        self.accept_keyword("OUTER")
        self.expect_keyword("JOIN")
        return True

    def parse_insert(self) -> ast.Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_identifier()
        columns: list[str] = []
        if self.accept_punct("("):
            columns.append(self.expect_identifier())
            while self.accept_punct(","):
                columns.append(self.expect_identifier())
            self.expect_punct(")")
        if self.check_keyword("SELECT"):
            select = self.parse_select()
            return ast.Insert(table=table, columns=tuple(columns), select=select)
        self.expect_keyword("VALUES")
        rows: list[tuple[ast.Expr, ...]] = []
        while True:
            self.expect_punct("(")
            values = [self.parse_expression()]
            while self.accept_punct(","):
                values.append(self.parse_expression())
            self.expect_punct(")")
            rows.append(tuple(values))
            if not self.accept_punct(","):
                break
        return ast.Insert(table=table, columns=tuple(columns), rows=tuple(rows))

    def parse_update(self) -> ast.Update:
        self.expect_keyword("UPDATE")
        table = self.expect_identifier()
        self.expect_keyword("SET")
        assignments: list[tuple[str, ast.Expr]] = []
        while True:
            col = self.expect_identifier()
            if not self.accept_operator("="):
                raise SQLSyntaxError(
                    "expected '=' in SET clause", self.current.position, self.sql
                )
            assignments.append((col, self.parse_expression()))
            if not self.accept_punct(","):
                break
        where = self.parse_expression() if self.accept_keyword("WHERE") else None
        return ast.Update(table=table, assignments=tuple(assignments), where=where)

    def parse_delete(self) -> ast.Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_identifier()
        where = self.parse_expression() if self.accept_keyword("WHERE") else None
        return ast.Delete(table=table, where=where)

    def parse_create(self) -> ast.Statement:
        self.expect_keyword("CREATE")
        unique = self.accept_keyword("UNIQUE")
        if self.accept_keyword("TABLE"):
            if_not_exists = False
            if self.accept_keyword("IF"):
                self.expect_keyword("NOT")
                self.expect_keyword("EXISTS")
                if_not_exists = True
            name = self.expect_identifier()
            if self.accept_keyword("AS"):
                select = self.parse_select()
                return ast.CreateTableAs(
                    name=name, select=select, if_not_exists=if_not_exists
                )
            self.expect_punct("(")
            columns: list[ast.ColumnDef] = []
            pk_names: list[str] = []
            while True:
                if self.accept_keyword("PRIMARY"):
                    self.expect_keyword("KEY")
                    self.expect_punct("(")
                    pk_names.append(self.expect_identifier())
                    while self.accept_punct(","):
                        pk_names.append(self.expect_identifier())
                    self.expect_punct(")")
                else:
                    columns.append(self.parse_column_def())
                if not self.accept_punct(","):
                    break
            self.expect_punct(")")
            if pk_names:
                columns = [
                    ast.ColumnDef(
                        name=c.name,
                        type=c.type,
                        not_null=c.not_null or c.name in pk_names,
                        primary_key=c.primary_key or c.name in pk_names,
                        default=c.default,
                        has_default=c.has_default,
                    )
                    for c in columns
                ]
            return ast.CreateTable(
                name=name, columns=tuple(columns), if_not_exists=if_not_exists
            )
        if self.accept_keyword("VIEW"):
            name = self.expect_identifier()
            self.expect_keyword("AS")
            select = self.parse_select()
            return ast.CreateView(name=name, select=select)
        if self.accept_keyword("INDEX"):
            name = self.expect_identifier()
            self.expect_keyword("ON")
            table = self.expect_identifier()
            self.expect_punct("(")
            cols = [self.expect_identifier()]
            while self.accept_punct(","):
                cols.append(self.expect_identifier())
            self.expect_punct(")")
            return ast.CreateIndex(name=name, table=table, columns=tuple(cols), unique=unique)
        raise SQLSyntaxError(
            "expected TABLE, VIEW or INDEX after CREATE", self.current.position, self.sql
        )

    def parse_column_def(self) -> ast.ColumnDef:
        name = self.expect_identifier()
        ctype = self.parse_type()
        not_null = False
        primary_key = False
        default: object = None
        has_default = False
        while True:
            if self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                primary_key = True
                not_null = True
            elif self.accept_keyword("NOT"):
                self.expect_keyword("NULL")
                not_null = True
            elif self.accept_keyword("NULL"):
                pass
            elif self.accept_keyword("UNIQUE"):
                pass
            elif self.accept_keyword("DEFAULT"):
                expr = self.parse_primary()
                if not isinstance(expr, ast.Literal):
                    raise SQLSyntaxError(
                        "DEFAULT must be a literal", self.current.position, self.sql
                    )
                default = expr.value
                has_default = True
            else:
                break
        return ast.ColumnDef(
            name=name,
            type=ctype,
            not_null=not_null,
            primary_key=primary_key,
            default=default,
            has_default=has_default,
        )

    def parse_type(self) -> SQLType:
        tok = self.current
        word = tok.value.upper() if tok.type in (TokenType.KEYWORD, TokenType.IDENT) else ""
        if word not in _TYPE_KEYWORDS:
            raise SQLSyntaxError(f"unknown type name {tok.value!r}", tok.position, self.sql)
        self.advance()
        kind = _TYPE_KEYWORDS[word]
        if word == "DOUBLE":
            self.accept_keyword("PRECISION")
        length = precision = scale = None
        if self.accept_punct("("):
            first = self.expect_integer()
            if self.accept_punct(","):
                second = self.expect_integer()
                precision, scale = first, second
            elif kind is TypeKind.DECIMAL:
                precision = first
            else:
                length = first
            self.expect_punct(")")
        if kind is TypeKind.DECIMAL and precision is not None and scale is None:
            scale = 0
        # NUMBER(p,0)/DECIMAL(p,0) with no fraction behaves as an integer type.
        return SQLType(kind, length=length, precision=precision, scale=scale)

    def parse_drop(self) -> ast.Statement:
        self.expect_keyword("DROP")
        is_view = False
        if self.accept_keyword("VIEW"):
            is_view = True
        else:
            self.expect_keyword("TABLE")
        if_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            if_exists = True
        name = self.expect_identifier()
        if is_view:
            return ast.DropView(name=name, if_exists=if_exists)
        return ast.DropTable(name=name, if_exists=if_exists)

    def parse_alter(self) -> ast.AlterTable:
        self.expect_keyword("ALTER")
        self.expect_keyword("TABLE")
        table = self.expect_identifier()
        if self.accept_keyword("ADD"):
            self.accept_keyword("COLUMN")
            column = self.parse_column_def()
            return ast.AlterTable(table=table, action="ADD", column=column)
        if self.accept_keyword("DROP"):
            self.accept_keyword("COLUMN")
            name = self.expect_identifier()
            return ast.AlterTable(table=table, action="DROP", column_name=name)
        if self.accept_keyword("RENAME"):
            self.expect_keyword("TO")
            new_name = self.expect_identifier()
            return ast.AlterTable(table=table, action="RENAME", new_name=new_name)
        raise SQLSyntaxError(
            "expected ADD, DROP or RENAME after ALTER TABLE",
            self.current.position,
            self.sql,
        )

    # Expressions (precedence climbing) ----------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self.parse_or()

    def parse_or(self) -> ast.Expr:
        left = self.parse_and()
        while self.accept_keyword("OR"):
            left = ast.BinaryOp("OR", left, self.parse_and())
        return left

    def parse_and(self) -> ast.Expr:
        left = self.parse_not()
        while self.accept_keyword("AND"):
            left = ast.BinaryOp("AND", left, self.parse_not())
        return left

    def parse_not(self) -> ast.Expr:
        if self.accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> ast.Expr:
        left = self.parse_additive()
        tok = self.current
        if tok.type is TokenType.OPERATOR and tok.value in _COMPARISON_OPS:
            self.advance()
            op = "<>" if tok.value == "!=" else tok.value
            return ast.BinaryOp(op, left, self.parse_additive())
        negated = False
        if self.check_keyword("NOT"):
            # lookahead for NOT IN / NOT BETWEEN / NOT LIKE
            nxt = self.tokens[self.pos + 1]
            if nxt.type is TokenType.KEYWORD and nxt.value in ("IN", "BETWEEN", "LIKE"):
                self.advance()
                negated = True
        if self.accept_keyword("IS"):
            is_not = self.accept_keyword("NOT")
            self.expect_keyword("NULL")
            return ast.IsNull(left, negated=is_not)
        if self.accept_keyword("IN"):
            self.expect_punct("(")
            if self.check_keyword("SELECT"):
                subselect = self.parse_select()
                self.expect_punct(")")
                return ast.InSubquery(left, subselect, negated=negated)
            items = [self.parse_expression()]
            while self.accept_punct(","):
                items.append(self.parse_expression())
            self.expect_punct(")")
            return ast.InList(left, tuple(items), negated=negated)
        if self.accept_keyword("BETWEEN"):
            low = self.parse_additive()
            self.expect_keyword("AND")
            high = self.parse_additive()
            return ast.Between(left, low, high, negated=negated)
        if self.accept_keyword("LIKE"):
            return ast.Like(left, self.parse_additive(), negated=negated)
        return left

    def parse_additive(self) -> ast.Expr:
        left = self.parse_multiplicative()
        while True:
            if self.accept_operator("+"):
                left = ast.BinaryOp("+", left, self.parse_multiplicative())
            elif self.accept_operator("-"):
                left = ast.BinaryOp("-", left, self.parse_multiplicative())
            elif self.accept_operator("||"):
                left = ast.BinaryOp("||", left, self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self) -> ast.Expr:
        left = self.parse_unary()
        while True:
            if self.accept_operator("*"):
                left = ast.BinaryOp("*", left, self.parse_unary())
            elif self.accept_operator("/"):
                left = ast.BinaryOp("/", left, self.parse_unary())
            elif self.accept_operator("%"):
                left = ast.BinaryOp("%", left, self.parse_unary())
            else:
                return left

    def parse_unary(self) -> ast.Expr:
        if self.accept_operator("-"):
            operand = self.parse_unary()
            if isinstance(operand, ast.Literal) and isinstance(operand.value, (int, float)):
                return ast.Literal(-operand.value)
            return ast.UnaryOp("-", operand)
        if self.accept_operator("+"):
            return self.parse_unary()
        return self.parse_primary()

    def parse_primary(self) -> ast.Expr:
        tok = self.current
        if tok.type is TokenType.NUMBER:
            self.advance()
            if any(c in tok.value for c in ".eE"):
                return ast.Literal(float(tok.value))
            return ast.Literal(int(tok.value))
        if tok.type is TokenType.STRING:
            self.advance()
            return ast.Literal(tok.value)
        if tok.type is TokenType.PARAM:
            self.advance()
            param = ast.Param(self.param_count)
            self.param_count += 1
            return param
        if tok.type is TokenType.KEYWORD:
            if tok.value == "NULL":
                self.advance()
                return ast.Literal(None)
            if tok.value == "TRUE":
                self.advance()
                return ast.Literal(True)
            if tok.value == "FALSE":
                self.advance()
                return ast.Literal(False)
            if tok.value == "CASE":
                return self.parse_case()
            if tok.value == "CAST":
                self.advance()
                self.expect_punct("(")
                operand = self.parse_expression()
                self.expect_keyword("AS")
                target = self.parse_type()
                self.expect_punct(")")
                return ast.Cast(operand, target)
            if tok.value in ("COUNT", "SUM", "AVG", "MIN", "MAX"):
                self.advance()
                return self.parse_function_call(tok.value)
        if tok.matches(TokenType.OPERATOR, "*"):
            self.advance()
            return ast.Star()
        if tok.type is TokenType.KEYWORD and tok.value == "EXISTS":
            self.advance()
            self.expect_punct("(")
            subselect = self.parse_select()
            self.expect_punct(")")
            return ast.Exists(subselect)
        if self.accept_punct("("):
            if self.check_keyword("SELECT"):
                subselect = self.parse_select()
                self.expect_punct(")")
                return ast.ScalarSubquery(subselect)
            expr = self.parse_expression()
            self.expect_punct(")")
            return expr
        if tok.type is TokenType.IDENT or (
            tok.type is TokenType.KEYWORD and tok.value in ("DATE", "KEY")
        ):
            name = self.expect_identifier()
            # function call?
            if self.current.matches(TokenType.PUNCT, "("):
                return self.parse_function_call(name.upper())
            # qualified reference table.column or table.*
            if self.accept_punct("."):
                if self.current.matches(TokenType.OPERATOR, "*"):
                    self.advance()
                    return ast.Star(table=name)
                column = self.expect_identifier()
                return ast.ColumnRef(column=column, table=name)
            return ast.ColumnRef(column=name)
        raise SQLSyntaxError(
            f"unexpected token {tok.value!r} in expression", tok.position, self.sql
        )

    def parse_function_call(self, name: str) -> ast.Expr:
        self.expect_punct("(")
        distinct = self.accept_keyword("DISTINCT")
        args: list[ast.Expr] = []
        if not self.current.matches(TokenType.PUNCT, ")"):
            args.append(self.parse_expression())
            while self.accept_punct(","):
                args.append(self.parse_expression())
        self.expect_punct(")")
        return ast.FunctionCall(name=name, args=tuple(args), distinct=distinct)

    def parse_case(self) -> ast.Expr:
        self.expect_keyword("CASE")
        whens: list[tuple[ast.Expr, ast.Expr]] = []
        while self.accept_keyword("WHEN"):
            cond = self.parse_expression()
            self.expect_keyword("THEN")
            result = self.parse_expression()
            whens.append((cond, result))
        else_ = self.parse_expression() if self.accept_keyword("ELSE") else None
        self.expect_keyword("END")
        if not whens:
            raise SQLSyntaxError("CASE requires at least one WHEN", self.current.position, self.sql)
        return ast.Case(tuple(whens), else_)


def parse_statement(sql: str) -> ast.Statement:
    """Parse a single SQL statement; trailing semicolon allowed."""
    parser = _Parser(sql)
    stmt = parser.parse_statement()
    parser.accept_punct(";")
    if parser.current.type is not TokenType.EOF:
        raise SQLSyntaxError(
            f"unexpected trailing input {parser.current.value!r}",
            parser.current.position,
            sql,
        )
    return stmt


def parse_select(sql: str) -> ast.Select:
    """Parse a statement and require it to be a SELECT."""
    stmt = parse_statement(sql)
    if not isinstance(stmt, ast.Select):
        raise SQLSyntaxError("expected a SELECT statement")
    return stmt


def parse_expression(sql: str) -> ast.Expr:
    """Parse a standalone scalar/boolean expression."""
    parser = _Parser(sql)
    expr = parser.parse_expression()
    if parser.current.type is not TokenType.EOF:
        raise SQLSyntaxError(
            f"unexpected trailing input {parser.current.value!r}",
            parser.current.position,
            sql,
        )
    return expr

"""HBOOK-style ntuples.

An ntuple is "like a table where these [NVAR] variables are the columns
and each event is a row" (§4.1). Generation is vectorized numpy with
physics-flavored marginals: energies are exponential, momenta normal,
angles uniform — enough structure that analysis examples (histograms,
cuts) look like real ntuple work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.rng import DeterministicRNG

#: the classic kinematic variable names, reused cyclically past index 7
_BASE_VARIABLES = ("E", "PX", "PY", "PZ", "PT", "ETA", "PHI", "M")


def standard_variables(nvar: int) -> list[str]:
    """NVAR variable names: kinematics first, then V8, V9, ..."""
    out = list(_BASE_VARIABLES[:nvar])
    for i in range(len(out), nvar):
        out.append(f"V{i}")
    return out


@dataclass
class Ntuple:
    """One ntuple: a title, variable names and an events×NVAR array."""

    title: str
    variables: list[str]
    data: np.ndarray  # shape (n_events, nvar), float64

    @property
    def n_events(self) -> int:
        return int(self.data.shape[0])

    @property
    def nvar(self) -> int:
        return int(self.data.shape[1])

    def column(self, name: str) -> np.ndarray:
        return self.data[:, self.variables.index(name)]

    def rows(self) -> list[tuple]:
        """Event rows as Python tuples of floats."""
        return [tuple(float(v) for v in row) for row in self.data]


def generate_ntuple(
    rng: DeterministicRNG, n_events: int, nvar: int, title: str = "ntuple"
) -> Ntuple:
    """Generate a deterministic synthetic ntuple.

    Column semantics (when present): E exponential(50 GeV); PX/PY/PZ
    normal(0, 20); PT derived from PX/PY; ETA uniform(-2.5, 2.5); PHI
    uniform(-pi, pi); M a two-population mixture around 0.14 and 91;
    every further variable is unit-normal noise.
    """
    variables = standard_variables(nvar)
    data = np.empty((n_events, nvar), dtype=np.float64)
    for j, name in enumerate(variables):
        if name == "E":
            data[:, j] = rng.exponential(50.0, size=n_events)
        elif name in ("PX", "PY", "PZ"):
            data[:, j] = rng.normal(0.0, 20.0, size=n_events)
        elif name == "PT":
            px = data[:, variables.index("PX")] if "PX" in variables[:j] else rng.normal(0, 20, n_events)
            py = data[:, variables.index("PY")] if "PY" in variables[:j] else rng.normal(0, 20, n_events)
            data[:, j] = np.hypot(px, py)
        elif name == "ETA":
            data[:, j] = rng.uniform(-2.5, 2.5, size=n_events)
        elif name == "PHI":
            data[:, j] = rng.uniform(-np.pi, np.pi, size=n_events)
        elif name == "M":
            heavy = rng.random(n_events) < 0.1
            masses = rng.normal(0.14, 0.01, size=n_events)
            masses[heavy] = rng.normal(91.0, 2.5, size=int(heavy.sum()))
            data[:, j] = np.abs(masses)
        else:
            data[:, j] = rng.normal(0.0, 1.0, size=n_events)
    return Ntuple(title=title, variables=variables, data=data)

"""HEP non-event data substrate: HBOOK ntuples and the source schemas.

The paper stores HBOOK ntuple data — a table of N events × NVAR
variables — in *normalized* relational schemas on the Tier-1 (Oracle)
and Tier-2 (MySQL) source databases, then denormalizes into the
warehouse. This package generates deterministic synthetic ntuples,
creates the normalized source schema (events/variables/values EAV plus
runs, calibration and conditions tables), provides the EAV→wide pivot
transform the ETL uses, and builds the testbeds the benchmarks run on.
"""

from repro.hep.conditions import ConditionsDB, ConditionValue, INFINITE_RUN
from repro.hep.ntuple import Ntuple, generate_ntuple, standard_variables
from repro.hep.queries import QueryWorkload, WorkloadConfig
from repro.hep.schema import create_source_schema, populate_source
from repro.hep.workload import (
    EAV_EXTRACT_SQL,
    build_tier_sources,
    etl_jobs_for_source,
    events_for_target_kb,
    pivot_eav,
)

__all__ = [
    "ConditionValue",
    "ConditionsDB",
    "EAV_EXTRACT_SQL",
    "INFINITE_RUN",
    "Ntuple",
    "QueryWorkload",
    "WorkloadConfig",
    "build_tier_sources",
    "create_source_schema",
    "etl_jobs_for_source",
    "events_for_target_kb",
    "generate_ntuple",
    "pivot_eav",
    "populate_source",
    "standard_variables",
]

"""Reusable testbeds matching the paper's evaluation setups (§5.2).

``build_paper_testbed`` reproduces the Table 1 deployment: two JClarens
servers on a 100 Mbps LAN hosting six databases equally shared between
Microsoft SQL Server and MySQL, with ~80,000 rows and ~1,700 tables in
total. The interesting tables are ntuple marts and run-metadata tables
(the join targets of the three Table 1 query classes); the rest of the
row/table budget is filled with small filler tables, as any real mart
catalog is.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clarens.client import ClarensClient
from repro.common.rng import DeterministicRNG
from repro.core.federation import GridFederation, ServerHandle
from repro.engine.database import Database
from repro.hep.ntuple import generate_ntuple


@dataclass
class PaperTestbed:
    """The Table 1 deployment plus canonical queries."""

    federation: GridFederation
    server1: ServerHandle
    server2: ServerHandle
    client: ClarensClient
    total_rows: int
    total_tables: int

    #: Table 1 query classes
    QUERY_LOCAL = "SELECT event_id, e FROM ntuple_a WHERE event_id <= 15"
    QUERY_DISTRIBUTED_1SRV = (
        "SELECT n.event_id, m.detector FROM ntuple_a n JOIN runmeta_a m "
        "ON n.run_id = m.run_id WHERE n.event_id <= 100"
    )
    QUERY_DISTRIBUTED_2SRV = (
        "SELECT n.event_id, m.detector, o.e AS e_b, p.detector AS det_b "
        "FROM ntuple_a n JOIN runmeta_a m ON n.run_id = m.run_id "
        "JOIN ntuple_b o ON n.event_id = o.event_id "
        "JOIN runmeta_b p ON o.run_id = p.run_id "
        "WHERE n.event_id <= 100 AND o.event_id <= 100"
    )


def _make_ntuple_db(
    name: str, rng: DeterministicRNG, n_events: int, n_runs: int
) -> Database:
    """A MySQL mart holding one wide ntuple table."""
    db = Database(name, "mysql")
    db.execute(
        "CREATE TABLE NTUPLE (EVENT_ID INT PRIMARY KEY, RUN_ID INT, "
        "E DOUBLE, PX DOUBLE, PY DOUBLE, PZ DOUBLE)"
    )
    nt = generate_ntuple(rng, n_events, 4, name)
    rows = [
        [i + 1, (i % n_runs) + 1] + [float(v) for v in nt.data[i]]
        for i in range(n_events)
    ]
    db.bulk_insert("NTUPLE", rows)
    return db


def _make_runmeta_db(name: str, rng: DeterministicRNG, n_runs: int) -> Database:
    """An MS SQL mart holding run metadata (forces the JDBC path)."""
    db = Database(name, "mssql")
    db.execute(
        "CREATE TABLE RUNMETA (RUN_ID INT PRIMARY KEY, DETECTOR NVARCHAR(20), "
        "QUALITY DOUBLE)"
    )
    detectors = ("TRACKER", "ECAL", "HCAL", "MUON")
    rows = [
        [r + 1, detectors[r % 4], float(rng.uniform(0, 1))] for r in range(n_runs)
    ]
    db.bulk_insert("RUNMETA", rows)
    return db


def _add_filler_tables(
    db: Database, rng: DeterministicRNG, n_tables: int, rows_per_table: int, prefix: str
) -> int:
    """Small catalog-filler tables; returns rows added."""
    total = 0
    for t in range(n_tables):
        name = f"{prefix}_{t:04d}"
        db.execute(
            f"CREATE TABLE {name} (ID INT PRIMARY KEY, PAYLOAD VARCHAR(32), VAL DOUBLE)"
        )
        rows = [
            [i + 1, f"blob-{t}-{i}", float(rng.uniform(0, 100))]
            for i in range(rows_per_table)
        ]
        db.bulk_insert(name, rows)
        total += rows_per_table
    return total


def build_paper_testbed(
    seed: int = 2005,
    ntuple_rows: int = 3000,
    runmeta_rows: int = 150,
    total_tables: int = 1700,
    total_rows: int = 80_000,
    cache: bool = False,
    observe: bool = False,
) -> PaperTestbed:
    """Build the §5.2 deployment on a fresh federation.

    ``cache=True``/``observe=True`` turn on the multi-level query cache
    and the telemetry stack on both servers (both default off, keeping
    the cold Table 1 numbers the prototype's).
    """
    rng = DeterministicRNG("paper-testbed", seed)
    fed = GridFederation()
    s1 = fed.create_server(
        "jclarens1", "pc1.caltech.edu", cache=cache, observe=observe
    )
    s2 = fed.create_server(
        "jclarens2", "pc2.caltech.edu", cache=cache, observe=observe
    )

    n_runs = max(1, runmeta_rows)

    main_rows = 2 * ntuple_rows + 2 * runmeta_rows
    main_tables = 6  # NTUPLE x2, RUNMETA x2, and two calib/condition extras
    filler_tables_total = max(0, total_tables - main_tables)
    filler_rows_total = max(0, total_rows - main_rows)
    # six databases share the filler budget
    per_db_tables = filler_tables_total // 6
    rows_per_table = max(1, filler_rows_total // max(1, filler_tables_total))

    dbs: list[tuple[Database, ServerHandle, dict | None]] = []

    ntuple_a = _make_ntuple_db("ntuple_db_a", rng.fork("na"), ntuple_rows, n_runs)
    dbs.append((ntuple_a, s1, {"NTUPLE": "ntuple_a"}))
    runmeta_a = _make_runmeta_db("runmeta_db_a", rng.fork("ra"), runmeta_rows)
    dbs.append((runmeta_a, s1, {"RUNMETA": "runmeta_a"}))
    extra_a = Database("extra_db_a", "mysql")
    extra_a.execute("CREATE TABLE CALIB (CH INT PRIMARY KEY, GAIN DOUBLE)")
    extra_a.bulk_insert("CALIB", [[i, 1.0 + i * 0.01] for i in range(32)])
    dbs.append((extra_a, s1, {"CALIB": "calib_a"}))

    ntuple_b = _make_ntuple_db("ntuple_db_b", rng.fork("nb"), ntuple_rows, n_runs)
    dbs.append((ntuple_b, s2, {"NTUPLE": "ntuple_b"}))
    runmeta_b = _make_runmeta_db("runmeta_db_b", rng.fork("rb"), runmeta_rows)
    dbs.append((runmeta_b, s2, {"RUNMETA": "runmeta_b"}))
    extra_b = Database("extra_db_b", "mssql")
    extra_b.execute("CREATE TABLE CONDS (K INT PRIMARY KEY, V DOUBLE)")
    extra_b.bulk_insert("CONDS", [[i, float(i)] for i in range(32)])
    dbs.append((extra_b, s2, {"CONDS": "conds_b"}))

    table_count = main_tables
    row_count = main_rows + 64
    for idx, (db, _server, _names) in enumerate(dbs):
        added = _add_filler_tables(
            db, rng.fork(f"filler{idx}"), per_db_tables, rows_per_table, f"AUX{idx}"
        )
        row_count += added
        table_count += per_db_tables

    for db, server, names in dbs:
        fed.attach_database(server, db, logical_names=names)

    client = fed.client("client.cern.ch")
    return PaperTestbed(
        federation=fed,
        server1=s1,
        server2=s2,
        client=client,
        total_rows=row_count,
        total_tables=table_count,
    )

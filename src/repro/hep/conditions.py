"""Conditions data with intervals of validity (IOV).

The paper's "non-event data includes ... a detector's calibration data
and conditions data". Real conditions databases key every value by an
*interval of validity* — the run/time range it applies to — and the
characteristic query is "what was the high-voltage setting at run N?".
This module lays the IOV schema onto any engine database and answers
those lookups with ordinary SQL (BETWEEN on the interval bounds), so
conditions tables federate and materialize like everything else.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ReproError
from repro.engine.database import Database

#: an IOV extending to the end of time
INFINITE_RUN = 2**31 - 1


@dataclass(frozen=True)
class ConditionValue:
    """One stored condition payload with its validity interval."""

    name: str
    value: float
    valid_from: int
    valid_to: int
    version: int


class ConditionsDB:
    """IOV-keyed conditions storage over one engine database."""

    TABLE = "condition_iov"

    def __init__(self, db: Database):
        self.db = db
        if not db.catalog.has_table(self.TABLE):
            db.execute(
                f"CREATE TABLE {self.TABLE} ("
                "iov_id INTEGER PRIMARY KEY, name VARCHAR(48) NOT NULL, "
                "value DOUBLE, valid_from INTEGER NOT NULL, "
                "valid_to INTEGER NOT NULL, version INTEGER NOT NULL)"
            )
        self._next_id = 1 + max(
            (r[0] for r in db.execute(f"SELECT iov_id FROM {self.TABLE}").rows),
            default=0,
        )

    # -- writing -----------------------------------------------------------------

    def store(
        self,
        name: str,
        value: float,
        valid_from: int,
        valid_to: int = INFINITE_RUN,
    ) -> ConditionValue:
        """Store a value for [valid_from, valid_to].

        Overlapping intervals are allowed — the newest *version* wins at
        lookup, which is how real conditions DBs supersede bad uploads
        without deleting history.
        """
        if valid_to < valid_from:
            raise ReproError(
                f"invalid IOV [{valid_from}, {valid_to}] for {name!r}"
            )
        version = 1 + max(
            (
                r[0]
                for r in self.db.execute(
                    f"SELECT version FROM {self.TABLE} WHERE name = ?", (name,)
                ).rows
            ),
            default=0,
        )
        self.db.execute(
            f"INSERT INTO {self.TABLE} VALUES (?, ?, ?, ?, ?, ?)",
            (self._next_id, name, float(value), valid_from, valid_to, version),
        )
        self._next_id += 1
        return ConditionValue(name, float(value), valid_from, valid_to, version)

    # -- lookups -----------------------------------------------------------------------

    def lookup(self, name: str, run: int) -> ConditionValue:
        """The value of ``name`` valid at ``run`` (newest version wins)."""
        rows = self.db.execute(
            f"SELECT name, value, valid_from, valid_to, version FROM {self.TABLE} "
            f"WHERE name = ? AND ? BETWEEN valid_from AND valid_to "
            f"ORDER BY version DESC LIMIT 1",
            (name, run),
        ).rows
        if not rows:
            raise ReproError(f"no condition {name!r} valid at run {run}")
        return ConditionValue(*rows[0])

    def history(self, name: str) -> list[ConditionValue]:
        """Every stored interval for ``name``, oldest version first."""
        rows = self.db.execute(
            f"SELECT name, value, valid_from, valid_to, version FROM {self.TABLE} "
            f"WHERE name = ? ORDER BY version",
            (name,),
        ).rows
        return [ConditionValue(*r) for r in rows]

    def names(self) -> list[str]:
        return [
            r[0]
            for r in self.db.execute(
                f"SELECT DISTINCT name FROM {self.TABLE} ORDER BY name"
            ).rows
        ]

    def snapshot(self, run: int) -> dict[str, float]:
        """Every condition's effective value at ``run``."""
        out: dict[str, float] = {}
        for name in self.names():
            try:
                out[name] = self.lookup(name, run).value
            except ReproError:
                continue
        return out

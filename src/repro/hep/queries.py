"""Query workload generation for the grid analysis environment.

Produces deterministic mixes of the query shapes physicists actually
submit against ntuple marts: point lookups by event id, kinematic range
scans, per-run aggregates, local joins against run metadata, and
cross-server joins. Used by the query-mix benchmark and available to
downstream users for capacity studies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import DeterministicRNG

#: query-shape identifiers
KINDS = ("point", "range", "aggregate", "join", "distributed")


@dataclass(frozen=True)
class QuerySpec:
    """One generated query."""

    kind: str
    sql: str
    params: tuple = ()


@dataclass
class WorkloadConfig:
    """Shape of the data the workload runs against."""

    ntuple_table: str = "ntuple_a"
    runmeta_table: str = "runmeta_a"
    remote_ntuple_table: str = "ntuple_b"
    max_event_id: int = 3000
    max_run_id: int = 150
    energy_scale: float = 50.0


class QueryWorkload:
    """Deterministic generator of mixed analysis queries."""

    def __init__(self, rng: DeterministicRNG, config: WorkloadConfig | None = None):
        self.rng = rng
        self.config = config or WorkloadConfig()

    # -- individual shapes -------------------------------------------------------

    def point_lookup(self) -> QuerySpec:
        event = int(self.rng.integers(1, self.config.max_event_id + 1))
        return QuerySpec(
            "point",
            f"SELECT event_id, e, px, py FROM {self.config.ntuple_table} "
            f"WHERE event_id = {event}",
        )

    def range_scan(self) -> QuerySpec:
        width = int(self.rng.integers(50, 400))
        start = int(self.rng.integers(1, max(2, self.config.max_event_id - width)))
        return QuerySpec(
            "range",
            f"SELECT event_id, e FROM {self.config.ntuple_table} "
            f"WHERE event_id BETWEEN {start} AND {start + width}",
        )

    def aggregate(self) -> QuerySpec:
        cut = float(self.rng.uniform(0.2, 2.0)) * self.config.energy_scale
        return QuerySpec(
            "aggregate",
            f"SELECT run_id, COUNT(*) AS n, AVG(e) AS mean_e "
            f"FROM {self.config.ntuple_table} WHERE e < {cut:.3f} "
            f"GROUP BY run_id HAVING n > 0 ORDER BY n DESC LIMIT 10",
        )

    def local_join(self) -> QuerySpec:
        limit = int(self.rng.integers(20, 200))
        return QuerySpec(
            "join",
            f"SELECT n.event_id, m.detector FROM {self.config.ntuple_table} n "
            f"JOIN {self.config.runmeta_table} m ON n.run_id = m.run_id "
            f"WHERE n.event_id <= {limit}",
        )

    def distributed_join(self) -> QuerySpec:
        limit = int(self.rng.integers(20, 120))
        return QuerySpec(
            "distributed",
            f"SELECT a.event_id, a.e, b.e AS e_b "
            f"FROM {self.config.ntuple_table} a "
            f"JOIN {self.config.remote_ntuple_table} b ON a.event_id = b.event_id "
            f"WHERE a.event_id <= {limit} AND b.event_id <= {limit}",
        )

    _BUILDERS = {
        "point": point_lookup,
        "range": range_scan,
        "aggregate": aggregate,
        "join": local_join,
        "distributed": distributed_join,
    }

    # -- mixes ----------------------------------------------------------------------

    def generate(self, n: int, mix: dict[str, float] | None = None) -> list[QuerySpec]:
        """``n`` queries drawn from ``mix`` (kind → weight)."""
        mix = mix or {"point": 0.3, "range": 0.3, "aggregate": 0.2, "join": 0.2}
        kinds = sorted(mix)
        weights = [mix[k] for k in kinds]
        total = sum(weights)
        probabilities = [w / total for w in weights]
        out: list[QuerySpec] = []
        for _ in range(n):
            kind = str(self.rng.choice(kinds, p=probabilities))
            out.append(self._BUILDERS[kind](self))
        return out

    def by_kind(self, n_each: int) -> dict[str, list[QuerySpec]]:
        """``n_each`` queries of every kind, keyed by kind."""
        return {
            kind: [self._BUILDERS[kind](self) for _ in range(n_each)]
            for kind in KINDS
        }

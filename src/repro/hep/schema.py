"""Normalized source schema for ntuple data (§4.1).

Fully normalized: the ntuple values live in an entity-attribute-value
table (one row per event × variable), with runs, ntuple registry,
variable dictionary, calibration and conditions tables around it. This
is the "S schemas" half of the N×S problem: the same ntuple lives here
in third normal form and in the warehouse as a wide fact table.
"""

from __future__ import annotations

from repro.common.rng import DeterministicRNG
from repro.engine.database import Database
from repro.hep.ntuple import Ntuple

DETECTORS = ("TRACKER", "ECAL", "HCAL", "MUON")


def create_source_schema(db: Database) -> None:
    """Create the normalized schema on a source database."""
    db.execute(
        "CREATE TABLE runs (run_id INTEGER PRIMARY KEY, "
        "detector VARCHAR(24) NOT NULL, start_time VARCHAR(32), n_events INTEGER)"
    )
    db.execute(
        "CREATE TABLE ntuples (ntuple_id INTEGER PRIMARY KEY, "
        "run_id INTEGER NOT NULL, title VARCHAR(64), nvar INTEGER)"
    )
    db.execute(
        "CREATE TABLE variables (variable_id INTEGER PRIMARY KEY, "
        "ntuple_id INTEGER NOT NULL, var_index INTEGER, name VARCHAR(24), "
        "units VARCHAR(12))"
    )
    db.execute(
        "CREATE TABLE events (event_id BIGINT PRIMARY KEY, "
        "ntuple_id INTEGER NOT NULL, run_id INTEGER NOT NULL)"
    )
    db.execute(
        "CREATE TABLE event_values (event_id BIGINT NOT NULL, "
        "variable_id INTEGER NOT NULL, value DOUBLE)"
    )
    db.execute(
        "CREATE TABLE calibrations (calib_id INTEGER PRIMARY KEY, "
        "detector VARCHAR(24), channel INTEGER, gain DOUBLE, pedestal DOUBLE)"
    )
    db.execute(
        "CREATE TABLE conditions (condition_id INTEGER PRIMARY KEY, "
        "run_id INTEGER, name VARCHAR(40), value DOUBLE)"
    )


def populate_source(
    db: Database,
    rng: DeterministicRNG,
    ntuples_by_run: dict[int, Ntuple],
    first_event_id: int = 1,
    n_calibrations: int = 16,
    conditions_per_run: int = 3,
) -> int:
    """Load runs and their ntuples into the normalized schema.

    Returns the next free event id, so several sources can share one
    global event-id space (they must: the warehouse fact table keys on
    it).
    """
    # Key every id space off first_event_id so several sources loaded into
    # one warehouse never collide on fact-table primary keys.
    event_id = first_event_id
    ntuple_id = first_event_id
    variable_id = first_event_id
    condition_id = first_event_id
    for run_id, ntuple in sorted(ntuples_by_run.items()):
        detector = DETECTORS[run_id % len(DETECTORS)]
        db.bulk_insert(
            "runs",
            [[run_id, detector, f"2005-06-{(run_id % 28) + 1:02d}T00:00:00", ntuple.n_events]],
        )
        db.bulk_insert("ntuples", [[ntuple_id, run_id, ntuple.title, ntuple.nvar]])
        var_rows = []
        var_ids = []
        for index, name in enumerate(ntuple.variables):
            units = "GeV" if name in ("E", "PX", "PY", "PZ", "PT", "M") else ""
            var_rows.append([variable_id, ntuple_id, index, name, units])
            var_ids.append(variable_id)
            variable_id += 1
        db.bulk_insert("variables", var_rows)

        event_rows = []
        value_rows = []
        for row in ntuple.rows():
            event_rows.append([event_id, ntuple_id, run_id])
            for var_id, value in zip(var_ids, row):
                value_rows.append([event_id, var_id, value])
            event_id += 1
        db.bulk_insert("events", event_rows)
        db.bulk_insert("event_values", value_rows)

        condition_rows = []
        for k in range(conditions_per_run):
            condition_rows.append(
                [
                    condition_id,
                    run_id,
                    ("hv_setting", "temperature", "b_field")[k % 3],
                    float(rng.normal(1.0, 0.05)),
                ]
            )
            condition_id += 1
        db.bulk_insert("conditions", condition_rows)
        ntuple_id += 1

    calib_rows = []
    for c in range(n_calibrations):
        calib_rows.append(
            [
                first_event_id + c,
                DETECTORS[c % len(DETECTORS)],
                c,
                float(rng.normal(1.0, 0.02)),
                float(rng.normal(0.0, 0.5)),
            ]
        )
    db.bulk_insert("calibrations", calib_rows)
    return event_id

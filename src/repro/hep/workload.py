"""Workload construction: tier sources, ETL jobs and sizing helpers."""

from __future__ import annotations

from repro.common.errors import ETLError
from repro.common.rng import DeterministicRNG
from repro.engine.database import Database
from repro.engine.storage import estimate_row_bytes
from repro.hep.ntuple import generate_ntuple
from repro.hep.schema import create_source_schema, populate_source
from repro.warehouse.etl import ETLJob
from repro.warehouse.schema import var_columns


def build_tier_sources(
    rng: DeterministicRNG,
    n_runs: int = 4,
    events_per_run: int = 50,
    nvar: int = 8,
) -> tuple[Database, Database]:
    """The paper's two sources: Oracle @ Tier-1 (CERN), MySQL @ Tier-2.

    Runs are split between the tiers; event ids are globally unique so
    the warehouse can integrate both.
    """
    tier1 = Database("tier1_source", "oracle")
    tier2 = Database("tier2_source", "mysql")
    create_source_schema(tier1)
    create_source_schema(tier2)
    split = max(1, n_runs // 2)
    tier1_ntuples = {
        run_id: generate_ntuple(
            rng.fork(f"run{run_id}"), events_per_run, nvar, f"run{run_id}_ntuple"
        )
        for run_id in range(1, split + 1)
    }
    tier2_ntuples = {
        run_id: generate_ntuple(
            rng.fork(f"run{run_id}"), events_per_run, nvar, f"run{run_id}_ntuple"
        )
        for run_id in range(split + 1, n_runs + 1)
    }
    next_id = populate_source(tier1, rng.fork("t1"), tier1_ntuples)
    populate_source(tier2, rng.fork("t2"), tier2_ntuples, first_event_id=next_id)
    return tier1, tier2


# -- the denormalizing transform -------------------------------------------------------

#: SQL that streams the EAV triples out of a normalized source
EAV_EXTRACT_SQL = (
    "SELECT e.event_id, e.run_id, r.detector, v.var_index, ev.value "
    "FROM events e "
    "JOIN event_values ev ON e.event_id = ev.event_id "
    "JOIN variables v ON ev.variable_id = v.variable_id "
    "JOIN runs r ON e.run_id = r.run_id "
    "ORDER BY e.event_id, v.var_index"
)


def pivot_eav(nvar: int):
    """EAV triples → wide fact rows (the ETL 'transformation' step).

    Input rows: (event_id, run_id, detector, var_index, value), sorted
    by event then index. Output: (event_id, run_id, detector, var_0,
    ..., var_{nvar-1}); missing indices become NULL.
    """

    def transform(columns: list[str], rows: list[tuple]):
        expected = ["event_id", "run_id", "detector", "var_index", "value"]
        if [c.lower() for c in columns] != expected:
            raise ETLError(f"pivot expects columns {expected}, got {columns}")
        out_columns = ["event_id", "run_id", "detector"] + var_columns(nvar)
        out_rows: list[tuple] = []
        current_key = None
        current: list | None = None
        for event_id, run_id, detector, var_index, value in rows:
            if event_id != current_key:
                if current is not None:
                    out_rows.append(tuple(current))
                current = [event_id, run_id, detector] + [None] * nvar
                current_key = event_id
            if 0 <= var_index < nvar:
                current[3 + var_index] = value
        if current is not None:
            out_rows.append(tuple(current))
        return out_columns, out_rows

    return transform


def etl_jobs_for_source(source: Database, source_host: str, nvar: int) -> list[ETLJob]:
    """The ETL jobs that integrate one normalized source into the warehouse."""
    return [
        ETLJob(
            source=source,
            source_host=source_host,
            query=EAV_EXTRACT_SQL,
            target_table="event_fact",
            transform=pivot_eav(nvar),
        ),
        ETLJob(
            source=source,
            source_host=source_host,
            query="SELECT run_id, detector, start_time, n_events FROM runs",
            target_table="run_dim",
        ),
        ETLJob(
            source=source,
            source_host=source_host,
            query="SELECT calib_id, detector, channel, gain, pedestal FROM calibrations",
            target_table="calib_fact",
        ),
        ETLJob(
            source=source,
            source_host=source_host,
            query="SELECT condition_id, run_id, name, value FROM conditions",
            target_table="condition_fact",
        ),
    ]


def events_for_target_kb(target_kb: float, nvar: int) -> int:
    """How many events make ~``target_kb`` of staged wide-row bytes.

    Calibrated empirically: generates a small sample ntuple, pivots it,
    and measures the real average wide-row footprint — so the ETL
    benches land on the paper's Figure 4/5 x-axis points.
    """
    sample = generate_ntuple(DeterministicRNG("sizing-probe"), 64, nvar)
    rows = [
        tuple([10_000 + i, (i % 4) + 1, "TRACKER"] + list(map(float, sample.data[i])))
        for i in range(sample.n_events)
    ]
    per_event = sum(estimate_row_bytes(r) for r in rows) / len(rows)
    return max(1, round(target_kb * 1000.0 / per_event))

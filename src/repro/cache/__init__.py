"""Multi-level federated query caching with XSpec-epoch invalidation.

Opt-in (``cache=True`` on :func:`GridFederation.create_server`,
:class:`DataAccessService` or :class:`UnityDriver`): three cache levels
— decomposition plans, per-database sub-query results, and forwarded
remote answers — invalidated by per-database epochs that the §4.9
schema tracker (md5 diff), the ETL pipeline and the mart materializer
bump on every change. With caching off, none of these objects are ever
allocated and the query pipeline is byte-for-byte the prototype's.
"""

from repro.cache.epochs import EpochRegistry
from repro.cache.manager import CacheManager, PlanEntry, normalize_sql
from repro.cache.remote import RemoteAnswerCache
from repro.cache.store import LRUCache

__all__ = [
    "CacheManager",
    "EpochRegistry",
    "LRUCache",
    "PlanEntry",
    "RemoteAnswerCache",
    "normalize_sql",
]

"""The byte-budgeted LRU store shared by all three cache levels.

Entries carry an approximate byte footprint (rows sized through
:func:`repro.engine.storage.estimate_row_bytes`) and an optional *tag*
— the database a cached result depends on — so an epoch bump can flush
exactly the affected database's entries while the LRU + byte budget
handles everything else.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable


@dataclass
class _Entry:
    value: object
    nbytes: int
    tag: str | None


class LRUCache:
    """An ordered key→value store with entry and byte budgets."""

    def __init__(
        self,
        max_entries: int,
        max_bytes: int | None = None,
        on_evict: Callable[[int], None] | None = None,
    ):
        if max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.on_evict = on_evict
        self._entries: OrderedDict[object, _Entry] = OrderedDict()
        self.bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries

    def get(self, key):
        """The cached value, freshened to most-recently-used; None on miss."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        self._entries.move_to_end(key)
        return entry.value

    def put(self, key, value, nbytes: int = 0, tag: str | None = None) -> None:
        """Insert/replace ``key``, then evict LRU entries over budget."""
        old = self._entries.pop(key, None)
        if old is not None:
            self.bytes -= old.nbytes
        self._entries[key] = _Entry(value, nbytes, tag)
        self.bytes += nbytes
        evicted = 0
        while len(self._entries) > self.max_entries or (
            self.max_bytes is not None and self.bytes > self.max_bytes
        ):
            if len(self._entries) == 1:
                break  # never evict the entry just inserted
            _, dropped = self._entries.popitem(last=False)
            self.bytes -= dropped.nbytes
            evicted += 1
        if evicted and self.on_evict is not None:
            self.on_evict(evicted)

    def remove(self, key) -> bool:
        """Drop one key; True when it was present."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self.bytes -= entry.nbytes
        return True

    def invalidate_tag(self, tag: str) -> int:
        """Drop every entry tagged with ``tag``; returns the count."""
        dead = [k for k, e in self._entries.items() if e.tag == tag]
        for key in dead:
            self.bytes -= self._entries.pop(key).nbytes
        return len(dead)

    def clear(self) -> int:
        """Drop everything; returns the number of entries dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        self.bytes = 0
        return dropped

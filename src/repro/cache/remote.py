"""Level 3: the remote-answer cache at the Clarens client.

When a data access service forwards a logical sub-query to the remote
JClarens server that publishes the table, the full answer (columns,
types, rows) comes back over the wire. Repeating that forwarded call is
the single most expensive cache miss in the federation — it pays RLS
resolution amortization, the WAN/LAN round-trip, remote execution and
per-row encode/decode. This cache sits inside :class:`ClarensClient`
and intercepts repeat calls to cacheable methods.

Freshness is enforced two ways, both checked on every hit:

* **epoch generation** — the local :class:`EpochRegistry`'s global
  ``generation`` must not have moved since the answer was stored (the
  origin cannot see a remote peer's per-database epochs, so any local
  invalidation event conservatively flushes remote answers too);
* **TTL** — a simulated-clock deadline bounds how long a remote
  server's unseen changes can go unnoticed.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.cache.epochs import EpochRegistry
from repro.cache.store import LRUCache
from repro.engine.storage import estimate_row_bytes


@dataclass
class _Answer:
    value: object
    generation: int
    deadline_ms: float


def _answer_bytes(value) -> int:
    """Approximate footprint of a wire answer (row payload + envelope)."""
    nbytes = 256
    if isinstance(value, dict):
        for row in value.get("rows", ()):
            nbytes += estimate_row_bytes(tuple(row))
    return nbytes


class RemoteAnswerCache:
    """TTL-bounded, epoch-checked memo of remote Clarens answers."""

    #: methods whose answers are pure functions of (args, remote data)
    CACHEABLE_METHODS = frozenset({"dataaccess.query"})

    def __init__(
        self,
        clock,
        epochs: EpochRegistry,
        metrics=None,
        ttl_ms: float = 30_000.0,
        max_entries: int = 512,
        max_bytes: int = 8 << 20,
    ):
        self.clock = clock
        self.epochs = epochs
        self.metrics = metrics
        self.ttl_ms = ttl_ms
        self._lru = LRUCache(max_entries, max_bytes, on_evict=self._count_evictions)

    def _count(self, name: str, n: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(n)

    def _count_evictions(self, n: int) -> None:
        self._count("cache.evictions", n)

    # -- the client-facing API ------------------------------------------------

    def cacheable(self, method: str) -> bool:
        return method in self.CACHEABLE_METHODS

    def key(self, server_name: str, method: str, args: tuple):
        return (server_name, method, repr(args))

    @property
    def now_ms(self) -> float:
        return self.clock.now_ms if self.clock is not None else 0.0

    def get(self, key):
        """The cached answer (deep copy) or None when absent/stale."""
        answer = self._lru.get(key)
        if answer is None:
            self._count("cache.remote.misses")
            return None
        if answer.generation != self.epochs.generation or self.now_ms > answer.deadline_ms:
            self._lru.remove(key)
            self._count("cache.remote.misses")
            self._count("cache.invalidations")
            return None
        self._count("cache.remote.hits")
        # deep copy: callers own the answer and may mutate it freely
        return copy.deepcopy(answer.value)

    def put(self, key, value) -> None:
        self._lru.put(
            key,
            _Answer(
                value=copy.deepcopy(value),
                generation=self.epochs.generation,
                deadline_ms=self.now_ms + self.ttl_ms,
            ),
            nbytes=_answer_bytes(value),
        )

    # -- maintenance ----------------------------------------------------------

    def flush(self) -> int:
        """Drop every cached answer; returns the count dropped."""
        return self._lru.clear()

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def bytes(self) -> int:
        return self._lru.bytes

"""The cache manager: plan cache + sub-result cache + remote answers.

One :class:`CacheManager` serves one data access service (or one Unity
driver). It owns the three levels the read-mostly analysis workload
pays for repeatedly:

1. **plan cache** — normalized SQL text + dictionary generation →
   parsed select, decomposition plan and discovered remote servers.
   A hit skips SQL parse, decomposition (``DECOMPOSE_MS``) and the
   per-query XSpec metadata parse the §4.2 criticism describes (the
   metadata travels with the plan).
2. **sub-result cache** — ``(database, physical SQL, params, epoch)``
   → the sub-query's (columns, types, rows). A hit costs
   ``CACHE_HIT_MS`` instead of connect + execute + transfer.
3. **remote answers** — owned here, installed into the service's peer
   :class:`ClarensClient` (see :mod:`repro.cache.remote`).

Invalidation is event-driven through the :class:`EpochRegistry`: the
§4.9 md5 tracker bumps a database's epoch on schema change, the ETL
pipeline and mart materializer bump it on data refresh. Bumps flush
exactly the affected database's sub-results (the epoch in the key makes
stale entries unreachable even before the flush); dictionary changes
(register/unregister/discovery/schema change) flush the plan cache via
``bump_dictionary``. Everything else is LRU + byte-budget eviction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.epochs import EpochRegistry
from repro.cache.remote import RemoteAnswerCache
from repro.cache.store import LRUCache
from repro.engine.storage import estimate_row_bytes
from repro.obs.metrics import MetricsRegistry
from repro.sql import ast


def normalize_sql(sql) -> str:
    """Whitespace-normalized query text — the plan cache's key."""
    if isinstance(sql, ast.Select):
        return sql.unparse()
    return " ".join(str(sql).split())


@dataclass(frozen=True)
class PlanEntry:
    """One cached planning outcome."""

    select: ast.Select
    plan: object  # DecomposedQuery
    remote_servers: frozenset
    generation: int


class CacheManager:
    """All three cache levels plus their shared invalidation clock."""

    def __init__(
        self,
        clock=None,
        metrics: MetricsRegistry | None = None,
        epochs: EpochRegistry | None = None,
        plan_entries: int = 256,
        sub_entries: int = 1024,
        sub_bytes: int = 16 << 20,
        remote_entries: int = 512,
        remote_bytes: int = 8 << 20,
        remote_ttl_ms: float = 30_000.0,
    ):
        self.clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.epochs = epochs if epochs is not None else EpochRegistry()
        self.epochs.subscribe(self._on_epoch_bump)
        #: bumped whenever the data dictionary changes; keys plan entries
        self.dict_generation = 0
        self.plan = LRUCache(plan_entries, on_evict=self._count_evictions)
        self.sub = LRUCache(sub_entries, sub_bytes, on_evict=self._count_evictions)
        self.remote = RemoteAnswerCache(
            clock,
            self.epochs,
            self.metrics,
            ttl_ms=remote_ttl_ms,
            max_entries=remote_entries,
            max_bytes=remote_bytes,
        )

    # -- metrics plumbing -----------------------------------------------------

    def _count(self, name: str, n: float = 1.0) -> None:
        self.metrics.counter(name).inc(n)

    def _count_evictions(self, n: int) -> None:
        self._count("cache.evictions", n)

    def record_hit_latency(self, ms: float) -> None:
        """Feed the hit-latency histogram (simulated milliseconds)."""
        self.metrics.histogram("cache.hit_ms").observe(ms)

    # -- level 1: plan cache --------------------------------------------------

    def get_plan(self, key) -> PlanEntry | None:
        entry = self.plan.get(key)
        if entry is not None and entry.generation != self.dict_generation:
            self.plan.remove(key)
            entry = None
        self._count("cache.plan.hits" if entry is not None else "cache.plan.misses")
        return entry

    def put_plan(self, key, select: ast.Select, plan, remote_servers=()) -> None:
        self.plan.put(
            key,
            PlanEntry(
                select=select,
                plan=plan,
                remote_servers=frozenset(remote_servers),
                generation=self.dict_generation,
            ),
        )

    def bump_dictionary(self) -> None:
        """The dictionary changed: every cached plan is now suspect."""
        self.dict_generation += 1
        dropped = self.plan.clear()
        if dropped:
            self._count("cache.invalidations", dropped)

    # -- level 2: sub-query result cache --------------------------------------

    def sub_key(self, sub, params: tuple):
        """Key for one local sub-query: schema epoch rides in the key."""
        database = sub.location.database_name
        return (database, sub.sql, repr(params), self.epochs.epoch(database))

    def lookup_sub(self, key):
        """Cached (columns, types, rows, via) or None; counts hit/miss."""
        hit = self.sub.get(key)
        self._count("cache.sub.hits" if hit is not None else "cache.sub.misses")
        return hit

    def store_sub(self, key, result, tag: str) -> None:
        columns, types, rows, via = result
        nbytes = sum(estimate_row_bytes(r) for r in rows) + 128
        self.sub.put(key, (list(columns), list(types), list(rows), via), nbytes, tag)

    # -- invalidation ----------------------------------------------------------

    def _on_epoch_bump(self, database: str) -> None:
        """Flush exactly the bumped database's entries (plus remote answers,
        which are generation-checked and cannot be attributed per-database)."""
        dropped = self.sub.invalidate_tag(database)
        dropped += self.remote.flush()
        if dropped:
            self._count("cache.invalidations", dropped)

    # -- reporting -------------------------------------------------------------

    def stats(self) -> dict:
        """Wire-safe effectiveness summary (``dataaccess.stats`` block)."""
        count = lambda name: int(self.metrics.counter(name).value)  # noqa: E731

        def level(name: str, lru_len: int, lru_bytes: int) -> dict:
            hits = count(f"cache.{name}.hits")
            misses = count(f"cache.{name}.misses")
            total = hits + misses
            return {
                "entries": lru_len,
                "bytes": lru_bytes,
                "hits": hits,
                "misses": misses,
                "hit_rate": round(hits / total, 4) if total else 0.0,
            }

        return {
            "plan": level("plan", len(self.plan), 0),
            "sub": level("sub", len(self.sub), self.sub.bytes),
            "remote": level("remote", len(self.remote), self.remote.bytes),
            "evictions": count("cache.evictions"),
            "invalidations": count("cache.invalidations"),
            "epoch_generation": self.epochs.generation,
            "dict_generation": self.dict_generation,
        }

    def stat_rows(self) -> list[tuple[str, str, float]]:
        """(level, stat, value) rows — the ``monitor_cache`` table shape."""
        rows: list[tuple[str, str, float]] = []
        stats = self.stats()
        for name in ("plan", "sub", "remote"):
            for stat, value in stats[name].items():
                rows.append((name, stat, float(value)))
        for stat in ("evictions", "invalidations", "epoch_generation", "dict_generation"):
            rows.append(("all", stat, float(stats[stat])))
        return rows

"""Per-database cache epochs — the invalidation clock of `repro.cache`.

The paper's §4.9 schema tracker already answers *when did database X
change*: it regenerates the XSpec and compares size, then md5. We turn
that binary signal (plus the ETL/mart data-refresh events the paper's
warehouse pipeline produces) into a monotonically increasing **epoch**
per database. Cache keys embed the epoch of every database they depend
on, so an epoch bump makes all dependent entries unreachable instantly;
subscribers additionally flush the dead entries eagerly so the byte
budget is returned.

``generation`` is the global change counter (bumped on *any* database's
epoch bump); the remote-answer cache checks it because an origin server
cannot see a remote peer's per-database epochs.
"""

from __future__ import annotations

from typing import Callable


class EpochRegistry:
    """Monotonic per-database change counters with bump subscriptions."""

    def __init__(self) -> None:
        self._epochs: dict[str, int] = {}
        #: global change counter: increases on every bump of any database
        self.generation = 0
        self._subscribers: list[Callable[[str], None]] = []

    def epoch(self, database: str) -> int:
        """Current epoch of ``database`` (0 for a never-bumped one)."""
        return self._epochs.get(database, 0)

    def bump(self, database: str) -> int:
        """Advance ``database``'s epoch; notifies every subscriber."""
        new = self._epochs.get(database, 0) + 1
        self._epochs[database] = new
        self.generation += 1
        for callback in self._subscribers:
            callback(database)
        return new

    def subscribe(self, callback: Callable[[str], None]) -> None:
        """``callback(database)`` fires after every epoch bump."""
        self._subscribers.append(callback)

    def as_dict(self) -> dict:
        """Wire-safe snapshot: per-database epochs + global generation."""
        return {
            "generation": self.generation,
            "epochs": {name: e for name, e in sorted(self._epochs.items())},
        }

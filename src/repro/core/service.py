"""The Data Access Service — the heart of the middleware (§4.5).

One instance lives inside each JClarens server. It owns the local data
dictionary (built from XSpecs at registration time), the POOL-RAL
handle cache, the schema tracker and the routing policy. Incoming
queries are decomposed; sub-queries for locally registered databases
run through POOL-RAL or JDBC; sub-queries for tables registered
elsewhere are resolved through the central RLS and forwarded to the
remote JClarens server, whose results come back over the wire. Remote
servers work concurrently — distributing load is the whole point of
publishing table locations to the RLS (§4.8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clarens.client import ClarensClient
from repro.clarens.server import ClarensServer, ClarensService
from repro.common.errors import (
    ClarensFault,
    ConnectionFailedError,
    FederationError,
    TableNotRegisteredError,
)
from repro.common.types import SQLType
from repro.core.router import SubQueryRouter
from repro.driver.directory import Directory
from repro.metadata.dictionary import DataDictionary
from repro.metadata.tracker import SchemaTracker
from repro.metadata.xspec import LowerXSpec
from repro.net import costs
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NOOP_SPAN, QueryRecord, Tracer
from repro.poolral.ral import PoolRAL
from repro.rls.client import RLSClient
from repro.sql import ast
from repro.sql.parser import parse_select
from repro.unity.decompose import SubQuery, decompose
from repro.unity.driver import execute_plan


@dataclass
class QueryAnswer:
    """A fully integrated answer plus provenance for tests/benches."""

    columns: list[str]
    types: list[SQLType]
    rows: list[tuple]
    distributed: bool
    databases: tuple[str, ...]
    servers_accessed: int
    tables_accessed: int
    routes: list[str] = field(default_factory=list)
    #: per-sub-query provenance (timings, replica host) — see SubQueryTrace
    traces: list = field(default_factory=list)
    #: True when an ``allow_partial`` query lost at least one sub-query
    #: branch — the rows are an under-approximation, never silently so
    partial: bool = False
    #: per-failed-sub-query provenance (see resilience.SubQueryFailure)
    failures: list = field(default_factory=list)
    #: per-operator cost breakdown (obs.profiler.QueryProfile) when the
    #: serving service observes; None otherwise
    profile: object = None

    @property
    def row_count(self) -> int:
        """Number of result rows."""
        return len(self.rows)

    def to_vector(self) -> list[list]:
        """The rows as a plain 2-D list (the paper's result shape)."""
        return [list(r) for r in self.rows]

    def column_index(self, name: str) -> int:
        """Index of a result column by (case-insensitive) name."""
        lowered = name.lower()
        for i, c in enumerate(self.columns):
            if c.lower() == lowered:
                return i
        raise KeyError(name)


class DataAccessService(ClarensService):
    """The Clarens-hosted data access layer of one JClarens instance."""

    service_name = "dataaccess"
    exposed = (
        "query", "describe", "tables", "ping", "plugin", "explain", "stats",
        "lint", "trace", "metrics", "profile", "health",
    )

    def __init__(
        self,
        server: ClarensServer,
        directory: Directory,
        rls_client: RLSClient | None = None,
        server_resolver=None,
        force_jdbc: bool = False,
        replica_selection: bool = False,
        schema_poll_interval_ms: float | None = None,
        jdbc_pooling: bool = False,
        preflight: bool = False,
        observe: bool = False,
        cache: bool = False,
        epochs=None,
        resilience=False,
        slos=None,
    ):
        self.preflight = preflight
        self.server_ = server  # 'server' attr is set by register_service too
        self.directory = directory
        self.rls = rls_client
        self.server_resolver = server_resolver
        self.dictionary = DataDictionary()
        self.ral = PoolRAL(directory, server.clock)
        self.tracker = SchemaTracker()
        self.tracker.subscribe(self._on_schema_change)
        #: single source of truth for operational counters (always on —
        #: stats() is a view over it); callable, so it doubles as the
        #: ``dataaccess.metrics`` wire method.
        self.metrics = MetricsRegistry()
        jdbc_pool = None
        if jdbc_pooling:
            from repro.driver.pool import ConnectionPool

            jdbc_pool = ConnectionPool(directory, clock=server.clock)
        self.router = SubQueryRouter(
            ral=self.ral,
            directory=directory,
            clock=server.clock,
            network=server.network,
            host=server.host,
            force_jdbc=force_jdbc,
            remote_fetch=self._remote_fetch,
            jdbc_pool=jdbc_pool,
            metrics=self.metrics,
        )
        self._peer_client = ClarensClient(server.host, server.network, server.clock)
        self._service_url = f"clarens://{server.host}/{server.name}"
        # Multi-level query caching is opt-in: with cache off, no cache
        # objects exist and every query walks the prototype's cold path.
        self.cache = None
        if cache:
            from repro.cache import CacheManager

            self.cache = CacheManager(
                clock=server.clock, metrics=self.metrics, epochs=epochs
            )
            # level 3 rides inside the peer client, where forwarded
            # sub-queries pay the wire
            self._peer_client.answer_cache = self.cache.remote
            # the §4.9 tracker is the schema-side invalidation source
            self.tracker.epochs = self.cache.epochs
        # §4.9's "after a fixed interval of time, a thread is run": in
        # virtual time the poll fires lazily once the interval elapsed.
        self.schema_poll_interval_ms = schema_poll_interval_ms
        self._last_schema_poll_ms = 0.0
        self.replica_selector = None
        if replica_selection:
            from repro.core.replicas import ReplicaSelector

            self.replica_selector = ReplicaSelector(
                server.network, directory, server.host
            )
        # Retry/backoff + circuit breakers are opt-in: with resilience
        # off, no manager or breaker objects exist and every failure
        # path behaves exactly as the prototype's single bare retry.
        self.resilience = None
        if resilience:
            from repro.resilience import ResilienceConfig, ResilienceManager

            config = resilience if isinstance(resilience, ResilienceConfig) else None
            self.resilience = ResilienceManager(
                clock=server.clock, metrics=self.metrics, config=config
            )
            if rls_client is not None:
                rls_client.resilience = self.resilience
        # Span tracing + R-GMA monitor tables + the obs v2 analysis
        # layers (profiler, archiver, SLO engine) are opt-in: with
        # observe off, none of these objects is ever allocated.
        self.tracer: Tracer | None = None
        self.monitor = None
        self.profiler = None
        self.archiver = None
        self.slo = None
        if observe:
            from repro.obs.archive import MetricsArchiver
            from repro.obs.monitor import MonitorDatabase
            from repro.obs.profiler import QueryProfiler
            from repro.obs.slo import SLOEngine

            self.tracer = Tracer(server.clock, server.name)
            self.profiler = QueryProfiler(server.clock)
            self.archiver = MetricsArchiver(self.metrics, server.clock)
            self.slo = SLOEngine(
                self.archiver,
                clock=server.clock,
                slos=slos,
                resilience=self.resilience,
                cache=self.cache,
            )
            self.monitor = MonitorDatabase(
                f"monitor_{server.name}",
                tracer=self.tracer,
                metrics=self.metrics,
                cache=self.cache,
                resilience=self.resilience,
                clock=server.clock,
                profiler=self.profiler,
                archiver=self.archiver,
                slo=self.slo,
            )
            server.network.add_observer(self._on_transfer)
            if rls_client is not None:
                rls_client.tracer = self.tracer
            if self.resilience is not None:
                self.resilience.tracer = self.tracer
        # failed transfers must be visible in dataaccess.metrics even
        # without tracing — the partition-timeout path counts here
        server.network.add_failure_observer(self._on_transfer_failed)
        if rls_client is not None:
            rls_client.metrics = self.metrics

    # ------------------------------------------------------------------
    # administration (local only — not web-exposed)
    # ------------------------------------------------------------------

    @property
    def service_url(self) -> str:
        """This service's clarens:// address (as published to the RLS)."""
        return self._service_url

    @property
    def clock(self):
        """The server's virtual clock."""
        return self.server_.clock

    @property
    def queries_served(self) -> int:
        """Successfully answered queries (view over the metrics registry)."""
        return int(self.metrics.counter("queries").value)

    # ------------------------------------------------------------------
    # observability plumbing
    # ------------------------------------------------------------------

    def _span(self, stage: str, **attrs):
        """A tracer span, or the shared no-op when tracing is off."""
        if self.tracer is None:
            return NOOP_SPAN
        return self.tracer.span(stage, **attrs)

    def _observe_tick(self) -> None:
        """Archive a metrics snapshot when the cadence interval elapsed.

        The virtual clock has no background threads — like the §4.9
        schema poll, the archiver's cadence fires lazily from the query
        path. Each snapshot triggers one SLO evaluation pass so burn
        alerts track the archive, not the instant.
        """
        if self.archiver is not None and self.archiver.maybe_snapshot():
            self.slo.evaluate()

    def _on_transfer(self, src: str, dst: str, nbytes: int, ms: float) -> None:
        """Network observer: account link traffic touching this host."""
        host = self.server_.host
        if host != src and host != dst:
            return
        self.metrics.counter(f"net.bytes.{src}->{dst}").inc(nbytes)
        self.metrics.counter("net.messages").inc()
        if self.tracer is not None and self.tracer.active is not None:
            end = self.tracer.now_ms
            self.tracer.record(
                "transfer", end - ms, end, src=src, dst=dst, bytes=int(nbytes)
            )

    def _on_transfer_failed(self, src: str, dst: str, nbytes: int, ms: float) -> None:
        """Network failure observer: account partition timeouts."""
        host = self.server_.host
        if host != src and host != dst:
            return
        self.metrics.counter("net.partition_timeouts").inc()
        if self.tracer is not None and self.tracer.active is not None:
            end = self.tracer.now_ms
            self.tracer.record(
                "transfer_failed", end - ms, end, src=src, dst=dst, bytes=int(nbytes)
            )

    def _host_of(self, url: str) -> str | None:
        """Host name serving a database URL (for span/trace labelling)."""
        try:
            return self.directory.lookup(url).host_name
        except Exception:  # noqa: BLE001 - labelling must never fail a query
            return None

    def register_database(
        self,
        url: str,
        logical_names: dict[str, str] | None = None,
        publish: bool = True,
    ) -> LowerXSpec:
        """Register a locally reachable database with this service.

        Generates the lower XSpec, adds it to the local dictionary,
        publishes the logical table names to the RLS, initializes a
        POOL-RAL handle when the vendor is supported, and starts schema
        tracking.
        """
        binding = self.directory.lookup(url)
        spec = self.tracker.watch(binding.database, logical_names)
        self.dictionary.add_database(spec, url)
        if self.cache is not None:
            self.cache.bump_dictionary()
        if self.ral.supports_url(url):
            self.ral.initialize(url, binding.user, binding.password)
        if publish and self.rls is not None:
            self.rls.publish_many(spec.logical_table_names(), self._service_url)
        return spec

    def unregister_database(self, database_name: str) -> None:
        """Remove a database: dictionary, tracker, RLS and POOL handle."""
        spec = self.dictionary.spec_for(database_name)
        url = self.dictionary.url_for(database_name)
        if self.rls is not None:
            for table in spec.logical_table_names():
                self.rls.server.unpublish(table, self._service_url)
        self.dictionary.remove_database(database_name)
        self.tracker.unwatch(database_name)
        self.ral.release(url)
        if self.cache is not None:
            self.cache.bump_dictionary()
            self.cache.epochs.bump(database_name)

    def _on_schema_change(self, database_name: str, new_spec: LowerXSpec) -> None:
        """Tracker callback: refresh dictionary and RLS publications.

        The tracker itself bumps the database's cache epoch (the §4.9
        md5 diff is the invalidation event); here only the plan cache
        needs flushing, because the refreshed dictionary may decompose
        queries differently.
        """
        if self.cache is not None:
            self.cache.bump_dictionary()
        url = self.dictionary.url_for(database_name)
        old_tables = set(self.dictionary.spec_for(database_name).logical_table_names())
        self.dictionary.add_database(new_spec, url)
        if self.rls is not None:
            new_tables = set(new_spec.logical_table_names())
            for gone in old_tables - new_tables:
                self.rls.server.unpublish(gone, self._service_url)
            added = sorted(new_tables - old_tables)
            if added:
                self.rls.publish_many(added, self._service_url)

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------

    def _run_preflight(self, select: ast.Select) -> bool:
        """Static pre-flight lint: reject before any sub-query ships.

        Returns True when the check ran. A query touching a table this
        server does not yet know is deferred (returns False) — the
        caller re-runs the check once RLS discovery has registered the
        remote tables, still before any sub-query data moves.
        """
        if any(
            not self.dictionary.has_table(ref.name)
            for ref in select.referenced_tables()
        ):
            return False
        from repro.common.errors import PreflightError
        from repro.lint import DictionarySchema, lint_select

        report = lint_select(select, DictionarySchema(self.dictionary))
        if not report.ok:
            self.metrics.counter("preflight_rejections").inc()
            raise PreflightError(report.errors)
        return True

    def execute(
        self,
        sql: str | ast.Select,
        params: tuple = (),
        no_forward: bool = False,
        allow_partial: bool = False,
    ) -> QueryAnswer:
        """Execute a logical-name query; the local (non-RPC) entry point.

        With ``allow_partial=True``, a sub-query whose every replica and
        retry is exhausted degrades to zero rows instead of failing the
        whole query: the answer comes back ``partial=True`` with one
        :class:`~repro.resilience.SubQueryFailure` per lost branch.
        """
        self._maybe_poll_schemas()
        if self.resilience is not None:
            # arm the per-query retry deadline budget from this instant
            self.resilience.start_deadline()
        plan_key = None
        cached_plan = None
        if self.cache is not None:
            from repro.cache import normalize_sql

            plan_key = normalize_sql(sql)
            cached_plan = self.cache.get_plan(plan_key)
        if cached_plan is not None:
            select = cached_plan.select
        else:
            select = parse_select(sql) if isinstance(sql, str) else sql
        tracer = self.tracer
        start_ms = self.clock.now_ms if self.clock is not None else 0.0
        if tracer is None:
            try:
                answer = self._execute_query(
                    select, params, no_forward, None, plan_key, cached_plan,
                    allow_partial,
                )
            except Exception:
                self.metrics.counter("query_errors").inc()
                raise
            self._account_query(answer, start_ms)
            return answer
        self._observe_tick()
        span_mark = len(tracer.spans)
        with tracer.span("query") as root:
            root.set("sql", select.unparse())
            try:
                answer = self._execute_query(
                    select, params, no_forward, root, plan_key, cached_plan,
                    allow_partial,
                )
            except Exception as exc:
                self.metrics.counter("query_errors").inc()
                duration = (
                    self.clock.now_ms - start_ms if self.clock is not None else 0.0
                )
                tracer.queries.append(
                    QueryRecord(
                        trace_id=root.trace_id,
                        server=self.server_.name,
                        sql=select.unparse(),
                        distributed=False,
                        row_count=0,
                        duration_ms=duration,
                        servers=0,
                        status=f"error: {type(exc).__name__}",
                        end_ms=start_ms + duration,
                    )
                )
                self._observe_tick()
                raise
        duration = self.clock.now_ms - start_ms if self.clock is not None else 0.0
        self._account_query(answer, start_ms)
        tracer.queries.append(
            QueryRecord(
                trace_id=root.trace_id,
                server=self.server_.name,
                sql=select.unparse(),
                distributed=answer.distributed,
                row_count=answer.row_count,
                duration_ms=duration,
                servers=answer.servers_accessed,
                status="partial" if answer.partial else "ok",
                end_ms=start_ms + duration,
            )
        )
        if self.profiler is not None and root.parent_id is None:
            # fold this query's finished span tree (imported remote
            # spans included) into the per-operator cost model
            answer.profile = self.profiler.record(
                root,
                [s for s in tracer.spans[span_mark:] if s.trace_id == root.trace_id],
                shape=select.unparse(),
            )
        self._observe_tick()
        return answer

    def _account_query(self, answer: QueryAnswer, start_ms: float) -> None:
        """Fold one successful query into the metrics registry."""
        self.metrics.counter("queries").inc()
        if answer.partial:
            self.metrics.counter("partial_answers").inc()
        if answer.distributed:
            self.metrics.counter("queries_distributed").inc()
        self.metrics.counter("rows_returned").inc(answer.row_count)
        if self.clock is not None:
            self.metrics.histogram("query_ms").observe(self.clock.now_ms - start_ms)

    def _execute_query(
        self,
        select: ast.Select,
        params: tuple,
        no_forward: bool,
        root_span,
        plan_key=None,
        cached_plan=None,
        allow_partial: bool = False,
    ) -> QueryAnswer:
        """The query pipeline: preflight → decompose → fetch → merge.

        On a plan-cache hit (``cached_plan``), preflight, discovery and
        decomposition are skipped entirely — the plan was validated when
        it was cached, and the participants' XSpec metadata travels with
        it (so the JDBC route skips the per-query metadata parse too).
        """
        if cached_plan is not None:
            plan = cached_plan.plan
            remote_servers = set(cached_plan.remote_servers)
        else:
            preflighted = True
            if self.preflight:
                with self._span("preflight"):
                    preflighted = self._run_preflight(select)

            remote_servers = set()
            with self._span("decompose") as decompose_span:
                if self.clock is not None:
                    self.clock.advance_ms(costs.DECOMPOSE_MS)
                for ref in select.referenced_tables():
                    if not self.dictionary.has_table(ref.name):
                        if no_forward:
                            raise TableNotRegisteredError(ref.name)
                        remote_servers.add(self._discover_remote(ref.name))
                    else:
                        loc = self.dictionary.locate(ref.name)
                        if loc.is_remote:
                            remote_servers.add(loc.remote_server)
                if not preflighted:
                    # discovery has registered the remote tables; check now,
                    # before any sub-query ships
                    with self._span("preflight"):
                        self._run_preflight(select)

                prefer = None
                if self.replica_selector is not None:
                    prefer = self.replica_selector.preferences(
                        self.dictionary,
                        [ref.name for ref in select.referenced_tables()],
                    )
                plan = decompose(select, self.dictionary, prefer_databases=prefer)
                decompose_span.set("subqueries", len(plan.subqueries))
                decompose_span.set("distributed", plan.is_distributed)
            if self.cache is not None and plan_key is not None:
                # cached after discovery so the dictionary bumps discovery
                # caused have already flushed older generations
                self.cache.put_plan(plan_key, select, plan, remote_servers)

        # Group sub-queries: each remote server's batch runs on that
        # server, and each distinct *local* database is its own branch
        # too — distinct backends serve their sub-queries concurrently,
        # exactly like the remote peers do (§4.8's point about
        # distributing load).
        groups: dict[tuple, list[SubQuery]] = {}
        for sub in plan.subqueries:
            loc = sub.location
            group_key = (
                ("remote", loc.remote_server)
                if loc.is_remote
                else ("local", loc.database_name)
            )
            groups.setdefault(group_key, []).append(sub)

        collected: dict[str, tuple] = {}
        sub_meta: dict[str, tuple] | None = {} if self.tracer is not None else None
        failures: list = []

        def run_group(subs: list[SubQuery]):
            def _run():
                for sub in subs:
                    try:
                        collected[sub.binding] = self._run_with_failover(
                            sub, params, sub_meta
                        )
                    except ConnectionFailedError as exc:
                        if not allow_partial:
                            raise
                        # graceful degradation: the branch contributes
                        # zero rows, flagged with failure provenance
                        from repro.resilience import SubQueryFailure

                        failures.append(SubQueryFailure.from_exception(sub, exc))
                        collected[sub.binding] = self._empty_sub_result(sub, params)

            return _run

        self.router.metadata_cached = cached_plan is not None
        try:
            branches = [run_group(subs) for subs in groups.values()]
            if len(branches) > 1 and self.clock is not None:
                self.clock.run_parallel(branches)
            else:
                # a clock-less service still runs every branch — there
                # is just no virtual time to fork/join
                for branch in branches:
                    branch()
        finally:
            self.router.metadata_cached = False

        def replay_runner(sub: SubQuery, _params: tuple):
            return collected[sub.binding]

        with self._span("merge") as merge_span:
            result = execute_plan(plan, replay_runner, params, self.clock)
            merge_span.set("rows", len(result.rows))
        if sub_meta:
            # replace the replayed traces' provenance/timing with what the
            # real (possibly failed-over) execution recorded
            for trace in result.traces:
                meta = sub_meta.get(trace.binding)
                if meta is None:
                    continue
                trace.start_ms, trace.end_ms, trace.replica_host = meta[0:3]
                trace.database, trace.url = meta[3:5]
        if failures and root_span is not None:
            root_span.set("partial", True).set("failed_subqueries", len(failures))
        return QueryAnswer(
            columns=result.columns,
            types=result.types,
            rows=result.rows,
            distributed=plan.is_distributed,
            databases=plan.databases,
            servers_accessed=1 + len(remote_servers),
            tables_accessed=len(plan.original.referenced_tables()),
            routes=[t.via for t in result.traces],
            traces=list(result.traces),
            partial=bool(failures),
            failures=failures,
        )

    def _maybe_poll_schemas(self) -> None:
        """Fire the periodic schema poll when its interval has elapsed."""
        if self.schema_poll_interval_ms is None or self.clock is None:
            return
        if self.clock.now_ms - self._last_schema_poll_ms >= self.schema_poll_interval_ms:
            self._last_schema_poll_ms = self.clock.now_ms
            self.tracker.poll()

    def _attempt(self, sub: SubQuery, params: tuple, sub_meta: dict | None):
        """One routed sub-query execution, wrapped in its own span.

        Each attempt's span closes before any retry opens, so a failed
        attempt and its failover retry show up as *siblings* in the
        trace — the failed one carrying ``error=...``.
        """
        if self.tracer is None:
            return self.router(sub, params)
        loc = sub.location
        host = loc.remote_server if loc.is_remote else self._host_of(loc.url)
        with self.tracer.span(
            "subquery",
            binding=sub.binding,
            database=loc.database_name,
            table=loc.logical_table,
            host=host or "?",
        ) as span:
            t0 = self.clock.now_ms
            columns, types, rows, via = self.router(sub, params)
            span.set("route", via).set("rows", len(rows))
            if sub_meta is not None:
                sub_meta[sub.binding] = (
                    t0, self.clock.now_ms, host, loc.database_name, loc.url,
                )
            return columns, types, rows, via

    def _serve_cached(self, sub: SubQuery, hit: tuple, sub_meta: dict | None):
        """Answer one sub-query from the sub-result cache.

        Costs ``CACHE_HIT_MS`` on the simulated clock instead of
        connect + execute + transfer, shows up as route ``cache`` in
        provenance, and (when tracing) contributes a ``subquery`` span
        so warm queries remain fully observable.
        """
        columns, types, rows, _via = hit
        loc = sub.location
        t0 = self.clock.now_ms if self.clock is not None else 0.0

        def serve():
            if self.clock is not None:
                self.clock.advance_ms(costs.CACHE_HIT_MS)
            self.cache.record_hit_latency(costs.CACHE_HIT_MS)

        if self.tracer is None:
            serve()
        else:
            with self.tracer.span(
                "subquery",
                binding=sub.binding,
                database=loc.database_name,
                table=loc.logical_table,
                host=self.server_.host,
            ) as span:
                serve()
                span.set("route", "cache").set("rows", len(rows))
            if sub_meta is not None:
                sub_meta[sub.binding] = (
                    t0, self.clock.now_ms, self.server_.host,
                    loc.database_name, loc.url,
                )
        return list(columns), list(types), list(rows), "cache"

    def _breaker_key(self, sub: SubQuery) -> str:
        """Breaker identity of the backend one sub-query touches."""
        loc = sub.location
        if loc.is_remote:
            return f"peer:{loc.remote_server}"
        return f"db:{loc.database_name}"

    def _guarded_attempt(self, sub: SubQuery, params: tuple, sub_meta: dict | None):
        """One attempt, behind the resilience layer when it is on.

        With resilience off this is exactly ``_attempt``; with it on,
        the backend's circuit breaker gates the call (an open breaker
        refuses instantly instead of costing ``PARTITION_TIMEOUT_MS``)
        and transient connection failures retry with backoff within the
        per-query deadline budget.
        """
        if self.resilience is None:
            return self._attempt(sub, params, sub_meta)
        return self.resilience.call(
            self._breaker_key(sub), lambda: self._attempt(sub, params, sub_meta)
        )

    def _empty_sub_result(self, sub: SubQuery, params: tuple):
        """Zero-row stand-in for a sub-query whose backend is lost.

        Shaped by running the physical sub-select against an empty
        scratch copy of the target table, so columns and types match
        what a live backend would have returned.
        """
        from repro.engine.database import Database
        from repro.engine.storage import Column
        from repro.unity.driver import _logicalize_columns

        table = sub.location.table
        scratch = Database("__degraded__", "generic")
        scratch.catalog.create_table(
            table.name,
            [Column(name=c.name, type=c.logical_type) for c in table.columns],
        )
        result = scratch.execute_statement(sub.select, params)
        columns = _logicalize_columns(list(result.columns), sub)
        return columns, list(result.types), [], "failed"

    def _run_with_failover(
        self, sub: SubQuery, params: tuple, sub_meta: dict | None = None
    ):
        """Run one sub-query; on a dead database, fail over to a replica.

        The alternate replica may use different physical naming, so the
        sub-query is re-planned from its logical form against a
        one-location dictionary for the alternate.

        With caching on, a local sub-query consults the sub-result
        cache *before* any connect or transfer: a hit costs only
        ``CACHE_HIT_MS``. Results served by a failover replica are not
        cached (their freshness would hang off the wrong database's
        epoch).
        """
        cache_key = None
        if self.cache is not None and not sub.location.is_remote:
            cache_key = self.cache.sub_key(sub, params)
            hit = self.cache.lookup_sub(cache_key)
            if hit is not None:
                return self._serve_cached(sub, hit, sub_meta)
        try:
            result = self._guarded_attempt(sub, params, sub_meta)
            if cache_key is not None:
                self.cache.store_sub(
                    cache_key, result, tag=sub.location.database_name
                )
            return result
        except ConnectionFailedError as primary_exc:
            self.metrics.counter("failovers").inc()
            failed = sub.location.database_name
            table = sub.location.logical_table
            alternates = [
                loc
                for loc in self.dictionary.locations(table)
                if loc.database_name != failed
            ]
            if not alternates and self.rls is not None:
                # no local replica — maybe another JClarens server hosts
                # one. Only *expected* discovery failures are swallowed;
                # a programming error here must propagate, not be
                # silently replaced by the connection error.
                try:
                    self._discover_remote(table, exclude_own=True)
                except (FederationError, ClarensFault):
                    pass
                alternates = [
                    loc
                    for loc in self.dictionary.locations(table)
                    if loc.database_name != failed
                ]
            if not alternates or sub.logical_select is None:
                raise
            last_error: Exception | None = None
            for alternate in alternates:
                mini = DataDictionary()
                mini.add_database(
                    self.dictionary.spec_for(alternate.database_name),
                    alternate.url,
                    remote_server=alternate.remote_server,
                )
                replanned = decompose(sub.logical_select, mini)
                retry = replanned.subqueries[0]
                # keep the original binding so the integrator finds it;
                # the logical form travels too (remote alternates are
                # forwarded by logical SQL). No recursion: the retry goes
                # straight to the router, not back through failover.
                retry = SubQuery(
                    binding=sub.binding,
                    location=retry.location,
                    select=retry.select,
                    pushed_conjuncts=retry.pushed_conjuncts,
                    logical_select=sub.logical_select,
                )
                self.metrics.counter("failover_retries").inc()
                try:
                    return self._guarded_attempt(retry, params, sub_meta)
                except ConnectionFailedError as exc:
                    last_error = exc
            if last_error is not None:
                raise last_error from primary_exc
            raise ConnectionFailedError(
                f"no live replica for {sub.location.logical_table!r}"
            ) from primary_exc

    # ------------------------------------------------------------------
    # remote resolution and forwarding
    # ------------------------------------------------------------------

    def _resolve_peer(self, service_url: str) -> ClarensServer:
        if self.server_resolver is None:
            raise FederationError(
                "table lives on a remote server but no server_resolver is configured"
            )
        peer = self.server_resolver(service_url)
        if peer is None:
            raise FederationError(f"cannot resolve remote server {service_url!r}")
        return peer

    def _discover_remote(self, logical_table: str, exclude_own: bool = False) -> str:
        """RLS lookup + remote describe; registers the remote location.

        The RLS may return several replica servers; dead or stale ones
        are skipped in order. ``exclude_own`` skips this server's own
        publications (used during replica failover).
        """
        if self.rls is None:
            raise TableNotRegisteredError(logical_table)
        with self._span("rls_lookup", table=logical_table):
            urls = self.rls.lookup(logical_table)
            if exclude_own:
                urls = [u for u in urls if u != self._service_url]
            last_error: Exception | None = None
            for service_url in urls:
                try:
                    peer = self._resolve_peer(service_url)
                    describe = lambda: self._peer_client.call(  # noqa: E731
                        peer, "dataaccess.describe", logical_table
                    )
                    if self.resilience is not None:
                        description = self.resilience.call(
                            f"peer:{service_url}", describe
                        )
                    else:
                        description = describe()
                # a partitioned/dead peer (ConnectionFailedError) is as
                # skippable as a stale RLS entry: move on to the next
                # replica server instead of failing the lookup
                except (FederationError, ClarensFault, ConnectionFailedError) as exc:
                    last_error = exc
                    continue
                spec = LowerXSpec.from_xml(description["spec_xml"])
                self.dictionary.add_database(
                    spec, description["url"], remote_server=service_url
                )
                if self.cache is not None:
                    self.cache.bump_dictionary()
                return service_url
        raise last_error if last_error else TableNotRegisteredError(logical_table)

    def _remote_fetch(self, sub: SubQuery, params: tuple):
        """Forward one sub-query to the remote server hosting its table.

        When tracing, the call carries ``{trace_id, parent_id}`` so the
        remote server's spans join this query's trace; they come back
        piggybacked on the response and are imported here.
        """
        self.metrics.counter("remote_fetches").inc()
        peer = self._resolve_peer(sub.location.remote_server)
        call_args = [sub.logical_sql, list(params), True]
        active = self.tracer.active if self.tracer is not None else None
        if active is not None:
            call_args.append(
                {"trace_id": active.trace_id, "parent_id": active.span_id}
            )
        response = self._peer_client.call(peer, "dataaccess.query", *call_args)
        if active is not None and response.get("spans"):
            self.tracer.import_spans(response["spans"])
        types = [_type_from_text(t) for t in response["types"]]
        rows = [tuple(r) for r in response["rows"]]
        return response["columns"], types, rows

    # ------------------------------------------------------------------
    # web-exposed methods (wire-safe values only)
    # ------------------------------------------------------------------

    def query(
        self,
        sql: str,
        params: list | None = None,
        no_forward: bool = False,
        trace_ctx: dict | None = None,
        allow_partial: bool = False,
    ):
        """Clarens method: run a query, return a struct of plain lists.

        A forwarding origin server may pass ``trace_ctx`` (trace id +
        parent span id); this server's spans then join that trace and
        travel back in the response's ``spans`` key. With
        ``allow_partial`` the response may carry ``partial=True`` plus a
        ``failures`` list instead of a fault when backends are lost.
        """
        adopted = bool(trace_ctx) and self.tracer is not None
        mark = len(self.tracer.spans) if adopted else 0
        if adopted:
            self.tracer.adopt(trace_ctx["trace_id"], trace_ctx["parent_id"])
        try:
            answer = self.execute(
                sql, tuple(params or ()), bool(no_forward), bool(allow_partial)
            )
        finally:
            if adopted:
                self.tracer.release()
        out = {
            "columns": list(answer.columns),
            "types": [str(t) for t in answer.types],
            "rows": [list(r) for r in answer.rows],
            "distributed": answer.distributed,
            "servers": answer.servers_accessed,
            "tables": answer.tables_accessed,
            "routes": list(answer.routes),
        }
        if allow_partial:
            # only partial-tolerant callers pay the extra response bytes
            out["partial"] = answer.partial
            out["failures"] = [f.as_dict() for f in answer.failures]
        if adopted:
            out["spans"] = [s.as_dict() for s in self.tracer.spans[mark:]]
        return out

    def describe(self, logical_table: str):
        """Clarens method: metadata for one locally registered table."""
        locations = [
            loc
            for loc in self.dictionary.locations(logical_table)
            if not loc.is_remote
        ]
        if not locations:
            raise ClarensFault(
                "dataaccess.describe",
                f"table {logical_table!r} is not registered with this server",
            )
        loc = locations[0]
        spec = self.dictionary.spec_for(loc.database_name)
        return {
            "database": loc.database_name,
            "vendor": loc.vendor,
            "url": loc.url,
            "spec_xml": spec.single_table_spec(logical_table).to_xml(),
        }

    def tables(self):
        """Clarens method: logical tables this server can serve locally."""
        return sorted(
            t
            for t in self.dictionary.logical_tables()
            if any(not loc.is_remote for loc in self.dictionary.locations(t))
        )

    def ping(self):
        """Clarens method: liveness probe."""
        return "pong"

    def stats(self):
        """Clarens method: operational counters for monitoring.

        Queries served, sub-query routing mix, POOL handle count,
        connection-pool hit rate (when pooling is on), schema-tracker
        activity, and per-method container statistics.
        """
        count = lambda name: int(self.metrics.counter(name).value)  # noqa: E731
        out = {
            "server": self.server_.name,
            "queries_served": self.queries_served,
            "routes": dict(self.router.route_counts),
            "failovers": count("failovers"),
            "failover_retries": count("failover_retries"),
            "remote_fetches": count("remote_fetches"),
            "preflight_rejections": count("preflight_rejections"),
            "rows_returned": count("rows_returned"),
            "pool_handles": self.ral.handle_count(),
            "tracker_polls": self.tracker.polls,
            "schema_changes": self.tracker.changes_detected,
            "databases": self.dictionary.databases(),
            "methods": {
                name: {
                    "calls": s.calls,
                    "rows_returned": s.rows_returned,
                    "busy_ms": round(s.busy_ms, 3),
                }
                for name, s in sorted(self.server_.method_stats.items())
            },
        }
        if self.router.jdbc_pool is not None:
            pool = self.router.jdbc_pool.stats
            out["jdbc_pool"] = {
                "hits": pool.hits,
                "misses": pool.misses,
                "discarded": pool.discarded,
                "hit_rate": round(pool.hit_rate, 4),
            }
        if self.cache is not None:
            out["cache"] = self.cache.stats()
        if self.resilience is not None:
            out["resilience"] = self.resilience.stats()
            out["partial_answers"] = count("partial_answers")
        return out

    def trace(self, trace_id: str = ""):
        """Clarens method: the finished spans of one trace, wire-safe.

        With no ``trace_id``, returns the most recent locally rooted
        trace. Returns ``[]`` when the server is not observing.
        """
        if self.tracer is None:
            return []
        tid = trace_id or self.tracer.last_trace_id
        if not tid:
            return []
        return [s.as_dict() for s in self.tracer.spans_for(tid)]

    def profile(self, trace_id: str = ""):
        """Clarens method: per-operator cost profile of one query.

        EXPLAIN ANALYZE for the federation: each stage of the traced
        query with calls, self-time and cumulative time (simulated ms),
        plus the folded-stack lines a flame-graph renderer eats
        directly. With no ``trace_id``, returns the most recent
        profiled query. Returns ``{}`` when the server is not
        observing (or the trace was not retained).
        """
        if self.profiler is None:
            return {}
        prof = self.profiler.get(trace_id or None)
        return prof.as_dict() if prof is not None else {}

    def health(self):
        """Clarens method: single RED-style verdict for this server.

        Combines SLO burn-rate alerts, circuit-breaker states and cache
        hit rates into one ``ok`` / ``degraded`` / ``critical`` answer
        — the question an operator's dashboard actually asks. Forces a
        fresh archive snapshot + SLO evaluation so the verdict reflects
        *now*, not the last cadence tick.
        """
        if self.slo is None:
            return {"observed": False, "verdict": "unobserved"}
        self.archiver.snapshot()
        self.slo.evaluate()
        return self.slo.health()

    def explain(self, sql: str):
        """Clarens method: the federated plan for ``sql``, not executed.

        Shows the decomposition (per-table sub-queries, pushdown), the
        predicted route of each sub-query (pool / jdbc / remote), and
        the integration step — the distributed counterpart of a local
        engine EXPLAIN.
        """
        select = parse_select(sql)
        for ref in select.referenced_tables():
            if not self.dictionary.has_table(ref.name):
                self._discover_remote(ref.name)
        plan = decompose(select, self.dictionary)
        subqueries = []
        for sub in plan.subqueries:
            if sub.location.is_remote:
                route = "remote"
            elif not self.router.force_jdbc and self.ral.supports_url(
                sub.location.url
            ):
                route = "pool"
            else:
                route = "jdbc"
            subqueries.append(
                {
                    "binding": sub.binding,
                    "database": sub.location.database_name,
                    "vendor": sub.location.vendor,
                    "route": route,
                    "sql": sub.sql,
                    "pushed_predicates": [c.unparse() for c in sub.pushed_conjuncts],
                }
            )
        return {
            "kind": plan.kind,
            "distributed": plan.is_distributed,
            "databases": list(plan.databases),
            "subqueries": subqueries,
            "integration": (
                plan.integration.unparse() if plan.integration is not None else None
            ),
        }

    def lint(self, sql: str):
        """Clarens method: static diagnostics for ``sql``, not executed.

        Lets clients validate a query against this server's dictionary
        for free before paying for a distributed execution.
        """
        from repro.lint import DictionarySchema, lint_sql

        report = lint_sql(sql, DictionarySchema(self.dictionary))
        return [d.as_dict() for d in report]

    def plugin(self, spec_xml: str, url: str, driver: str):
        """Clarens method: plug in a database at runtime (§4.10).

        The caller supplies the XSpec document, the connection URL and
        the driver (vendor) name; the server parses the metadata,
        connects through the matching driver, and registers the tables.
        """
        spec = LowerXSpec.from_xml(spec_xml)
        if spec.vendor.lower() != driver.lower():
            raise ClarensFault(
                "dataaccess.plugin",
                f"spec is for vendor {spec.vendor!r} but driver {driver!r} given",
            )
        binding = self.directory.lookup(url)  # the database must be running
        self.dictionary.add_database(spec, url)
        if self.cache is not None:
            self.cache.bump_dictionary()
        # Keep the plugged-in spec's logical naming when tracking.
        logical_names = {t.name: t.logical_name for t in spec.tables}
        self.tracker.watch(binding.database, logical_names)
        if self.ral.supports_url(url):
            self.ral.initialize(url, binding.user, binding.password)
        if self.rls is not None:
            self.rls.publish_many(spec.logical_table_names(), self._service_url)
        return spec.logical_table_names()


def _type_from_text(text: str) -> SQLType:
    from repro.metadata.xspec import parse_type_text

    return parse_type_text(text)

"""The Data Access Service — the heart of the middleware (§4.5).

One instance lives inside each JClarens server. It owns the local data
dictionary (built from XSpecs at registration time), the POOL-RAL
handle cache, the schema tracker and the routing policy. Incoming
queries are decomposed; sub-queries for locally registered databases
run through POOL-RAL or JDBC; sub-queries for tables registered
elsewhere are resolved through the central RLS and forwarded to the
remote JClarens server, whose results come back over the wire. Remote
servers work concurrently — distributing load is the whole point of
publishing table locations to the RLS (§4.8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clarens.client import ClarensClient
from repro.clarens.server import ClarensServer, ClarensService
from repro.common.errors import (
    ClarensFault,
    FederationError,
    TableNotRegisteredError,
)
from repro.common.types import SQLType
from repro.core.router import SubQueryRouter
from repro.driver.directory import Directory
from repro.metadata.dictionary import DataDictionary
from repro.metadata.tracker import SchemaTracker
from repro.metadata.xspec import LowerXSpec
from repro.net import costs
from repro.poolral.ral import PoolRAL
from repro.rls.client import RLSClient
from repro.sql import ast
from repro.sql.parser import parse_select
from repro.unity.decompose import SubQuery, decompose
from repro.unity.driver import execute_plan


@dataclass
class QueryAnswer:
    """A fully integrated answer plus provenance for tests/benches."""

    columns: list[str]
    types: list[SQLType]
    rows: list[tuple]
    distributed: bool
    databases: tuple[str, ...]
    servers_accessed: int
    tables_accessed: int
    routes: list[str] = field(default_factory=list)

    @property
    def row_count(self) -> int:
        """Number of result rows."""
        return len(self.rows)

    def to_vector(self) -> list[list]:
        """The rows as a plain 2-D list (the paper's result shape)."""
        return [list(r) for r in self.rows]

    def column_index(self, name: str) -> int:
        """Index of a result column by (case-insensitive) name."""
        lowered = name.lower()
        for i, c in enumerate(self.columns):
            if c.lower() == lowered:
                return i
        raise KeyError(name)


class DataAccessService(ClarensService):
    """The Clarens-hosted data access layer of one JClarens instance."""

    service_name = "dataaccess"
    exposed = (
        "query", "describe", "tables", "ping", "plugin", "explain", "stats",
        "lint",
    )

    def __init__(
        self,
        server: ClarensServer,
        directory: Directory,
        rls_client: RLSClient | None = None,
        server_resolver=None,
        force_jdbc: bool = False,
        replica_selection: bool = False,
        schema_poll_interval_ms: float | None = None,
        jdbc_pooling: bool = False,
        preflight: bool = False,
    ):
        self.preflight = preflight
        self.server_ = server  # 'server' attr is set by register_service too
        self.directory = directory
        self.rls = rls_client
        self.server_resolver = server_resolver
        self.dictionary = DataDictionary()
        self.ral = PoolRAL(directory, server.clock)
        self.tracker = SchemaTracker()
        self.tracker.subscribe(self._on_schema_change)
        jdbc_pool = None
        if jdbc_pooling:
            from repro.driver.pool import ConnectionPool

            jdbc_pool = ConnectionPool(directory, clock=server.clock)
        self.router = SubQueryRouter(
            ral=self.ral,
            directory=directory,
            clock=server.clock,
            network=server.network,
            host=server.host,
            force_jdbc=force_jdbc,
            remote_fetch=self._remote_fetch,
            jdbc_pool=jdbc_pool,
        )
        self._peer_client = ClarensClient(server.host, server.network, server.clock)
        self._service_url = f"clarens://{server.host}/{server.name}"
        self.queries_served = 0
        # §4.9's "after a fixed interval of time, a thread is run": in
        # virtual time the poll fires lazily once the interval elapsed.
        self.schema_poll_interval_ms = schema_poll_interval_ms
        self._last_schema_poll_ms = 0.0
        self.replica_selector = None
        if replica_selection:
            from repro.core.replicas import ReplicaSelector

            self.replica_selector = ReplicaSelector(
                server.network, directory, server.host
            )

    # ------------------------------------------------------------------
    # administration (local only — not web-exposed)
    # ------------------------------------------------------------------

    @property
    def service_url(self) -> str:
        """This service's clarens:// address (as published to the RLS)."""
        return self._service_url

    @property
    def clock(self):
        """The server's virtual clock."""
        return self.server_.clock

    def register_database(
        self,
        url: str,
        logical_names: dict[str, str] | None = None,
        publish: bool = True,
    ) -> LowerXSpec:
        """Register a locally reachable database with this service.

        Generates the lower XSpec, adds it to the local dictionary,
        publishes the logical table names to the RLS, initializes a
        POOL-RAL handle when the vendor is supported, and starts schema
        tracking.
        """
        binding = self.directory.lookup(url)
        spec = self.tracker.watch(binding.database, logical_names)
        self.dictionary.add_database(spec, url)
        if self.ral.supports_url(url):
            self.ral.initialize(url, binding.user, binding.password)
        if publish and self.rls is not None:
            self.rls.publish_many(spec.logical_table_names(), self._service_url)
        return spec

    def unregister_database(self, database_name: str) -> None:
        """Remove a database: dictionary, tracker, RLS and POOL handle."""
        spec = self.dictionary.spec_for(database_name)
        url = self.dictionary.url_for(database_name)
        if self.rls is not None:
            for table in spec.logical_table_names():
                self.rls.server.unpublish(table, self._service_url)
        self.dictionary.remove_database(database_name)
        self.tracker.unwatch(database_name)
        self.ral.release(url)

    def _on_schema_change(self, database_name: str, new_spec: LowerXSpec) -> None:
        """Tracker callback: refresh dictionary and RLS publications."""
        url = self.dictionary.url_for(database_name)
        old_tables = set(self.dictionary.spec_for(database_name).logical_table_names())
        self.dictionary.add_database(new_spec, url)
        if self.rls is not None:
            new_tables = set(new_spec.logical_table_names())
            for gone in old_tables - new_tables:
                self.rls.server.unpublish(gone, self._service_url)
            added = sorted(new_tables - old_tables)
            if added:
                self.rls.publish_many(added, self._service_url)

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------

    def _run_preflight(self, select: ast.Select) -> bool:
        """Static pre-flight lint: reject before any sub-query ships.

        Returns True when the check ran. A query touching a table this
        server does not yet know is deferred (returns False) — the
        caller re-runs the check once RLS discovery has registered the
        remote tables, still before any sub-query data moves.
        """
        if any(
            not self.dictionary.has_table(ref.name)
            for ref in select.referenced_tables()
        ):
            return False
        from repro.common.errors import PreflightError
        from repro.lint import DictionarySchema, lint_select

        report = lint_select(select, DictionarySchema(self.dictionary))
        if not report.ok:
            raise PreflightError(report.errors)
        return True

    def execute(
        self, sql: str | ast.Select, params: tuple = (), no_forward: bool = False
    ) -> QueryAnswer:
        """Execute a logical-name query; the local (non-RPC) entry point."""
        self._maybe_poll_schemas()
        select = parse_select(sql) if isinstance(sql, str) else sql
        preflighted = self._run_preflight(select) if self.preflight else True
        if self.clock is not None:
            self.clock.advance_ms(costs.DECOMPOSE_MS)

        remote_servers: set[str] = set()
        for ref in select.referenced_tables():
            if not self.dictionary.has_table(ref.name):
                if no_forward:
                    raise TableNotRegisteredError(ref.name)
                remote_servers.add(self._discover_remote(ref.name))
            else:
                loc = self.dictionary.locate(ref.name)
                if loc.is_remote:
                    remote_servers.add(loc.remote_server)
        if not preflighted:
            # discovery has registered the remote tables; check now,
            # before any sub-query ships
            self._run_preflight(select)

        prefer = None
        if self.replica_selector is not None:
            prefer = self.replica_selector.preferences(
                self.dictionary,
                [ref.name for ref in select.referenced_tables()],
            )
        plan = decompose(select, self.dictionary, prefer_databases=prefer)

        # Group sub-queries: local ones run here; each remote server's
        # batch runs on that server, concurrently with everything else.
        groups: dict[str | None, list[SubQuery]] = {}
        for sub in plan.subqueries:
            groups.setdefault(sub.location.remote_server, []).append(sub)

        collected: dict[str, tuple] = {}

        def run_group(subs: list[SubQuery]):
            def _run():
                for sub in subs:
                    collected[sub.binding] = self._run_with_failover(sub, params)

            return _run

        branches = [run_group(subs) for subs in groups.values()]
        if len(branches) > 1:
            self.clock.run_parallel(branches)
        else:
            branches[0]()

        def replay_runner(sub: SubQuery, _params: tuple):
            return collected[sub.binding]

        result = execute_plan(plan, replay_runner, params, self.clock)
        self.queries_served += 1
        return QueryAnswer(
            columns=result.columns,
            types=result.types,
            rows=result.rows,
            distributed=plan.is_distributed,
            databases=plan.databases,
            servers_accessed=1 + len(remote_servers),
            tables_accessed=len(plan.original.referenced_tables()),
            routes=[t.via for t in result.traces],
        )

    def _maybe_poll_schemas(self) -> None:
        """Fire the periodic schema poll when its interval has elapsed."""
        if self.schema_poll_interval_ms is None or self.clock is None:
            return
        if self.clock.now_ms - self._last_schema_poll_ms >= self.schema_poll_interval_ms:
            self._last_schema_poll_ms = self.clock.now_ms
            self.tracker.poll()

    def _run_with_failover(self, sub: SubQuery, params: tuple):
        """Run one sub-query; on a dead database, fail over to a replica.

        The alternate replica may use different physical naming, so the
        sub-query is re-planned from its logical form against a
        one-location dictionary for the alternate.
        """
        from repro.common.errors import ConnectionFailedError

        try:
            return self.router(sub, params)
        except ConnectionFailedError:
            failed = sub.location.database_name
            table = sub.location.logical_table
            alternates = [
                loc
                for loc in self.dictionary.locations(table)
                if loc.database_name != failed
            ]
            if not alternates and self.rls is not None:
                # no local replica — maybe another JClarens server hosts one
                try:
                    self._discover_remote(table, exclude_own=True)
                except (FederationError, Exception):  # noqa: BLE001 - keep original error
                    pass
                alternates = [
                    loc
                    for loc in self.dictionary.locations(table)
                    if loc.database_name != failed
                ]
            if not alternates or sub.logical_select is None:
                raise
            last_error: Exception | None = None
            for alternate in alternates:
                mini = DataDictionary()
                mini.add_database(
                    self.dictionary.spec_for(alternate.database_name),
                    alternate.url,
                    remote_server=alternate.remote_server,
                )
                replanned = decompose(sub.logical_select, mini)
                retry = replanned.subqueries[0]
                # keep the original binding so the integrator finds it;
                # the logical form travels too (remote alternates are
                # forwarded by logical SQL). No recursion: the retry goes
                # straight to the router, not back through failover.
                retry = SubQuery(
                    binding=sub.binding,
                    location=retry.location,
                    select=retry.select,
                    pushed_conjuncts=retry.pushed_conjuncts,
                    logical_select=sub.logical_select,
                )
                try:
                    return self.router(retry, params)
                except ConnectionFailedError as exc:
                    last_error = exc
            raise last_error if last_error else ConnectionFailedError(
                f"no live replica for {sub.location.logical_table!r}"
            )

    # ------------------------------------------------------------------
    # remote resolution and forwarding
    # ------------------------------------------------------------------

    def _resolve_peer(self, service_url: str) -> ClarensServer:
        if self.server_resolver is None:
            raise FederationError(
                "table lives on a remote server but no server_resolver is configured"
            )
        peer = self.server_resolver(service_url)
        if peer is None:
            raise FederationError(f"cannot resolve remote server {service_url!r}")
        return peer

    def _discover_remote(self, logical_table: str, exclude_own: bool = False) -> str:
        """RLS lookup + remote describe; registers the remote location.

        The RLS may return several replica servers; dead or stale ones
        are skipped in order. ``exclude_own`` skips this server's own
        publications (used during replica failover).
        """
        if self.rls is None:
            raise TableNotRegisteredError(logical_table)
        urls = self.rls.lookup(logical_table)
        if exclude_own:
            urls = [u for u in urls if u != self._service_url]
        last_error: Exception | None = None
        for service_url in urls:
            try:
                peer = self._resolve_peer(service_url)
                description = self._peer_client.call(
                    peer, "dataaccess.describe", logical_table
                )
            except (FederationError, ClarensFault) as exc:
                last_error = exc
                continue
            spec = LowerXSpec.from_xml(description["spec_xml"])
            self.dictionary.add_database(
                spec, description["url"], remote_server=service_url
            )
            return service_url
        raise last_error if last_error else TableNotRegisteredError(logical_table)

    def _remote_fetch(self, sub: SubQuery, params: tuple):
        """Forward one sub-query to the remote server hosting its table."""
        peer = self._resolve_peer(sub.location.remote_server)
        response = self._peer_client.call(
            peer, "dataaccess.query", sub.logical_sql, list(params), True
        )
        types = [_type_from_text(t) for t in response["types"]]
        rows = [tuple(r) for r in response["rows"]]
        return response["columns"], types, rows

    # ------------------------------------------------------------------
    # web-exposed methods (wire-safe values only)
    # ------------------------------------------------------------------

    def query(self, sql: str, params: list | None = None, no_forward: bool = False):
        """Clarens method: run a query, return a struct of plain lists."""
        answer = self.execute(sql, tuple(params or ()), bool(no_forward))
        return {
            "columns": list(answer.columns),
            "types": [str(t) for t in answer.types],
            "rows": [list(r) for r in answer.rows],
            "distributed": answer.distributed,
            "servers": answer.servers_accessed,
            "tables": answer.tables_accessed,
            "routes": list(answer.routes),
        }

    def describe(self, logical_table: str):
        """Clarens method: metadata for one locally registered table."""
        locations = [
            loc
            for loc in self.dictionary.locations(logical_table)
            if not loc.is_remote
        ]
        if not locations:
            raise ClarensFault(
                "dataaccess.describe",
                f"table {logical_table!r} is not registered with this server",
            )
        loc = locations[0]
        spec = self.dictionary.spec_for(loc.database_name)
        return {
            "database": loc.database_name,
            "vendor": loc.vendor,
            "url": loc.url,
            "spec_xml": spec.single_table_spec(logical_table).to_xml(),
        }

    def tables(self):
        """Clarens method: logical tables this server can serve locally."""
        return sorted(
            t
            for t in self.dictionary.logical_tables()
            if any(not loc.is_remote for loc in self.dictionary.locations(t))
        )

    def ping(self):
        """Clarens method: liveness probe."""
        return "pong"

    def stats(self):
        """Clarens method: operational counters for monitoring.

        Queries served, sub-query routing mix, POOL handle count,
        connection-pool hit rate (when pooling is on), schema-tracker
        activity, and per-method container statistics.
        """
        out = {
            "server": self.server_.name,
            "queries_served": self.queries_served,
            "routes": dict(self.router.route_counts),
            "pool_handles": self.ral.handle_count(),
            "tracker_polls": self.tracker.polls,
            "schema_changes": self.tracker.changes_detected,
            "databases": self.dictionary.databases(),
            "methods": {
                name: {
                    "calls": s.calls,
                    "rows_returned": s.rows_returned,
                    "busy_ms": round(s.busy_ms, 3),
                }
                for name, s in sorted(self.server_.method_stats.items())
            },
        }
        if self.router.jdbc_pool is not None:
            pool = self.router.jdbc_pool.stats
            out["jdbc_pool"] = {
                "hits": pool.hits,
                "misses": pool.misses,
                "discarded": pool.discarded,
                "hit_rate": round(pool.hit_rate, 4),
            }
        return out

    def explain(self, sql: str):
        """Clarens method: the federated plan for ``sql``, not executed.

        Shows the decomposition (per-table sub-queries, pushdown), the
        predicted route of each sub-query (pool / jdbc / remote), and
        the integration step — the distributed counterpart of a local
        engine EXPLAIN.
        """
        select = parse_select(sql)
        for ref in select.referenced_tables():
            if not self.dictionary.has_table(ref.name):
                self._discover_remote(ref.name)
        plan = decompose(select, self.dictionary)
        subqueries = []
        for sub in plan.subqueries:
            if sub.location.is_remote:
                route = "remote"
            elif not self.router.force_jdbc and self.ral.supports_url(
                sub.location.url
            ):
                route = "pool"
            else:
                route = "jdbc"
            subqueries.append(
                {
                    "binding": sub.binding,
                    "database": sub.location.database_name,
                    "vendor": sub.location.vendor,
                    "route": route,
                    "sql": sub.sql,
                    "pushed_predicates": [c.unparse() for c in sub.pushed_conjuncts],
                }
            )
        return {
            "kind": plan.kind,
            "distributed": plan.is_distributed,
            "databases": list(plan.databases),
            "subqueries": subqueries,
            "integration": (
                plan.integration.unparse() if plan.integration is not None else None
            ),
        }

    def lint(self, sql: str):
        """Clarens method: static diagnostics for ``sql``, not executed.

        Lets clients validate a query against this server's dictionary
        for free before paying for a distributed execution.
        """
        from repro.lint import DictionarySchema, lint_sql

        report = lint_sql(sql, DictionarySchema(self.dictionary))
        return [d.as_dict() for d in report]

    def plugin(self, spec_xml: str, url: str, driver: str):
        """Clarens method: plug in a database at runtime (§4.10).

        The caller supplies the XSpec document, the connection URL and
        the driver (vendor) name; the server parses the metadata,
        connects through the matching driver, and registers the tables.
        """
        spec = LowerXSpec.from_xml(spec_xml)
        if spec.vendor.lower() != driver.lower():
            raise ClarensFault(
                "dataaccess.plugin",
                f"spec is for vendor {spec.vendor!r} but driver {driver!r} given",
            )
        binding = self.directory.lookup(url)  # the database must be running
        self.dictionary.add_database(spec, url)
        # Keep the plugged-in spec's logical naming when tracking.
        logical_names = {t.name: t.logical_name for t in spec.tables}
        self.tracker.watch(binding.database, logical_names)
        if self.ral.supports_url(url):
            self.ral.initialize(url, binding.user, binding.password)
        if self.rls is not None:
            self.rls.publish_many(spec.logical_table_names(), self._service_url)
        return spec.logical_table_names()


def _type_from_text(text: str) -> SQLType:
    from repro.metadata.xspec import parse_type_text

    return parse_type_text(text)

"""Sub-query routing: POOL-RAL vs JDBC vs remote forwarding (§4.5).

The rule is the paper's: a sub-query aimed at a database whose vendor
POOL supports goes through the POOL-RAL layer (cheap — the handle was
initialized when the database was registered); a sub-query for an
unsupported vendor goes through the Unity/JDBC path (expensive — a
fresh connect + authenticate per query); a sub-query whose table is not
registered locally is forwarded to the remote JClarens server the RLS
named. Remote forwarding is implemented by the service, which injects
``remote_fetch``.
"""

from __future__ import annotations

from typing import Callable

from repro.common.types import SQLType
from repro.dialects import get_dialect
from repro.driver.connection import connect
from repro.driver.directory import Directory
from repro.engine.storage import estimate_row_bytes
from repro.net import costs
from repro.poolral.ral import PoolRAL
from repro.unity.decompose import SubQuery


class SubQueryRouter:
    """A :class:`~repro.unity.driver.SubQueryRunner` with routing."""

    def __init__(
        self,
        ral: PoolRAL,
        directory: Directory,
        clock=None,
        network=None,
        host: str | None = None,
        user: str = "grid",
        password: str = "grid",
        force_jdbc: bool = False,
        remote_fetch: Callable[[SubQuery, tuple], tuple] | None = None,
        jdbc_pool=None,
        metrics=None,
    ):
        self.ral = ral
        self.directory = directory
        self.clock = clock
        self.network = network
        self.host = host
        self.user = user
        self.password = password
        self.force_jdbc = force_jdbc
        self.remote_fetch = remote_fetch
        #: optional ConnectionPool: reuse JDBC connections instead of the
        #: prototype's connect-per-query behaviour (the pooling ablation)
        self.jdbc_pool = jdbc_pool
        #: set per-query by a caching service on a plan-cache hit: the
        #: participants' XSpec metadata was parsed when the plan was
        #: cached, so the JDBC path must not re-pay UNITY_METADATA_PARSE_MS
        self.metadata_cached = False
        if metrics is None:
            from repro.obs.metrics import MetricsRegistry

            metrics = MetricsRegistry()
        self.metrics = metrics

    @property
    def route_counts(self) -> dict[str, int]:
        """Per-route sub-query counts (a view over the metrics registry)."""
        return {
            via: int(self.metrics.counter(f"subqueries.{via}").value)
            for via in ("pool", "jdbc", "remote")
        }

    def _count_route(self, via: str, rows: list[tuple]) -> None:
        self.metrics.counter(f"subqueries.{via}").inc()
        self.metrics.counter("rows_moved").inc(len(rows))

    # -- cost helpers ------------------------------------------------------------

    def _charge(self, ms: float) -> None:
        if self.clock is not None:
            self.clock.advance_ms(ms)

    def _transfer_rows(self, from_host: str, rows: list[tuple]) -> None:
        if self.network is None or self.host is None or self.clock is None:
            return
        nbytes = sum(estimate_row_bytes(r) for r in rows) + 256
        self.network.transfer(from_host, self.host, nbytes, self.clock)

    # -- the runner --------------------------------------------------------------

    def __call__(
        self, sub: SubQuery, params: tuple = ()
    ) -> tuple[list[str], list[SQLType], list[tuple], str]:
        if sub.location.is_remote:
            if self.remote_fetch is None:
                from repro.common.errors import FederationError

                raise FederationError(
                    f"sub-query for {sub.binding!r} needs remote forwarding, "
                    "but this router has no remote_fetch"
                )
            columns, types, rows = self.remote_fetch(sub, params)
            self._count_route("remote", rows)
            return columns, types, rows, "remote"
        if not self.force_jdbc and self.ral.supports_url(sub.location.url):
            return self._via_pool(sub, params)
        return self._via_jdbc(sub, params)

    def _via_pool(self, sub, params):
        dialect = get_dialect(sub.location.vendor)
        vendor_sql = dialect.render_select(sub.select)
        cursor = self.ral.execute_sql(sub.location.url, vendor_sql, params)
        rows = cursor.fetchall()
        self._count_route("pool", rows)
        binding = self.directory.lookup(sub.location.url)
        self._transfer_rows(binding.host_name, rows)
        return cursor.columns, cursor.types, rows, "pool"

    def _via_jdbc(self, sub, params):
        # The Unity/JDBC path re-parses the database's XSpec metadata and
        # opens a fresh, authenticated connection for every query — the
        # dominant term in Table 1's distributed rows. With a pool, the
        # metadata is cached alongside the connection and both costs
        # disappear on a hit.
        dialect = get_dialect(sub.location.vendor)
        if self.jdbc_pool is not None:
            connection = self.jdbc_pool.get(sub.location.url, self.user, self.password)
            try:
                vendor_sql = dialect.render_select(sub.select)
                cursor = connection.execute(vendor_sql, params)
                rows = cursor.fetchall()
                columns, types = cursor.columns, cursor.types
            finally:
                self.jdbc_pool.release(connection, self.user)
        else:
            if not self.metadata_cached:
                self._charge(costs.UNITY_METADATA_PARSE_MS)
            connection = connect(
                sub.location.url,
                self.user,
                self.password,
                directory=self.directory,
                clock=self.clock,
            )
            try:
                vendor_sql = dialect.render_select(sub.select)
                cursor = connection.execute(vendor_sql, params)
                rows = cursor.fetchall()
                columns, types = cursor.columns, cursor.types
            finally:
                connection.close()
        self._count_route("jdbc", rows)
        binding = self.directory.lookup(sub.location.url)
        self._transfer_rows(binding.host_name, rows)
        return columns, types, rows, "jdbc"

"""The paper's contribution: the grid data access middleware (§4.5).

:class:`~repro.core.service.DataAccessService` is the Clarens-hosted
service that accepts logical SQL, decomposes it, routes sub-queries
through POOL-RAL (supported vendors, cached handles) or the Unity/JDBC
path (everything else), resolves unregistered tables through the RLS
and forwards their sub-queries to the remote JClarens servers hosting
them, and integrates everything into a single 2-D result vector.

:class:`~repro.core.federation.GridFederation` wires a whole testbed
together — network, clock, RLS, servers, databases — and is the entry
point the examples and benchmarks use.
"""

from repro.core.router import SubQueryRouter
from repro.core.service import DataAccessService, QueryAnswer
from repro.core.federation import GridFederation, ServerHandle
from repro.core.replicas import ReplicaSelector

__all__ = [
    "DataAccessService",
    "GridFederation",
    "QueryAnswer",
    "ReplicaSelector",
    "ServerHandle",
    "SubQueryRouter",
]

"""Replica selection by network proximity (§6 future work, implemented).

The paper: "We are also working on the design of a system that could
decide the closest available database (in terms of network
connectivity) from a set of replicated databases."

A :class:`ReplicaSelector` scores each hosting of a logical table by
the measured link cost between the querying server and the database's
host — latency plus the transfer time of a representative payload —
and pins the decomposer to the cheapest one. Unavailable replicas
(database process gone from the directory) are skipped, which also
gives the middleware replica *failover* for free.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConnectionFailedError, TableNotRegisteredError
from repro.driver.directory import Directory
from repro.metadata.dictionary import DataDictionary, TableLocation
from repro.net.network import Network

#: representative result payload used to rank links (bytes)
PROBE_BYTES = 64 * 1024


@dataclass(frozen=True)
class ReplicaChoice:
    """One scored candidate."""

    location: TableLocation
    cost_ms: float
    available: bool


class ReplicaSelector:
    """Ranks replicated table hostings by network proximity."""

    def __init__(self, network: Network, directory: Directory, home_host: str):
        self.network = network
        self.directory = directory
        self.home_host = home_host

    def score(self, location: TableLocation) -> ReplicaChoice:
        """Cost of pulling a representative payload from this hosting."""
        try:
            binding = self.directory.lookup(location.url)
        except ConnectionFailedError:
            return ReplicaChoice(location, float("inf"), available=False)
        # a directory entry is not liveness: a partitioned or failed host
        # must not be pinned by the decomposer
        if not self.network.is_reachable(self.home_host, binding.host_name):
            return ReplicaChoice(location, float("inf"), available=False)
        link = self.network.link_between(self.home_host, binding.host_name)
        return ReplicaChoice(location, link.transfer_ms(PROBE_BYTES), available=True)

    def rank(self, dictionary: DataDictionary, logical_table: str) -> list[ReplicaChoice]:
        """All hostings of ``logical_table``, cheapest first."""
        locations = dictionary.locations(logical_table)
        if not locations:
            raise TableNotRegisteredError(logical_table)
        choices = [self.score(loc) for loc in locations]
        choices.sort(key=lambda c: c.cost_ms)
        return choices

    def choose(self, dictionary: DataDictionary, logical_table: str) -> TableLocation:
        """The closest *available* hosting; raises if every replica is gone."""
        for choice in self.rank(dictionary, logical_table):
            if choice.available:
                return choice.location
        raise ConnectionFailedError(
            f"every replica of {logical_table!r} is unavailable"
        )

    def preferences(
        self, dictionary: DataDictionary, logical_tables: list[str]
    ) -> dict[str, str]:
        """``prefer_databases`` mapping for the decomposer.

        A table whose every replica is currently unavailable is left
        unpinned: selection is an optimisation, and refusing to plan
        would bypass the failover and partial-answer machinery that
        knows how to handle (or report) dead backends per sub-query.
        """
        out: dict[str, str] = {}
        for table in logical_tables:
            if len(dictionary.locations(table)) > 1:
                try:
                    out[table] = self.choose(dictionary, table).database_name
                except ConnectionFailedError:
                    continue
        return out

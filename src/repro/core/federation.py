"""GridFederation: wire a whole testbed together.

This is the top-level convenience the examples and benchmarks use: one
object owning the virtual clock, the network fabric, the driver
directory, the central RLS, any number of JClarens servers (each with a
data access service), the databases attached to them, and client
proxies. It reproduces the paper's deployment shape: a tiered topology
of hosts, databases registered per server, table locations published to
the RLS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clarens.client import ClarensClient
from repro.clarens.server import ClarensServer
from repro.core.service import DataAccessService, QueryAnswer
from repro.dialects import get_dialect
from repro.driver.directory import Directory
from repro.engine.database import Database
from repro.net.network import Link, Network
from repro.net.simclock import SimClock
from repro.rls.client import RLSClient
from repro.rls.server import RLSServer


@dataclass
class ServerHandle:
    """One JClarens instance plus its data access service."""

    server: ClarensServer
    service: DataAccessService

    @property
    def name(self) -> str:
        return self.server.name

    @property
    def host(self) -> str:
        return self.server.host


@dataclass
class QueryOutcome:
    """Answer + the measured simulated response time."""

    answer: QueryAnswer
    response_ms: float


class GridFederation:
    """A complete simulated deployment of the paper's middleware."""

    def __init__(self, rls_host: str = "rls.cern.ch", default_link: Link | None = None):
        self.clock = SimClock()
        self.network = Network(default_link) if default_link else Network()
        self.directory = Directory()
        self.network.add_host(rls_host, tier=0)
        self.rls_server = RLSServer(rls_host, self.clock)
        self._servers: dict[str, ServerHandle] = {}  # keyed by service URL
        self._servers_by_name: dict[str, ServerHandle] = {}
        self._clients: dict[str, ClarensClient] = {}
        self._db_counter = 0
        #: shared per-database epoch registry, created lazily by the
        #: first ``create_server(cache=True)`` — every caching server in
        #: the federation sees the same epochs, so an ETL refresh on one
        #: server invalidates cached sub-results everywhere
        self.epochs = None

    # -- topology -----------------------------------------------------------------

    def add_host(self, name: str, tier: int = 2) -> None:
        if not self.network.has_host(name):
            self.network.add_host(name, tier)

    def create_server(
        self,
        name: str,
        host: str,
        tier: int = 2,
        force_jdbc: bool = False,
        replica_selection: bool = False,
        schema_poll_interval_ms: float | None = None,
        jdbc_pooling: bool = False,
        preflight: bool = False,
        observe: bool = False,
        cache: bool = False,
        resilience=False,
        slos=None,
    ) -> ServerHandle:
        """Start a JClarens server with a data access service on ``host``.

        With ``observe=True`` the service traces queries and registers
        its R-GMA-style monitor tables (``monitor_spans`` etc.) as an
        ordinary federated database, so telemetry is queryable with
        plain SQL — locally or from any peer via the RLS.

        With ``cache=True`` the service gets the multi-level query cache
        (:mod:`repro.cache`), wired to the federation-wide epoch
        registry so invalidation events propagate across servers.

        With ``resilience=True`` (or a
        :class:`~repro.resilience.ResilienceConfig`) the service gets
        retry/backoff, per-backend circuit breakers and graceful
        partial answers (:mod:`repro.resilience`).

        ``slos`` (a list of :class:`repro.obs.slo.SLO`, observing
        servers only) replaces the default latency/error objectives
        driving burn-rate alerts and ``dataaccess.health``.
        """
        self.add_host(host, tier)
        if cache and self.epochs is None:
            from repro.cache import EpochRegistry

            self.epochs = EpochRegistry()
        server = ClarensServer(name, host, self.network, self.clock)
        rls_client = RLSClient(host, self.network, self.clock, self.rls_server)
        service = DataAccessService(
            server,
            self.directory,
            rls_client=rls_client,
            server_resolver=self._resolve_server,
            force_jdbc=force_jdbc,
            replica_selection=replica_selection,
            schema_poll_interval_ms=schema_poll_interval_ms,
            jdbc_pooling=jdbc_pooling,
            preflight=preflight,
            observe=observe,
            cache=cache,
            epochs=self.epochs,
            resilience=resilience,
            slos=slos,
        )
        server.register_service(service)
        # server-side histogramming rides alongside the data access service
        from repro.analysis.histservice import HistogramService

        server.register_service(HistogramService(service))
        # plugging databases into a server is administrative (§4.10)
        server.set_acl("dataaccess.plugin", ("admin",))
        handle = ServerHandle(server, service)
        self._servers[service.service_url] = handle
        self._servers_by_name[name] = handle
        if service.monitor is not None:
            # the monitor database is just another federated database:
            # published to the RLS, so remote peers can query it too
            self.attach_database(handle, service.monitor, db_host=host)
        return handle

    def _resolve_server(self, service_url: str) -> ClarensServer | None:
        handle = self._servers.get(service_url)
        return handle.server if handle else None

    def server(self, name: str) -> ServerHandle:
        return self._servers_by_name[name]

    def servers(self) -> list[ServerHandle]:
        return [self._servers_by_name[n] for n in sorted(self._servers_by_name)]

    # -- databases ------------------------------------------------------------------

    def attach_database(
        self,
        handle: ServerHandle,
        database: Database,
        db_host: str | None = None,
        logical_names: dict[str, str] | None = None,
        tier: int = 2,
        user: str = "grid",
        password: str = "grid",
        publish: bool = True,
    ) -> str:
        """Run ``database`` on ``db_host`` and register it with ``handle``.

        Returns the connection URL. The vendor comes from
        ``database.vendor``; the URL is built with that dialect's
        grammar.
        """
        db_host = db_host or handle.host
        self.add_host(db_host, tier)
        dialect = get_dialect(database.vendor)
        self._db_counter += 1
        url = dialect.make_url(db_host, None, database.name)
        self.directory.register(
            url, database, user=user, password=password, host_name=db_host
        )
        handle.service.register_database(url, logical_names, publish=publish)
        return url

    # -- clients ---------------------------------------------------------------------

    def client(
        self, host: str, tier: int = 3, user: str = "grid", password: str = "grid"
    ) -> ClarensClient:
        self.add_host(host, tier)
        key = f"{host}|{user}"
        cached = self._clients.get(key)
        if cached is None:
            cached = ClarensClient(host, self.network, self.clock, user, password)
            self._clients[key] = cached
        return cached

    # -- querying ---------------------------------------------------------------------

    def query(
        self,
        client: ClarensClient,
        handle: ServerHandle,
        sql: str,
        params: tuple = (),
        allow_partial: bool = False,
    ) -> QueryOutcome:
        """Client-side query through the web-service interface, timed.

        The measured interval matches the paper's §5.2 "response time":
        from the client sending the request to the client holding the
        decoded rows (session establishment excluded — the prototype
        measured warm servers). ``allow_partial`` asks the server for a
        flagged partial answer instead of a fault when backends die.
        """
        client.connect(handle.server)  # warm the session before timing
        start = self.clock.now_ms
        if allow_partial:
            response = client.call(
                handle.server, "dataaccess.query", sql, list(params),
                False, None, True,
            )
        else:
            response = client.call(
                handle.server, "dataaccess.query", sql, list(params)
            )
        elapsed = self.clock.now_ms - start
        answer = QueryAnswer(
            columns=response["columns"],
            types=[],
            rows=[tuple(r) for r in response["rows"]],
            distributed=response["distributed"],
            databases=(),
            servers_accessed=response["servers"],
            tables_accessed=response["tables"],
            routes=list(response.get("routes", [])),
            partial=bool(response.get("partial", False)),
            failures=list(response.get("failures", [])),
        )
        return QueryOutcome(answer=answer, response_ms=elapsed)

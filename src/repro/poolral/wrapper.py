"""The two-method wrapper facade the paper's JNI layer exposes (§4.7).

Method 1 — ``initialize_handler(connection_string, user, password)``:
creates a service handle and adds it to the list of initialized handles.

Method 2 — ``execute(connection_string, select_fields, table_names,
where_clause)``: runs the query through the handle for that connection
string and returns a 2-D array of results.
"""

from __future__ import annotations

from repro.common.errors import DriverError
from repro.poolral.ral import PoolRAL


class PoolRALWrapper:
    """Exactly the JNI surface: two methods, 2-D arrays out.

    Optionally carries a tracer and metrics registry so calls through
    the JNI facade show up in the owning server's telemetry.
    """

    def __init__(self, ral: PoolRAL, tracer=None, metrics=None):
        self._ral = ral
        self.tracer = tracer
        self.metrics = metrics

    def _count(self, name: str, n: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(n)

    def initialize_handler(
        self, connection_string: str, user: str = "grid", password: str = "grid"
    ) -> bool:
        """Initialize a service handle for a new database (method 1)."""
        self._ral.initialize(connection_string, user, password)
        self._count("poolral.handles_initialized")
        return True

    def execute(
        self,
        connection_string: str,
        select_fields: list[str],
        table_names: list[str],
        where_clause: str = "",
    ) -> list[list]:
        """Execute a select through POOL (method 2); returns a 2-D array."""
        if not self._ral.has_handle(connection_string):
            raise DriverError(
                f"no initialized POOL handle for {connection_string!r}; "
                "call initialize_handler first"
            )
        if not select_fields or not table_names:
            raise DriverError("execute requires select fields and table names")
        sql = f"SELECT {', '.join(select_fields)} FROM {', '.join(table_names)}"
        if where_clause.strip():
            sql += f" WHERE {where_clause}"
        from repro.obs.trace import NOOP_SPAN

        span = (
            self.tracer.span("poolral_execute", tables=",".join(table_names))
            if self.tracer is not None
            else NOOP_SPAN
        )
        with span:
            cursor = self._ral.execute_sql(connection_string, sql)
            rows = [list(row) for row in cursor.fetchall()]
            span.set("rows", len(rows))
        self._count("poolral.executes")
        self._count("poolral.rows", len(rows))
        return rows

"""The vendor-neutral relational abstraction layer with cached handles."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import UnsupportedVendorError
from repro.driver.connection import Connection, connect
from repro.driver.directory import Directory
from repro.driver.url import sniff_vendor
from repro.net import costs


@dataclass
class RALHandle:
    """One initialized POOL session (paper wrapper method 1 output)."""

    url: str
    connection: Connection
    queries_executed: int = 0


class PoolRAL:
    """Handle cache + vendor-neutral execution."""

    def __init__(self, directory: Directory, clock):
        self.directory = directory
        self.clock = clock
        self._handles: dict[str, RALHandle] = {}

    # -- handles ------------------------------------------------------------------

    def supports_url(self, url: str) -> bool:
        """True when POOL's vendor matrix covers this database."""
        dialect, _ = sniff_vendor(url)
        return dialect.pool_supported

    def has_handle(self, url: str) -> bool:
        return url in self._handles

    def initialize(self, url: str, user: str = "grid", password: str = "grid") -> RALHandle:
        """Initialize (or return the cached) session handle for ``url``."""
        cached = self._handles.get(url)
        if cached is not None:
            return cached
        dialect, _ = sniff_vendor(url)
        if not dialect.pool_supported:
            raise UnsupportedVendorError(
                f"{dialect.display_name} is not supported by POOL-RAL"
            )
        self.clock.advance_ms(costs.POOL_INIT_HANDLE_MS)
        connection = connect(
            url, user, password, directory=self.directory, clock=self.clock
        )
        handle = RALHandle(url=url, connection=connection)
        self._handles[url] = handle
        return handle

    def release(self, url: str) -> None:
        handle = self._handles.pop(url, None)
        if handle is not None:
            handle.connection.close()

    def handle_count(self) -> int:
        return len(self._handles)

    # -- execution -----------------------------------------------------------------

    def execute_sql(self, url: str, sql: str, params: tuple = ()):
        """Run SQL through an initialized handle; returns the cursor.

        Unlike the JDBC path, no connect/auth is paid here — the handle
        was initialized once at registration time.
        """
        handle = self._handles.get(url)
        if handle is None:
            handle = self.initialize(url)
        self.clock.advance_ms(costs.POOL_CALL_MS)
        cursor = handle.connection.execute(sql, params)
        handle.queries_executed += 1
        return cursor

"""POOL Relational Abstraction Layer (§4.7).

The paper wraps CERN's C++ POOL-RAL behind a two-method JNI facade:
one method initializes (and caches) a database session handle from a
connection string, the other executes a (select-fields, tables, where)
query through a cached handle and returns a 2-D array. Handle caching
is the load-bearing detail: POOL-routed local queries skip the per-query
connect/authenticate cost that dominates the Unity/JDBC path — that is
why Table 1's non-distributed query is >10× faster.

POOL supports Oracle, MySQL and SQLite; Microsoft SQL Server is *not*
supported and must take the JDBC path (see ``Dialect.pool_supported``).
"""

from repro.poolral.ral import RALHandle, PoolRAL
from repro.poolral.wrapper import PoolRALWrapper

__all__ = ["PoolRAL", "PoolRALWrapper", "RALHandle"]

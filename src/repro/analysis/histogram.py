"""Fixed-bin histograms, HBOOK-flavoured.

Vectorized fills (numpy), explicit under/overflow bins, first/second
moments tracked from the filled values (not bin centers), and a text
renderer — the shape a 2005 physicist expects from HBOOK/JAS.
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.errors import ReproError


class Histogram1D:
    """A 1-D histogram with ``nbins`` equal bins over [low, high)."""

    def __init__(self, nbins: int, low: float, high: float, title: str = ""):
        if nbins <= 0:
            raise ReproError("histogram needs at least one bin")
        if not (high > low):
            raise ReproError(f"bad histogram range [{low}, {high})")
        self.nbins = int(nbins)
        self.low = float(low)
        self.high = float(high)
        self.title = title
        self.counts = np.zeros(self.nbins, dtype=np.int64)
        self.underflow = 0
        self.overflow = 0
        self._sum = 0.0
        self._sum2 = 0.0
        self._n = 0

    # -- filling -----------------------------------------------------------------

    def fill(self, values, weights=None) -> None:
        """Fill with a scalar or an iterable of values (vectorized)."""
        arr = np.atleast_1d(np.asarray(values, dtype=np.float64))
        arr = arr[~np.isnan(arr)]
        if arr.size == 0:
            return
        self.underflow += int((arr < self.low).sum())
        self.overflow += int((arr >= self.high).sum())
        inside = arr[(arr >= self.low) & (arr < self.high)]
        if inside.size:
            idx = ((inside - self.low) / self.bin_width).astype(np.int64)
            np.add.at(self.counts, idx, 1)
        self._sum += float(arr.sum())
        self._sum2 += float((arr * arr).sum())
        self._n += int(arr.size)

    # -- statistics ---------------------------------------------------------------

    @property
    def bin_width(self) -> float:
        """Width of one bin."""
        return (self.high - self.low) / self.nbins

    @property
    def entries(self) -> int:
        """Total values seen, including under/overflow."""
        return self._n

    @property
    def in_range(self) -> int:
        """Counts inside [low, high), excluding under/overflow."""
        return int(self.counts.sum())

    @property
    def mean(self) -> float:
        """Mean of every filled value (including out-of-range ones)."""
        return self._sum / self._n if self._n else math.nan

    @property
    def std(self) -> float:
        """Population standard deviation of the filled values."""
        if self._n < 2:
            return math.nan
        variance = self._sum2 / self._n - self.mean**2
        return math.sqrt(max(0.0, variance))

    def bin_centers(self) -> np.ndarray:
        """The center coordinate of each bin."""
        return self.low + (np.arange(self.nbins) + 0.5) * self.bin_width

    def bin_index(self, value: float) -> int:
        """Bin index for ``value``; -1 underflow, nbins overflow."""
        if value < self.low:
            return -1
        if value >= self.high:
            return self.nbins
        return int((value - self.low) / self.bin_width)

    # -- combination ---------------------------------------------------------------

    def compatible_with(self, other: "Histogram1D") -> bool:
        """True when binning (nbins, low, high) matches exactly."""
        return (
            self.nbins == other.nbins
            and self.low == other.low
            and self.high == other.high
        )

    def __add__(self, other: "Histogram1D") -> "Histogram1D":
        """Merge two compatible histograms (e.g. the same cut run on two
        marts); counts, flows and moments all add exactly."""
        if not isinstance(other, Histogram1D):
            return NotImplemented
        if not self.compatible_with(other):
            raise ReproError("cannot add histograms with different binnings")
        out = Histogram1D(self.nbins, self.low, self.high, self.title or other.title)
        out.counts = self.counts + other.counts
        out.underflow = self.underflow + other.underflow
        out.overflow = self.overflow + other.overflow
        out._sum = self._sum + other._sum
        out._sum2 = self._sum2 + other._sum2
        out._n = self._n + other._n
        return out

    # -- rendering -----------------------------------------------------------------

    def render(self, width: int = 50) -> str:
        """ASCII rendering, one line per bin."""
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(
            f"entries={self.entries} mean={self.mean:.4g} std={self.std:.4g} "
            f"under={self.underflow} over={self.overflow}"
        )
        peak = max(1, int(self.counts.max()) if self.nbins else 1)
        for i in range(self.nbins):
            edge = self.low + i * self.bin_width
            bar = "#" * int(round(self.counts[i] / peak * width))
            lines.append(f"{edge:>12.4g} | {bar} {int(self.counts[i])}")
        return "\n".join(lines)


class Profile1D:
    """HBOOK-style profile histogram: per-x-bin mean and spread of y.

    Used for calibration-style plots (mean response vs channel); keeps
    per-bin count, sum and sum-of-squares so the mean and its error are
    exact regardless of fill order.
    """

    def __init__(self, nbins: int, low: float, high: float, title: str = ""):
        if nbins <= 0:
            raise ReproError("profile needs at least one bin")
        if not (high > low):
            raise ReproError(f"bad profile range [{low}, {high})")
        self.nbins = int(nbins)
        self.low = float(low)
        self.high = float(high)
        self.title = title
        self.counts = np.zeros(self.nbins, dtype=np.int64)
        self._sum = np.zeros(self.nbins, dtype=np.float64)
        self._sum2 = np.zeros(self.nbins, dtype=np.float64)
        self.out_of_range = 0

    @property
    def bin_width(self) -> float:
        """Width of one bin."""
        return (self.high - self.low) / self.nbins

    def fill(self, xs, ys) -> None:
        """Fill with paired x/y samples (vectorized)."""
        xa = np.atleast_1d(np.asarray(xs, dtype=np.float64))
        ya = np.atleast_1d(np.asarray(ys, dtype=np.float64))
        if xa.shape != ya.shape:
            raise ReproError("x and y fills must have the same length")
        ok = (xa >= self.low) & (xa < self.high) & ~np.isnan(ya)
        self.out_of_range += int((~ok).sum())
        if not ok.any():
            return
        idx = ((xa[ok] - self.low) / self.bin_width).astype(np.int64)
        np.add.at(self.counts, idx, 1)
        np.add.at(self._sum, idx, ya[ok])
        np.add.at(self._sum2, idx, ya[ok] ** 2)

    def bin_mean(self, i: int) -> float:
        """Mean of y in bin ``i`` (NaN when empty)."""
        if self.counts[i] == 0:
            return math.nan
        return float(self._sum[i] / self.counts[i])

    def bin_error(self, i: int) -> float:
        """Standard error on the bin mean."""
        n = int(self.counts[i])
        if n < 2:
            return math.nan
        mean = self._sum[i] / n
        variance = max(0.0, self._sum2[i] / n - mean**2)
        return float(math.sqrt(variance / n))

    def means(self) -> np.ndarray:
        """Per-bin means as an array (NaN for empty bins)."""
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(self.counts > 0, self._sum / self.counts, np.nan)

    @property
    def entries(self) -> int:
        """Total samples seen, including out-of-range ones."""
        return int(self.counts.sum()) + self.out_of_range

    def render(self, width: int = 40) -> str:
        """One line per bin: mean with a bar scaled to the mean range."""
        lines = []
        if self.title:
            lines.append(self.title)
        means = self.means()
        finite = means[~np.isnan(means)]
        lines.append(f"entries={self.entries} bins={self.nbins}")
        if finite.size == 0:
            return "\n".join(lines)
        lo, hi = float(finite.min()), float(finite.max())
        span = (hi - lo) or 1.0
        for i in range(self.nbins):
            edge = self.low + i * self.bin_width
            if np.isnan(means[i]):
                lines.append(f"{edge:>12.4g} | (empty)")
            else:
                bar = "#" * int(round((means[i] - lo) / span * width))
                err = self.bin_error(i)
                err_text = f" +- {err:.3g}" if not math.isnan(err) else ""
                lines.append(f"{edge:>12.4g} | {bar} {means[i]:.4g}{err_text}")
        return "\n".join(lines)


class Histogram2D:
    """A 2-D histogram over a rectangular range."""

    def __init__(
        self,
        nx: int,
        xlow: float,
        xhigh: float,
        ny: int,
        ylow: float,
        yhigh: float,
        title: str = "",
    ):
        if nx <= 0 or ny <= 0:
            raise ReproError("histogram needs at least one bin per axis")
        if not (xhigh > xlow and yhigh > ylow):
            raise ReproError("bad 2-D histogram range")
        self.nx, self.ny = int(nx), int(ny)
        self.xlow, self.xhigh = float(xlow), float(xhigh)
        self.ylow, self.yhigh = float(ylow), float(yhigh)
        self.title = title
        self.counts = np.zeros((self.nx, self.ny), dtype=np.int64)
        self.out_of_range = 0

    def fill(self, xs, ys) -> None:
        """Fill with paired x/y samples (vectorized)."""
        xa = np.atleast_1d(np.asarray(xs, dtype=np.float64))
        ya = np.atleast_1d(np.asarray(ys, dtype=np.float64))
        if xa.shape != ya.shape:
            raise ReproError("x and y fills must have the same length")
        ok = (
            (xa >= self.xlow)
            & (xa < self.xhigh)
            & (ya >= self.ylow)
            & (ya < self.yhigh)
        )
        self.out_of_range += int((~ok).sum())
        if ok.any():
            xi = ((xa[ok] - self.xlow) / self.x_width).astype(np.int64)
            yi = ((ya[ok] - self.ylow) / self.y_width).astype(np.int64)
            np.add.at(self.counts, (xi, yi), 1)

    @property
    def x_width(self) -> float:
        """Width of one x bin."""
        return (self.xhigh - self.xlow) / self.nx

    @property
    def y_width(self) -> float:
        """Width of one y bin."""
        return (self.yhigh - self.ylow) / self.ny

    @property
    def entries(self) -> int:
        """Total samples seen, including out-of-range ones."""
        return int(self.counts.sum()) + self.out_of_range

    def render(self) -> str:
        """Density-character rendering, y down the page."""
        chars = " .:-=+*#%@"
        peak = max(1, int(self.counts.max()))
        lines = [self.title] if self.title else []
        for yi in range(self.ny - 1, -1, -1):
            row = "".join(
                chars[min(len(chars) - 1, int(self.counts[xi, yi] / peak * (len(chars) - 1)))]
                for xi in range(self.nx)
            )
            lines.append(row)
        return "\n".join(lines)

"""Cut-flow analysis: the HEP selection-efficiency table.

A physics analysis applies a *sequence* of cuts (predicates) to an
event sample and reports, after each cut, how many events survive and
the marginal/cumulative efficiency — the first table in every analysis
note. :class:`CutFlow` computes it with grid queries: each stage is a
conjunction of the cuts so far, counted through the web-service
interface, so the flow works identically on a local mart or a
federated, replicated table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ReproError


@dataclass(frozen=True)
class CutStage:
    """One row of the cut-flow table."""

    name: str
    predicate: str
    passed: int
    marginal_efficiency: float  # vs the previous stage
    cumulative_efficiency: float  # vs the initial sample


class CutFlow:
    """Sequential selection over one logical table."""

    def __init__(self, run_count, table: str):
        """``run_count(where_sql | None) -> int`` counts surviving rows;
        the federation flavour is built by :func:`grid_cutflow`."""
        self._count = run_count
        self.table = table
        self.cuts: list[tuple[str, str]] = []

    def add_cut(self, name: str, predicate: str) -> "CutFlow":
        """Append a named cut (a SQL boolean expression); chainable."""
        if not predicate.strip():
            raise ReproError(f"cut {name!r} has an empty predicate")
        self.cuts.append((name, predicate))
        return self

    def run(self) -> list[CutStage]:
        """Count survivors after each cumulative cut."""
        initial = self._count(None)
        stages = [
            CutStage(
                name="all events",
                predicate="",
                passed=initial,
                marginal_efficiency=1.0,
                cumulative_efficiency=1.0,
            )
        ]
        previous = initial
        conjuncts: list[str] = []
        for name, predicate in self.cuts:
            conjuncts.append(f"({predicate})")
            passed = self._count(" AND ".join(conjuncts))
            stages.append(
                CutStage(
                    name=name,
                    predicate=predicate,
                    passed=passed,
                    marginal_efficiency=(passed / previous) if previous else 0.0,
                    cumulative_efficiency=(passed / initial) if initial else 0.0,
                )
            )
            previous = passed
        return stages

    def render(self) -> str:
        """The classic cut-flow table as text."""
        stages = self.run()
        width = max(len(s.name) for s in stages)
        lines = [
            f"cut flow over {self.table!r}",
            f"{'cut'.ljust(width)} | {'passed':>8} | {'marg eff':>8} | {'cum eff':>8}",
        ]
        for s in stages:
            lines.append(
                f"{s.name.ljust(width)} | {s.passed:>8} | "
                f"{s.marginal_efficiency:>8.3f} | {s.cumulative_efficiency:>8.3f}"
            )
        return "\n".join(lines)


def local_cutflow(database, table: str) -> CutFlow:
    """Cut flow counting directly on one engine database."""

    def count(where: str | None) -> int:
        sql = f"SELECT COUNT(*) FROM {table}"
        if where:
            sql += f" WHERE {where}"
        return database.execute(sql).rows[0][0]

    return CutFlow(count, table)


def grid_cutflow(federation, client, server, table: str) -> CutFlow:
    """Cut flow counting through the web-service interface."""

    def count(where: str | None) -> int:
        sql = f"SELECT COUNT(*) FROM {table}"
        if where:
            sql += f" WHERE {where}"
        outcome = federation.query(client, server, sql)
        return outcome.answer.rows[0][0]

    return CutFlow(count, table)

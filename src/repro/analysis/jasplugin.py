"""JAS-style plug-in: query the grid, histogram the answer (§6)."""

from __future__ import annotations

from repro.analysis.histogram import Histogram1D, Histogram2D, Profile1D
from repro.clarens.client import ClarensClient
from repro.common.errors import ReproError
from repro.core.federation import GridFederation, ServerHandle


class JASPlugin:
    """Submits queries through the web-service interface and plots them."""

    def __init__(
        self, federation: GridFederation, client: ClarensClient, server: ServerHandle
    ):
        self.federation = federation
        self.client = client
        self.server = server

    def fetch_column(self, sql: str, column: str) -> list[float]:
        """Run ``sql`` on the grid and pull one numeric column."""
        outcome = self.federation.query(self.client, self.server, sql)
        answer = outcome.answer
        idx = answer.column_index(column)
        values = []
        for row in answer.rows:
            v = row[idx]
            if v is None:
                continue
            if not isinstance(v, (int, float)):
                raise ReproError(
                    f"column {column!r} is not numeric (got {type(v).__name__})"
                )
            values.append(float(v))
        return values

    def histogram_query(
        self,
        sql: str,
        column: str,
        nbins: int = 40,
        low: float | None = None,
        high: float | None = None,
        title: str | None = None,
    ) -> Histogram1D:
        """Histogram one column of a grid query's result."""
        values = self.fetch_column(sql, column)
        if low is None or high is None:
            if not values:
                raise ReproError("cannot auto-range a histogram with no data")
            vmin, vmax = min(values), max(values)
            pad = (vmax - vmin) * 0.05 or 1.0
            low = vmin if low is None else low
            high = (vmax + pad) if high is None else high
        hist = Histogram1D(nbins, low, high, title or f"{column} — {sql[:40]}")
        hist.fill(values)
        return hist

    def profile_query(
        self,
        sql: str,
        xcolumn: str,
        ycolumn: str,
        nbins: int = 20,
        low: float | None = None,
        high: float | None = None,
    ) -> Profile1D:
        """Profile histogram: per-x-bin mean of y over a grid query."""
        outcome = self.federation.query(self.client, self.server, sql)
        answer = outcome.answer
        xi = answer.column_index(xcolumn)
        yi = answer.column_index(ycolumn)
        xs, ys = [], []
        for row in answer.rows:
            if row[xi] is None or row[yi] is None:
                continue
            xs.append(float(row[xi]))
            ys.append(float(row[yi]))
        if not xs:
            raise ReproError("no data to profile")
        if low is None:
            low = min(xs)
        if high is None:
            hi = max(xs)
            high = hi + ((hi - low) * 0.05 or 1.0)
        profile = Profile1D(nbins, low, high, f"<{ycolumn}> vs {xcolumn}")
        profile.fill(xs, ys)
        return profile

    def histogram2d_query(
        self,
        sql: str,
        xcolumn: str,
        ycolumn: str,
        nx: int = 30,
        ny: int = 15,
    ) -> Histogram2D:
        """2-D histogram of two columns of a grid query's result."""
        outcome = self.federation.query(self.client, self.server, sql)
        answer = outcome.answer
        xi = answer.column_index(xcolumn)
        yi = answer.column_index(ycolumn)
        xs, ys = [], []
        for row in answer.rows:
            if row[xi] is None or row[yi] is None:
                continue
            xs.append(float(row[xi]))
            ys.append(float(row[yi]))
        if not xs:
            raise ReproError("no data to histogram")
        pad = lambda lo, hi: (lo, hi + ((hi - lo) * 0.05 or 1.0))  # noqa: E731
        xlo, xhi = pad(min(xs), max(xs))
        ylo, yhi = pad(min(ys), max(ys))
        hist = Histogram2D(nx, xlo, xhi, ny, ylo, yhi, f"{ycolumn} vs {xcolumn}")
        hist.fill(xs, ys)
        return hist

"""Server-side histogramming service.

The paper's JAS plug-in pulls every row to the client and histograms
there; for large samples that is most of Figure 6's cost. This Clarens
service computes the histogram *at the server* — next to the data
access service — and ships only the bins, turning an O(rows) response
into an O(bins) one. It demonstrates how new services slot into the
same container, sessions, ACLs and wire accounting as ``dataaccess``.
"""

from __future__ import annotations

from repro.analysis.histogram import Histogram1D
from repro.clarens.server import ClarensService
from repro.common.errors import ClarensFault


class HistogramService(ClarensService):
    """Clarens service: grid queries in, histogram bins out."""

    service_name = "histogram"
    exposed = ("h1d",)

    def __init__(self, data_access):
        self.data_access = data_access

    def h1d(
        self,
        sql: str,
        column: str,
        nbins: int = 40,
        low: float | None = None,
        high: float | None = None,
    ):
        """Histogram ``column`` of the query's result, server-side.

        Returns a wire struct: binning, counts, flows and moments — a
        few hundred bytes regardless of how many rows the query hit.
        """
        answer = self.data_access.execute(sql)
        try:
            idx = answer.column_index(column)
        except KeyError:
            raise ClarensFault(
                "histogram.h1d", f"result has no column {column!r}"
            ) from None
        values = []
        for row in answer.rows:
            v = row[idx]
            if v is None:
                continue
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                raise ClarensFault(
                    "histogram.h1d", f"column {column!r} is not numeric"
                )
            values.append(float(v))
        if low is None or high is None:
            if not values:
                raise ClarensFault("histogram.h1d", "no data to auto-range")
            vmin, vmax = min(values), max(values)
            pad = (vmax - vmin) * 0.05 or 1.0
            low = vmin if low is None else float(low)
            high = (vmax + pad) if high is None else float(high)
        hist = Histogram1D(int(nbins), float(low), float(high))
        hist.fill(values)
        return histogram_to_wire(hist)


def histogram_to_wire(hist: Histogram1D) -> dict:
    """Encode a histogram as a wire-safe struct."""
    return {
        "nbins": hist.nbins,
        "low": hist.low,
        "high": hist.high,
        "counts": [int(c) for c in hist.counts],
        "underflow": hist.underflow,
        "overflow": hist.overflow,
        "sum": hist._sum,
        "sum2": hist._sum2,
        "n": hist._n,
        "title": hist.title,
    }


def histogram_from_wire(data: dict) -> Histogram1D:
    """Rebuild a :class:`Histogram1D` from its wire struct."""
    hist = Histogram1D(
        int(data["nbins"]), float(data["low"]), float(data["high"]),
        title=data.get("title", ""),
    )
    for i, count in enumerate(data["counts"]):
        hist.counts[i] = int(count)
    hist.underflow = int(data["underflow"])
    hist.overflow = int(data["overflow"])
    hist._sum = float(data["sum"])
    hist._sum2 = float(data["sum2"])
    hist._n = int(data["n"])
    return hist

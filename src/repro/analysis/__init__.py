"""Analysis tooling: histograms and the JAS-style plug-in (§6).

The paper's Java Analysis Studio plug-in submits queries through the
web-service interface and visualizes the returned rows as histograms;
:class:`~repro.analysis.jasplugin.JASPlugin` does the same against a
:class:`~repro.core.federation.GridFederation`, rendering text
histograms suitable for terminals and logs.
"""

from repro.analysis.cutflow import CutFlow, CutStage, grid_cutflow, local_cutflow
from repro.analysis.histogram import Histogram1D, Histogram2D, Profile1D
from repro.analysis.histservice import (
    HistogramService,
    histogram_from_wire,
    histogram_to_wire,
)
from repro.analysis.jasplugin import JASPlugin

__all__ = [
    "CutFlow",
    "CutStage",
    "Histogram1D",
    "Histogram2D",
    "HistogramService",
    "JASPlugin",
    "Profile1D",
    "grid_cutflow",
    "histogram_from_wire",
    "histogram_to_wire",
    "local_cutflow",
]

"""Static SQL semantic analysis (pre-flight query checking).

The paper's Data Access Service ships decomposed sub-queries over the
WAN before any vendor database can reject them, so a typo'd column or a
vendor-incompatible function costs a full round trip per mart. The XSpec
data dictionary already describes every table, column, type, and vendor
— enough to validate a query *statically* at the service.

This package walks a parsed :mod:`repro.sql.ast` tree against that
metadata (or a live engine catalog) and emits structured
:class:`Diagnostic` findings with stable codes::

    RPR001 syntax-error        RPR106 duplicate-binding
    RPR101 unknown-table       RPR201 type-mismatch
    RPR102 unknown-column      RPR202 non-boolean-where
    RPR103 ambiguous-column    RPR301 aggregate-misuse
    RPR104 unknown-function    RPR302 federated-subquery
    RPR105 bad-argument-count  RPR401 vendor-incompat
                               RPR501 pushdown-warning

Typical use::

    from repro.lint import sqlcheck
    report = sqlcheck("SELECT nam FROM runs", dictionary)
    if not report.ok:
        print("\\n".join(report.format_lines()))
"""

from __future__ import annotations

from repro.lint.analyzer import (
    lint_select,
    lint_sql,
    lint_statement,
    typecheck_select,
)
from repro.lint.diagnostics import Diagnostic, LintReport, Severity, Span
from repro.lint.rules import DEFAULT_CONFIG, RULES, LintConfig, Rule
from repro.lint.schema import (
    CatalogSchema,
    DictionarySchema,
    SchemaProvider,
    XSpecSchema,
    dictionary_from_specs,
)

__all__ = [
    "CatalogSchema",
    "DEFAULT_CONFIG",
    "Diagnostic",
    "DictionarySchema",
    "LintConfig",
    "LintReport",
    "RULES",
    "Rule",
    "SchemaProvider",
    "Severity",
    "Span",
    "XSpecSchema",
    "dictionary_from_specs",
    "lint_select",
    "lint_sql",
    "lint_statement",
    "sqlcheck",
    "typecheck_select",
]


def sqlcheck(sql: str, schema, config: LintConfig | None = None) -> LintReport:
    """One-call linting: accepts any schema-ish object and SQL text.

    ``schema`` may be a :class:`SchemaProvider`, a
    :class:`~repro.metadata.dictionary.DataDictionary`, one or more
    :class:`~repro.metadata.xspec.LowerXSpec` documents, or a live
    :class:`~repro.engine.database.Database`.
    """
    return lint_sql(sql, _as_provider(schema), config)


def _as_provider(schema) -> "SchemaProvider":
    from repro.metadata.dictionary import DataDictionary
    from repro.metadata.xspec import LowerXSpec

    if isinstance(schema, DataDictionary):
        return DictionarySchema(schema)
    if isinstance(schema, LowerXSpec):
        return XSpecSchema(schema)
    if isinstance(schema, (list, tuple)) and all(
        isinstance(s, LowerXSpec) for s in schema
    ):
        return XSpecSchema(*schema)
    if hasattr(schema, "catalog") and hasattr(schema, "resolve_table"):
        return CatalogSchema(schema)
    if isinstance(schema, SchemaProvider):
        return schema
    raise TypeError(
        f"cannot lint against a {type(schema).__name__}; expected a "
        f"SchemaProvider, DataDictionary, LowerXSpec(s), or Database"
    )

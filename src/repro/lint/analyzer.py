"""The static semantic analyzer.

Walks a parsed :mod:`repro.sql.ast` tree against a
:class:`~repro.lint.schema.SchemaProvider` and emits
:class:`~repro.lint.diagnostics.Diagnostic` findings without executing
anything. Severity is calibrated against the simulated engine: a finding
is an ERROR only when the engine (or the federated planner) would itself
reject the query, so "executes successfully" implies "lint-clean at
ERROR severity" — a tested invariant.

The analysis deliberately mirrors runtime semantics rather than the SQL
standard: ``||`` and LIKE stringify anything (no diagnostic), BOOLEAN
compares as a number, temporal values travel as ISO strings (text
family), and cross-side equi-join conjuncts hash-match without a type
check (so ``ON a.id = b.name`` is noted but never an error).
"""

from __future__ import annotations

from repro.common.errors import ColumnNotFoundError, ReproError, UnsupportedVendorError
from repro.common.types import SQLType, TypeKind, infer_literal_type
from repro.lint.diagnostics import Diagnostic, LintReport, Severity, Span
from repro.lint.rules import DEFAULT_CONFIG, RULES, LintConfig
from repro.sql import ast
from repro.sql.eval import _SCALAR_FUNCTIONS, RowSchema

#: Every function name the engine can evaluate.
SCALAR_FUNCTIONS = frozenset(_SCALAR_FUNCTIONS)
KNOWN_FUNCTIONS = SCALAR_FUNCTIONS | ast.AGGREGATE_FUNCTIONS

#: (min, max) argument counts; ``None`` max means variadic.
_FUNCTION_ARITY: dict[str, tuple[int, int | None]] = {
    "ABS": (1, 1), "ROUND": (1, 2), "FLOOR": (1, 1), "CEIL": (1, 1),
    "SQRT": (1, 1), "POWER": (2, 2), "EXP": (1, 1), "LN": (1, 1),
    "LOG10": (1, 1), "MOD": (2, 2), "SIGN": (1, 1),
    "LOWER": (1, 1), "UPPER": (1, 1), "LENGTH": (1, 1), "TRIM": (1, 1),
    "LTRIM": (1, 1), "RTRIM": (1, 1), "REPLACE": (3, 3), "INSTR": (2, 2),
    "CONCAT": (1, None), "COALESCE": (1, None), "NULLIF": (2, 2),
    "SUBSTR": (2, 3),
}

#: Functions whose arguments must be numeric at runtime. Only the first
#: argument of ROUND/SUBSTR is strict (the rest pass through int()/str()
#: conversions that accept numeric strings), so those stay unchecked.
_NUMERIC_ARG_FUNCTIONS = frozenset(
    {"ABS", "FLOOR", "CEIL", "SQRT", "EXP", "LN", "LOG10", "SIGN",
     "POWER", "MOD", "ROUND"}
)
_TEXT_RESULT_FUNCTIONS = frozenset(
    {"LOWER", "UPPER", "TRIM", "LTRIM", "RTRIM", "REPLACE", "SUBSTR", "CONCAT"}
)
_INT_RESULT_FUNCTIONS = frozenset({"LENGTH", "INSTR", "SIGN"})
#: Aggregates that sum/average and therefore need numeric input.
_NUMERIC_AGGREGATES = frozenset({"SUM", "AVG", "STDDEV", "VARIANCE"})

_COMPARISONS = ("=", "<>", "<", "<=", ">", ">=")
_ARITHMETIC = ("+", "-", "*", "/", "%")


def _family(sql_type: SQLType | None) -> str | None:
    """Runtime comparison family: numeric (incl. BOOLEAN), text (incl.
    temporal, which travels as ISO strings), or None (unknown/BLOB)."""
    if sql_type is None:
        return None
    kind = sql_type.kind
    if kind.is_numeric or kind is TypeKind.BOOLEAN:
        return "numeric"
    if kind.is_textual or kind.is_temporal:
        return "text"
    return None


class _ExprTyper:
    """Bottom-up type inference that mirrors the evaluator's strictness.

    ``resolve(ref) -> SQLType | None`` supplies column types (and emits
    its own name diagnostics); ``emit(code, message, fragment)`` records
    findings; ``on_subquery(select)`` is called once per embedded SELECT.
    """

    def __init__(self, resolve, emit, on_subquery=None):
        self.resolve = resolve
        self.emit = emit
        self.on_subquery = on_subquery
        self._agg_depth = 0

    def type_of(self, expr: ast.Expr, agg_ok: bool = False) -> SQLType | None:
        if isinstance(expr, ast.Literal):
            if expr.value is None:
                return None  # NULL is typeless; never flag against it
            return infer_literal_type(expr.value)
        if isinstance(expr, ast.Param):
            return None
        if isinstance(expr, ast.ColumnRef):
            return self.resolve(expr)
        if isinstance(expr, ast.Star):
            return None  # star contexts are handled by the clause walkers
        if isinstance(expr, ast.BinaryOp):
            return self._type_binary(expr, agg_ok)
        if isinstance(expr, ast.UnaryOp):
            operand = self.type_of(expr.operand, agg_ok)
            if expr.op == "NOT":
                return SQLType.boolean()
            if _family(operand) == "text":
                self._mismatch(f"unary {expr.op} on non-numeric operand", expr)
            if operand is not None and _family(operand) == "numeric":
                return operand
            return SQLType.double()
        if isinstance(expr, ast.IsNull):
            self.type_of(expr.operand, agg_ok)
            return SQLType.boolean()
        if isinstance(expr, ast.InList):
            operand = self.type_of(expr.operand, agg_ok)
            for item in expr.items:
                item_type = self.type_of(item, agg_ok)
                self._check_comparable(operand, item_type, expr)
            return SQLType.boolean()
        if isinstance(expr, ast.Between):
            operand = self.type_of(expr.operand, agg_ok)
            low = self.type_of(expr.low, agg_ok)
            high = self.type_of(expr.high, agg_ok)
            self._check_comparable(operand, low, expr)
            self._check_comparable(operand, high, expr)
            return SQLType.boolean()
        if isinstance(expr, ast.Like):
            # LIKE stringifies both sides at runtime; nothing to check.
            self.type_of(expr.operand, agg_ok)
            self.type_of(expr.pattern, agg_ok)
            return SQLType.boolean()
        if isinstance(expr, ast.Case):
            return self._type_case(expr, agg_ok)
        if isinstance(expr, ast.Cast):
            # CAST failure depends on the value, not the type; stay quiet.
            self.type_of(expr.operand, agg_ok)
            return expr.target
        if isinstance(expr, (ast.ScalarSubquery, ast.InSubquery, ast.Exists)):
            if isinstance(expr, ast.InSubquery):
                self.type_of(expr.operand, agg_ok)
            if self.on_subquery is not None:
                self.on_subquery(expr.select)
            if isinstance(expr, ast.ScalarSubquery):
                return None
            return SQLType.boolean()
        if isinstance(expr, ast.FunctionCall):
            return self._type_call(expr, agg_ok)
        return None

    # -- node kinds --------------------------------------------------------------

    def _type_binary(self, expr: ast.BinaryOp, agg_ok: bool) -> SQLType | None:
        left = self.type_of(expr.left, agg_ok)
        right = self.type_of(expr.right, agg_ok)
        op = expr.op
        if op in ("AND", "OR"):
            return SQLType.boolean()
        if op in _COMPARISONS:
            self._check_comparable(left, right, expr)
            return SQLType.boolean()
        if op == "||":
            return SQLType.text()
        if op in _ARITHMETIC:
            for side, stype in (("left", left), ("right", right)):
                if _family(stype) == "text":
                    self._mismatch(
                        f"non-numeric {side} operand of {op!r} "
                        f"(type {stype})", expr,
                    )
            if (
                left is not None and right is not None
                and _family(left) == "numeric" and _family(right) == "numeric"
            ):
                try:
                    from repro.common.types import common_supertype

                    return common_supertype(left, right)
                except ReproError:
                    return SQLType.double()
            return SQLType.double()
        return None

    def _type_case(self, expr: ast.Case, agg_ok: bool) -> SQLType | None:
        for cond, _result in expr.whens:
            self.type_of(cond, agg_ok)
        # Branches evaluate lazily at runtime, so mixed-family branches
        # are not flagged; the result type is known only when all known
        # branches agree on a family.
        branch_types = [self.type_of(r, agg_ok) for _c, r in expr.whens]
        if expr.else_ is not None:
            branch_types.append(self.type_of(expr.else_, agg_ok))
        known = [t for t in branch_types if t is not None]
        families = {_family(t) for t in known}
        if known and len(families) == 1 and None not in families:
            return known[0]
        return None

    def _type_call(self, expr: ast.FunctionCall, agg_ok: bool) -> SQLType | None:
        name = expr.name.upper()
        if name in ast.AGGREGATE_FUNCTIONS:
            return self._type_aggregate(expr, name, agg_ok)
        if name not in SCALAR_FUNCTIONS:
            self.emit(
                "RPR104", f"unknown function {expr.name!r}", expr.name
            )
            for arg in expr.args:
                self.type_of(arg, agg_ok)
            return None
        low, high = _FUNCTION_ARITY[name]
        n = len(expr.args)
        if n < low or (high is not None and n > high):
            expect = str(low) if high == low else (
                f"{low}+" if high is None else f"{low}-{high}"
            )
            self.emit(
                "RPR105",
                f"{name} takes {expect} argument(s), got {n}",
                expr.unparse(),
            )
        arg_types = [self.type_of(a, agg_ok) for a in expr.args]
        if name in _NUMERIC_ARG_FUNCTIONS:
            strict = arg_types[:1] if name == "ROUND" else arg_types
            for arg_type in strict:
                if _family(arg_type) == "text":
                    self._mismatch(
                        f"{name} requires numeric arguments, got {arg_type}",
                        expr,
                    )
        if name in _TEXT_RESULT_FUNCTIONS:
            return SQLType.text()
        if name in _INT_RESULT_FUNCTIONS:
            return SQLType.integer()
        if name == "NULLIF":
            return arg_types[0] if arg_types else None
        if name == "COALESCE":
            known = [t for t in arg_types if t is not None]
            families = {_family(t) for t in known}
            if known and len(families) == 1 and None not in families:
                return known[0]
            return None
        return SQLType.double()

    def _type_aggregate(
        self, expr: ast.FunctionCall, name: str, agg_ok: bool
    ) -> SQLType | None:
        if not agg_ok:
            self.emit(
                "RPR301",
                f"aggregate {name} is not allowed in this clause",
                expr.unparse(),
            )
        if self._agg_depth > 0:
            self.emit(
                "RPR301",
                f"aggregate {name} nested inside another aggregate",
                expr.unparse(),
            )
        arg_type: SQLType | None = None
        if expr.args and isinstance(expr.args[0], ast.Star):
            if name != "COUNT":
                self.emit(
                    "RPR301", f"{name}(*) is not defined; only COUNT(*)",
                    expr.unparse(),
                )
        elif expr.args:
            self._agg_depth += 1
            try:
                arg_type = self.type_of(expr.args[0], True)
                for extra in expr.args[1:]:
                    self.type_of(extra, True)
            finally:
                self._agg_depth -= 1
            if name in _NUMERIC_AGGREGATES and _family(arg_type) == "text":
                self._mismatch(
                    f"{name} over non-numeric values (type {arg_type})", expr
                )
        elif name != "COUNT":
            # COUNT() degrades to COUNT(*) at runtime; others blow up.
            self.emit(
                "RPR301", f"{name} requires an argument", expr.unparse()
            )
        if name == "COUNT":
            return SQLType.bigint()
        if name in ("MIN", "MAX"):
            return arg_type
        return SQLType.double()

    # -- helpers --------------------------------------------------------------

    def _check_comparable(
        self, left: SQLType | None, right: SQLType | None, expr: ast.Expr
    ) -> None:
        lf, rf = _family(left), _family(right)
        if lf is not None and rf is not None and lf != rf:
            self._mismatch(
                f"cannot compare {left} with {right}", expr
            )

    def _mismatch(self, message: str, expr: ast.Expr) -> None:
        self.emit("RPR201", message, expr.unparse())


class _ScopeTable:
    """One FROM/JOIN entry resolved against the provider."""

    def __init__(self, ref: ast.TableRef, provider):
        self.ref = ref
        self.binding = ref.binding.lower()
        self.known = provider.has_table(ref.name)
        self.columns: dict[str, SQLType] = {}
        if self.known:
            for name, sql_type in provider.table_columns(ref.name):
                self.columns.setdefault(name.lower(), sql_type)
            self.vendor = provider.table_vendor(ref.name)
            self.site = provider.table_site(ref.name)
            self.rows = provider.table_rows(ref.name)
            self.database = provider.table_database(ref.name)
        else:
            self.vendor = self.site = self.rows = self.database = None


def _split_conjuncts(expr: ast.Expr | None) -> list[ast.Expr]:
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


class _Analyzer:
    """Analyzes one SELECT (plus nested SELECTs, engine context only)."""

    def __init__(self, provider, config: LintConfig, sql_text: str | None):
        self.provider = provider
        self.config = config
        self.sql_text = sql_text
        self.federated = getattr(provider, "context", "engine") == "federated"
        self.diagnostics: list[Diagnostic] = []

    # -- diagnostics -----------------------------------------------------------

    def emit(
        self, code: str, message: str, fragment: str | None = None,
        severity: Severity | None = None,
    ) -> None:
        effective = self.config.severity_for(code)
        if effective is None:
            return
        if severity is not None and code not in self.config.severities:
            effective = severity
        span = None
        if fragment:
            start = None
            if self.sql_text:
                at = self.sql_text.lower().find(fragment.lower())
                if at >= 0:
                    start = at
            span = Span(
                fragment, start, None if start is None else start + len(fragment)
            )
        diag = Diagnostic(code, effective, message, span)
        if all(
            d.code != diag.code or d.message != diag.message
            for d in self.diagnostics
        ):
            self.diagnostics.append(diag)

    # -- entry point -----------------------------------------------------------

    def analyze(self, select: ast.Select) -> None:
        scope = self._build_scope(select)
        has_unknown = any(not st.known for st in scope)
        resolve = self._make_resolver(scope, has_unknown)
        typer = _ExprTyper(resolve, self.emit, self._on_subquery)

        scalar = not select.from_
        has_agg = not scalar and (
            bool(select.group_by)
            or any(ast.contains_aggregate(i.expr) for i in select.items)
            or select.having is not None
        )

        # Select list (aggregates allowed only when a FROM clause exists).
        output_exprs: dict[str, tuple[ast.Expr, SQLType | None]] = {}
        for ordinal, item in enumerate(select.items, start=1):
            if isinstance(item.expr, ast.Star):
                self._check_star(item.expr, scope, has_unknown)
                continue
            item_type = typer.type_of(item.expr, agg_ok=not scalar)
            output_exprs.setdefault(
                item.output_name(ordinal).lower(), (item.expr, item_type)
            )

        if select.where is not None:
            where_type = typer.type_of(select.where, agg_ok=False)
            self._check_boolean(select.where, where_type, "WHERE")

        for group in select.group_by:
            typer.type_of(group, agg_ok=False)

        self._check_joins(select, scope, typer)

        expand = self._alias_expander(select)
        expanded_having = None
        if select.having is not None:
            expanded_having = expand(select.having)
            having_type = typer.type_of(expanded_having, agg_ok=True)
            self._check_boolean(select.having, having_type, "HAVING")

        expanded_order: list[ast.Expr] = []
        for order in select.order_by:
            if has_agg:
                expr = expand(order.expr)
                expanded_order.append(expr)
                typer.type_of(expr, agg_ok=True)
            elif (
                isinstance(order.expr, ast.ColumnRef)
                and order.expr.table is None
                and order.expr.column.lower() in output_exprs
            ):
                pass  # resolves against the output columns, like the engine
            else:
                typer.type_of(order.expr, agg_ok=False)

        if has_agg:
            self._check_grouped(select, expanded_having, expanded_order)

        if self.federated:
            self._check_federated(select, scope, has_unknown, has_agg)

    # -- scope / resolution -----------------------------------------------------

    def _build_scope(self, select: ast.Select) -> list[_ScopeTable]:
        scope: list[_ScopeTable] = []
        seen: set[str] = set()
        for ref in select.referenced_tables():
            st = _ScopeTable(ref, self.provider)
            if st.binding in seen:
                # The engine shadows duplicates (last qualified ref wins)
                # but the federated planner refuses to decompose them.
                self.emit(
                    "RPR106",
                    f"duplicate table binding {ref.binding!r}",
                    ref.binding,
                    severity=Severity.ERROR if self.federated else None,
                )
            seen.add(st.binding)
            if not st.known:
                self.emit(
                    "RPR101",
                    f"unknown table {ref.name!r}",
                    ref.name,
                )
            scope.append(st)
        return scope

    def _make_resolver(self, scope: list[_ScopeTable], has_unknown: bool):
        by_binding = {st.binding: st for st in scope}

        def resolve(ref: ast.ColumnRef) -> SQLType | None:
            name = ref.column.lower()
            if ref.table is not None:
                st = by_binding.get(ref.table.lower())
                if st is None:
                    if not has_unknown:
                        self.emit(
                            "RPR102",
                            f"qualifier {ref.table!r} does not match any "
                            f"table in the query",
                            ref.unparse(),
                        )
                    return None
                if not st.known:
                    return None
                sql_type = st.columns.get(name)
                if sql_type is None:
                    self.emit(
                        "RPR102",
                        f"table {st.ref.name!r} has no column {ref.column!r}",
                        ref.unparse(),
                    )
                return sql_type
            owners = [st for st in scope if st.known and name in st.columns]
            if len(owners) == 1:
                return owners[0].columns[name]
            if has_unknown:
                return None  # RPR101 is the canonical finding
            if not owners:
                self.emit(
                    "RPR102", f"unknown column {ref.column!r}", ref.column
                )
                return None
            self.emit(
                "RPR103",
                f"column {ref.column!r} is ambiguous across "
                f"{sorted(st.ref.binding for st in owners)}",
                ref.column,
            )
            return None

        return resolve

    def _check_star(
        self, star: ast.Star, scope: list[_ScopeTable], has_unknown: bool
    ) -> None:
        if star.table is None:
            return
        if any(st.binding == star.table.lower() for st in scope):
            return
        if not has_unknown:
            self.emit(
                "RPR102",
                f"qualifier {star.table!r} in '*' does not match any table",
                star.unparse(),
            )

    def _on_subquery(self, select: ast.Select) -> None:
        if self.federated:
            self.emit(
                "RPR302",
                "subqueries cannot be decomposed by the federated planner; "
                "run them directly on one database",
                select.unparse(),
            )
            return
        # Engine subqueries are non-correlated: lint them independently.
        self.analyze(select)

    # -- clause checks ----------------------------------------------------------

    def _check_boolean(
        self, expr: ast.Expr, expr_type: SQLType | None, clause: str
    ) -> None:
        if expr_type is not None and expr_type.kind is not TypeKind.BOOLEAN:
            self.emit(
                "RPR202",
                f"{clause} predicate has type {expr_type}, not BOOLEAN "
                f"(rows only match on boolean TRUE)",
                expr.unparse(),
            )

    def _check_joins(
        self, select: ast.Select, scope: list[_ScopeTable], typer: _ExprTyper
    ) -> None:
        """Type join ON clauses, skipping the family check on cross-side
        equi conjuncts — the hash join matches those without comparing."""
        prior = {t.binding.lower() for t in select.from_}
        for join in select.joins:
            right = join.table.binding.lower()
            if join.on is not None:
                for conj in _split_conjuncts(join.on):
                    if self._is_cross_side_equi(conj, prior, right):
                        typer.resolve(conj.left)
                        typer.resolve(conj.right)
                    else:
                        typer.type_of(conj, agg_ok=False)
            prior.add(right)

    @staticmethod
    def _is_cross_side_equi(
        conj: ast.Expr, prior: set[str], right: str
    ) -> bool:
        if not (isinstance(conj, ast.BinaryOp) and conj.op == "="):
            return False
        a, b = conj.left, conj.right
        if not (isinstance(a, ast.ColumnRef) and isinstance(b, ast.ColumnRef)):
            return False
        if a.table is None or b.table is None:
            # Unqualified refs may still hash-join; be conservative and
            # treat single-column equality as a potential equi pair.
            return True
        sides = {a.table.lower() == right, b.table.lower() == right}
        return sides == {True, False} and (
            a.table.lower() in prior | {right}
            and b.table.lower() in prior | {right}
        )

    def _alias_expander(self, select: ast.Select):
        """Mirror the engine's HAVING/ORDER BY output-name expansion
        (only the node kinds the engine recurses into)."""
        alias_map: dict[str, ast.Expr] = {}
        for ordinal, item in enumerate(select.items, start=1):
            if isinstance(item.expr, ast.Star):
                continue
            alias_map.setdefault(item.output_name(ordinal).lower(), item.expr)

        def expand(expr: ast.Expr) -> ast.Expr:
            if isinstance(expr, ast.ColumnRef) and expr.table is None:
                return alias_map.get(expr.column.lower(), expr)
            if isinstance(expr, ast.BinaryOp):
                return ast.BinaryOp(expr.op, expand(expr.left), expand(expr.right))
            if isinstance(expr, ast.UnaryOp):
                return ast.UnaryOp(expr.op, expand(expr.operand))
            if isinstance(expr, ast.IsNull):
                return ast.IsNull(expand(expr.operand), expr.negated)
            if isinstance(expr, ast.Between):
                return ast.Between(
                    expand(expr.operand), expand(expr.low), expand(expr.high),
                    expr.negated,
                )
            return expr

        return expand

    def _check_grouped(
        self,
        select: ast.Select,
        expanded_having: ast.Expr | None,
        expanded_order: list[ast.Expr],
    ) -> None:
        """Every output/HAVING/ORDER BY column must be a group key (by
        canonical text, exactly like the engine's rewrite) or aggregated."""
        group_keys = {g.unparse() for g in select.group_by}

        def check(expr: ast.Expr) -> None:
            if expr.unparse() in group_keys:
                return
            if isinstance(expr, ast.FunctionCall) and (
                expr.name.upper() in ast.AGGREGATE_FUNCTIONS
            ):
                return
            if isinstance(
                expr, (ast.Star, ast.ScalarSubquery, ast.InSubquery, ast.Exists)
            ):
                return
            if isinstance(expr, ast.ColumnRef):
                self.emit(
                    "RPR301",
                    f"column {expr.unparse()!r} must appear in GROUP BY "
                    f"or inside an aggregate",
                    expr.unparse(),
                )
                return
            for child in ast._children(expr):
                check(child)

        for item in select.items:
            check(item.expr)
        if expanded_having is not None:
            check(expanded_having)
        for expr in expanded_order:
            check(expr)

    # -- federated-only analysis -------------------------------------------------

    def _check_federated(
        self,
        select: ast.Select,
        scope: list[_ScopeTable],
        has_unknown: bool,
        has_agg: bool,
    ) -> None:
        if has_unknown or not scope:
            return
        bindings = {st.binding for st in scope}
        if len(bindings) != len(scope):
            return  # duplicate bindings already reported as errors
        if any(
            ast.contains_subquery(clause) for clause in self._all_clauses(select)
        ):
            return  # RPR302 already reported; the planner stops there

        sites = {st.site for st in scope}
        if len(sites) == 1:
            # Whole-query pushdown: every expression ships to one vendor.
            vendor = scope[0].vendor
            for clause in self._all_clauses(select):
                self._check_vendor_functions(clause, vendor, scope[0])
            return

        # Multi-site plan: mirror the decomposer's pushdown choices.
        pushed: dict[str, list[ast.Expr]] = {st.binding: [] for st in scope}
        for conj in _split_conjuncts(select.where):
            owner = self._single_binding(conj, scope)
            if owner is not None:
                pushed[owner.binding].append(conj)
        for join in select.joins:
            right = join.table.binding.lower()
            for conj in _split_conjuncts(join.on):
                owner = self._single_binding(conj, scope)
                if owner is None:
                    continue
                if join.kind == "INNER" or owner.binding == right:
                    pushed[owner.binding].append(conj)

        for st in scope:
            for conj in pushed[st.binding]:
                self._check_vendor_functions(conj, st.vendor, st)
            if not pushed[st.binding]:
                rows = f" (~{st.rows} rows)" if st.rows else ""
                self.emit(
                    "RPR501",
                    f"no predicate can be pushed down to {st.ref.name!r} "
                    f"on {st.database!r}; its sub-query ships the whole "
                    f"table{rows}",
                    st.ref.name,
                )
        if has_agg:
            self.emit(
                "RPR501",
                f"aggregation runs client-side after merging "
                f"{len(scope)} sub-results; no mart pre-aggregates",
                None,
            )

    def _single_binding(
        self, conj: ast.Expr, scope: list[_ScopeTable]
    ) -> _ScopeTable | None:
        """The one scope table this conjunct touches, mirroring the
        decomposer's ``single_binding`` (aggregates/stars/aliases bail)."""
        by_binding = {st.binding: st for st in scope}
        found: set[str] = set()
        for node in ast.walk(conj):
            if isinstance(node, ast.FunctionCall) and (
                node.name.upper() in ast.AGGREGATE_FUNCTIONS
            ):
                return None
            if isinstance(node, ast.Star):
                return None
            if isinstance(node, ast.ColumnRef):
                if node.table is not None:
                    st = by_binding.get(node.table.lower())
                    if st is None or node.column.lower() not in st.columns:
                        return None
                    found.add(st.binding)
                    continue
                owners = [
                    st for st in scope if node.column.lower() in st.columns
                ]
                if len(owners) != 1:
                    return None
                found.add(owners[0].binding)
        if len(found) == 1:
            return by_binding[found.pop()]
        return None

    def _check_vendor_functions(
        self, expr: ast.Expr, vendor: str | None, st: _ScopeTable
    ) -> None:
        if vendor is None:
            return
        from repro.dialects import get_dialect

        try:
            dialect = get_dialect(vendor)
        except UnsupportedVendorError:
            return
        for node in ast.walk(expr):
            if not isinstance(node, ast.FunctionCall):
                continue
            name = node.name.upper()
            if name not in KNOWN_FUNCTIONS:
                continue  # RPR104 owns unknown names
            if not dialect.supports_function(name):
                self.emit(
                    "RPR401",
                    f"function {name} is not supported by {vendor} "
                    f"(sub-query ships to database {st.database!r})",
                    node.unparse(),
                )

    @staticmethod
    def _all_clauses(select: ast.Select) -> list[ast.Expr]:
        clauses: list[ast.Expr] = [
            item.expr
            for item in select.items
            if not isinstance(item.expr, ast.Star)
        ]
        if select.where is not None:
            clauses.append(select.where)
        clauses.extend(select.group_by)
        if select.having is not None:
            clauses.append(select.having)
        clauses.extend(o.expr for o in select.order_by)
        clauses.extend(j.on for j in select.joins if j.on is not None)
        return clauses


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def lint_select(
    select,
    provider,
    config: LintConfig | None = None,
    sql_text: str | None = None,
) -> LintReport:
    """Lint one SELECT (an AST node or SQL text) against ``provider``."""
    config = config or DEFAULT_CONFIG
    if isinstance(select, str):
        from repro.sql.parser import parse_select

        sql_text = sql_text or select
        try:
            select = parse_select(select)
        except ReproError as exc:
            return _syntax_report(exc, config)
    analyzer = _Analyzer(provider, config, sql_text)
    analyzer.analyze(select)
    return LintReport(analyzer.diagnostics)


def lint_statement(
    statement,
    provider,
    config: LintConfig | None = None,
    sql_text: str | None = None,
) -> LintReport:
    """Lint any parsed statement; non-query DDL yields an empty report."""
    config = config or DEFAULT_CONFIG
    if isinstance(statement, ast.Select):
        return lint_select(statement, provider, config, sql_text)
    analyzer = _Analyzer(provider, config, sql_text)
    if isinstance(statement, ast.Union):
        widths = set()
        for member in statement.selects:
            analyzer.analyze(member)
            if not any(isinstance(i.expr, ast.Star) for i in member.items):
                widths.add(len(member.items))
        if len(widths) > 1:
            analyzer.emit(
                "RPR201",
                f"UNION branches select different column counts: "
                f"{sorted(widths)}",
            )
    elif isinstance(statement, (ast.CreateTableAs, ast.CreateView)):
        analyzer.analyze(statement.select)
    elif isinstance(statement, ast.Insert):
        _lint_insert(statement, analyzer)
    elif isinstance(statement, (ast.Update, ast.Delete)):
        _lint_write(statement, analyzer)
    return LintReport(analyzer.diagnostics)


def lint_sql(
    sql: str, provider, config: LintConfig | None = None
) -> LintReport:
    """Parse and lint one statement of SQL text; parse failures become
    an ``RPR001`` diagnostic instead of an exception."""
    config = config or DEFAULT_CONFIG
    from repro.sql.parser import parse_statement

    try:
        statement = parse_statement(sql)
    except ReproError as exc:
        return _syntax_report(exc, config)
    return lint_statement(statement, provider, config, sql_text=sql)


def _syntax_report(exc: Exception, config: LintConfig) -> LintReport:
    severity = config.severity_for("RPR001")
    if severity is None:
        return LintReport([])
    return LintReport([Diagnostic("RPR001", severity, str(exc))])


def _lint_insert(statement: ast.Insert, analyzer: _Analyzer) -> None:
    provider = analyzer.provider
    if not provider.has_table(statement.table):
        analyzer.emit(
            "RPR101", f"unknown table {statement.table!r}", statement.table
        )
        return
    known = {name.lower() for name, _t in provider.table_columns(statement.table)}
    for column in statement.columns:
        if column.lower() not in known:
            analyzer.emit(
                "RPR102",
                f"table {statement.table!r} has no column {column!r}",
                column,
            )
    width = len(statement.columns) or len(known)
    for row in statement.rows:
        if len(row) != width:
            analyzer.emit(
                "RPR201",
                f"INSERT row has {len(row)} values for {width} column(s)",
            )
            break
    if statement.select is not None:
        analyzer.analyze(statement.select)


def _lint_write(statement, analyzer: _Analyzer) -> None:
    """Shared UPDATE/DELETE checks: table, columns, predicate types."""
    provider = analyzer.provider
    if not provider.has_table(statement.table):
        analyzer.emit(
            "RPR101", f"unknown table {statement.table!r}", statement.table
        )
        return
    scope = [_ScopeTable(ast.TableRef(name=statement.table), provider)]
    resolve = analyzer._make_resolver(scope, has_unknown=False)
    typer = _ExprTyper(resolve, analyzer.emit, analyzer._on_subquery)
    if isinstance(statement, ast.Update):
        known = scope[0].columns
        for column, expr in statement.assignments:
            if column.lower() not in known:
                analyzer.emit(
                    "RPR102",
                    f"table {statement.table!r} has no column {column!r}",
                    column,
                )
            typer.type_of(expr, agg_ok=False)
    if statement.where is not None:
        where_type = typer.type_of(statement.where, agg_ok=False)
        analyzer._check_boolean(statement.where, where_type, "WHERE")


def typecheck_select(
    select: ast.Select, schema: RowSchema
) -> list[Diagnostic]:
    """Pre-execution type check used by the engine executor.

    Resolution happens against the executor's own :class:`RowSchema`, so
    only definite type errors (``RPR201``) and bad call arities
    (``RPR105``) are returned — name errors are the executor's own
    business, and unresolvable refs (aliases, params) are skipped.
    """
    diagnostics: list[Diagnostic] = []

    def emit(code: str, message: str, fragment: str | None = None) -> None:
        span = Span(fragment) if fragment else None
        diagnostics.append(
            Diagnostic(code, RULES[code].severity, message, span)
        )

    def resolve(ref: ast.ColumnRef) -> SQLType | None:
        try:
            return schema.columns[schema.resolve(ref)].type
        except ColumnNotFoundError:
            return None

    typer = _ExprTyper(resolve, emit, on_subquery=None)
    for item in select.items:
        if not isinstance(item.expr, ast.Star):
            typer.type_of(item.expr, agg_ok=True)
    if select.where is not None:
        typer.type_of(select.where, agg_ok=True)
    for group in select.group_by:
        typer.type_of(group, agg_ok=True)
    if select.having is not None:
        typer.type_of(select.having, agg_ok=True)
    for order in select.order_by:
        typer.type_of(order.expr, agg_ok=True)
    # Join ON clauses are deliberately skipped: cross-side equi conjuncts
    # hash-match at runtime without ever comparing values.
    return [d for d in diagnostics if d.code in ("RPR201", "RPR105")]

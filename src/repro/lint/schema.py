"""Schema providers: what the analyzer resolves names against.

The analyzer is backend-agnostic; it asks a provider five questions
about a table name (existence, columns+types, vendor, site URL, row
count) and nothing else. Two concrete providers cover both halves of
the system:

* :class:`CatalogSchema` — a live :class:`repro.engine.Database`
  catalog (tables and views), for engine-level linting and EXPLAIN;
* :class:`DictionarySchema` — a federation
  :class:`~repro.metadata.dictionary.DataDictionary` built from XSpec
  documents, for pre-flight linting in the data access service, where
  ``context`` switches on the federated-only rules (RPR302/RPR401/RPR501).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.common.types import SQLType
from repro.metadata.dictionary import DataDictionary
from repro.metadata.xspec import LowerXSpec


@runtime_checkable
class SchemaProvider(Protocol):
    """The metadata surface the analyzer lints against."""

    #: 'engine' (single live database) or 'federated' (XSpec dictionary).
    context: str

    def has_table(self, name: str) -> bool:
        """True when the (logical) table name is known."""
        ...

    def table_columns(self, name: str) -> list[tuple[str, SQLType]]:
        """Ordered (column name, logical type) pairs of the table."""
        ...

    def table_vendor(self, name: str) -> str | None:
        """Vendor the table's sub-query would ship to, if known."""
        ...

    def table_site(self, name: str) -> str | None:
        """Connection URL / site identity (pushdown site analysis)."""
        ...

    def table_rows(self, name: str) -> int | None:
        """Planner row-count hint, when available."""
        ...

    def table_database(self, name: str) -> str | None:
        """Hosting database name (for messages), when known."""
        ...


class CatalogSchema:
    """Provider over one live engine database (tables and views)."""

    context = "engine"

    def __init__(self, database):
        self.database = database

    def has_table(self, name: str) -> bool:
        catalog = self.database.catalog
        return catalog.has_table(name) or catalog.get_view(name) is not None

    def table_columns(self, name: str) -> list[tuple[str, SQLType]]:
        # resolve_table expands views, so view columns carry real types.
        columns, _rows = self.database.resolve_table(name)
        return [(c.name, c.type) for c in columns]

    def table_vendor(self, name: str) -> str | None:
        return self.database.vendor

    def table_site(self, name: str) -> str | None:
        return self.database.name

    def table_rows(self, name: str) -> int | None:
        catalog = self.database.catalog
        if catalog.has_table(name):
            return catalog.get_table(name).row_count
        return None

    def table_database(self, name: str) -> str | None:
        return self.database.name


class DictionarySchema:
    """Provider over a federation data dictionary.

    ``prefer`` pins replicated logical tables to a database (same
    contract as the decomposer's ``prefer_databases``); otherwise the
    first registered location is used, mirroring the planner's choice.
    """

    context = "federated"

    def __init__(
        self, dictionary: DataDictionary, prefer: dict[str, str] | None = None
    ):
        self.dictionary = dictionary
        self.prefer = {k.lower(): v for k, v in (prefer or {}).items()}

    def _location(self, name: str):
        locations = self.dictionary.locations(name)
        if not locations:
            return None
        preferred = self.prefer.get(name.lower())
        if preferred is not None:
            for loc in locations:
                if loc.database_name == preferred:
                    return loc
        return locations[0]

    def has_table(self, name: str) -> bool:
        return self.dictionary.has_table(name)

    def table_columns(self, name: str) -> list[tuple[str, SQLType]]:
        loc = self._location(name)
        if loc is None:
            return []
        return [(c.logical_name, c.logical_type) for c in loc.table.columns]

    def table_vendor(self, name: str) -> str | None:
        loc = self._location(name)
        return None if loc is None else loc.vendor

    def table_site(self, name: str) -> str | None:
        loc = self._location(name)
        return None if loc is None else loc.url

    def table_rows(self, name: str) -> int | None:
        loc = self._location(name)
        return None if loc is None else loc.table.row_count

    def table_database(self, name: str) -> str | None:
        loc = self._location(name)
        return None if loc is None else loc.database_name


def dictionary_from_specs(specs: list[LowerXSpec]) -> DataDictionary:
    """Build a dictionary straight from lower XSpec documents.

    Used by the ``sqlcheck`` CLI, which lints against spec files without
    a running federation; connection URLs are synthesized per vendor so
    site analysis still distinguishes the databases.
    """
    from repro.dialects import get_dialect

    dictionary = DataDictionary()
    for spec in specs:
        dialect = get_dialect(spec.vendor)
        url = dialect.make_url("sqlcheck.local", None, spec.database_name)
        dictionary.add_database(spec, url)
    return dictionary


class XSpecSchema(DictionarySchema):
    """Provider built directly from one or more lower XSpec documents."""

    def __init__(self, *specs: LowerXSpec):
        super().__init__(dictionary_from_specs(list(specs)))

"""The rule registry: stable codes, default severities, per-run config.

Every diagnostic the analyzer can emit is declared here. A
:class:`LintConfig` disables rules or overrides their severity per run
(the CLI maps ``--disable``/``--severity`` onto it); unknown codes are
rejected early so typos do not silently disable nothing.

Default severities are calibrated against the simulated engine: a rule
defaults to ERROR only when the engine (or the federated planner) would
itself fail the query — so a query that executes successfully is always
lint-clean at ERROR severity. Findings the engine tolerates but a user
almost certainly did not intend (``WHERE 1``, whole-table shipping)
default to WARNING.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lint.diagnostics import Severity


@dataclass(frozen=True)
class Rule:
    """One statically-known rule: code, slug, default severity, blurb."""

    code: str
    slug: str
    severity: Severity
    description: str


RULES: dict[str, Rule] = {
    rule.code: rule
    for rule in (
        Rule("RPR001", "syntax-error", Severity.ERROR,
             "the SQL text could not be parsed"),
        Rule("RPR101", "unknown-table", Severity.ERROR,
             "a referenced table is in no catalog/dictionary"),
        Rule("RPR102", "unknown-column", Severity.ERROR,
             "a column reference resolves to no visible table"),
        Rule("RPR103", "ambiguous-column", Severity.ERROR,
             "an unqualified column exists in several tables"),
        Rule("RPR104", "unknown-function", Severity.ERROR,
             "a function name the engine does not implement"),
        Rule("RPR105", "bad-argument-count", Severity.ERROR,
             "a function called with the wrong number of arguments"),
        Rule("RPR106", "duplicate-binding", Severity.WARNING,
             "two FROM/JOIN entries share one binding name"),
        Rule("RPR201", "type-mismatch", Severity.ERROR,
             "an expression mixes incompatible SQL type families"),
        Rule("RPR202", "non-boolean-where", Severity.WARNING,
             "a WHERE/HAVING predicate is not boolean-typed"),
        Rule("RPR301", "aggregate-misuse", Severity.ERROR,
             "an aggregate in a forbidden clause, nested aggregates, or "
             "a bare column outside GROUP BY"),
        Rule("RPR302", "federated-subquery", Severity.ERROR,
             "a subquery in a query the federated planner must decompose"),
        Rule("RPR401", "vendor-incompat", Severity.ERROR,
             "a function unsupported by the vendor the sub-query ships to"),
        Rule("RPR501", "pushdown-warning", Severity.WARNING,
             "decomposition will ship a whole table or merge client-side"),
    )
}


class LintConfig:
    """Per-run rule configuration: disables and severity overrides."""

    def __init__(
        self,
        disabled: set[str] | frozenset[str] = frozenset(),
        severities: dict[str, Severity] | None = None,
    ):
        for code in list(disabled) + list(severities or {}):
            if code not in RULES:
                raise ValueError(f"unknown lint rule code {code!r}")
        self.disabled = frozenset(disabled)
        self.severities = dict(severities or {})

    def severity_for(self, code: str) -> Severity | None:
        """Effective severity for ``code``; None when the rule is off."""
        if code in self.disabled:
            return None
        override = self.severities.get(code)
        if override is not None:
            return override
        return RULES[code].severity


DEFAULT_CONFIG = LintConfig()

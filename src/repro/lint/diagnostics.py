"""Structured lint diagnostics.

A :class:`Diagnostic` is one finding of the static analyzer: a stable
code (``RPR101`` unknown-table, ``RPR201`` type-mismatch, ...), a
severity, a human message and a best-effort source span. Codes are part
of the public contract — tools and tests match on them, so they never
change meaning between releases (new codes may be added).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.IntEnum):
    """Diagnostic severity; ordering is by seriousness."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        """Lower-case name as printed in reports (``error``, ...)."""
        return self.name.lower()

    @staticmethod
    def from_name(text: str) -> "Severity":
        """Parse ``error``/``warning``/``info`` (case-insensitive)."""
        try:
            return Severity[text.strip().upper()]
        except KeyError:
            raise ValueError(f"unknown severity {text!r}") from None


@dataclass(frozen=True)
class Span:
    """Where a diagnostic points: the offending fragment and, when the
    original SQL text is available, its character offsets there."""

    fragment: str
    start: int | None = None
    end: int | None = None

    def __str__(self) -> str:
        if self.start is not None:
            return f"{self.fragment!r} at offset {self.start}"
        return repr(self.fragment)


@dataclass(frozen=True)
class Diagnostic:
    """One finding: stable code + severity + message + span."""

    code: str
    severity: Severity
    message: str
    span: Span | None = None

    def __str__(self) -> str:
        text = f"{self.code} {self.severity.label}: {self.message}"
        if self.span is not None:
            text += f" [{self.span}]"
        return text

    def as_dict(self) -> dict:
        """Wire-safe representation (Clarens methods return these)."""
        return {
            "code": self.code,
            "severity": self.severity.label,
            "message": self.message,
            "span": None if self.span is None else {
                "fragment": self.span.fragment,
                "start": self.span.start,
                "end": self.span.end,
            },
        }


class LintReport:
    """An ordered collection of diagnostics for one statement."""

    def __init__(self, diagnostics: list[Diagnostic] | None = None):
        self.diagnostics: list[Diagnostic] = list(diagnostics or [])

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> list[Diagnostic]:
        """Diagnostics at ERROR severity (what pre-flight rejects on)."""
        return [d for d in self.diagnostics if d.severity >= Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        """Diagnostics at WARNING severity."""
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no ERROR-severity diagnostic was produced."""
        return not self.errors

    def codes(self) -> set[str]:
        """The set of codes present (convenient in tests)."""
        return {d.code for d in self.diagnostics}

    def format_lines(self) -> list[str]:
        """One printable line per diagnostic."""
        return [str(d) for d in self.diagnostics]

    def __repr__(self) -> str:
        return f"LintReport({len(self.diagnostics)} diagnostics, ok={self.ok})"

"""JDBC-style database driver layer.

``connect(url, user, password)`` resolves a vendor connection URL
against a :class:`~repro.driver.directory.Directory` of live database
instances and returns a DB-API-flavoured :class:`Connection`. Connect,
authenticate, statement and fetch costs are charged to an optional
virtual clock so the simulated testbed reproduces the paper's
"connecting and authenticating with several databases" overhead.
"""

from repro.driver.directory import Directory, GLOBAL_DIRECTORY, DatabaseBinding
from repro.driver.connection import Connection, Cursor, connect
from repro.driver.url import sniff_vendor

__all__ = [
    "Connection",
    "Cursor",
    "DatabaseBinding",
    "Directory",
    "GLOBAL_DIRECTORY",
    "connect",
    "sniff_vendor",
]

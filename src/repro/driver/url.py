"""Connection-URL vendor sniffing.

Each dialect owns a URL grammar; this module picks the vendor from the
URL prefix, longest scheme first, so ``jdbc:sqlserver://...`` is not
claimed by a hypothetical ``jdbc:sql`` vendor.
"""

from __future__ import annotations

from repro.common.errors import ConnectionFailedError
from repro.dialects import available_vendors, get_dialect
from repro.dialects.base import ConnectionURL, Dialect


def sniff_vendor(url: str) -> tuple[Dialect, ConnectionURL]:
    """Resolve ``url`` to (dialect, parsed URL) by scheme prefix."""
    candidates = sorted(
        (get_dialect(v) for v in available_vendors()),
        key=lambda d: len(d.url_scheme),
        reverse=True,
    )
    for dialect in candidates:
        if url.startswith(dialect.url_scheme + ":") or url.startswith(
            dialect.url_scheme + "@"
        ):
            return dialect, dialect.parse_url(url)
    raise ConnectionFailedError(f"no registered vendor understands URL {url!r}")
